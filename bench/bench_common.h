#ifndef SES_BENCH_BENCH_COMMON_H_
#define SES_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "core/ses_model.h"
#include "data/real_world.h"
#include "data/synthetic.h"
#include "models/asdgn.h"
#include "models/backbone_models.h"
#include "models/fused_gat.h"
#include "models/protgnn.h"
#include "models/segnn.h"
#include "models/unimp.h"
#include "util/string_util.h"

namespace ses::bench {

/// Resource profile for a benchmark run. The default ("fast") profile scales
/// the real-world stand-ins and epoch counts to the 2-core CPU budget this
/// harness runs under; `--full` restores paper-scale settings. Either way
/// every code path of every experiment executes — only sizes change.
/// EXPERIMENTS.md records which profile produced the committed outputs.
struct Profile {
  bool full = false;
  double real_scale = 0.35;       ///< fraction of the real dataset size
  int64_t epochs = 50;            ///< backbone / SES explainable epochs
  int64_t hidden = 64;            ///< hidden width (paper: 128)
  int64_t seeds = 2;              ///< repetitions for mean±std cells
  int64_t explain_nodes_cap = 80; ///< nodes processed by per-node explainers
  float lr = 0.003f;              ///< paper's learning rate
  float dropout = 0.3f;

  static Profile FromFlags(const util::FlagParser& flags) {
    Profile p;
    p.full = flags.GetBool("full", false);
    if (p.full) {
      p.real_scale = 1.0;
      p.epochs = 300;
      p.hidden = 128;
      p.seeds = 5;
      p.explain_nodes_cap = 0;  // all nodes
    }
    p.real_scale = flags.GetDouble("scale", p.real_scale);
    p.epochs = flags.GetInt("epochs", p.epochs);
    p.hidden = flags.GetInt("hidden", p.hidden);
    p.seeds = flags.GetInt("seeds", p.seeds);
    p.explain_nodes_cap = flags.GetInt("explain_nodes", p.explain_nodes_cap);
    return p;
  }

  models::TrainConfig MakeTrainConfig(uint64_t seed) const {
    models::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.hidden = hidden;
    cfg.lr = lr;
    cfg.dropout = dropout;
    cfg.seed = seed;
    return cfg;
  }

  std::string Describe() const {
    return std::string(full ? "FULL" : "FAST") +
           " profile: scale=" + std::to_string(real_scale) +
           " epochs=" + std::to_string(epochs) +
           " hidden=" + std::to_string(hidden) +
           " seeds=" + std::to_string(seeds);
  }
};

/// Factory over the Table-3 model zoo.
inline std::unique_ptr<models::NodeClassifier> MakeModel(
    const std::string& name) {
  if (name == "GCN") return std::make_unique<models::BackboneModel>("GCN");
  if (name == "GAT") return std::make_unique<models::BackboneModel>("GAT");
  if (name == "UniMP") return std::make_unique<models::UniMpModel>();
  if (name == "FusedGAT") return std::make_unique<models::FusedGatModel>();
  if (name == "ASDGN") return std::make_unique<models::AsdgnModel>();
  if (name == "SEGNN") return std::make_unique<models::SegnnModel>();
  if (name == "ProtGNN") return std::make_unique<models::ProtGnnModel>();
  if (name == "SES (GCN)") {
    core::SesOptions opt;
    opt.backbone = "GCN";
    return std::make_unique<core::SesModel>(opt);
  }
  if (name == "SES (GAT)") {
    core::SesOptions opt;
    opt.backbone = "GAT";
    return std::make_unique<core::SesModel>(opt);
  }
  return nullptr;
}

inline std::string ArtifactDir() { return "bench_artifacts"; }

}  // namespace ses::bench

#endif  // SES_BENCH_BENCH_COMMON_H_
