#ifndef SES_BENCH_BENCH_COMMON_H_
#define SES_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/ses_model.h"
#include "data/real_world.h"
#include "data/synthetic.h"
#include "models/asdgn.h"
#include "models/backbone_models.h"
#include "models/fused_gat.h"
#include "models/protgnn.h"
#include "models/segnn.h"
#include "models/unimp.h"
#include "obs/obs.h"
#include "util/string_util.h"
#include "util/table.h"

namespace ses::bench {

/// Observability wiring shared by the bench mains. Recognized flags:
///   --trace-out=PATH      record spans, write a Chrome trace-event JSON
///   --metrics-out=PATH    record spans, print a per-op aggregate table and
///                         write span aggregates + metrics (CSV, or JSONL for
///                         a .jsonl/.json path, or Prometheus exposition for
///                         a .prom path)
///   --telemetry-out=PATH  stream one JSONL record per training epoch (also
///                         enables the ModelHealthMonitor so records carry
///                         per-layer gradient norms / update ratios)
///   --access-log=PATH     one JSONL line per inference request, trace-id
///                         joinable against the Chrome trace (implies
///                         tracing)
///   --flame-out=PATH      write the span buffers as folded stacks for
///                         flamegraph.pl / speedscope (implies tracing)
///   --metrics-port=N      serve live /metrics (Prometheus), /healthz and
///                         /spans on localhost:N for the whole run (0 picks
///                         an ephemeral port)
/// With none of the flags given, tracing stays disabled and the instrumented
/// code paths cost nothing. Any artifact flag also enables kernel profiling
/// (KernelScope -> ses.kernel.* series) and installs crash handlers, so a
/// fault-injection kill or fatal signal still writes the artifacts.
class ObsSession {
 public:
  explicit ObsSession(const util::FlagParser& flags)
      : trace_path_(flags.GetString("trace-out", "")),
        metrics_path_(flags.GetString("metrics-out", "")),
        flame_path_(flags.GetString("flame-out", "")) {
    const std::string telemetry_path = flags.GetString("telemetry-out", "");
    const std::string access_log_path = flags.GetString("access-log", "");
    const int64_t metrics_port = flags.GetInt("metrics-port", -1);
    const bool any_artifact = !trace_path_.empty() || !metrics_path_.empty() ||
                              !access_log_path.empty() || !flame_path_.empty();
    if (any_artifact) {
      obs::EnableTracing(true);
      obs::EnableKernelProfiling(true);
    } else if (metrics_port >= 0) {
      // A live /metrics endpoint without span artifacts still wants the
      // ses.kernel.* series populated.
      obs::EnableKernelProfiling(true);
    }
    if (!telemetry_path.empty()) {
      obs::Telemetry::Get().OpenJsonl(telemetry_path);
      obs::ModelHealthMonitor::Get().SetEnabled(true);
    }
    if (!access_log_path.empty()) obs::AccessLog::Get().Open(access_log_path);
    if (metrics_port >= 0) {
      server_ = std::make_unique<obs::MetricsServer>();
      if (server_->Start(static_cast<uint16_t>(metrics_port))) {
        std::printf("metrics server on http://localhost:%u/metrics\n",
                    static_cast<unsigned>(server_->port()));
        // Announce the port immediately even when stdout is a pipe or file
        // (CI polls the log for it while the benchmark is still running).
        std::fflush(stdout);
      } else {
        server_.reset();
      }
    }
    if (any_artifact) {
      obs::SetCrashArtifacts(trace_path_, metrics_path_);
      obs::InstallCrashHandlers();
    }
  }

  ~ObsSession() { Finish(); }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Port of the embedded metrics server; 0 when --metrics-port was absent.
  uint16_t metrics_port() const { return server_ ? server_->port() : 0; }

  /// Writes/prints everything the flags asked for. Idempotent; also invoked
  /// by the destructor so early returns still flush.
  void Finish() {
    if (finished_) return;
    finished_ = true;
    if (server_) {
      server_->Stop();
      server_.reset();
    }
    if (!trace_path_.empty() && obs::WriteChromeTrace(trace_path_))
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  trace_path_.c_str());
    if (!flame_path_.empty() && obs::WriteFoldedStacks(flame_path_))
      std::printf("folded stacks written to %s (flamegraph.pl --countname ns)\n",
                  flame_path_.c_str());
    if (!metrics_path_.empty()) {
      PrintSpanAggregates();
      WriteSpanAggregates(metrics_path_);
    }
    obs::AccessLog::Get().Close();
    obs::Telemetry::Get().Close();
    obs::ModelHealthMonitor::Get().SetEnabled(false);
    // Everything is on disk; the crash path has nothing left to save.
    obs::SetCrashArtifacts("", "");
  }

 private:
  void PrintSpanAggregates() const {
    util::Table table("Per-op time breakdown (aggregated spans)");
    table.SetHeader({"Op", "Count", "Total ms", "Mean us"});
    for (const obs::LabelStats& s : obs::AggregateSpanStats()) {
      char total[32], mean[32];
      std::snprintf(total, sizeof(total), "%.3f", s.TotalMillis());
      std::snprintf(mean, sizeof(mean), "%.2f", s.MeanNs() / 1e3);
      table.AddRow({s.label, std::to_string(s.count), total, mean});
    }
    table.Print();
  }

  /// Span aggregates as CSV rows (or JSONL objects for .jsonl/.json paths),
  /// followed by any registered counters/gauges/histograms. A .prom path
  /// writes the registry alone, in Prometheus exposition format.
  static void WriteSpanAggregates(const std::string& path) {
    const bool jsonl =
        path.size() >= 5 && (path.rfind(".jsonl") == path.size() - 6 ||
                             path.rfind(".json") == path.size() - 5);
    const bool prom =
        path.size() >= 5 && path.rfind(".prom") == path.size() - 5;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics output %s\n", path.c_str());
      return;
    }
    if (prom) {
      obs::MetricsRegistry::Get().WritePrometheus(out);
      std::printf("metrics written to %s\n", path.c_str());
      return;
    }
    if (jsonl) {
      for (const obs::LabelStats& s : obs::AggregateSpanStats())
        out << "{\"kind\":\"span\",\"label\":\"" << s.label
            << "\",\"count\":" << s.count << ",\"total_ms\":" << s.TotalMillis()
            << ",\"mean_us\":" << s.MeanNs() / 1e3 << "}\n";
      obs::MetricsRegistry::Get().WriteJsonl(out);
    } else {
      out << "label,count,total_ms,mean_us,min_us,max_us\n";
      for (const obs::LabelStats& s : obs::AggregateSpanStats())
        out << s.label << "," << s.count << "," << s.TotalMillis() << ","
            << s.MeanNs() / 1e3 << "," << s.min_ns / 1e3 << ","
            << s.max_ns / 1e3 << "\n";
    }
    std::printf("per-op metrics written to %s\n", path.c_str());
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::string flame_path_;
  std::unique_ptr<obs::MetricsServer> server_;
  bool finished_ = false;
};

/// Resource profile for a benchmark run. The default ("fast") profile scales
/// the real-world stand-ins and epoch counts to the 2-core CPU budget this
/// harness runs under; `--full` restores paper-scale settings. Either way
/// every code path of every experiment executes — only sizes change.
/// EXPERIMENTS.md records which profile produced the committed outputs.
struct Profile {
  bool full = false;
  double real_scale = 0.35;       ///< fraction of the real dataset size
  int64_t epochs = 50;            ///< backbone / SES explainable epochs
  int64_t hidden = 64;            ///< hidden width (paper: 128)
  int64_t seeds = 2;              ///< repetitions for mean±std cells
  int64_t explain_nodes_cap = 80; ///< nodes processed by per-node explainers
  float lr = 0.003f;              ///< paper's learning rate
  float dropout = 0.3f;

  static Profile FromFlags(const util::FlagParser& flags) {
    Profile p;
    p.full = flags.GetBool("full", false);
    if (p.full) {
      p.real_scale = 1.0;
      p.epochs = 300;
      p.hidden = 128;
      p.seeds = 5;
      p.explain_nodes_cap = 0;  // all nodes
    }
    p.real_scale = flags.GetDouble("scale", p.real_scale);
    p.epochs = flags.GetInt("epochs", p.epochs);
    p.hidden = flags.GetInt("hidden", p.hidden);
    p.seeds = flags.GetInt("seeds", p.seeds);
    p.explain_nodes_cap = flags.GetInt("explain_nodes", p.explain_nodes_cap);
    return p;
  }

  models::TrainConfig MakeTrainConfig(uint64_t seed) const {
    models::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.hidden = hidden;
    cfg.lr = lr;
    cfg.dropout = dropout;
    cfg.seed = seed;
    return cfg;
  }

  std::string Describe() const {
    return std::string(full ? "FULL" : "FAST") +
           " profile: scale=" + std::to_string(real_scale) +
           " epochs=" + std::to_string(epochs) +
           " hidden=" + std::to_string(hidden) +
           " seeds=" + std::to_string(seeds);
  }
};

/// Factory over the Table-3 model zoo.
inline std::unique_ptr<models::NodeClassifier> MakeModel(
    const std::string& name) {
  if (name == "GCN") return std::make_unique<models::BackboneModel>("GCN");
  if (name == "GAT") return std::make_unique<models::BackboneModel>("GAT");
  if (name == "UniMP") return std::make_unique<models::UniMpModel>();
  if (name == "FusedGAT") return std::make_unique<models::FusedGatModel>();
  if (name == "ASDGN") return std::make_unique<models::AsdgnModel>();
  if (name == "SEGNN") return std::make_unique<models::SegnnModel>();
  if (name == "ProtGNN") return std::make_unique<models::ProtGnnModel>();
  if (name == "SES (GCN)") {
    core::SesOptions opt;
    opt.backbone = "GCN";
    return std::make_unique<core::SesModel>(opt);
  }
  if (name == "SES (GAT)") {
    core::SesOptions opt;
    opt.backbone = "GAT";
    return std::make_unique<core::SesModel>(opt);
  }
  return nullptr;
}

inline std::string ArtifactDir() { return "bench_artifacts"; }

}  // namespace ses::bench

#endif  // SES_BENCH_BENCH_COMMON_H_
