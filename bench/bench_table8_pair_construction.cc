// Reproduces Table 8: time to construct positive-negative node pairs
// (Algorithm 1) on sparse graphs of growing size (|E| = 2|V|), via
// google-benchmark. The paper reports 0.005s / 0.045s / 2.11s / 28.92s /
// 38.53s at 0.1k / 1k / 10k / 50k / 70k nodes.
#include <benchmark/benchmark.h>

#include "core/pairs.h"
#include "data/synthetic.h"
#include "graph/khop.h"
#include "graph/sampling.h"
#include "util/rng.h"

using namespace ses;

namespace {

void BM_PairConstruction(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(7);
  // Sparse graph with twice as many edges as nodes (the paper's setup).
  graph::Graph g = data::MakeBarabasiAlbert(n, 2, &rng);
  graph::KHopAdjacency khop(g, /*k=*/2, /*max_neighbors=*/32);
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (auto& l : labels) l = static_cast<int64_t>(rng.UniformInt(4));
  graph::NegativeSets negatives = graph::SampleNegativeSets(khop, labels, &rng);
  tensor::Tensor mask = tensor::Tensor::Uniform(khop.num_pairs(), 1, 0.0f,
                                                1.0f, &rng);
  for (auto _ : state) {
    auto pairs = core::ConstructPairs(khop, mask, negatives, 0.8, &rng);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(khop.num_pairs()), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_PairConstruction)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(70000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
