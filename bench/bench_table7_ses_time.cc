// Reproduces Table 7: SES (GCN) training and explanation-inference time on
// the four real-world datasets.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ses;

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  bench::ObsSession obs_session(flags);
  std::printf("[Table 7] %s\n", profile.Describe().c_str());

  const char* datasets[] = {"Cora", "CiteSeer", "PolBlogs", "CS"};
  const char* paper_inference[] = {"4.3s", "4.4s", "9.1s", "34.0s"};
  const char* paper_training[] = {"10.8s", "12.3s", "13.1s", "89.7s"};

  util::Table table("Table 7: Training and inference time of SES (GCN)");
  table.SetHeader({"Dataset", "Inference (ours)", "Inference (paper)",
                   "Training (ours)", "Training (paper)"});
  for (int d = 0; d < 4; ++d) {
    auto ds = data::MakeRealWorldByName(datasets[d], profile.real_scale, 1);
    core::SesOptions opt;
    opt.backbone = "GCN";
    core::SesModel ses(opt);
    ses.Fit(ds, profile.MakeTrainConfig(1));
    const double inference = ses.explainable_training_seconds() +
                             ses.explanation_inference_seconds();
    const double training = inference + ses.enhanced_learning_seconds();
    table.AddRow({datasets[d], util::FormatDuration(inference),
                  paper_inference[d], util::FormatDuration(training),
                  paper_training[d]});
    std::fprintf(stderr, "  %s done\n", datasets[d]);
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/table7_ses_time.csv");
  return 0;
}
