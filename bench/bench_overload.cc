// Overload-resilience benchmark for the serving path.
//
// Trains a small SES (GCN) model, then drives the BatchScheduler with an
// open-loop arrival process swept from 0.5x to 10x of measured capacity and
// reports how much goodput survives the overload. The per-request service
// cost is pinned with a persistent `serve_delay` fault so a handful of client
// threads can push offered load far past what one worker can serve — the
// sweep exercises admission control (burn-rate shedding, Explain first),
// request deadlines (doomed-work elimination in queue, mid-flight expiry),
// and degraded mode (cache-served Predicts under sustained burn).
//
// Protocol per sweep point (fresh scheduler, fresh SLO window each time):
//   - N paced clients submit on an absolute schedule (open loop: arrivals do
//     not wait for completions), 90/10 predict/explain, every request with a
//     relative deadline;
//   - synchronous kOverloaded rejections are retried with the jittered
//     exponential backoff helper (serve::RetryDelayUs), honoring the server's
//     RetryAfter hint, up to RetryPolicy::max_attempts;
//   - after the schedule ends, every future is resolved with a bounded wait
//     and tallied by status code. `unresolved_futures` counts futures that
//     never resolved — the no-hung-futures invariant; the gate requires 0.
//
// Goodput = kOk completions / pacing wall time. The headline number is
//   goodput_retention_10x = goodput(10x) / goodput(1x)
// — a serving stack without admission control and deadlines collapses here
// (workers burn their time on work that is already dead); with them it
// should stay near 1. scripts/bench_check.sh gates the committed
// BENCH_overload.json on retention and on unresolved_futures == 0.
//
// Results go to --out (default BENCH_overload.json). --smoke shrinks the
// sweep for the sanitizer CI runs (structural gates only — retention on a
// sanitizer build is not meaningful).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/inference_session.h"
#include "obs/metrics.h"
#include "robust/fault.h"
#include "serve/batch_scheduler.h"
#include "serve/retry.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ses;
using Clock = std::chrono::steady_clock;

namespace {

/// Per-bucket histogram snapshot, so a sweep point can report quantiles of
/// the requests it contributed (the registry histogram accumulates across
/// points and the calibration phase).
std::vector<int64_t> SnapshotBuckets(const obs::Histogram& hist) {
  std::vector<int64_t> counts(hist.edges().size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) counts[i] = hist.BucketCount(i);
  return counts;
}

/// Bucket-interpolated quantile over the delta since `before` (same scheme
/// as Histogram::Quantile, restricted to this point's observations).
double DeltaQuantileUs(const obs::Histogram& hist,
                       const std::vector<int64_t>& before, double q) {
  const auto& edges = hist.edges();
  int64_t total = 0;
  std::vector<int64_t> delta(before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    delta[i] = hist.BucketCount(i) - before[i];
    total += delta[i];
  }
  if (total <= 0) return 0.0;
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(total)));
  rank = std::max<int64_t>(rank, 1);
  int64_t cumulative = 0;
  for (size_t i = 0; i < delta.size(); ++i) {
    cumulative += delta[i];
    if (cumulative < rank) continue;
    const double lo = i == 0 ? 0.0 : edges[i - 1];
    const double hi = i < edges.size() ? edges[i] : lo * 2.0;  // overflow
    const double frac =
        delta[i] > 0
            ? static_cast<double>(rank - (cumulative - delta[i])) /
                  static_cast<double>(delta[i])
            : 1.0;
    return lo + (hi - lo) * frac;
  }
  return edges.empty() ? 0.0 : edges.back();
}

/// Spin-assisted sleep to an absolute point: coarse sleep to ~200us short of
/// the target, then spin — paced arrivals at tens-of-microsecond intervals
/// need better precision than sleep_for alone gives.
void SleepUntil(Clock::time_point due) {
  const auto coarse = due - std::chrono::microseconds(200);
  if (Clock::now() < coarse) std::this_thread::sleep_until(coarse);
  while (Clock::now() < due) {
  }
}

/// Final-status tallies for one sweep point, merged across clients.
struct Tally {
  int64_t submitted = 0;   ///< logical requests (retries excluded)
  int64_t attempts = 0;    ///< submit calls (retries included)
  int64_t retries = 0;
  int64_t ok = 0;
  int64_t shed = 0;        ///< final status kOverloaded (retries exhausted)
  int64_t expired = 0;     ///< kDeadlineExceeded (queue or mid-flight)
  int64_t shutdown = 0;
  int64_t internal = 0;
  int64_t unresolved = 0;  ///< futures that never resolved (must be 0)

  void Merge(const Tally& other) {
    submitted += other.submitted;
    attempts += other.attempts;
    retries += other.retries;
    ok += other.ok;
    shed += other.shed;
    expired += other.expired;
    shutdown += other.shutdown;
    internal += other.internal;
    unresolved += other.unresolved;
  }
};

void TallyStatus(serve::StatusCode code, Tally* tally) {
  switch (code) {
    case serve::StatusCode::kOk: ++tally->ok; break;
    case serve::StatusCode::kOverloaded: ++tally->shed; break;
    case serve::StatusCode::kDeadlineExceeded: ++tally->expired; break;
    case serve::StatusCode::kShuttingDown: ++tally->shutdown; break;
    case serve::StatusCode::kInternal: ++tally->internal; break;
  }
}

/// Resolves every future with a bounded wait (so a lost future shows up as a
/// nonzero count in the report instead of hanging the benchmark forever).
template <typename Future>
void ResolveAll(std::vector<Future>& futures, Clock::time_point give_up,
                Tally* tally) {
  for (auto& future : futures) {
    while (!future.Ready() && Clock::now() < give_up)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    if (!future.Ready()) {
      ++tally->unresolved;
      continue;
    }
    TallyStatus(future.Wait().code, tally);
  }
}

/// Submits one request with bounded retry on synchronous kOverloaded
/// rejections (shed decisions are immediate futures, so the client learns
/// the verdict without blocking on queued work). Returns the final future.
template <typename Submit>
auto SubmitWithRetry(Submit&& submit, const serve::RetryPolicy& policy,
                     util::Rng* rng, Tally* tally)
    -> decltype(submit()) {
  auto future = submit();
  ++tally->attempts;
  for (int attempt = 0; attempt + 1 < policy.max_attempts; ++attempt) {
    if (!future.Ready()) break;  // queued, not an immediate rejection
    const serve::Status status = future.Wait();
    if (status.code != serve::StatusCode::kOverloaded) break;
    ++tally->retries;
    SleepUntil(Clock::now() +
               std::chrono::microseconds(serve::RetryDelayUs(
                   policy, attempt, status.retry_after_us, rng->Uniform())));
    future = submit();
    ++tally->attempts;
  }
  return future;
}

/// One point of the sweep.
struct SweepPoint {
  double offered_x = 0.0;
  double offered_qps = 0.0;
  double pace_wall_s = 0.0;
  double goodput_qps = 0.0;
  double p99_ms = 0.0;  ///< e2e of requests that reached a worker this point
  Tally tally;
  serve::BatchScheduler::Stats sched;
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  bench::ObsSession obs_session(flags);
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t clients = flags.GetInt("clients", smoke ? 2 : 4);
  const double point_seconds =
      flags.GetDouble("point-seconds", smoke ? 0.5 : 2.0);
  const int64_t serve_delay_us =
      flags.GetInt("serve-delay-us", smoke ? 400 : 100);
  const double deadline_ms = flags.GetDouble("deadline-ms", smoke ? 30.0 : 15.0);
  const int64_t calib_queries = flags.GetInt("calib-queries", smoke ? 2000 : 20000);
  const std::string out_path = flags.GetString("out", "BENCH_overload.json");
  std::vector<double> multipliers = smoke
                                        ? std::vector<double>{0.5, 1.0, 10.0}
                                        : std::vector<double>{0.5, 1.0, 2.0,
                                                              4.0, 10.0};
  if (smoke) {
    profile.real_scale = std::min(profile.real_scale, 0.15);
    profile.epochs = std::min<int64_t>(profile.epochs, 3);
    profile.hidden = std::min<int64_t>(profile.hidden, 32);
  }
  std::printf("[Overload] %s clients=%lld serve_delay=%lldus deadline=%.1fms\n",
              profile.Describe().c_str(), static_cast<long long>(clients),
              static_cast<long long>(serve_delay_us), deadline_ms);

  auto ds = data::MakeRealWorldByName("Cora", profile.real_scale, 1);
  core::SesOptions opt;
  opt.backbone = "GCN";
  core::SesModel model(opt);
  model.Fit(ds, profile.MakeTrainConfig(1));
  core::InferenceSession session(&model, &ds);
  session.Logits();  // warm the memoized cache (degraded mode serves from it)
  const int64_t num_nodes = ds.graph.num_nodes();
  std::printf("model trained (%lld nodes)\n",
              static_cast<long long>(num_nodes));

  const robust::FaultPlan service_cost = robust::FaultPlan::Parse(
      "serve_delay:us=" + std::to_string(serve_delay_us));
  obs::Histogram& e2e_hist = obs::MetricsRegistry::Get().GetHistogram(
      "ses.sched.e2e_us", obs::Histogram::DefaultLatencyEdgesUs());

  // --- Capacity calibration -------------------------------------------------
  // Flood a plain scheduler (same synthetic service cost, no admission, no
  // deadlines) through the streaming submit path; backpressure closes the
  // loop, so the sustained rate IS the service capacity.
  double capacity_qps = 0.0;
  {
    serve::SchedulerOptions calib_opt;
    calib_opt.max_batch_size = 64;
    calib_opt.flush_deadline_us = 200;
    calib_opt.num_workers = 1;
    calib_opt.fault_plan = service_cost;
    serve::BatchScheduler scheduler(&session, calib_opt);
    constexpr int64_t kChunk = 16;
    constexpr int64_t kWindow = 512;
    std::vector<serve::PredictFuture> window(
        static_cast<size_t>(std::min(kWindow, calib_queries)));
    int64_t chunk_nodes[kChunk];
    serve::PredictFuture chunk_futs[kChunk];
    util::Rng rng(7);
    util::Timer timer;
    for (int64_t q = 0; q < calib_queries; q += kChunk) {
      const int64_t burst = std::min(kChunk, calib_queries - q);
      for (int64_t i = 0; i < burst; ++i)
        chunk_nodes[i] = static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(num_nodes)));
      const int64_t accepted =
          scheduler.SubmitPredictStream(chunk_nodes, burst, chunk_futs);
      SES_CHECK(accepted == burst);
      for (int64_t i = 0; i < burst; ++i) {
        const size_t slot = static_cast<size_t>(
            (q + i) % static_cast<int64_t>(window.size()));
        if (q + i >= static_cast<int64_t>(window.size())) window[slot].Get();
        window[slot] = std::move(chunk_futs[i]);
      }
    }
    for (auto& f : window)
      if (f.valid()) f.Get();
    capacity_qps = static_cast<double>(calib_queries) /
                   std::max(timer.ElapsedSeconds(), 1e-9);
    scheduler.Stop();
  }
  std::printf("calibrated capacity: %.0f qps (serve_delay %lld us/request)\n",
              capacity_qps, static_cast<long long>(serve_delay_us));

  // --- Overload sweep -------------------------------------------------------
  const double deadline_us = deadline_ms * 1e3;
  // Queue bound sized so an admitted request can still make its deadline:
  // anything deeper than ~70% of (capacity x deadline) is doomed on arrival.
  const int64_t max_queued = std::max<int64_t>(
      64, static_cast<int64_t>(capacity_qps * deadline_us * 1e-6 * 0.7));
  const double explain_fraction = 0.1;
  serve::RetryPolicy retry_policy;  // defaults: 4 attempts, jittered exp

  std::vector<SweepPoint> points;
  for (const double mult : multipliers) {
    auto admission = std::make_shared<serve::BurnRateAdmission>([&] {
      serve::BurnRateAdmission::Options a;
      a.shed_explain_burn_rate = 1.0;
      a.shed_all_burn_rate = 6.0;
      a.max_queued_requests = max_queued;
      a.base_retry_after_us = 200;
      return a;
    }());
    serve::SchedulerOptions sweep_opt;
    sweep_opt.max_batch_size = 64;
    sweep_opt.flush_deadline_us = 200;
    sweep_opt.num_workers = 1;
    sweep_opt.e2e_budget_us = deadline_us;
    sweep_opt.queue_wait_budget_us = deadline_us / 4.0;
    sweep_opt.default_deadline_us = deadline_us;
    sweep_opt.admission = admission;
    sweep_opt.degraded.enabled = true;
    sweep_opt.degraded.enter_burn_rate = 2.0;
    sweep_opt.degraded.exit_burn_rate = 0.5;
    sweep_opt.degraded.enter_consecutive = 3;
    sweep_opt.degraded.exit_consecutive = 8;
    sweep_opt.degraded.probe_every = 16;
    sweep_opt.fault_plan = service_cost;
    serve::BatchScheduler scheduler(&session, sweep_opt);

    const double offered_qps = capacity_qps * mult;
    const int64_t per_client = std::max<int64_t>(
        1, static_cast<int64_t>(offered_qps * point_seconds /
                                static_cast<double>(clients)));
    const double interval_ns =
        1e9 / (offered_qps / static_cast<double>(clients));
    const std::vector<int64_t> e2e_before = SnapshotBuckets(e2e_hist);

    std::mutex merge_mutex;
    Tally tally;
    util::Timer pace_timer;
    const auto pace_start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int64_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        util::Rng rng(static_cast<uint64_t>(9000 + c));
        Tally local;
        std::vector<serve::PredictFuture> predicts;
        std::vector<serve::ExplainFuture> explains;
        predicts.reserve(static_cast<size_t>(per_client));
        for (int64_t i = 0; i < per_client; ++i) {
          SleepUntil(pace_start + std::chrono::nanoseconds(static_cast<int64_t>(
                                      static_cast<double>(i) * interval_ns)));
          const int64_t node = static_cast<int64_t>(
              rng.UniformInt(static_cast<uint64_t>(num_nodes)));
          ++local.submitted;
          if (rng.Uniform() < explain_fraction) {
            explains.push_back(SubmitWithRetry(
                [&] { return scheduler.SubmitExplain(node, /*top_k=*/5); },
                retry_policy, &rng, &local));
          } else {
            predicts.push_back(SubmitWithRetry(
                [&] { return scheduler.SubmitPredict(node); }, retry_policy,
                &rng, &local));
          }
        }
        // Everything admitted drains at capacity within the queue bound;
        // 20 s of grace means a miss here is a lost future, not a slow one.
        const auto give_up = Clock::now() + std::chrono::seconds(20);
        ResolveAll(predicts, give_up, &local);
        ResolveAll(explains, give_up, &local);
        std::lock_guard<std::mutex> lock(merge_mutex);
        tally.Merge(local);
      });
    }
    for (auto& t : threads) t.join();
    const double pace_wall_s = pace_timer.ElapsedSeconds();

    SweepPoint point;
    point.offered_x = mult;
    point.offered_qps = offered_qps;
    point.pace_wall_s = pace_wall_s;
    point.goodput_qps =
        static_cast<double>(tally.ok) / std::max(pace_wall_s, 1e-9);
    point.p99_ms = DeltaQuantileUs(e2e_hist, e2e_before, 0.99) / 1e3;
    point.tally = tally;
    scheduler.Stop();
    point.sched = scheduler.stats();
    points.push_back(point);
    std::printf(
        "%5.1fx offered (%8.0f qps): goodput %8.0f qps | ok %lld shed %lld "
        "expired %lld internal %lld unresolved %lld | retries %lld | "
        "degraded served %lld (entries %lld) | p99 %.2f ms\n",
        mult, offered_qps, point.goodput_qps,
        static_cast<long long>(tally.ok), static_cast<long long>(tally.shed),
        static_cast<long long>(tally.expired),
        static_cast<long long>(tally.internal),
        static_cast<long long>(tally.unresolved),
        static_cast<long long>(tally.retries),
        static_cast<long long>(point.sched.degraded_served),
        static_cast<long long>(point.sched.degraded_entries), point.p99_ms);
  }

  // --- Report ---------------------------------------------------------------
  double goodput_1x = 0.0, goodput_max = 0.0, max_x = 0.0;
  int64_t total_unresolved = 0;
  for (const auto& p : points) {
    if (p.offered_x == 1.0) goodput_1x = p.goodput_qps;
    if (p.offered_x > max_x) {
      max_x = p.offered_x;
      goodput_max = p.goodput_qps;
    }
    total_unresolved += p.tally.unresolved;
  }
  const double retention =
      goodput_1x > 0.0 ? goodput_max / goodput_1x : 0.0;
  std::printf(
      "goodput retention at %.0fx offered: %.1f%% (%.0f / %.0f qps), "
      "%lld unresolved futures\n",
      max_x, retention * 100.0, goodput_max, goodput_1x,
      static_cast<long long>(total_unresolved));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"dataset\": \"Cora\",\n"
      << "  \"scale\": " << profile.real_scale << ",\n"
      << "  \"nodes\": " << num_nodes << ",\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"serve_delay_us\": " << serve_delay_us << ",\n"
      << "  \"deadline_ms\": " << deadline_ms << ",\n"
      << "  \"max_queued_requests\": " << max_queued << ",\n"
      << "  \"point_seconds\": " << point_seconds << ",\n"
      << "  \"capacity_qps\": " << capacity_qps << ",\n"
      << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\n"
        << "      \"offered_x\": " << p.offered_x << ",\n"
        << "      \"offered_qps\": " << p.offered_qps << ",\n"
        << "      \"pace_wall_s\": " << p.pace_wall_s << ",\n"
        << "      \"submitted\": " << p.tally.submitted << ",\n"
        << "      \"attempts\": " << p.tally.attempts << ",\n"
        << "      \"retries\": " << p.tally.retries << ",\n"
        << "      \"ok\": " << p.tally.ok << ",\n"
        << "      \"shed\": " << p.tally.shed << ",\n"
        << "      \"expired\": " << p.tally.expired << ",\n"
        << "      \"shutdown\": " << p.tally.shutdown << ",\n"
        << "      \"internal\": " << p.tally.internal << ",\n"
        << "      \"unresolved_futures\": " << p.tally.unresolved << ",\n"
        << "      \"goodput_qps\": " << p.goodput_qps << ",\n"
        << "      \"shed_rate\": "
        << (p.tally.submitted > 0
                ? static_cast<double>(p.tally.shed) /
                      static_cast<double>(p.tally.submitted)
                : 0.0)
        << ",\n"
        << "      \"p99_ms\": " << p.p99_ms << ",\n"
        << "      \"degraded_served\": " << p.sched.degraded_served << ",\n"
        << "      \"degraded_entries\": " << p.sched.degraded_entries << ",\n"
        << "      \"expired_queue\": " << p.sched.expired << ",\n"
        << "      \"expired_inflight\": " << p.sched.expired_inflight << ",\n"
        << "      \"batches\": " << p.sched.batches << "\n"
        << "    }" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"goodput_1x\": " << goodput_1x << ",\n"
      << "  \"goodput_" << static_cast<int64_t>(max_x)
      << "x\": " << goodput_max << ",\n"
      << "  \"max_offered_x\": " << max_x << ",\n"
      << "  \"goodput_retention_10x\": " << retention << ",\n"
      << "  \"unresolved_futures\": " << total_unresolved << "\n"
      << "}\n";
  std::printf("results written to %s\n", out_path.c_str());
  return 0;
}
