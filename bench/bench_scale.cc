// Million-node data-plane benchmark (DESIGN.md §16).
//
// Sweeps the synthetic scale generator across node counts, partitions each
// graph, stands up a per-shard ShardedSession next to a whole-graph
// InferenceSession, and records for every point:
//
//   - generation / partition / shard-build wall time,
//   - partition quality (edge-cut fraction, balance, halo fraction),
//   - full-epoch training time of a GCN backbone (per-epoch mean),
//   - cold and warm predict latency for both the single and the sharded
//     session (warm p50/p99 over a randomized query stream),
//   - parity_ok: whether sharded logits are bitwise-identical to the
//     whole-graph session's on a node sample — the §16 parity contract.
//
// Results go to --out (default BENCH_scale.json) and are gated by
// scripts/bench_check.sh (structural checks always; the committed baseline
// must carry a >= 1M-node point). Modes:
//
//   --nodes=10000,100000,1000000   base-node counts to sweep
//   --shards=8 --seed=42 --hidden=32 --epochs=2 --warm-queries=2000
//   --smoke    one small point, tiny budgets (sanitizer CI; perf not gated)
//   --digest   determinism mode: generate each point twice, compare
//              DatasetDigest, print both digests, exit non-zero on mismatch.
//              No training, no sessions — this is the CI double-run.
//
// The 10M-node local run is `--nodes=10000000 --epochs=1` (a few GB of CSR;
// not exercised in CI).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/inference_session.h"
#include "core/sharded_session.h"
#include "data/scale.h"
#include "graph/partition.h"
#include "models/backbone_models.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace ses;

namespace {

struct ScalePoint {
  int64_t base_nodes = 0;
  int64_t nodes = 0;  ///< total, including appended motif nodes
  int64_t edges = 0;
  uint64_t digest = 0;
  double gen_ms = 0;
  double partition_ms = 0;
  double edge_cut_fraction = 0;
  double balance = 0;
  double halo_fraction = 0;
  double shard_build_ms = 0;
  double train_epoch_ms = 0;
  double single_cold_predict_ms = 0;
  double sharded_cold_predict_ms = 0;
  double single_warm_p50_us = 0;
  double single_warm_p99_us = 0;
  double warm_predict_p50_us = 0;  ///< sharded — the headline serving number
  double warm_predict_p99_us = 0;
  int64_t parity_sample = 0;
  bool parity_ok = false;
};

double QuantileUs(std::vector<double> us, double q) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  const auto rank = static_cast<size_t>(q * static_cast<double>(us.size() - 1));
  return us[rank];
}

std::vector<int64_t> ParseNodeList(const std::string& csv) {
  std::vector<int64_t> out;
  for (const std::string& piece : util::Split(csv, ','))
    if (!piece.empty()) out.push_back(std::stoll(piece));
  return out;
}

/// Uniformly random query nodes (with repeats — a serving stream, not a
/// permutation).
std::vector<int64_t> QueryStream(int64_t n, int64_t count, util::Rng* rng) {
  std::vector<int64_t> nodes(static_cast<size_t>(count));
  for (auto& v : nodes)
    v = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::ObsSession obs_session(flags);
  const bool smoke = flags.GetBool("smoke", false);
  const bool digest_only = flags.GetBool("digest", false);
  const std::string out_path = flags.GetString("out", "BENCH_scale.json");
  const int64_t shards = flags.GetInt("shards", 8);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int64_t hidden = flags.GetInt("hidden", smoke ? 16 : 32);
  const int64_t epochs = flags.GetInt("epochs", smoke ? 1 : 2);
  const int64_t warm_queries =
      flags.GetInt("warm-queries", smoke ? 200 : 2000);
  const std::vector<int64_t> node_counts = ParseNodeList(flags.GetString(
      "nodes", smoke ? "10000" : "10000,100000,1000000"));
  SES_CHECK(!node_counts.empty());

  if (digest_only) {
    // CI determinism double-run: two independent generations per point must
    // agree on the full-dataset fingerprint.
    bool ok = true;
    for (int64_t n : node_counts) {
      data::ScaleGraphOptions opt;
      opt.num_nodes = n;
      opt.seed = seed;
      const uint64_t a = data::DatasetDigest(data::MakeScaleGraph(opt));
      const uint64_t b = data::DatasetDigest(data::MakeScaleGraph(opt));
      std::printf("digest nodes=%lld run1=0x%016" PRIx64
                  " run2=0x%016" PRIx64 " %s\n",
                  static_cast<long long>(n), a, b,
                  a == b ? "MATCH" : "MISMATCH");
      ok = ok && a == b;
    }
    return ok ? 0 : 1;
  }

  std::vector<ScalePoint> points;
  for (int64_t n : node_counts) {
    ScalePoint pt;
    pt.base_nodes = n;

    data::ScaleGraphOptions gen_opt;
    gen_opt.num_nodes = n;
    gen_opt.seed = seed;
    util::Timer gen_timer;
    const data::Dataset ds = data::MakeScaleGraph(gen_opt);
    pt.gen_ms = gen_timer.ElapsedSeconds() * 1e3;
    pt.nodes = ds.num_nodes();
    pt.edges = ds.graph.num_edges();
    pt.digest = data::DatasetDigest(ds);

    graph::PartitionOptions part_opt;
    part_opt.num_shards = shards;
    util::Timer part_timer;
    const graph::Partition part = graph::Partitioner(part_opt).Run(ds.graph);
    pt.partition_ms = part_timer.ElapsedSeconds() * 1e3;
    pt.edge_cut_fraction = part.edge_cut_fraction();
    pt.balance = part.balance();
    pt.halo_fraction = part.halo_fraction();
    part.ExportMetrics();

    // Full-epoch training time: fit the GCN backbone and average over
    // epochs. track_best_val off — a best-epoch parameter copy per epoch
    // would time the snapshotting, not the training.
    models::BackboneModel model("GCN");
    models::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.hidden = hidden;
    cfg.seed = seed;
    cfg.dropout = 0.0f;
    cfg.track_best_val = false;
    util::Timer train_timer;
    model.Fit(ds, cfg);
    pt.train_epoch_ms =
        train_timer.ElapsedSeconds() * 1e3 / static_cast<double>(epochs);

    // Whole-graph session: cold predict = artifact build + first forward.
    core::InferenceSession single(model.encoder(), &ds);
    util::Timer single_cold;
    single.PredictNode(0);
    pt.single_cold_predict_ms = single_cold.ElapsedSeconds() * 1e3;

    // Sharded session. Cold predict pays one shard's artifact build.
    core::ShardedSessionOptions shard_opt;
    shard_opt.partition.num_shards = shards;
    util::Timer build_timer;
    core::ShardedSession sharded(model.encoder(), &ds, shard_opt);
    pt.shard_build_ms = build_timer.ElapsedSeconds() * 1e3;
    util::Timer sharded_cold;
    sharded.PredictNode(0);
    pt.sharded_cold_predict_ms = sharded_cold.ElapsedSeconds() * 1e3;

    // Warm both paths on every shard, then time the randomized query
    // streams request-by-request.
    util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    const std::vector<int64_t> stream =
        QueryStream(ds.num_nodes(), warm_queries, &rng);
    single.PredictMany(stream);
    sharded.PredictMany(stream);
    std::vector<double> single_us, sharded_us;
    single_us.reserve(stream.size());
    sharded_us.reserve(stream.size());
    for (int64_t node : stream) {
      util::Timer t;
      single.PredictNode(node);
      single_us.push_back(t.ElapsedSeconds() * 1e6);
    }
    for (int64_t node : stream) {
      util::Timer t;
      sharded.PredictNode(node);
      sharded_us.push_back(t.ElapsedSeconds() * 1e6);
    }
    pt.single_warm_p50_us = QuantileUs(single_us, 0.50);
    pt.single_warm_p99_us = QuantileUs(single_us, 0.99);
    pt.warm_predict_p50_us = QuantileUs(sharded_us, 0.50);
    pt.warm_predict_p99_us = QuantileUs(sharded_us, 0.99);

    // Parity: exact logit rows on a sample (bitwise, not approximate).
    const int64_t sample_n = std::min<int64_t>(ds.num_nodes(), 2048);
    const std::vector<int64_t> sample =
        QueryStream(ds.num_nodes(), sample_n, &rng);
    const tensor::Tensor a = single.GatherLogits(sample);
    const tensor::Tensor b = sharded.GatherLogits(sample);
    pt.parity_sample = sample_n;
    pt.parity_ok =
        a.rows() == b.rows() && a.cols() == b.cols() &&
        std::memcmp(a.data(), b.data(),
                    static_cast<size_t>(a.rows() * a.cols()) *
                        sizeof(float)) == 0;

    points.push_back(pt);
    std::printf(
        "nodes %9lld (edges %10lld): gen %8.1f ms | partition %7.1f ms "
        "(cut %.3f, balance %.3f, halo %.3f) | train %8.1f ms/epoch | "
        "warm p99 single %.1f us sharded %.1f us | parity %s\n",
        static_cast<long long>(pt.nodes), static_cast<long long>(pt.edges),
        pt.gen_ms, pt.partition_ms, pt.edge_cut_fraction, pt.balance,
        pt.halo_fraction, pt.train_epoch_ms, pt.single_warm_p99_us,
        pt.warm_predict_p99_us, pt.parity_ok ? "OK" : "BROKEN");
  }

  int64_t max_nodes = 0;
  bool all_parity = true;
  for (const auto& p : points) {
    max_nodes = std::max(max_nodes, p.nodes);
    all_parity = all_parity && p.parity_ok;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"scale\",\n"
      << "  \"profile\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"backbone\": \"GCN\",\n"
      << "  \"hidden\": " << hidden << ",\n"
      << "  \"train_epochs\": " << epochs << ",\n"
      << "  \"warm_queries\": " << warm_queries << ",\n"
      << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "0x%016" PRIx64, p.digest);
    out << "    {\n"
        << "      \"base_nodes\": " << p.base_nodes << ",\n"
        << "      \"nodes\": " << p.nodes << ",\n"
        << "      \"edges\": " << p.edges << ",\n"
        << "      \"digest\": \"" << digest_hex << "\",\n"
        << "      \"gen_ms\": " << p.gen_ms << ",\n"
        << "      \"partition_ms\": " << p.partition_ms << ",\n"
        << "      \"edge_cut_fraction\": " << p.edge_cut_fraction << ",\n"
        << "      \"balance\": " << p.balance << ",\n"
        << "      \"halo_fraction\": " << p.halo_fraction << ",\n"
        << "      \"shard_build_ms\": " << p.shard_build_ms << ",\n"
        << "      \"train_epoch_ms\": " << p.train_epoch_ms << ",\n"
        << "      \"single_cold_predict_ms\": " << p.single_cold_predict_ms
        << ",\n"
        << "      \"sharded_cold_predict_ms\": " << p.sharded_cold_predict_ms
        << ",\n"
        << "      \"single_warm_p50_us\": " << p.single_warm_p50_us << ",\n"
        << "      \"single_warm_p99_us\": " << p.single_warm_p99_us << ",\n"
        << "      \"warm_predict_p50_us\": " << p.warm_predict_p50_us << ",\n"
        << "      \"warm_predict_p99_us\": " << p.warm_predict_p99_us << ",\n"
        << "      \"parity_sample\": " << p.parity_sample << ",\n"
        << "      \"parity_ok\": " << (p.parity_ok ? "true" : "false") << "\n"
        << "    }" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"max_nodes\": " << max_nodes << ",\n"
      << "  \"all_parity_ok\": " << (all_parity ? "true" : "false") << "\n"
      << "}\n";
  std::printf("results written to %s\n", out_path.c_str());
  return all_parity ? 0 : 1;
}
