// Reproduces Figure 4: parameter sensitivity of SES — accuracy as a
// function of learning rate, k (hop radius), alpha, and beta, for GCN and
// GAT backbones on Cora / CiteSeer / PolBlogs. Emits one CSV series per
// (backbone, parameter) pair.
#include <cstdio>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "util/table.h"

using namespace ses;

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Fig 4] %s\n", profile.Describe().c_str());

  const char* datasets[] = {"Cora", "CiteSeer", "PolBlogs"};
  const std::vector<float> lrs = profile.full
                                     ? std::vector<float>{0.001f, 0.003f,
                                                          0.01f, 0.03f}
                                     : std::vector<float>{0.001f, 0.003f, 0.01f};
  const std::vector<int64_t> ks = {1, 2, 3};
  const std::vector<float> weights = profile.full
                                         ? std::vector<float>{0.1f, 0.3f, 0.5f,
                                                              0.7f, 0.9f}
                                         : std::vector<float>{0.1f, 0.5f, 0.9f};
  const std::vector<std::string> backbones =
      profile.full ? std::vector<std::string>{"GCN", "GAT"}
                   : std::vector<std::string>{"GCN"};

  auto run = [&](const std::string& backbone, const char* dataset,
                 float lr, int64_t k, float alpha, float beta) {
    auto ds = data::MakeRealWorldByName(dataset, profile.real_scale, 1);
    core::SesOptions opt;
    opt.backbone = backbone;
    opt.k = k;
    opt.alpha = alpha;
    opt.beta = beta;
    core::SesModel ses(opt);
    auto cfg = profile.MakeTrainConfig(1);
    cfg.lr = lr;
    ses.Fit(ds, cfg);
    return 100.0 * models::Accuracy(ses.Logits(ds), ds.labels, ds.test_idx);
  };

  util::Table table("Figure 4: parameter sensitivity of SES (accuracy %)");
  table.SetHeader({"Backbone", "Dataset", "Parameter", "Value", "Accuracy"});
  for (const auto& backbone : backbones) {
    for (const char* dataset : datasets) {
      for (float lr : lrs)
        table.AddRow({backbone, dataset, "lr", util::Table::Num(lr, 3),
                      util::Table::Num(run(backbone, dataset, lr, 2, 0.5f,
                                           0.5f), 2)});
      for (int64_t k : ks)
        table.AddRow({backbone, dataset, "k", std::to_string(k),
                      util::Table::Num(run(backbone, dataset, 0.003f, k, 0.5f,
                                           0.5f), 2)});
      for (float a : weights)
        table.AddRow({backbone, dataset, "alpha", util::Table::Num(a, 1),
                      util::Table::Num(run(backbone, dataset, 0.003f, 2, a,
                                           0.5f), 2)});
      for (float b : weights)
        table.AddRow({backbone, dataset, "beta", util::Table::Num(b, 1),
                      util::Table::Num(run(backbone, dataset, 0.003f, 2, 0.5f,
                                           b), 2)});
      std::fprintf(stderr, "  %s %s done\n", backbone.c_str(), dataset);
    }
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/fig4_sensitivity.csv");
  return 0;
}
