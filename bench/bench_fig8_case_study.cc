// Reproduces Figure 8: case studies of subgraph explanations on the
// real-world datasets. For one central node per dataset, the 2-hop
// neighbors are ranked by SES's structure mask and by the edge masks of
// GNNExplainer, PGExplainer and PGMExplainer; the rankings (with each
// neighbor's label vs the center's label) are printed and the SES view is
// exported as SVG.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "explain/gnn_explainer.h"
#include "explain/pg_explainer.h"
#include "explain/pgm_explainer.h"
#include "util/table.h"
#include "viz/graph_export.h"

using namespace ses;

namespace {

/// Ranks the center's direct neighbors by a global per-undirected-edge
/// score vector and renders "id(label)" entries, center first.
std::string RankNeighbors(const data::Dataset& ds, int64_t center,
                          const std::vector<float>& scores) {
  const auto& und = ds.graph.edges();
  std::vector<std::pair<float, int64_t>> ranked;
  for (int64_t nbr : ds.graph.Neighbors(center)) {
    auto key = std::make_pair(std::min(center, nbr), std::max(center, nbr));
    auto it = std::lower_bound(und.begin(), und.end(), key);
    if (it == und.end() || *it != key) continue;
    ranked.emplace_back(scores[static_cast<size_t>(it - und.begin())], nbr);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::string out;
  for (size_t i = 0; i < ranked.size() && i < 8; ++i) {
    if (i) out += " > ";
    out += std::to_string(ranked[i].second) + "(" +
           std::to_string(ds.labels[static_cast<size_t>(ranked[i].second)]) +
           ")";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Fig 8] %s\n", profile.Describe().c_str());

  const char* datasets[] = {"Cora", "CiteSeer", "PolBlogs", "CS"};
  // The paper picks nodes 78 / 50 / 539 / 212; with the stand-in graphs any
  // well-connected node plays the same role, so we take the paper's ids
  // modulo the scaled graph size, nudged to a node with >= 4 neighbors.
  const int64_t paper_ids[] = {78, 50, 539, 212};

  util::Table table("Figure 8: neighbor rankings (id(label), best first)");
  table.SetHeader({"Dataset", "Center(label)", "Method", "Ranked neighbors"});
  for (int d = 0; d < 4; ++d) {
    auto ds = data::MakeRealWorldByName(datasets[d], profile.real_scale, 1);
    int64_t center = paper_ids[d] % ds.num_nodes();
    while (ds.graph.Degree(center) < 4) center = (center + 1) % ds.num_nodes();
    const std::string center_str =
        std::to_string(center) + "(" +
        std::to_string(ds.labels[static_cast<size_t>(center)]) + ")";
    std::vector<int64_t> nodes{center};

    auto cfg = profile.MakeTrainConfig(1);
    models::BackboneModel gcn("GCN");
    gcn.Fit(ds, cfg);

    {
      explain::GnnExplainer::Options opt;
      opt.epochs = 60;
      explain::GnnExplainer gex(gcn.encoder(), opt);
      table.AddRow({datasets[d], center_str, "GEX",
                    RankNeighbors(ds, center, gex.ExplainEdges(ds, nodes))});
    }
    {
      explain::PgExplainer pge(gcn.encoder());
      table.AddRow({datasets[d], center_str, "PGE",
                    RankNeighbors(ds, center, pge.ExplainEdges(ds))});
    }
    {
      explain::PgmExplainer pgm(gcn.encoder());
      table.AddRow({datasets[d], center_str, "PGM",
                    RankNeighbors(ds, center, pgm.ExplainEdges(ds, nodes))});
    }
    {
      core::SesOptions opt;
      opt.backbone = "GCN";
      core::SesModel ses(opt);
      ses.Fit(ds, cfg);
      auto scores = ses.EdgeScores(ds);
      table.AddRow({datasets[d], center_str, "SES",
                    RankNeighbors(ds, center, scores)});
      // SVG of the SES-weighted 2-hop subgraph.
      graph::Subgraph sub = graph::ExtractEgoNet(ds.graph, center, 2);
      const auto& und = ds.graph.edges();
      std::vector<float> local;
      for (auto [la, lb] : sub.graph.edges()) {
        const int64_t ga = sub.nodes[static_cast<size_t>(la)];
        const int64_t gb = sub.nodes[static_cast<size_t>(lb)];
        auto key = std::make_pair(std::min(ga, gb), std::max(ga, gb));
        auto it = std::lower_bound(und.begin(), und.end(), key);
        local.push_back(it != und.end() && *it == key
                            ? scores[static_cast<size_t>(it - und.begin())]
                            : 0.0f);
      }
      util::WriteFile(
          bench::ArtifactDir() + "/fig8_" + std::string(datasets[d]) +
              "_SES.svg",
          viz::SubgraphToSvg(sub, ds.labels, local, sub.center_local));
    }
    std::fprintf(stderr, "  %s done\n", datasets[d]);
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/fig8_case_study.csv");
  return 0;
}
