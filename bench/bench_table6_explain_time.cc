// Reproduces Table 6: wall-clock time to produce explanations for all nodes
// of Cora — GNNExplainer, GraphLIME, PGExplainer, SEGNN and SES (et).
// Per the paper's protocol, the per-node methods' time includes their
// per-node (re)optimization; SES and SEGNN include their training because
// the same process yields the explanations.
//
// Under the fast profile the per-node explainers run on a capped node set
// and the measured time is linearly extrapolated to all nodes (their cost is
// per-node by construction); the extrapolation is labeled in the output.
#include <cstdio>

#include "bench_common.h"
#include "explain/gnn_explainer.h"
#include "explain/graphlime.h"
#include "explain/pg_explainer.h"
#include "metrics/metrics.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ses;

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  bench::ObsSession obs_session(flags);
  std::printf("[Table 6] %s\n", profile.Describe().c_str());

  auto ds = data::MakeRealWorldByName("Cora", profile.real_scale, 1);
  auto cfg = profile.MakeTrainConfig(1);
  std::vector<int64_t> capped =
      explain::NodesToExplain(ds, profile.explain_nodes_cap);
  const double extrapolate =
      capped.empty() ? 1.0
                     : static_cast<double>(ds.num_nodes()) /
                           static_cast<double>(capped.size());

  models::BackboneModel gcn("GCN");
  gcn.Fit(ds, cfg);

  util::Table table(
      "Table 6: Inference time of generating explanations for all nodes (Cora)");
  table.SetHeader({"Method", "Ours", "Paper"});
  util::Timer timer;

  {
    explain::GnnExplainer::Options opt;
    opt.epochs = profile.full ? 100 : 50;
    explain::GnnExplainer gex(gcn.encoder(), opt);
    timer.Reset();
    gex.ExplainEdges(ds, capped);
    const double t = timer.ElapsedSeconds() * extrapolate;
    table.AddRow({"GNNExplainer", util::FormatDuration(t), "9 min 50s"});
  }
  {
    explain::GraphLimeExplainer lime(gcn.encoder());
    timer.Reset();
    lime.ExplainFeaturesNnz(ds, capped);
    const double t = timer.ElapsedSeconds() * extrapolate;
    table.AddRow({"GraphLIME", util::FormatDuration(t), "4 min 24s"});
  }
  {
    explain::PgExplainer pge(gcn.encoder());
    timer.Reset();
    pge.ExplainEdges(ds);  // global: no extrapolation needed
    table.AddRow({"PGExplainer", util::FormatDuration(timer.ElapsedSeconds()),
                  "1 min 13s"});
  }
  {
    models::SegnnModel segnn;
    timer.Reset();
    segnn.Fit(ds, cfg);
    segnn.Logits(ds);  // the kNN search is where SEGNN pays
    table.AddRow({"SEGNN", util::FormatDuration(timer.ElapsedSeconds()),
                  "1 min 32s"});
  }
  {
    core::SesOptions opt;
    opt.backbone = "GCN";
    core::SesModel ses(opt);
    ses.Fit(ds, cfg);
    // SES (et): the explainable-training pass that already yields masks for
    // every node, plus the mask readout.
    table.AddRow({"SES (et)",
                  util::FormatDuration(ses.explainable_training_seconds() +
                                       ses.explanation_inference_seconds()),
                  "4.3s"});
  }
  if (!profile.full)
    std::printf(
        "(per-node methods measured on %zu nodes and extrapolated x%.1f)\n",
        capped.size(), extrapolate);
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/table6_explain_time.csv");
  return 0;
}
