// Kernel observatory benchmark: per-kernel GFLOP/s, arithmetic intensity,
// IPC / LLC behaviour (when hardware counters are available) and roofline
// placement for every hot kernel family.
//
// The benchmark first calibrates the machine's roofline (peak dense FLOP/s
// from an L1-resident FMA chain, peak DRAM bandwidth from a streaming
// triad), then drives each annotated kernel through a sized workload with
// kernel profiling enabled. The per-(kernel, variant) aggregates collected
// by KernelScope — the same ses.kernel.* data a live /metrics scrape shows —
// are written as JSON to --out (default BENCH_kernels.json).
//
// scripts/bench_check.sh gates per-kernel GFLOP/s regressions (>20% drop)
// against the committed baseline whenever both JSONs carry the "kernels"
// block; scripts/ci.sh runs the --smoke variant in the `kernels` stage and
// re-runs it under SES_PERF_DISABLE=1 to exercise the clock-only fallback.
//
// Flags: --out=PATH, --reps=N (per-kernel repetitions), --smoke (tiny
// shapes + short calibration for CI), plus the usual ObsSession flags
// (--trace-out, --flame-out, --metrics-port, ...).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autograd/sparse_ops.h"
#include "autograd/variable.h"
#include "bench_common.h"
#include "kernels/dispatch.h"
#include "kernels/spmm.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "util/rng.h"

using namespace ses;
namespace ag = ses::autograd;
namespace t = ses::tensor;

namespace {

t::Tensor RandomTensor(int64_t rows, int64_t cols, util::Rng* rng) {
  t::Tensor x(rows, cols);
  for (int64_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng->Uniform()) - 0.5f;
  return x;
}

/// Random CSR matrix with ~`per_row` nonzeros per row.
t::SparseMatrix RandomSparse(int64_t rows, int64_t cols, int64_t per_row,
                             util::Rng* rng) {
  t::SparseMatrix sm;
  sm.rows = rows;
  sm.cols = cols;
  sm.row_ptr.assign(static_cast<size_t>(rows) + 1, 0);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t k = 0; k < per_row; ++k) {
      sm.col_idx.push_back(
          static_cast<int64_t>(rng->Uniform() * static_cast<double>(cols)) %
          cols);
      sm.values.push_back(static_cast<float>(rng->Uniform()) + 0.1f);
    }
    sm.row_ptr[static_cast<size_t>(r) + 1] = sm.nnz();
  }
  return sm;
}

/// Random edge list: `per_node` incoming edges per destination node.
ag::EdgeListPtr RandomEdges(int64_t num_nodes, int64_t per_node,
                            util::Rng* rng) {
  auto edges = std::make_shared<ag::EdgeList>();
  edges->num_nodes = num_nodes;
  for (int64_t d = 0; d < num_nodes; ++d) {
    for (int64_t k = 0; k < per_node; ++k) {
      edges->src.push_back(
          static_cast<int64_t>(rng->Uniform() * static_cast<double>(num_nodes)) %
          num_nodes);
      edges->dst.push_back(d);
    }
  }
  return edges;
}

/// Best GFLOP/s among spmm entries whose variant passes `pred`.
template <typename Pred>
double BestSpmmGflops(const std::vector<obs::KernelStats>& stats, Pred pred) {
  double best = 0.0;
  for (const obs::KernelStats& s : stats)
    if (s.kernel == "spmm" && pred(s.variant)) best = std::max(best, s.Gflops());
  return best;
}

/// SIMD-vs-scalar SpMM speedup from the per-variant sweep: best SIMD-tier
/// GFLOP/s over best scalar-tier GFLOP/s (0 when either side is missing).
double SpmmSimdSpeedup(const std::vector<obs::KernelStats>& stats) {
  const double scalar = BestSpmmGflops(stats, [](const std::string& v) {
    return v.size() > 7 && v.rfind("_scalar") == v.size() - 7;
  });
  const double simd = BestSpmmGflops(stats, [](const std::string& v) {
    return v.find("_avx") != std::string::npos;
  });
  return scalar > 0.0 && simd > 0.0 ? simd / scalar : 0.0;
}

void WriteJson(const std::string& path, const std::vector<obs::KernelStats>& stats,
               const obs::RooflineModel& roof) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  const bool perf = obs::PerfCountersAvailable();
  // schema_version 2: variant labels carry the dispatched SIMD tier
  // ("csr_avx2", "dense_scalar", ...), spmm has one entry per swept
  // (algo, tier) variant, and the file records the active tier plus the
  // measured SIMD speedup. bench_check.sh compares like variant to like
  // variant and falls back to best-of when the baseline predates variants.
  out << "{\n  \"schema_version\": 2,\n";
  out << "  \"active_tier\": \"" << kernels::TierName(kernels::ActiveTier())
      << "\",\n";
  out << "  \"spmm_simd_speedup\": " << SpmmSimdSpeedup(stats) << ",\n";
  out << "  \"perf_available\": " << (perf ? "true" : "false") << ",\n";
  out << "  \"perf_unavailable_reason\": \"" << obs::PerfUnavailableReason()
      << "\",\n";
  out << "  \"roofline\": {\"peak_gflops\": " << roof.peak_gflops
      << ", \"peak_bw_gbs\": " << roof.peak_bw_gbs
      << ", \"ridge_intensity\": " << roof.RidgeIntensity() << "},\n";
  out << "  \"kernels\": {";
  bool first = true;
  for (const obs::KernelStats& s : stats) {
    if (!first) out << ",";
    first = false;
    const obs::RooflinePoint p =
        obs::PlaceOnRoofline(s.flops, s.bytes, s.inclusive_ns / 1e9, roof);
    out << "\n    \"" << s.kernel << "|" << s.variant << "\": {"
        << "\"kernel\": \"" << s.kernel << "\", \"variant\": \"" << s.variant
        << "\", \"calls\": " << s.calls
        << ", \"time_ms\": " << s.inclusive_ns / 1e6
        << ", \"gflops\": " << s.Gflops() << ", \"gbps\": " << s.GBps()
        << ", \"intensity\": " << s.Intensity()
        << ", \"counters_valid\": " << (s.counters.valid ? "true" : "false")
        << ", \"ipc\": " << s.counters.Ipc()
        << ", \"llc_miss_rate\": " << s.counters.LlcMissRate()
        << ", \"roofline_efficiency\": " << p.efficiency << ", \"bound\": \""
        << (p.bound == nullptr ? "" : p.bound) << "\"}";
  }
  out << "\n  }\n}\n";
  std::printf("kernel benchmark written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::ObsSession obs_session(flags);
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t reps = flags.GetInt("reps", smoke ? 2 : 12);
  const std::string out_path =
      flags.GetString("out", "BENCH_kernels.json");

  const obs::RooflineModel roof =
      obs::CalibrateRoofline(smoke ? 0.02 : 0.15);
  obs::EnableKernelProfiling(true);

  // Workload shapes. The fast profile fits the 1-2 core CI box; --smoke
  // shrinks further so the ASan/fallback runs finish in seconds.
  const int64_t mm = smoke ? 96 : 320;          // dense matmul side
  const int64_t sp_rows = smoke ? 1024 : 8192;  // sparse rows/cols
  const int64_t sp_per_row = 10;                // avg degree (Cora-like)
  const int64_t feat = smoke ? 32 : 64;         // feature width
  const int64_t ew = smoke ? 1 << 16 : 1 << 21; // element-wise length

  util::Rng rng(42);
  const t::Tensor a = RandomTensor(mm, mm, &rng);
  const t::Tensor b = RandomTensor(mm, mm, &rng);
  const t::SparseMatrix sm = RandomSparse(sp_rows, sp_rows, sp_per_row, &rng);
  const t::Tensor dense = RandomTensor(sp_rows, feat, &rng);
  const ag::EdgeListPtr edges = RandomEdges(sp_rows, sp_per_row, &rng);
  const ag::Variable edge_w = ag::Variable::Constant(
      RandomTensor(edges->size(), 1, &rng));
  const ag::Variable xvar = ag::Variable::Constant(dense);
  const t::Tensor ew_a = RandomTensor(ew, 1, &rng);
  const t::Tensor ew_b = RandomTensor(ew, 1, &rng);
  std::vector<int64_t> gather_idx(static_cast<size_t>(sp_rows));
  for (size_t i = 0; i < gather_idx.size(); ++i)
    gather_idx[i] = static_cast<int64_t>(
        rng.Uniform() * static_cast<double>(sp_rows)) % sp_rows;

  // One untimed warmup pass (page faults, lazy perf-group open), then drop
  // the aggregates so the report covers steady-state calls only.
  (void)t::MatMul(a, b);
  (void)sm.MatMul(dense);
  obs::ResetKernelStats();

  const ag::InferenceGuard no_grad;  // tape-free: measure the kernels only
  for (int64_t r = 0; r < reps; ++r) {
    (void)t::MatMul(a, b);                   // matmul|dense_<tier>
    (void)t::MatMulTransposedB(a, b);        // matmul|bt
    (void)t::MatMulTransposedA(a, b);        // matmul|at
    (void)sm.MatMul(dense);                  // spmm|csr_<tier>
    (void)ag::SpMM(edges, edge_w, xvar);     // spmm|<plan-selected variant>
    (void)t::Add(ew_a, ew_b);                // elementwise|binary_<tier>
    (void)t::Relu(ew_a);                     // elementwise|unary_<tier>
    (void)t::GatherRows(dense, gather_idx);  // row_gather|copy
    t::Tensor scatter_out(sp_rows, feat);    // scatter_add|rows_<tier>
    t::ScatterAddRows(dense, gather_idx, &scatter_out);
  }

  // Per-variant SpMM sweep: every (algo, tier) pair the dispatch layer can
  // select, like-for-like over the same graph and operands. This is what
  // feeds the schema-2 per-variant entries, the spmm_simd_speedup field,
  // and bench_check.sh's like-variant-to-like-variant gating. Unsupported
  // tiers are logged, not silently skipped.
  {
    const auto plan = edges->plan();
    const int64_t e_count = edges->size();
    const double sweep_flops = 2.0 * static_cast<double>(e_count) * feat;
    const double sweep_bytes =
        static_cast<double>(e_count) * (20.0 + 12.0 * feat);
    for (int tier_i = 0; tier_i < kernels::kNumSimdTiers; ++tier_i) {
      const auto tier = static_cast<kernels::SimdTier>(tier_i);
      if (!kernels::TierSupported(tier)) {
        std::printf("spmm sweep: tier %s unsupported on this host, skipped\n",
                    kernels::TierName(tier));
        continue;
      }
      for (int algo_i = 0; algo_i < kernels::kNumSpmmAlgos; ++algo_i) {
        const kernels::SpmmChoice choice{
            static_cast<kernels::SpmmAlgo>(algo_i), tier};
        for (int64_t r = 0; r < reps; ++r) {
          t::Tensor out_t = t::Tensor::Zeros(sp_rows, feat);
          obs::KernelScope kscope("spmm", kernels::SpmmVariantName(choice),
                                  sweep_flops, sweep_bytes);
          plan->Run(choice, edge_w.value().data(), dense.data(), feat,
                    out_t.data(), /*bias=*/nullptr, /*relu=*/false);
        }
      }
    }
  }

  const std::vector<obs::KernelStats> stats = obs::SnapshotKernelStats();
  // Perf status once in the header; the rows drop the IPC column when the
  // counters are unavailable instead of printing a 0.00 per line.
  const bool perf_ok = obs::PerfCountersAvailable();
  std::printf("active tier: %s; perf counters: %s%s\n",
              kernels::TierName(kernels::ActiveTier()),
              perf_ok ? "available" : "unavailable",
              perf_ok ? "" : (" (" + obs::PerfUnavailableReason() + ")").c_str());
  std::printf("%-24s %10s %12s %10s %8s %10s\n", "kernel", "calls",
              "time_ms", "GFLOP/s", "IPC", "intensity");
  for (const obs::KernelStats& s : stats) {
    char ipc[16];
    if (perf_ok)
      std::snprintf(ipc, sizeof(ipc), "%8.2f", s.counters.Ipc());
    else
      std::snprintf(ipc, sizeof(ipc), "%8s", "-");
    std::printf("%-24s %10llu %12.3f %10.3f %s %10.3f\n",
                (s.kernel + "|" + s.variant).c_str(),
                static_cast<unsigned long long>(s.calls),
                s.inclusive_ns / 1e6, s.Gflops(), ipc, s.Intensity());
  }
  std::printf("spmm simd speedup: %.2fx\n", SpmmSimdSpeedup(stats));

  WriteJson(out_path, stats, roof);
  return 0;
}
