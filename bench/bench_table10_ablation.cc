// Reproduces Table 10: ablation studies of SES on the real-world datasets —
// -{M_f}, -{M̂_s}, -{L_xent}, -{Triplet}, the GNNExplainer/PGExplainer
// +{epl} hybrids, and full SES, for both backbones.
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "explain/gnn_explainer.h"
#include "explain/pg_explainer.h"
#include "graph/sampling.h"
#include "metrics/metrics.h"
#include "util/table.h"

using namespace ses;

namespace {

/// Runs the +{epl} hybrid: train a plain backbone, produce masks with a
/// post-hoc explainer, then run SES's enhanced predictive learning on them.
double RunPostHocEpl(const data::Dataset& ds, const std::string& backbone,
                     const std::string& which,
                     const models::TrainConfig& cfg,
                     const bench::Profile& profile) {
  models::BackboneModel base(backbone);
  base.Fit(ds, cfg);
  core::SesOptions opt;
  opt.backbone = backbone;

  // Build FrozenMasks from the explainer's edge scores (structure) — these
  // explainers do not emit per-nonzero feature masks usable here, matching
  // the paper's setup where only the masks they can provide are injected.
  std::vector<float> edge_scores;
  std::vector<float> feat_scores;
  if (which == "GEX") {
    explain::GnnExplainer::Options gopt;
    gopt.epochs = profile.full ? 100 : 40;
    explain::GnnExplainer gex(base.encoder(), gopt);
    auto nodes = explain::NodesToExplain(ds, profile.explain_nodes_cap);
    edge_scores = gex.ExplainEdges(ds, nodes);
    feat_scores = gex.ExplainFeaturesNnz(ds, nodes);
  } else {
    explain::PgExplainer pge(base.encoder());
    edge_scores = pge.ExplainEdges(ds);
  }

  core::FrozenMasks masks;
  if (!feat_scores.empty()) {
    masks.feature_nnz = tensor::Tensor(
        static_cast<int64_t>(feat_scores.size()), 1);
    for (size_t i = 0; i < feat_scores.size(); ++i)
      masks.feature_nnz[static_cast<int64_t>(i)] =
          feat_scores[i] > 0.0f ? feat_scores[i] : 1.0f;
  }
  // Edge scores -> per-directed-edge mask over A + self-loops.
  auto edges = ds.graph.DirectedEdges(true);
  masks.structure_adj = tensor::Tensor(edges->size(), 1);
  masks.structure_adj.Fill(1.0f);
  for (size_t i = 0; i < edge_scores.size(); ++i) {
    masks.structure_adj[2 * static_cast<int64_t>(i)] = edge_scores[i];
    masks.structure_adj[2 * static_cast<int64_t>(i) + 1] = edge_scores[i];
  }
  // Pairs from the post-hoc structure scores over the k-hop neighborhood
  // (1-hop edges carry the post-hoc score; farther pairs a neutral 0.5).
  util::Rng rng(cfg.seed + 3);
  graph::KHopAdjacency khop(ds.graph, opt.k, opt.max_khop_neighbors);
  std::vector<int64_t> train_labels(static_cast<size_t>(ds.num_nodes()), -1);
  for (int64_t i : ds.train_idx)
    train_labels[static_cast<size_t>(i)] = ds.labels[static_cast<size_t>(i)];
  graph::NegativeSets negatives =
      graph::SampleNegativeSets(khop, train_labels, &rng);
  tensor::Tensor khop_mask(khop.num_pairs(), 1);
  khop_mask.Fill(0.5f);
  const auto& und = ds.graph.edges();
  for (size_t e = 0; e < und.size(); ++e) {
    for (auto [a, b] : {und[e], std::make_pair(und[e].second, und[e].first)}) {
      auto nbrs = khop.Neighbors(a);
      auto it = std::lower_bound(nbrs.begin(), nbrs.end(), b);
      if (it != nbrs.end() && *it == b)
        khop_mask[khop.PairOffset(a) + (it - nbrs.begin())] = edge_scores[e];
    }
  }
  core::PosNegPairs pairs =
      core::ConstructPairs(khop, khop_mask, negatives, opt.sample_ratio, &rng);

  // Clone the trained encoder into a fresh one we can fine-tune.
  util::Rng r2(cfg.seed + 5);
  auto encoder = models::MakeEncoder(backbone, ds.num_features(), cfg.hidden,
                                     ds.num_classes, &r2);
  encoder->CopyParametersFrom(*base.encoder());
  core::SesModel::EnhancedPredictiveLearning(encoder.get(), ds, masks, pairs,
                                             opt, cfg, &rng);
  util::Rng r3(0);
  nn::FeatureInput input =
      masks.feature_nnz.size() > 0
          ? nn::FeatureInput::Sparse(
                ds.features,
                autograd::Variable::Constant(masks.feature_nnz))
          : models::MakeInput(ds);
  auto out = encoder->Forward(input, edges,
                              autograd::Variable::Constant(masks.structure_adj),
                              0.0f, false, &r3);
  return 100.0 * models::Accuracy(out.logits.value(), ds.labels, ds.test_idx);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Table 10] %s\n", profile.Describe().c_str());

  const char* datasets[] = {"Cora", "CiteSeer", "PolBlogs", "CS"};
  util::Table table("Table 10: Ablation studies of SES");
  table.SetHeader({"Variant", "Cora", "CiteSeer", "PolBlogs", "CS"});

  struct Variant {
    std::string label;
    std::function<void(core::SesOptions*)> apply;
  };
  const std::vector<Variant> variants = {
      {"-{M_f}", [](core::SesOptions* o) { o->use_feature_mask = false; }},
      {"-{M_s}", [](core::SesOptions* o) { o->use_structure_mask = false; }},
      {"-{L_xent}", [](core::SesOptions* o) { o->use_xent_phase2 = false; }},
      {"-{Triplet}", [](core::SesOptions* o) { o->use_triplet = false; }},
      {"full", [](core::SesOptions*) {}},
  };

  for (const std::string backbone : {"GCN", "GAT"}) {
    for (const auto& variant : variants) {
      std::vector<std::string> row{"SES (" + backbone + ") " + variant.label};
      for (const char* dataset : datasets) {
        auto ds = data::MakeRealWorldByName(dataset, profile.real_scale, 1);
        core::SesOptions opt;
        opt.backbone = backbone;
        variant.apply(&opt);
        core::SesModel ses(opt);
        ses.Fit(ds, profile.MakeTrainConfig(1));
        row.push_back(util::Table::Num(
            100.0 * models::Accuracy(ses.Logits(ds), ds.labels, ds.test_idx),
            2));
        std::fprintf(stderr, "  %s %s %s done\n", backbone.c_str(),
                     variant.label.c_str(), dataset);
      }
      table.AddRow(row);
    }
    for (const std::string which : {"GEX", "PGE"}) {
      std::vector<std::string> row{which + " (" + backbone + ") +{epl}"};
      for (const char* dataset : datasets) {
        auto ds = data::MakeRealWorldByName(dataset, profile.real_scale, 1);
        row.push_back(util::Table::Num(
            RunPostHocEpl(ds, backbone, which, profile.MakeTrainConfig(1),
                          profile),
            2));
        std::fprintf(stderr, "  %s %s+epl %s done\n", backbone.c_str(),
                     which.c_str(), dataset);
      }
      table.AddRow(row);
    }
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/table10_ablation.csv");
  return 0;
}
