// Reproduces Table 4: explanation accuracy (edge AUC, %) on the four
// synthetic benchmarks for GRAD, ATT, GNNExplainer, PGExplainer,
// PGMExplainer, SEGNN and SES.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "explain/gnn_explainer.h"
#include "explain/grad_att.h"
#include "explain/pg_explainer.h"
#include "explain/pgm_explainer.h"
#include "metrics/metrics.h"
#include "util/table.h"

using namespace ses;

namespace {

const char* kDatasets[] = {"BAShapes", "BACommunity", "Tree-Cycle",
                           "Tree-Grid"};

const std::map<std::string, std::map<std::string, double>> kPaper = {
    {"BAShapes",
     {{"GRAD", 88.2}, {"ATT", 81.5}, {"GNNExplainer", 92.5},
      {"PGExplainer", 96.3}, {"PGMExplainer", 96.5}, {"SEGNN", 97.3},
      {"SES", 99.8}}},
    {"BACommunity",
     {{"GRAD", 75.0}, {"ATT", 73.9}, {"GNNExplainer", 83.6},
      {"PGExplainer", 94.5}, {"PGMExplainer", 92.6}, {"SEGNN", 77.2},
      {"SES", 94.5}}},
    {"Tree-Cycle",
     {{"GRAD", 90.5}, {"ATT", 82.4}, {"GNNExplainer", 94.8},
      {"PGExplainer", 98.7}, {"PGMExplainer", 96.8}, {"SEGNN", 62.3},
      {"SES", 99.4}}},
    {"Tree-Grid",
     {{"GRAD", 61.2}, {"ATT", 66.7}, {"GNNExplainer", 87.5},
      {"PGExplainer", 90.7}, {"PGMExplainer", 89.2}, {"SEGNN", 50.5},
      {"SES", 93.7}}},
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Table 4] %s\n", profile.Describe().c_str());

  util::Table table("Table 4: Explanation accuracy (%) on synthetic datasets");
  table.SetHeader({"Dataset", "Method", "Ours", "Paper"});
  for (const char* name : kDatasets) {
    auto ds = data::MakeSyntheticByName(name);
    // Nodes the per-node explainers process: motif nodes first.
    std::vector<int64_t> nodes =
        explain::NodesToExplain(ds, profile.explain_nodes_cap);
    auto cfg = profile.MakeTrainConfig(1);
    cfg.epochs = profile.full ? 300 : 150;
    cfg.dropout = 0.2f;

    // Trained backbones shared by the post-hoc explainers.
    models::BackboneModel gcn("GCN");
    gcn.Fit(ds, cfg);
    models::BackboneModel gat("GAT");
    gat.Fit(ds, cfg);

    auto add = [&](const std::string& method, double auc) {
      table.AddRow({name, method, util::Table::Num(100.0 * auc, 1),
                    util::Table::Num(kPaper.at(name).at(method), 1)});
      std::fprintf(stderr, "  %s %s done\n", name, method.c_str());
    };

    explain::GradExplainer grad(gcn.encoder());
    add("GRAD", metrics::ExplanationAuc(ds, grad.ExplainEdges(ds)));
    explain::AttExplainer att(gat.encoder());
    add("ATT", metrics::ExplanationAuc(ds, att.ExplainEdges(ds)));
    {
      explain::GnnExplainer::Options opt;
      opt.epochs = profile.full ? 100 : 60;
      explain::GnnExplainer gex(gcn.encoder(), opt);
      add("GNNExplainer",
          metrics::ExplanationAuc(ds, gex.ExplainEdges(ds, nodes)));
    }
    {
      explain::PgExplainer pge(gcn.encoder());
      add("PGExplainer", metrics::ExplanationAuc(ds, pge.ExplainEdges(ds)));
    }
    {
      explain::PgmExplainer::Options opt;
      opt.samples = profile.full ? 100 : 40;
      explain::PgmExplainer pgm(gcn.encoder(), opt);
      add("PGMExplainer",
          metrics::ExplanationAuc(ds, pgm.ExplainEdges(ds, nodes)));
    }
    {
      models::SegnnModel segnn;
      segnn.Fit(ds, cfg);
      add("SEGNN", metrics::ExplanationAuc(ds, segnn.EdgeScores(ds)));
    }
    {
      core::SesOptions opt;
      opt.backbone = "GCN";
      core::SesModel ses(opt);
      ses.Fit(ds, cfg);
      add("SES", metrics::ExplanationAuc(ds, ses.EdgeScores(ds)));
    }
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/table4_explanation_auc.csv");
  return 0;
}
