// Reproduces Figure 6: visualizations of subgraph explanations on the
// synthetic datasets for GNNExplainer, PGExplainer, PGMExplainer and SES.
// For each dataset, one motif node's 2-hop neighborhood is rendered as SVG
// and DOT with edge darkness proportional to the method's importance score.
#include <cstdio>

#include "bench_common.h"
#include "explain/gnn_explainer.h"
#include "explain/pg_explainer.h"
#include "explain/pgm_explainer.h"
#include "metrics/metrics.h"
#include "util/table.h"
#include "viz/graph_export.h"

using namespace ses;

namespace {

/// Restricts a global per-undirected-edge score vector to a subgraph's edges.
std::vector<float> LocalScores(const data::Dataset& ds,
                               const graph::Subgraph& sub,
                               const std::vector<float>& global) {
  const auto& und = ds.graph.edges();
  std::vector<float> local;
  local.reserve(static_cast<size_t>(sub.graph.num_edges()));
  for (auto [la, lb] : sub.graph.edges()) {
    const int64_t ga = sub.nodes[static_cast<size_t>(la)];
    const int64_t gb = sub.nodes[static_cast<size_t>(lb)];
    auto key = std::make_pair(std::min(ga, gb), std::max(ga, gb));
    auto it = std::lower_bound(und.begin(), und.end(), key);
    local.push_back(it != und.end() && *it == key
                        ? global[static_cast<size_t>(it - und.begin())]
                        : 0.0f);
  }
  return local;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Fig 6] %s\n", profile.Describe().c_str());

  const char* datasets[] = {"BAShapes", "BACommunity", "Tree-Cycle",
                            "Tree-Grid"};
  for (const char* name : datasets) {
    auto ds = data::MakeSyntheticByName(name);
    // First motif node as the explanation center.
    int64_t center = -1;
    for (int64_t i = 0; i < ds.num_nodes() && center < 0; ++i)
      if (ds.in_motif[static_cast<size_t>(i)]) center = i;
    if (center < 0) continue;
    graph::Subgraph sub = graph::ExtractEgoNet(ds.graph, center, 2);
    std::vector<int64_t> nodes{center};

    auto cfg = profile.MakeTrainConfig(1);
    cfg.epochs = profile.full ? 300 : 120;
    cfg.dropout = 0.2f;
    models::BackboneModel gcn("GCN");
    gcn.Fit(ds, cfg);

    auto emit = [&](const std::string& method,
                    const std::vector<float>& global) {
      auto local = LocalScores(ds, sub, global);
      const std::string base = bench::ArtifactDir() + "/fig6_" +
                               std::string(name) + "_" + method;
      util::WriteFile(base + ".svg",
                      viz::SubgraphToSvg(sub, ds.labels, local,
                                         sub.center_local));
      util::WriteFile(base + ".dot",
                      viz::SubgraphToDot(sub, ds.labels, local,
                                         sub.center_local));
      std::printf("  %s %s -> %s.svg\n", name, method.c_str(), base.c_str());
    };

    {
      explain::GnnExplainer::Options opt;
      opt.epochs = 60;
      explain::GnnExplainer gex(gcn.encoder(), opt);
      emit("GEX", gex.ExplainEdges(ds, nodes));
    }
    {
      explain::PgExplainer pge(gcn.encoder());
      emit("PGE", pge.ExplainEdges(ds));
    }
    {
      explain::PgmExplainer pgm(gcn.encoder());
      emit("PGM", pgm.ExplainEdges(ds, nodes));
    }
    {
      core::SesOptions opt;
      opt.backbone = "GCN";
      core::SesModel ses(opt);
      ses.Fit(ds, cfg);
      emit("SES", ses.EdgeScores(ds));
    }
  }
  return 0;
}
