// Reproduces Figure 7: optimization of the feature and structure masks
// during explainable training on Cora — training/validation loss curves
// (CSV) and feature-mask / structure-mask heatmap snapshots at the start,
// middle and end of training (PGM images).
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "viz/graph_export.h"

using namespace ses;

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Fig 7] %s\n", profile.Describe().c_str());

  auto ds = data::MakeRealWorldByName("Cora", profile.real_scale, 1);
  core::SesOptions opt;
  opt.backbone = "GCN";
  core::SesModel ses(opt);
  auto cfg = profile.MakeTrainConfig(1);
  ses.Fit(ds, cfg);

  // Loss curves.
  util::Table curves("Figure 7: explainable-training loss curves (Cora)");
  curves.SetHeader({"epoch", "train_loss", "val_loss"});
  for (const auto& row : ses.loss_history())
    curves.AddRow({util::Table::Num(row[0], 0), util::Table::Num(row[1], 4),
                   util::Table::Num(row[2], 4)});
  curves.WriteCsv(bench::ArtifactDir() + "/fig7_loss_curves.csv");
  std::printf("loss curve: %zu epochs -> %s\n", ses.loss_history().size(),
              (bench::ArtifactDir() + "/fig7_loss_curves.csv").c_str());

  // Mask snapshots: the nnz-aligned feature mask reshaped to a band image
  // (rows = nodes sampled, cols = their nonzero features padded).
  const char* stage[] = {"epoch0", "mid", "final"};
  for (size_t s = 0; s < ses.mask_snapshots().size() && s < 3; ++s) {
    const tensor::Tensor& nnz_mask = ses.mask_snapshots()[s];
    // Render the first 100 nodes x up to 32 nonzeros each.
    const int64_t rows = std::min<int64_t>(100, ds.num_nodes());
    const int64_t cols = 32;
    tensor::Tensor img(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t lo = ds.features->row_ptr[static_cast<size_t>(r)];
      const int64_t hi = ds.features->row_ptr[static_cast<size_t>(r) + 1];
      for (int64_t c = 0; c < std::min(cols, hi - lo); ++c)
        img.At(r, c) = nnz_mask[lo + c];
    }
    const std::string path = bench::ArtifactDir() + "/fig7_feature_mask_" +
                             stage[s] + ".pgm";
    viz::WriteHeatmapPgm(img, path);
    std::printf("feature-mask snapshot %s -> %s (mean %.3f)\n", stage[s],
                path.c_str(), img.Mean());
  }

  // Final structure mask over k-hop pairs of nodes 0..99 (the paper shows
  // nodes 1700-1800; any contiguous block illustrates the same divergence).
  {
    const tensor::Tensor& m = ses.structure_mask_khop();
    const int64_t rows = std::min<int64_t>(100, ds.num_nodes());
    const int64_t cols = 32;
    tensor::Tensor img(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
      const auto nbrs = ses.khop().Neighbors(r);
      const int64_t off = ses.khop().PairOffset(r);
      for (int64_t c = 0; c < std::min<int64_t>(cols, nbrs.size()); ++c)
        img.At(r, c) = m[off + c];
    }
    const std::string path =
        bench::ArtifactDir() + "/fig7_structure_mask_final.pgm";
    viz::WriteHeatmapPgm(img, path);
    std::printf("structure-mask snapshot -> %s (mean %.3f min %.3f max %.3f)\n",
                path.c_str(), m.Mean(), m.Min(), m.Max());
  }
  return 0;
}
