// Reproduces Table 3: prediction accuracy (%) on node classification over
// the four real-world datasets for the full model zoo (GCN, GAT, UniMP,
// FusedGAT, ASDGN, SEGNN, ProtGNN, SES (GCN), SES (GAT)).
//
// The paper's numbers are printed alongside ours for shape comparison; the
// datasets here are calibrated stand-ins (DESIGN.md §3), so the claim under
// test is the ordering — SES improving on its backbone and on the
// self-explainable baselines — not the absolute accuracy.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "util/table.h"
#include "util/timer.h"

using namespace ses;

namespace {

const char* kDatasets[] = {"Cora", "CiteSeer", "PolBlogs", "CS"};
const char* kModels[] = {"GCN",   "GAT",     "UniMP",     "FusedGAT", "ASDGN",
                         "SEGNN", "ProtGNN", "SES (GCN)", "SES (GAT)"};

// Paper-reported means for reference.
const std::map<std::string, std::map<std::string, double>> kPaper = {
    {"Cora",
     {{"GCN", 86.83}, {"GAT", 86.81}, {"UniMP", 88.18}, {"FusedGAT", 80.26},
      {"ASDGN", 83.28}, {"SEGNN", 84.35}, {"ProtGNN", 81.98},
      {"SES (GCN)", 90.64}, {"SES (GAT)", 90.39}}},
    {"CiteSeer",
     {{"GCN", 75.50}, {"GAT", 72.22}, {"UniMP", 75.33}, {"FusedGAT", 74.22},
      {"ASDGN", 75.20}, {"SEGNN", 76.10}, {"ProtGNN", 73.42},
      {"SES (GCN)", 78.51}, {"SES (GAT)", 78.69}}},
    {"PolBlogs",
     {{"GCN", 93.86}, {"GAT", 94.72}, {"UniMP", 95.45}, {"FusedGAT", 94.63},
      {"ASDGN", 80.45}, {"ProtGNN", 88.77},
      {"SES (GCN)", 97.90}, {"SES (GAT)", 97.86}}},
    {"CS",
     {{"GCN", 90.08}, {"GAT", 91.72}, {"UniMP", 93.65}, {"FusedGAT", 91.35},
      {"ASDGN", 93.70}, {"ProtGNN", 84.30},
      {"SES (GCN)", 94.54}, {"SES (GAT)", 94.10}}},
};

// SEGNN is unsuitable for PolBlogs (no informative node features for the
// similarity module) and CS (quadratic memory), exactly as in the paper.
bool Applicable(const std::string& model, const std::string& dataset) {
  if (model != "SEGNN") return true;
  return dataset != "PolBlogs" && dataset != "CS";
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Table 3] %s\n", profile.Describe().c_str());

  util::Table table("Table 3: Prediction Accuracy (%) on Node Classification");
  table.SetHeader({"Dataset", "Model", "Ours (mean±std)", "Paper"});
  util::Timer total;
  for (const char* dataset : kDatasets) {
    for (const char* model_name : kModels) {
      if (!Applicable(model_name, dataset)) {
        table.AddRow({dataset, model_name, "-", "-"});
        continue;
      }
      std::vector<double> accs;
      for (int64_t seed = 0; seed < profile.seeds; ++seed) {
        auto ds = data::MakeRealWorldByName(dataset, profile.real_scale, seed);
        auto model = bench::MakeModel(model_name);
        model->Fit(ds, profile.MakeTrainConfig(seed));
        accs.push_back(
            100.0 * models::Accuracy(model->Logits(ds), ds.labels, ds.test_idx));
      }
      auto stats = metrics::Summarize(accs);
      auto paper_it = kPaper.at(dataset).find(model_name);
      table.AddRow({dataset, model_name,
                    util::Table::MeanStd(stats.mean, stats.std),
                    paper_it == kPaper.at(dataset).end()
                        ? "-"
                        : util::Table::Num(paper_it->second)});
      std::fprintf(stderr, "  done %-9s %-10s (%.0fs elapsed)\n", dataset,
                   model_name, total.ElapsedSeconds());
    }
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/table3_node_classification.csv");
  return 0;
}
