// Serving-throughput benchmark for the tape-free inference fast path.
//
// Trains a small SES (GCN) model on the Cora stand-in, then measures:
//   1. single-thread: the pre-PR tape-building eval forward vs. the
//      InferenceSession fast path (tape-free forward over cached per-graph
//      artifacts, and the warm memoized predict), with a bitwise logit check;
//   2. multi-thread: N workers issuing a mixed 80/20 predict/explain query
//      stream against one shared session, each worker inside a tensor
//      workspace::Scope, reporting queries/sec, p50/p99 latency, the pool hit
//      rate, and the session cache stats;
//   3. scheduler: the serve::BatchScheduler front end vs. the direct path,
//      after a bitwise logit check through the scheduled path. Closed-loop
//      mode (submit -> Get, one in flight per client) shows what the flush
//      deadline costs a synchronous caller; open-loop mode (each client
//      streams requests with a bounded outstanding window, like a pipelined
//      RPC client) shows the micro-batching throughput win. Both paths carry
//      full per-request accounting — the direct path records its latency
//      histogram sample and SLO point inline per request, the scheduled path
//      gets the same from the worker's batched ObserveMany/RecordMany — so
//      the comparison is serving-loop vs. serving-loop, not instrumented
//      vs. bare.
//
// Results go to --out (default BENCH_serving.json). --smoke shrinks every
// knob for the ASan CI run (2 threads, tiny query counts).
//
// Latency percentiles come from labeled registry histograms
// (ses.infer.latency_us{op=...}); per-op SLO budgets feed the ses.slo.*
// burn-rate gauges. Combined with the ObsSession flags (--metrics-port,
// --access-log, --trace-out) a run is fully scrapable and joinable while it
// executes.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "autograd/variable.h"
#include "bench_common.h"
#include "core/inference_session.h"
#include "obs/anomaly.h"
#include "obs/flight_recorder.h"
#include "obs/perfcount.h"
#include "serve/batch_scheduler.h"
#include "tensor/workspace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ses;
namespace ag = ses::autograd;

namespace {

/// The pre-PR eval path: a full taped forward (autograd nodes + backward
/// closures allocated) with no cached aggregation — what SesModel::Logits
/// cost before the inference fast path existed.
tensor::Tensor TapedLogits(const core::SesModel& model,
                           const data::Dataset& ds,
                           const ag::EdgeListPtr& edges) {
  util::Rng rng(0);
  nn::FeatureInput input =
      (model.options().use_feature_mask && model.feature_mask_nnz().size() > 0)
          ? nn::FeatureInput::Sparse(
                ds.features, ag::Variable::Constant(model.feature_mask_nnz()))
          : models::MakeInput(ds);
  ag::Variable adj_mask;
  if (model.options().use_structure_mask &&
      model.structure_mask_adj().size() > 0)
    adj_mask = ag::Variable::Constant(model.structure_mask_adj());
  return model.encoder()
      ->Forward(input, edges, adj_mask, 0.0f, /*training=*/false, &rng)
      .logits.value();
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  bench::ObsSession obs_session(flags);
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t threads =
      flags.GetInt("threads", smoke ? 2 : 4);
  const int64_t queries_per_thread =
      flags.GetInt("queries", smoke ? 50 : 2000);
  const int64_t warm_iters = smoke ? 3 : 20;
  // Phase 3 knobs. The open-loop comparison needs enough concurrent clients
  // for micro-batches to actually form (the acceptance bar is >= 8).
  const int64_t sched_clients =
      flags.GetInt("sched-clients", smoke ? 2 : std::max<int64_t>(threads, 8));
  const int64_t closed_queries =
      flags.GetInt("closed-queries", smoke ? 20 : 1000);
  const int64_t open_queries =
      flags.GetInt("open-queries", smoke ? 200 : 50000);
  const std::string out_path = flags.GetString("out", "BENCH_serving.json");
  // Request-forensics knobs. --flight-dump arms the flight recorder's
  // burn-triggered auto-dump (the CI forensics stage points it at
  // ci_artifacts/ with a deliberately tiny --sched-queue-budget-us so the
  // breach is guaranteed); --sched-queue-budget-us also turns on the
  // queue-wait SLO for the phase-3 scheduler.
  const std::string flight_dump = flags.GetString("flight-dump", "");
  const double flight_burn = flags.GetDouble("flight-burn", 0.5);
  const double sched_queue_budget_us =
      flags.GetDouble("sched-queue-budget-us", 0.0);
  if (smoke) {
    profile.real_scale = std::min(profile.real_scale, 0.15);
    profile.epochs = std::min<int64_t>(profile.epochs, 3);
    profile.hidden = std::min<int64_t>(profile.hidden, 32);
  }
  std::printf("[Serving] %s threads=%lld queries/thread=%lld\n",
              profile.Describe().c_str(), static_cast<long long>(threads),
              static_cast<long long>(queries_per_thread));

  // Register every metric family up front — per-op SLO budgets (whose
  // rolling burn rates land in the ses.slo.* gauges), the labeled latency
  // histograms, and the ses.pool.* counters — so a live /metrics scrape
  // taken at any point of the run, including during training, already sees
  // the full serving exposition. The report below reads its percentiles
  // back out of the histograms instead of keeping private sorted-vector
  // percentile code.
  obs::SloTracker::Get().SetBudget("infer.predict", /*latency_budget_us=*/1e3);
  obs::SloTracker::Get().SetBudget("infer.explain", /*latency_budget_us=*/2e3);
  auto& registry = obs::MetricsRegistry::Get();
  const auto& edges_us = obs::Histogram::DefaultLatencyEdgesUs();
  obs::Histogram& all_hist =
      registry.GetHistogram("ses.infer.latency_us", {{"op", "all"}}, edges_us);
  obs::Histogram& predict_hist = registry.GetHistogram(
      "ses.infer.latency_us", {{"op", "predict"}}, edges_us);
  obs::Histogram& explain_hist = registry.GetHistogram(
      "ses.infer.latency_us", {{"op", "explain"}}, edges_us);
  // The scheduler registers its own families on construction, but that
  // happens in phase 3 — pre-touch them here so a scrape taken during
  // training already sees the ses.sched.* exposition (ci.sh relies on it).
  registry.GetCounter("ses.sched.requests");
  registry.GetCounter("ses.sched.batches");
  registry.GetGauge("ses.sched.queue_depth");
  registry.GetHistogram("ses.sched.queue_wait_us", edges_us);
  registry.GetHistogram("ses.sched.e2e_us", edges_us);
  // Critical-path stage histograms (filled by the scheduler in phase 3;
  // pre-touched so early scrapes and BENCH_serving.json consumers always see
  // the families).
  obs::Histogram& stage_admit_hist =
      registry.GetHistogram("ses.sched.stage.admit_us", edges_us);
  obs::Histogram& stage_seal_hist =
      registry.GetHistogram("ses.sched.stage.seal_us", edges_us);
  obs::Histogram& stage_queue_hist =
      registry.GetHistogram("ses.sched.stage.queue_us", edges_us);
  obs::Histogram& stage_forward_hist =
      registry.GetHistogram("ses.sched.stage.forward_us", edges_us);
  obs::Histogram& stage_resolve_hist =
      registry.GetHistogram("ses.sched.stage.resolve_us", edges_us);
  tensor::workspace::SyncMetricsRegistry();

  if (!flight_dump.empty())
    obs::FlightRecorder::Get().ArmAutoDump(flight_dump, flight_burn);
  // Anomaly probe over the serving kernel itself: SpMM GFLOP/s since the
  // last poll, summed across autotuner variants (the per-variant perfcount
  // gauges can't be watched directly — the variant label is chosen at
  // runtime). flops/ns is numerically GFLOP/s.
  {
    struct SpmmSeen {
      double flops = 0.0;
      double ns = 0.0;
    };
    auto seen = std::make_shared<SpmmSeen>();
    obs::AnomalyWatch::Get().WatchProbe(
        "kernel.spmm_gflops", [seen](double* value) {
          double flops = 0.0, ns = 0.0;
          for (const obs::KernelStats& k : obs::SnapshotKernelStats()) {
            if (k.kernel != "spmm") continue;
            flops += k.flops;
            ns += k.inclusive_ns;
          }
          const double d_flops = flops - seen->flops;
          const double d_ns = ns - seen->ns;
          seen->flops = flops;
          seen->ns = ns;
          if (d_ns <= 0.0) return false;  // no new SpMM work since last poll
          *value = d_flops / d_ns;
          return true;
        });
  }

  auto ds = data::MakeRealWorldByName("Cora", profile.real_scale, 1);
  core::SesOptions opt;
  opt.backbone = "GCN";
  core::SesModel model(opt);
  model.Fit(ds, profile.MakeTrainConfig(1));
  std::printf("model trained (%lld nodes)\n",
              static_cast<long long>(ds.graph.num_nodes()));

  core::InferenceSession session(&model, &ds);
  const auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);

  // --- Phase 1: single-thread tape path vs. fast path -----------------------
  // Bitwise check first: the fast path must be indistinguishable from the
  // taped eval forward.
  tensor::Tensor tape_logits = TapedLogits(model, ds, edges);
  tensor::Tensor fast_logits = session.Logits();
  const float max_abs_diff = tape_logits.MaxAbsDiff(fast_logits);
  SES_CHECK(max_abs_diff == 0.0f &&
            "fast-path logits must be bitwise identical to the tape path");

  tensor::workspace::Scope pool_scope;
  util::Timer timer;
  for (int64_t i = 0; i < warm_iters; ++i) TapedLogits(model, ds, edges);
  const double tape_ms = timer.ElapsedSeconds() * 1e3 / warm_iters;

  session.ForwardLogits();  // warm the pool buckets for this thread
  // Pool stats from here on cover the steady-state fast path only (the tape
  // loop above also drew from the pool and would inflate the hit count).
  tensor::workspace::ResetStats();
  timer.Reset();
  for (int64_t i = 0; i < warm_iters; ++i) session.ForwardLogits();
  const double forward_ms = timer.ElapsedSeconds() * 1e3 / warm_iters;

  const int64_t predict_iters = warm_iters * 50;
  timer.Reset();
  for (int64_t i = 0; i < predict_iters; ++i)
    session.PredictNode(i % ds.graph.num_nodes());
  const double predict_ms = timer.ElapsedSeconds() * 1e3 / predict_iters;

  const double forward_speedup = tape_ms / std::max(forward_ms, 1e-9);
  const double predict_speedup = tape_ms / std::max(predict_ms, 1e-9);
  std::printf(
      "tape %.3f ms | tape-free forward %.3f ms (%.2fx) | warm predict "
      "%.4f ms (%.1fx) | max_abs_diff %g\n",
      tape_ms, forward_ms, forward_speedup, predict_ms, predict_speedup,
      max_abs_diff);

  // --- Phase 2: multi-thread mixed serving loop ----------------------------
  // Refresh the warm-phase pool counters in the registry before the workers
  // start hammering the histograms.
  tensor::workspace::SyncMetricsRegistry();

  std::atomic<int64_t> predicts{0}, explains{0};
  timer.Reset();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int64_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      tensor::workspace::Scope scope;
      util::Rng rng(static_cast<uint64_t>(1000 + w));
      for (int64_t q = 0; q < queries_per_thread; ++q) {
        const int64_t node =
            static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(ds.graph.num_nodes())));
        util::Timer qt;
        if (rng.Uniform() < 0.8) {
          session.PredictNode(node);
          const double us = qt.ElapsedSeconds() * 1e6;
          predict_hist.Observe(us);
          all_hist.Observe(us);
          predicts.fetch_add(1, std::memory_order_relaxed);
        } else {
          session.ExplainNode(node, /*top_k=*/5);
          const double us = qt.ElapsedSeconds() * 1e6;
          explain_hist.Observe(us);
          all_hist.Observe(us);
          explains.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  const double wall_s = timer.ElapsedSeconds();

  const int64_t total_queries = all_hist.Count();
  const double qps =
      static_cast<double>(total_queries) / std::max(wall_s, 1e-9);
  const double p50 = all_hist.P50() / 1e3;  // histogram is in us, report ms
  const double p99 = all_hist.P99() / 1e3;

  const auto pool = tensor::workspace::GlobalStats();
  const double pool_hit_rate =
      pool.hits + pool.misses > 0
          ? static_cast<double>(pool.hits) /
                static_cast<double>(pool.hits + pool.misses)
          : 0.0;
  const auto cache = session.stats();
  tensor::workspace::SyncMetricsRegistry();
  std::printf(
      "%lld queries in %.2fs: %.0f qps, p50 %.4f ms, p99 %.4f ms | pool hit "
      "rate %.1f%% | session cache %lld hits / %lld misses\n",
      static_cast<long long>(total_queries), wall_s, qps, p50, p99,
      pool_hit_rate * 100.0, static_cast<long long>(cache.cache_hits),
      static_cast<long long>(cache.cache_misses));
  const auto predict_slo = obs::SloTracker::Get().Snapshot("infer.predict");
  const auto explain_slo = obs::SloTracker::Get().Snapshot("infer.explain");
  std::printf(
      "slo: predict %lld/%lld over budget (burn %.3f) | explain %lld/%lld "
      "over budget (burn %.3f)\n",
      static_cast<long long>(predict_slo.breaches),
      static_cast<long long>(predict_slo.requests), predict_slo.burn_rate,
      static_cast<long long>(explain_slo.breaches),
      static_cast<long long>(explain_slo.requests), explain_slo.burn_rate);

  // --- Phase 3: batch scheduler vs. direct path ----------------------------
  serve::SchedulerOptions sched_opt;
  sched_opt.max_batch_size = 256;
  sched_opt.flush_deadline_us = 200;
  sched_opt.num_workers = 1;
  sched_opt.e2e_budget_us = 1e3;  // same budget class as infer.predict
  sched_opt.queue_wait_budget_us = sched_queue_budget_us;
  serve::BatchScheduler scheduler(&session, sched_opt);
  obs::Histogram& e2e_hist = registry.GetHistogram(
      "ses.sched.e2e_us", obs::Histogram::DefaultLatencyEdgesUs());
  obs::Histogram& queue_wait_hist = registry.GetHistogram(
      "ses.sched.queue_wait_us", obs::Histogram::DefaultLatencyEdgesUs());

  // Bitwise gate first: logit rows and predictions through the scheduled
  // path must be indistinguishable from the direct session calls.
  {
    const int64_t probe = std::min<int64_t>(64, ds.graph.num_nodes());
    std::vector<serve::LogitsRowFuture> rows;
    std::vector<serve::PredictFuture> preds;
    for (int64_t n = 0; n < probe; ++n) {
      rows.push_back(scheduler.SubmitLogitsRow(n));
      preds.push_back(scheduler.SubmitPredict(n));
    }
    const tensor::Tensor& direct = session.Logits();
    for (int64_t n = 0; n < probe; ++n) {
      const std::vector<float> row = rows[static_cast<size_t>(n)].Get();
      SES_CHECK(static_cast<int64_t>(row.size()) == direct.cols());
      const float* want = direct.RowPtr(n);
      for (size_t c = 0; c < row.size(); ++c)
        SES_CHECK(row[c] == want[c] &&
                  "scheduled logits must be bitwise identical");
      SES_CHECK(preds[static_cast<size_t>(n)].Get() ==
                session.PredictNode(n));
    }
  }

  // Closed-loop: every client keeps exactly one request in flight, so lone
  // arrivals ride the flush deadline — this mode prices the latency a
  // synchronous caller pays for batching.
  std::atomic<int64_t> sink{0};
  timer.Reset();
  {
    std::vector<std::thread> clients;
    for (int64_t w = 0; w < sched_clients; ++w) {
      clients.emplace_back([&, w] {
        util::Rng rng(static_cast<uint64_t>(2000 + w));
        int64_t local = 0;
        for (int64_t q = 0; q < closed_queries; ++q) {
          const int64_t node = static_cast<int64_t>(
              rng.UniformInt(static_cast<uint64_t>(ds.graph.num_nodes())));
          local += scheduler.SubmitPredict(node).Get();
        }
        sink.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& th : clients) th.join();
  }
  const double closed_wall_s = timer.ElapsedSeconds();
  const double closed_qps =
      static_cast<double>(sched_clients * closed_queries) /
      std::max(closed_wall_s, 1e-9);
  // Snapshot before the open-loop flood so these quantiles describe the
  // closed-loop regime.
  const double closed_p50_ms = e2e_hist.P50() / 1e3;
  const double closed_p99_ms = e2e_hist.P99() / 1e3;

  // Open-loop, direct baseline: clients hammer PredictNode back to back with
  // the same per-query accounting phase 2 uses (timer + latency histogram;
  // the SLO point is recorded inside PredictNode's RequestScope).
  timer.Reset();
  {
    std::vector<std::thread> clients;
    for (int64_t w = 0; w < sched_clients; ++w) {
      clients.emplace_back([&, w] {
        tensor::workspace::Scope scope;
        util::Rng rng(static_cast<uint64_t>(3000 + w));
        int64_t local = 0;
        for (int64_t q = 0; q < open_queries; ++q) {
          const int64_t node = static_cast<int64_t>(
              rng.UniformInt(static_cast<uint64_t>(ds.graph.num_nodes())));
          util::Timer qt;
          local += session.PredictNode(node);
          predict_hist.Observe(qt.ElapsedSeconds() * 1e6);
        }
        sink.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& th : clients) th.join();
  }
  const double direct_wall_s = timer.ElapsedSeconds();
  const double direct_qps =
      static_cast<double>(sched_clients * open_queries) /
      std::max(direct_wall_s, 1e-9);

  // Open-loop, scheduled: each client pipelines submissions — arrivals go
  // in via SubmitPredictStream in bursts of kChunk, and a bounded window of
  // outstanding futures is harvested as it wraps. Latency accounting
  // happens worker-side (queue-wait + end-to-end histograms, sched.e2e
  // SLO), batched per flush.
  constexpr int64_t kWindow = 512;
  constexpr int64_t kChunk = 16;
  timer.Reset();
  {
    std::vector<std::thread> clients;
    for (int64_t w = 0; w < sched_clients; ++w) {
      clients.emplace_back([&, w] {
        util::Rng rng(static_cast<uint64_t>(3000 + w));  // same stream as direct
        std::vector<serve::PredictFuture> window(
            static_cast<size_t>(std::max(kChunk, std::min(kWindow, open_queries))));
        int64_t chunk_nodes[kChunk];
        serve::PredictFuture chunk_futs[kChunk];
        int64_t local = 0;
        for (int64_t q = 0; q < open_queries; q += kChunk) {
          const int64_t burst = std::min(kChunk, open_queries - q);
          for (int64_t i = 0; i < burst; ++i)
            chunk_nodes[i] = static_cast<int64_t>(
                rng.UniformInt(static_cast<uint64_t>(ds.graph.num_nodes())));
          const int64_t accepted =
              scheduler.SubmitPredictStream(chunk_nodes, burst, chunk_futs);
          SES_CHECK(accepted == burst);
          for (int64_t i = 0; i < burst; ++i) {
            const size_t slot = static_cast<size_t>(
                (q + i) % static_cast<int64_t>(window.size()));
            if (q + i >= static_cast<int64_t>(window.size()))
              local += window[slot].Get();
            window[slot] = std::move(chunk_futs[i]);
          }
        }
        for (auto& f : window)
          if (f.valid()) local += f.Get();
        sink.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& th : clients) th.join();
  }
  const double sched_wall_s = timer.ElapsedSeconds();
  const double sched_qps =
      static_cast<double>(sched_clients * open_queries) /
      std::max(sched_wall_s, 1e-9);
  const double sched_speedup = sched_qps / std::max(direct_qps, 1e-9);
  // Dominated by the open-loop flood (it outnumbers the earlier phases by
  // ~50x), so these quantiles describe the open-loop regime.
  const double open_p50_ms = e2e_hist.P50() / 1e3;
  const double open_p99_ms = e2e_hist.P99() / 1e3;

  const auto sched_stats = scheduler.stats();
  scheduler.Stop();
  const double avg_batch =
      sched_stats.batches > 0
          ? static_cast<double>(sched_stats.requests) /
                static_cast<double>(sched_stats.batches)
          : 0.0;
  const auto sched_slo = obs::SloTracker::Get().Snapshot("sched.e2e");
  std::printf(
      "scheduler (%lld clients): closed-loop %.0f qps (p50 %.3f ms) | "
      "open-loop direct %.0f qps vs scheduled %.0f qps (%.2fx) | avg batch "
      "%.1f over %lld batches (%lld full / %lld deadline / %lld shutdown)\n",
      static_cast<long long>(sched_clients), closed_qps, closed_p50_ms,
      direct_qps, sched_qps, sched_speedup, avg_batch,
      static_cast<long long>(sched_stats.batches),
      static_cast<long long>(sched_stats.full_flushes),
      static_cast<long long>(sched_stats.deadline_flushes),
      static_cast<long long>(sched_stats.shutdown_flushes));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const double p95 = all_hist.P95() / 1e3;
  const double p999 = all_hist.P999() / 1e3;
  out << "{\n"
      << "  \"dataset\": \"Cora\",\n"
      << "  \"scale\": " << profile.real_scale << ",\n"
      << "  \"nodes\": " << ds.graph.num_nodes() << ",\n"
      << "  \"hidden\": " << profile.hidden << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"queries_per_thread\": " << queries_per_thread << ",\n"
      << "  \"single_thread\": {\n"
      << "    \"tape_forward_ms\": " << tape_ms << ",\n"
      << "    \"session_forward_ms\": " << forward_ms << ",\n"
      << "    \"warm_predict_ms\": " << predict_ms << ",\n"
      << "    \"forward_speedup\": " << forward_speedup << ",\n"
      << "    \"predict_speedup\": " << predict_speedup << ",\n"
      << "    \"logits_max_abs_diff\": " << max_abs_diff << "\n"
      << "  },\n"
      << "  \"serving\": {\n"
      << "    \"queries\": " << total_queries << ",\n"
      << "    \"predict_queries\": " << predicts.load() << ",\n"
      << "    \"explain_queries\": " << explains.load() << ",\n"
      << "    \"wall_seconds\": " << wall_s << ",\n"
      << "    \"qps\": " << qps << ",\n"
      << "    \"p50_ms\": " << p50 << ",\n"
      << "    \"p95_ms\": " << p95 << ",\n"
      << "    \"p99_ms\": " << p99 << ",\n"
      << "    \"p999_ms\": " << p999 << "\n"
      << "  },\n"
      << "  \"slo\": {\n"
      << "    \"predict\": {\"requests\": " << predict_slo.requests
      << ", \"breaches\": " << predict_slo.breaches
      << ", \"burn_rate\": " << predict_slo.burn_rate << "},\n"
      << "    \"explain\": {\"requests\": " << explain_slo.requests
      << ", \"breaches\": " << explain_slo.breaches
      << ", \"burn_rate\": " << explain_slo.burn_rate << "}\n"
      << "  },\n"
      << "  \"pool\": {\n"
      << "    \"hits\": " << pool.hits << ",\n"
      << "    \"misses\": " << pool.misses << ",\n"
      << "    \"hit_rate\": " << pool_hit_rate << ",\n"
      << "    \"bytes_served\": " << pool.bytes_served << "\n"
      << "  },\n"
      << "  \"scheduler\": {\n"
      << "    \"clients\": " << sched_clients << ",\n"
      << "    \"max_batch_size\": " << sched_opt.max_batch_size << ",\n"
      << "    \"flush_deadline_us\": " << sched_opt.flush_deadline_us << ",\n"
      << "    \"workers\": " << sched_opt.num_workers << ",\n"
      << "    \"closed_loop\": {\n"
      << "      \"queries\": " << sched_clients * closed_queries << ",\n"
      << "      \"qps\": " << closed_qps << ",\n"
      << "      \"p50_ms\": " << closed_p50_ms << ",\n"
      << "      \"p99_ms\": " << closed_p99_ms << "\n"
      << "    },\n"
      << "    \"open_loop\": {\n"
      << "      \"queries\": " << sched_clients * open_queries << ",\n"
      << "      \"direct_qps\": " << direct_qps << ",\n"
      << "      \"sched_qps\": " << sched_qps << ",\n"
      << "      \"speedup_vs_direct\": " << sched_speedup << ",\n"
      << "      \"p50_ms\": " << open_p50_ms << ",\n"
      << "      \"p99_ms\": " << open_p99_ms << "\n"
      << "    },\n"
      << "    \"batches\": " << sched_stats.batches << ",\n"
      << "    \"avg_batch\": " << avg_batch << ",\n"
      << "    \"full_flushes\": " << sched_stats.full_flushes << ",\n"
      << "    \"deadline_flushes\": " << sched_stats.deadline_flushes << ",\n"
      << "    \"shutdown_flushes\": " << sched_stats.shutdown_flushes << ",\n"
      << "    \"queue_wait_p99_us\": " << queue_wait_hist.P99() << ",\n"
      << "    \"stages\": {\n"
      << "      \"admit\": {\"p50_us\": " << stage_admit_hist.P50()
      << ", \"p99_us\": " << stage_admit_hist.P99() << "},\n"
      << "      \"seal\": {\"p50_us\": " << stage_seal_hist.P50()
      << ", \"p99_us\": " << stage_seal_hist.P99() << "},\n"
      << "      \"queue\": {\"p50_us\": " << stage_queue_hist.P50()
      << ", \"p99_us\": " << stage_queue_hist.P99() << "},\n"
      << "      \"forward\": {\"p50_us\": " << stage_forward_hist.P50()
      << ", \"p99_us\": " << stage_forward_hist.P99() << "},\n"
      << "      \"resolve\": {\"p50_us\": " << stage_resolve_hist.P50()
      << ", \"p99_us\": " << stage_resolve_hist.P99() << "}\n"
      << "    },\n"
      << "    \"slo_e2e\": {\"requests\": " << sched_slo.requests
      << ", \"breaches\": " << sched_slo.breaches
      << ", \"burn_rate\": " << sched_slo.burn_rate << "}\n"
      << "  },\n"
      << "  \"session_cache\": {\n"
      << "    \"hits\": " << cache.cache_hits << ",\n"
      << "    \"misses\": " << cache.cache_misses << "\n"
      << "  }\n"
      << "}\n";
  std::printf("results written to %s\n", out_path.c_str());
  return 0;
}
