// Reproduces Table 9 (+ Figure 5): Silhouette and Calinski-Harabasz scores
// of the learned node representations on CiteSeer for SES (GCN), SES (GAT),
// SEGNN and ProtGNN, plus t-SNE scatter SVGs of the embeddings.
#include <cstdio>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"
#include "util/table.h"
#include "viz/graph_export.h"
#include "viz/tsne.h"

using namespace ses;

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Table 9 / Fig 5] %s\n", profile.Describe().c_str());

  auto ds = data::MakeRealWorldByName("CiteSeer", profile.real_scale, 1);
  auto cfg = profile.MakeTrainConfig(1);

  const double paper_sil[] = {0.316, 0.375, 0.131, 0.277};
  const double paper_ch[] = {1694.75, 2131.56, 456.37, 1090.13};
  const char* names[] = {"SES (GCN)", "SES (GAT)", "SEGNN", "ProtGNN"};

  util::Table table("Table 9: Statistical metrics for visualization (CiteSeer)");
  table.SetHeader({"Model", "Silhouette (ours)", "Silhouette (paper)",
                   "Calinski-Harabasz (ours)", "Calinski-Harabasz (paper)"});

  // Subsample for the O(N^2) t-SNE under the fast profile.
  const int64_t tsne_cap = profile.full ? 2000 : 700;
  std::vector<int64_t> sample;
  for (int64_t i = 0; i < std::min<int64_t>(ds.num_nodes(), tsne_cap); ++i)
    sample.push_back(i);
  std::vector<int64_t> sample_labels;
  for (int64_t i : sample)
    sample_labels.push_back(ds.labels[static_cast<size_t>(i)]);

  for (int m = 0; m < 4; ++m) {
    std::unique_ptr<models::NodeClassifier> model =
        bench::MakeModel(names[m]);
    model->Fit(ds, cfg);
    tensor::Tensor emb = model->Embeddings(ds);
    const double sil = metrics::SilhouetteScore(emb, ds.labels);
    const double ch = metrics::CalinskiHarabaszScore(emb, ds.labels);
    table.AddRow({names[m], util::Table::Num(sil, 3),
                  util::Table::Num(paper_sil[m], 3), util::Table::Num(ch, 2),
                  util::Table::Num(paper_ch[m], 2)});
    // Figure 5: t-SNE of a node sample.
    tensor::Tensor sub_emb = tensor::GatherRows(emb, sample);
    viz::TsneOptions topt;
    topt.iterations = profile.full ? 400 : 200;
    tensor::Tensor points = viz::Tsne(sub_emb, topt);
    const std::string path = bench::ArtifactDir() + "/fig5_tsne_" +
                             std::string(names[m]) + ".svg";
    util::WriteFile(path, viz::ScatterToSvg(points, sample_labels, names[m]));
    std::fprintf(stderr, "  %s done (fig5 -> %s)\n", names[m], path.c_str());
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/table9_clustering.csv");
  return 0;
}
