// Reproduces Table 5: Fidelity+ (%) of feature explanations on the
// real-world datasets — GNNExplainer, GraphLIME, SES and the SES -{L^m_xent}
// ablation, on both GCN and GAT backbones. Top-5 features per node are
// removed, per the paper's protocol for sparse citation features.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "explain/gnn_explainer.h"
#include "explain/graphlime.h"
#include "metrics/fidelity.h"
#include "util/table.h"

using namespace ses;

namespace {

const char* kDatasets[] = {"Cora", "CiteSeer", "PolBlogs", "CS"};

const std::map<std::string, std::map<std::string, double>> kPaper = {
    {"Cora", {{"GNNExplainer (GCN)", 8.3}, {"GraphLIME (GCN)", 1.6},
              {"SES (GCN) -{Lm}", 5.27}, {"SES (GCN)", 14.7},
              {"GNNExplainer (GAT)", 15.4}, {"GraphLIME (GAT)", 1.2},
              {"SES (GAT) -{Lm}", 1.30}, {"SES (GAT)", 17.2}}},
    {"CiteSeer", {{"GNNExplainer (GCN)", 4.3}, {"GraphLIME (GCN)", 1.7},
                  {"SES (GCN) -{Lm}", 1.79}, {"SES (GCN)", 16.1},
                  {"GNNExplainer (GAT)", 9.4}, {"GraphLIME (GAT)", 1.0},
                  {"SES (GAT) -{Lm}", 2.17}, {"SES (GAT)", 11.0}}},
    {"PolBlogs", {{"GNNExplainer (GCN)", 40.5}, {"GraphLIME (GCN)", 2.0},
                  {"SES (GCN) -{Lm}", 48.53}, {"SES (GCN)", 49.3},
                  {"GNNExplainer (GAT)", 44.8}, {"GraphLIME (GAT)", 2.8},
                  {"SES (GAT) -{Lm}", 39.13}, {"SES (GAT)", 44.6}}},
    {"CS", {{"GNNExplainer (GCN)", 0.17}, {"GraphLIME (GCN)", 0.09},
            {"SES (GCN) -{Lm}", 0.6}, {"SES (GCN)", 2.77},
            {"GNNExplainer (GAT)", 0.15}, {"GraphLIME (GAT)", 0.12},
            {"SES (GAT) -{Lm}", 0.3}, {"SES (GAT)", 2.96}}},
};

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  bench::Profile profile = bench::Profile::FromFlags(flags);
  std::printf("[Table 5] %s\n", profile.Describe().c_str());
  // The paper removes the top-5 of Cora's 1433 sparse dimensions. The
  // stand-ins carry ~18 nonzeros per node, so the calibrated equivalent
  // removes a comparable FRACTION of the node's features; --topk overrides.
  const int64_t top_k = flags.GetInt("topk", profile.full ? 5 : 10);
  std::printf("(top-%lld features removed per node)\n",
              static_cast<long long>(top_k));

  util::Table table("Table 5: Fidelity+ (%) of feature explanations");
  table.SetHeader({"Dataset", "Method", "Ours", "Paper"});
  for (const char* name : kDatasets) {
    auto ds = data::MakeRealWorldByName(name, profile.real_scale, 1);
    auto cfg = profile.MakeTrainConfig(1);
    // Per-node explainers run on the capped node set; Fidelity+ is then
    // evaluated on the test nodes inside that set.
    std::vector<int64_t> nodes =
        explain::NodesToExplain(ds, profile.explain_nodes_cap * 4);
    std::vector<bool> in_set(static_cast<size_t>(ds.num_nodes()), false);
    for (int64_t v : nodes) in_set[static_cast<size_t>(v)] = true;
    std::vector<int64_t> eval_idx;
    for (int64_t v : ds.test_idx)
      if (in_set[static_cast<size_t>(v)]) eval_idx.push_back(v);
    if (eval_idx.empty()) eval_idx = ds.test_idx;

    for (const std::string backbone : {"GCN", "GAT"}) {
      models::BackboneModel base(backbone);
      base.Fit(ds, cfg);
      auto add = [&](const std::string& method, double fid) {
        table.AddRow({name, method, util::Table::Num(fid, 2),
                      util::Table::Num(kPaper.at(name).at(method), 2)});
        std::fprintf(stderr, "  %s %s done\n", name, method.c_str());
      };
      {
        explain::GnnExplainer::Options opt;
        opt.epochs = profile.full ? 100 : 50;
        explain::GnnExplainer gex(base.encoder(), opt);
        add("GNNExplainer (" + backbone + ")",
            metrics::FidelityPlus(&base, ds, gex.ExplainFeaturesNnz(ds, nodes),
                                  top_k, eval_idx));
      }
      {
        explain::GraphLimeExplainer lime(base.encoder());
        add("GraphLIME (" + backbone + ")",
            metrics::FidelityPlus(&base, ds,
                                  lime.ExplainFeaturesNnz(ds, nodes), top_k,
                                  eval_idx));
      }
      for (const bool use_mask_xent : {false, true}) {
        core::SesOptions opt;
        opt.backbone = backbone;
        opt.use_mask_xent = use_mask_xent;
        core::SesModel ses(opt);
        ses.Fit(ds, cfg);
        std::vector<float> scores(ses.feature_mask_nnz().size());
        for (int64_t i = 0; i < ses.feature_mask_nnz().size(); ++i)
          scores[static_cast<size_t>(i)] = ses.feature_mask_nnz()[i];
        add(use_mask_xent ? "SES (" + backbone + ")"
                          : "SES (" + backbone + ") -{Lm}",
            metrics::FidelityPlus(&ses, ds, scores, top_k, eval_idx));
      }
    }
  }
  table.Print();
  table.WriteCsv(bench::ArtifactDir() + "/table5_fidelity.csv");
  return 0;
}
