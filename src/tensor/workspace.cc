#include "tensor/workspace.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "obs/metrics.h"

namespace ses::tensor::workspace {
namespace {

/// Retention policy: a thread parks at most kMaxBuffersPerBucket buffers of
/// any one size and kMaxBytesHeld bytes in total; overflow is freed. The
/// caps bound worst-case residency (a 2-layer GNN forward touches a few
/// dozen distinct shapes) while keeping every steady-state shape resident.
constexpr size_t kMaxBuffersPerBucket = 16;
constexpr int64_t kMaxBytesHeld = int64_t{256} << 20;  // 256 MiB per thread

std::atomic<int64_t> g_hits{0};
std::atomic<int64_t> g_misses{0};
std::atomic<int64_t> g_bytes_served{0};
// High-water marks already folded into the metrics registry.
std::atomic<int64_t> g_synced_hits{0};
std::atomic<int64_t> g_synced_misses{0};
std::atomic<int64_t> g_synced_bytes{0};

struct ThreadPool {
  std::unordered_map<int64_t, std::vector<std::vector<float>>> buckets;
  int64_t bytes_held = 0;
  int depth = 0;  ///< Scope nesting level; pooling active while > 0
};

ThreadPool& Pool() {
  thread_local ThreadPool pool;
  return pool;
}

}  // namespace

Scope::Scope() { ++Pool().depth; }
Scope::~Scope() { --Pool().depth; }

bool Active() { return Pool().depth > 0; }

std::vector<float> Acquire(int64_t elements) {
  if (elements <= 0) return {};
  ThreadPool& pool = Pool();
  if (pool.depth > 0) {
    auto it = pool.buckets.find(elements);
    if (it != pool.buckets.end() && !it->second.empty()) {
      std::vector<float> buffer = std::move(it->second.back());
      it->second.pop_back();
      pool.bytes_held -= static_cast<int64_t>(buffer.capacity() * sizeof(float));
      std::fill(buffer.begin(), buffer.end(), 0.0f);
      g_hits.fetch_add(1, std::memory_order_relaxed);
      g_bytes_served.fetch_add(elements * static_cast<int64_t>(sizeof(float)),
                               std::memory_order_relaxed);
      return buffer;
    }
    g_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return std::vector<float>(static_cast<size_t>(elements), 0.0f);
}

void Release(std::vector<float>&& buffer) {
  if (buffer.empty()) return;
  ThreadPool& pool = Pool();
  if (pool.depth <= 0) return;  // buffer freed by the caller's destructor
  const int64_t bytes = static_cast<int64_t>(buffer.capacity() * sizeof(float));
  auto& bucket = pool.buckets[static_cast<int64_t>(buffer.size())];
  if (bucket.size() >= kMaxBuffersPerBucket ||
      pool.bytes_held + bytes > kMaxBytesHeld)
    return;
  bucket.push_back(std::move(buffer));
  pool.bytes_held += bytes;
}

Stats GlobalStats() {
  Stats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.bytes_served = g_bytes_served.load(std::memory_order_relaxed);
  return s;
}

void ResetStats() {
  g_hits.store(0, std::memory_order_relaxed);
  g_misses.store(0, std::memory_order_relaxed);
  g_bytes_served.store(0, std::memory_order_relaxed);
  g_synced_hits.store(0, std::memory_order_relaxed);
  g_synced_misses.store(0, std::memory_order_relaxed);
  g_synced_bytes.store(0, std::memory_order_relaxed);
}

void Trim() {
  ThreadPool& pool = Pool();
  pool.buckets.clear();
  pool.bytes_held = 0;
}

int64_t ThreadBytesHeld() { return Pool().bytes_held; }

void SyncMetricsRegistry() {
  auto& registry = obs::MetricsRegistry::Get();
  auto sync = [&registry](const char* name, std::atomic<int64_t>& total,
                          std::atomic<int64_t>& synced) {
    const int64_t now = total.load(std::memory_order_relaxed);
    const int64_t prev = synced.exchange(now, std::memory_order_relaxed);
    if (now > prev) registry.GetCounter(name).Add(now - prev);
  };
  sync("ses.pool.hits", g_hits, g_synced_hits);
  sync("ses.pool.misses", g_misses, g_synced_misses);
  sync("ses.pool.bytes", g_bytes_served, g_synced_bytes);
}

}  // namespace ses::tensor::workspace
