#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "kernels/dispatch.h"
#include "obs/perfcount.h"
#include "util/logging.h"

namespace ses::tensor {
namespace {

using obs::KernelScope;

template <typename F>
Tensor UnaryOp(const Tensor& a, F f) {
  const int64_t n = a.size();
  // 1 FLOP/element is nominal (transcendentals cost more); 8 B = load+store.
  KernelScope scope("elementwise", "unary", static_cast<double>(n),
                    8.0 * static_cast<double>(n));
  Tensor out(a.rows(), a.cols());
  const float* src = a.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) \
    if (kernels::ShouldParallelize(static_cast<double>(n)))
  for (int64_t i = 0; i < n; ++i) dst[i] = f(src[i]);
  return out;
}

template <typename F>
Tensor BinaryOp(const Tensor& a, const Tensor& b, F f) {
  SES_CHECK(a.SameShape(b));
  const int64_t n = a.size();
  KernelScope scope("elementwise", "binary", static_cast<double>(n),
                    12.0 * static_cast<double>(n));
  Tensor out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) \
    if (kernels::ShouldParallelize(static_cast<double>(n)))
  for (int64_t i = 0; i < n; ++i) dst[i] = f(pa[i], pb[i]);
  return out;
}

/// Dispatched element-wise binary op: one table call over the whole buffer,
/// chunked+OpenMP inside the kernel. The scope's variant label carries the
/// active SIMD tier into metrics/bench.
Tensor DispatchedBinary(const Tensor& a, const Tensor& b,
                        void (*fn)(const float*, const float*, float*,
                                   int64_t),
                        const char* variant) {
  SES_CHECK(a.SameShape(b));
  const int64_t n = a.size();
  KernelScope scope("elementwise", variant, static_cast<double>(n),
                    12.0 * static_cast<double>(n));
  Tensor out(a.rows(), a.cols());
  fn(a.data(), b.data(), out.data(), n);
  return out;
}

/// Declared traffic of an m×k · k×n matmul: each operand streamed once.
inline double MatMulBytes(int64_t m, int64_t k, int64_t n) {
  return 4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                static_cast<double>(m) * n);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  SES_CHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  const kernels::Dispatch& d = kernels::GetDispatch();
  KernelScope scope("matmul", d.matmul_variant, 2.0 * m * k * n,
                    MatMulBytes(m, k, n));
  Tensor out(m, n);
  // i-k-j microkernel with a zero-skip on A, row-axpy inner loop on the
  // dispatched tier; OpenMP over rows inside the kernel.
  d.matmul(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  SES_CHECK(a.rows() == b.rows());
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  KernelScope scope("matmul", "at", 2.0 * m * k * n, MatMulBytes(k, m, n));
  Tensor out(m, n);
#pragma omp parallel for schedule(static) \
    if (kernels::ShouldParallelize(2.0 * m * k * n))
  for (int64_t i = 0; i < m; ++i) {
    float* crow = out.RowPtr(i);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a.At(kk, i);
      if (av == 0.0f) continue;
      const float* brow = b.RowPtr(kk);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  SES_CHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  KernelScope scope("matmul", "bt", 2.0 * m * k * n, MatMulBytes(m, k, n));
  Tensor out(m, n);
#pragma omp parallel for schedule(static) \
    if (kernels::ShouldParallelize(2.0 * m * k * n))
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = out.RowPtr(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.RowPtr(j);
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r)
    for (int64_t c = 0; c < a.cols(); ++c) out.At(c, r) = a.At(r, c);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  const kernels::Dispatch& d = kernels::GetDispatch();
  return DispatchedBinary(a, b, d.vec_add, d.binary_variant);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  const kernels::Dispatch& d = kernels::GetDispatch();
  return DispatchedBinary(a, b, d.vec_sub, d.binary_variant);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const kernels::Dispatch& d = kernels::GetDispatch();
  return DispatchedBinary(a, b, d.vec_mul, d.binary_variant);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x / y; });
}

Tensor AddRowVector(const Tensor& a, const Tensor& bias) {
  SES_CHECK(bias.size() == a.cols());
  Tensor out(a.rows(), a.cols());
  const float* pb = bias.data();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    float* dst = out.RowPtr(r);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] = src[c] + pb[c];
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x * s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x + s; });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::fabs(x); });
}

Tensor Sign(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(std::max(x, 1e-12f)); });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::sqrt(std::max(x, 0.0f)); });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) {
    return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
  });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); });
}

Tensor Relu(const Tensor& a) {
  const kernels::Dispatch& d = kernels::GetDispatch();
  const int64_t n = a.size();
  KernelScope scope("elementwise", d.unary_variant, static_cast<double>(n),
                    8.0 * static_cast<double>(n));
  Tensor out(a.rows(), a.cols());
  d.vec_relu(a.data(), out.data(), n);
  return out;
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  return UnaryOp(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp(a, [alpha](float x) {
    return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f);
  });
}

Tensor SoftmaxRows(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    float* dst = out.RowPtr(r);
    float mx = src[0];
    for (int64_t c = 1; c < a.cols(); ++c) mx = std::max(mx, src[c]);
    double total = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) {
      dst[c] = std::exp(src[c] - mx);
      total += dst[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] *= inv;
  }
  return out;
}

Tensor LogSoftmaxRows(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    float* dst = out.RowPtr(r);
    float mx = src[0];
    for (int64_t c = 1; c < a.cols(); ++c) mx = std::max(mx, src[c]);
    double total = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) total += std::exp(src[c] - mx);
    const float lse = mx + static_cast<float>(std::log(total));
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] = src[c] - lse;
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  Tensor out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += src[c];
    out[r] = static_cast<float>(acc);
  }
  return out;
}

Tensor SumCols(const Tensor& a) {
  Tensor out(1, a.cols());
  float* dst = out.data();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] += src[c];
  }
  return out;
}

Tensor MeanRows(const Tensor& a) {
  Tensor out = SumRows(a);
  out.ScaleInPlace(1.0f / static_cast<float>(a.cols()));
  return out;
}

std::vector<int64_t> ArgmaxRows(const Tensor& a) {
  std::vector<int64_t> result(static_cast<size_t>(a.rows()));
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    int64_t best = 0;
    for (int64_t c = 1; c < a.cols(); ++c)
      if (src[c] > src[best]) best = c;
    result[static_cast<size_t>(r)] = best;
  }
  return result;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& index) {
  return GatherRows(a, index.data(), static_cast<int64_t>(index.size()));
}

Tensor GatherRows(const Tensor& a, const int64_t* index, int64_t n) {
  // Pure data movement: 0 FLOPs, each gathered row read once + written once.
  // Row memcpy is already the optimal kernel on every tier; the dispatch
  // entry exists for uniformity, the variant label stays "copy".
  KernelScope scope("row_gather", "copy", 0.0,
                    8.0 * static_cast<double>(n) * a.cols());
  Tensor out(n, a.cols());
  for (int64_t i = 0; i < n; ++i)
    SES_CHECK(index[i] >= 0 && index[i] < a.rows());
  kernels::GetDispatch().gather_rows(a.data(), a.cols(), index, n, out.data());
  return out;
}

std::vector<int64_t> ArgmaxGatherRows(const Tensor& a, const int64_t* index,
                                      int64_t n) {
  // One compare per element; each gathered row is read once.
  KernelScope scope("row_gather", "argmax",
                    static_cast<double>(n) * a.cols(),
                    4.0 * static_cast<double>(n) * a.cols());
  std::vector<int64_t> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    SES_CHECK(index[i] >= 0 && index[i] < a.rows());
    const float* row = a.RowPtr(index[i]);
    int64_t best = 0;
    for (int64_t c = 1; c < a.cols(); ++c)
      if (row[c] > row[best]) best = c;
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

void ScatterAddRows(const Tensor& a, const std::vector<int64_t>& index,
                    Tensor* out) {
  SES_CHECK(out != nullptr && out->cols() == a.cols());
  SES_CHECK(static_cast<int64_t>(index.size()) == a.rows());
  // One add per element; source read + destination read-modify-write.
  const kernels::Dispatch& d = kernels::GetDispatch();
  KernelScope scope("scatter_add", d.scatter_variant,
                    static_cast<double>(a.rows()) * a.cols(),
                    12.0 * static_cast<double>(a.rows()) * a.cols());
  for (size_t i = 0; i < index.size(); ++i) {
    SES_CHECK(index[i] >= 0 && index[i] < out->rows());
    d.add_row(out->RowPtr(index[i]), a.RowPtr(static_cast<int64_t>(i)),
              a.cols());
  }
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  SES_CHECK(a.rows() == b.rows());
  Tensor out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::copy(a.RowPtr(r), a.RowPtr(r) + a.cols(), out.RowPtr(r));
    std::copy(b.RowPtr(r), b.RowPtr(r) + b.cols(), out.RowPtr(r) + a.cols());
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  SES_CHECK(a.cols() == b.cols());
  Tensor out(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t lo, int64_t hi) {
  SES_CHECK(0 <= lo && lo <= hi && hi <= a.rows());
  Tensor out(hi - lo, a.cols());
  std::copy(a.RowPtr(lo), a.RowPtr(lo) + out.size(), out.data());
  return out;
}

Tensor PairwiseSquaredDistances(const Tensor& a) {
  const int64_t n = a.rows();
  Tensor sq = SumRows(Mul(a, a));  // row squared norms
  Tensor dots = MatMulTransposedB(a, a);
  Tensor out(n, n);
#pragma omp parallel for schedule(static) \
    if (kernels::ShouldParallelize(static_cast<double>(n) * n))
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.RowPtr(i);
    const float* drow = dots.RowPtr(i);
    for (int64_t j = 0; j < n; ++j)
      row[j] = std::max(0.0f, sq[i] + sq[j] - 2.0f * drow[j]);
  }
  return out;
}

Tensor NormalizeRows(const Tensor& a, float eps) {
  Tensor out = a;
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.RowPtr(r);
    double acc = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) acc += static_cast<double>(src[c]) * src[c];
    const float norm = static_cast<float>(std::sqrt(acc));
    if (norm < eps) continue;
    float* dst = out.RowPtr(r);
    for (int64_t c = 0; c < a.cols(); ++c) dst[c] /= norm;
  }
  return out;
}

}  // namespace ses::tensor
