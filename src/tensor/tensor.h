#ifndef SES_TENSOR_TENSOR_H_
#define SES_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ses::tensor {

/// Dense row-major float32 matrix/vector.
///
/// The whole library operates on rank-1 and rank-2 tensors; a rank-1 tensor
/// of length n is treated interchangeably as an n x 1 column where a matrix
/// is expected. Storage is a flat std::vector<float> with value semantics —
/// at the scale of the graphs in the paper (thousands of nodes, hundreds of
/// feature dimensions) copies are cheap relative to the matmuls, and value
/// semantics keeps autograd's tape free of aliasing bugs.
class Tensor {
 public:
  /// Empty 0 x 0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Uninitialized (zero-filled) rows x cols tensor. Inside a
  /// workspace::Scope the backing buffer is drawn from the calling thread's
  /// workspace pool (and parked back on destruction), so repeated
  /// identically-shaped allocations in a serving loop stop hitting malloc.
  Tensor(int64_t rows, int64_t cols);

  ~Tensor();
  Tensor(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Builds from a nested initializer list (rows of equal length).
  Tensor(std::initializer_list<std::initializer_list<float>> values);

  /// --- factories -----------------------------------------------------------
  static Tensor Zeros(int64_t rows, int64_t cols);
  static Tensor Ones(int64_t rows, int64_t cols);
  static Tensor Full(int64_t rows, int64_t cols, float value);
  static Tensor Eye(int64_t n);
  /// i.i.d. N(0, 1) entries.
  static Tensor Randn(int64_t rows, int64_t cols, util::Rng* rng);
  /// i.i.d. U[lo, hi) entries.
  static Tensor Uniform(int64_t rows, int64_t cols, float lo, float hi,
                        util::Rng* rng);
  /// Xavier/Glorot uniform initialization (gain 1).
  static Tensor Xavier(int64_t fan_in, int64_t fan_out, util::Rng* rng);
  /// Column vector from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// --- shape ---------------------------------------------------------------
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }
  /// Reshapes in place; total size must be preserved.
  void Reshape(int64_t rows, int64_t cols);

  /// --- element access ------------------------------------------------------
  float& At(int64_t r, int64_t c);
  float At(int64_t r, int64_t c) const;
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* RowPtr(int64_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(int64_t r) const { return data_.data() + r * cols_; }

  /// --- in-place helpers ----------------------------------------------------
  void Fill(float value);
  void AddInPlace(const Tensor& other);          ///< this += other
  void AddScaled(const Tensor& other, float s);  ///< this += s * other
  void ScaleInPlace(float s);                    ///< this *= s

  /// --- summaries -----------------------------------------------------------
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  /// Frobenius norm.
  float Norm() const;
  /// Max |a - b| over entries; shapes must match.
  float MaxAbsDiff(const Tensor& other) const;

  /// Human-readable preview (truncated for large tensors).
  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

}  // namespace ses::tensor

#endif  // SES_TENSOR_TENSOR_H_
