#ifndef SES_TENSOR_OPS_H_
#define SES_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "kernels/dispatch.h"
#include "tensor/tensor.h"

namespace ses::tensor {

/// Raw (non-differentiable) kernels. The hot ops (MatMul, Add/Sub/Mul, Relu,
/// gather/scatter) route through the runtime-dispatched SIMD tables in
/// src/kernels; the autograd layer composes these into forward/backward
/// passes, and inference-only code paths (metrics, explainer scoring, t-SNE)
/// call them directly.

/// The OpenMP cutover now lives with the kernels (kernels::ShouldParallelize
/// guards every parallel loop, dense and sparse alike); this alias keeps the
/// historical spelling working for existing callers.
inline constexpr int64_t kOmpWorkThreshold = kernels::kOmpWorkThreshold;

/// C = A * B. Cache-blocked, OpenMP-parallel over rows.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A^T * B (without materializing A^T).
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// C = A * B^T (without materializing B^T).
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// Transpose.
Tensor Transpose(const Tensor& a);

/// Elementwise binary ops (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// out[r, c] = a[r, c] + bias[c]; `bias` is 1 x C or C x 1.
Tensor AddRowVector(const Tensor& a, const Tensor& bias);

/// Elementwise unary ops.
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sign(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  ///< natural log; clamps input at 1e-12.
Tensor Sqrt(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float slope);
Tensor Elu(const Tensor& a, float alpha = 1.0f);

/// Row-wise softmax / log-softmax (numerically stabilized).
Tensor SoftmaxRows(const Tensor& a);
Tensor LogSoftmaxRows(const Tensor& a);

/// Reductions.
Tensor SumRows(const Tensor& a);  ///< N x C -> N x 1
Tensor SumCols(const Tensor& a);  ///< N x C -> 1 x C
Tensor MeanRows(const Tensor& a);

/// Index of the max entry in each row.
std::vector<int64_t> ArgmaxRows(const Tensor& a);

/// out[i, :] = a[index[i], :].
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& index);

/// Pointer-span variant for callers that batch indices without materializing
/// a vector (the serving scheduler gathers logit slices for whole request
/// batches this way). Duplicate indices are allowed.
Tensor GatherRows(const Tensor& a, const int64_t* index, int64_t n);

/// argmax over row `index[i]` of `a` for each i — the batched form of the
/// serving predict readout (one pass over B rows instead of B locked calls).
std::vector<int64_t> ArgmaxGatherRows(const Tensor& a, const int64_t* index,
                                      int64_t n);

/// out[index[i], :] += a[i, :]; `out` must be pre-sized to rows x a.cols().
void ScatterAddRows(const Tensor& a, const std::vector<int64_t>& index,
                    Tensor* out);

/// Horizontal concatenation [a | b].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Vertical concatenation [a; b].
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// Rows r with lo <= r < hi.
Tensor SliceRows(const Tensor& a, int64_t lo, int64_t hi);

/// Squared Euclidean distance between each pair of rows: N x N output.
Tensor PairwiseSquaredDistances(const Tensor& a);

/// L2-normalizes each row (rows with norm < eps are left untouched).
Tensor NormalizeRows(const Tensor& a, float eps = 1e-12f);

}  // namespace ses::tensor

#endif  // SES_TENSOR_OPS_H_
