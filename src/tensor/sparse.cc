#include "tensor/sparse.h"

#include "kernels/dispatch.h"
#include "kernels/spmm.h"
#include "obs/perfcount.h"
#include "util/logging.h"

namespace ses::tensor {

SparseMatrix SparseMatrix::FromDense(const Tensor& dense) {
  SparseMatrix sm;
  sm.rows = dense.rows();
  sm.cols = dense.cols();
  sm.row_ptr.assign(static_cast<size_t>(sm.rows) + 1, 0);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    const float* src = dense.RowPtr(r);
    for (int64_t c = 0; c < dense.cols(); ++c) {
      if (src[c] != 0.0f) {
        sm.col_idx.push_back(c);
        sm.values.push_back(src[c]);
      }
    }
    sm.row_ptr[static_cast<size_t>(r) + 1] = sm.nnz();
  }
  return sm;
}

Tensor SparseMatrix::ToDense() const {
  Tensor out(rows, cols);
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e)
      out.At(r, col_idx[static_cast<size_t>(e)]) +=
          values[static_cast<size_t>(e)];
  return out;
}

Tensor SparseMatrix::MatMul(const Tensor& dense) const {
  SES_CHECK(cols == dense.rows());
  const int64_t f = dense.cols();
  const kernels::Dispatch& d = kernels::GetDispatch();
  // 2·nnz·f FLOPs; traffic = CSR stream (value + col index per entry, one
  // dense row gathered per entry) + the output written once. Values are
  // stored inline (perm == null); OpenMP over rows moved inside the kernel
  // behind kernels::ShouldParallelize — this loop used to fork a team
  // regardless of nnz.
  obs::KernelScope scope(
      "spmm", kernels::SpmmVariantName({kernels::SpmmAlgo::kCsr, d.tier}),
      2.0 * static_cast<double>(nnz()) * f,
      static_cast<double>(nnz()) * (12.0 + 4.0 * f) +
          4.0 * static_cast<double>(rows) * f);
  Tensor out(rows, dense.cols());
  d.spmm_csr(rows, row_ptr.data(), col_idx.data(), /*perm=*/nullptr,
             values.data(), dense.data(), f, out.data(), /*bias=*/nullptr,
             /*relu=*/false);
  return out;
}

SparseMatrix SparseMatrix::Identity(int64_t n) {
  SparseMatrix sm;
  sm.rows = sm.cols = n;
  sm.row_ptr.resize(static_cast<size_t>(n) + 1);
  sm.col_idx.resize(static_cast<size_t>(n));
  sm.values.assign(static_cast<size_t>(n), 1.0f);
  for (int64_t i = 0; i <= n; ++i) sm.row_ptr[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < n; ++i) sm.col_idx[static_cast<size_t>(i)] = i;
  return sm;
}

SparseMatrix SparseMatrix::SliceRows(int64_t lo, int64_t hi) const {
  SES_CHECK(0 <= lo && lo <= hi && hi <= rows);
  SparseMatrix sm;
  sm.rows = hi - lo;
  sm.cols = cols;
  sm.row_ptr.resize(static_cast<size_t>(sm.rows) + 1);
  sm.row_ptr[0] = 0;
  for (int64_t r = lo; r < hi; ++r) {
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      sm.col_idx.push_back(col_idx[static_cast<size_t>(e)]);
      sm.values.push_back(values[static_cast<size_t>(e)]);
    }
    sm.row_ptr[static_cast<size_t>(r - lo) + 1] = sm.nnz();
  }
  return sm;
}

SparseMatrix SparseMatrix::GatherRows(const std::vector<int64_t>& index) const {
  SparseMatrix sm;
  sm.rows = static_cast<int64_t>(index.size());
  sm.cols = cols;
  sm.row_ptr.resize(index.size() + 1);
  sm.row_ptr[0] = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    const int64_t r = index[i];
    SES_CHECK(r >= 0 && r < rows);
    for (int64_t e = row_ptr[static_cast<size_t>(r)];
         e < row_ptr[static_cast<size_t>(r) + 1]; ++e) {
      sm.col_idx.push_back(col_idx[static_cast<size_t>(e)]);
      sm.values.push_back(values[static_cast<size_t>(e)]);
    }
    sm.row_ptr[i + 1] = sm.nnz();
  }
  return sm;
}

}  // namespace ses::tensor
