#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/workspace.h"
#include "util/logging.h"

namespace ses::tensor {

Tensor::Tensor(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(workspace::Acquire(rows * cols)) {
  SES_CHECK(rows >= 0 && cols >= 0);
}

Tensor::~Tensor() {
  if (!data_.empty()) workspace::Release(std::move(data_));
}

Tensor::Tensor(std::initializer_list<std::initializer_list<float>> values) {
  rows_ = static_cast<int64_t>(values.size());
  cols_ = rows_ > 0 ? static_cast<int64_t>(values.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_ * cols_));
  for (const auto& row : values) {
    SES_CHECK(static_cast<int64_t>(row.size()) == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Tensor Tensor::Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }

Tensor Tensor::Ones(int64_t rows, int64_t cols) {
  return Full(rows, cols, 1.0f);
}

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(n, n);
  for (int64_t i = 0; i < n; ++i) t.At(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Randn(int64_t rows, int64_t cols, util::Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng->Normal());
  return t;
}

Tensor Tensor::Uniform(int64_t rows, int64_t cols, float lo, float hi,
                       util::Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t[i] = rng->Uniform(lo, hi);
  return t;
}

Tensor Tensor::Xavier(int64_t fan_in, int64_t fan_out, util::Rng* rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Uniform(fan_in, fan_out, -bound, bound, rng);
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t(static_cast<int64_t>(values.size()), 1);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

void Tensor::Reshape(int64_t rows, int64_t cols) {
  SES_CHECK(rows * cols == rows_ * cols_);
  rows_ = rows;
  cols_ = cols;
}

float& Tensor::At(int64_t r, int64_t c) {
  return data_[static_cast<size_t>(r * cols_ + c)];
}

float Tensor::At(int64_t r, int64_t c) const {
  return data_[static_cast<size_t>(r * cols_ + c)];
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  SES_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::AddScaled(const Tensor& other, float s) {
  SES_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) dst[i] += s * src[i];
}

void Tensor::ScaleInPlace(float s) {
  for (auto& v : data_) v *= s;
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::Mean() const {
  SES_CHECK(size() > 0);
  return Sum() / static_cast<float>(size());
}

float Tensor::Min() const {
  SES_CHECK(size() > 0);
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  SES_CHECK(size() > 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::MaxAbsDiff(const Tensor& other) const {
  SES_CHECK(SameShape(other));
  float worst = 0.0f;
  for (int64_t i = 0; i < size(); ++i)
    worst = std::max(worst, std::fabs(data_[static_cast<size_t>(i)] -
                                      other.data_[static_cast<size_t>(i)]));
  return worst;
}

std::string Tensor::ToString() const {
  std::ostringstream out;
  out << "Tensor(" << rows_ << "x" << cols_ << ")";
  const int64_t max_rows = std::min<int64_t>(rows_, 6);
  const int64_t max_cols = std::min<int64_t>(cols_, 8);
  for (int64_t r = 0; r < max_rows; ++r) {
    out << "\n  [";
    for (int64_t c = 0; c < max_cols; ++c) {
      out << At(r, c);
      if (c + 1 < max_cols) out << ", ";
    }
    if (max_cols < cols_) out << ", ...";
    out << "]";
  }
  if (max_rows < rows_) out << "\n  ...";
  return out.str();
}

}  // namespace ses::tensor
