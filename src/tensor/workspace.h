#ifndef SES_TENSOR_WORKSPACE_H_
#define SES_TENSOR_WORKSPACE_H_

#include <cstdint>
#include <vector>

namespace ses::tensor::workspace {

/// Thread-local, size-bucketed free-list of tensor storage buffers.
///
/// Inside an active Scope, `Tensor(rows, cols)` draws its flat buffer from
/// the calling thread's pool and `~Tensor` parks the buffer back, so a
/// steady-state forward pass (same op sequence, same shapes every query)
/// performs no heap allocation after its first iteration. Buffers are keyed
/// by exact element count — GNN inference replays identical shapes, so
/// exact-size buckets hit without internal fragmentation. Each thread owns
/// its free lists outright (no sharing, no locks); cumulative hit/miss/byte
/// statistics are process-wide atomics mirrored into the obs metrics
/// registry as `ses.pool.hits` / `ses.pool.misses` / `ses.pool.bytes` by
/// SyncMetricsRegistry().
///
/// Pool buffers are zero-filled on acquire, so pooled and malloc'd tensors
/// are bitwise indistinguishable to every kernel.

/// Enables pooling on the constructing thread for its lifetime; nestable
/// (inner scopes are no-ops). Buffers parked in the pool survive across
/// scopes until Trim() or thread exit.
class Scope {
 public:
  Scope();
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// True while the current thread is inside at least one Scope.
bool Active();

/// Zero-filled buffer of `elements` floats — pooled when Active(), a plain
/// allocation otherwise. Non-positive sizes return an empty buffer.
std::vector<float> Acquire(int64_t elements);

/// Returns a buffer to the current thread's pool. Outside a Scope (or when
/// the pool is at capacity) the buffer is simply freed.
void Release(std::vector<float>&& buffer);

/// Cumulative process-wide statistics.
struct Stats {
  int64_t hits = 0;          ///< acquires served from a free list
  int64_t misses = 0;        ///< acquires that fell through to the allocator
  int64_t bytes_served = 0;  ///< bytes handed out from pooled buffers
};
Stats GlobalStats();

/// Zeroes the cumulative statistics (tests / benchmark phases).
void ResetStats();

/// Frees every buffer parked in the current thread's pool.
void Trim();

/// Bytes currently parked in the current thread's pool.
int64_t ThreadBytesHeld();

/// Folds the cumulative stats into the obs metrics registry counters
/// `ses.pool.hits`, `ses.pool.misses`, `ses.pool.bytes` (delta since the
/// previous sync, so repeated calls are idempotent).
void SyncMetricsRegistry();

}  // namespace ses::tensor::workspace

#endif  // SES_TENSOR_WORKSPACE_H_
