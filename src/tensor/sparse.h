#ifndef SES_TENSOR_SPARSE_H_
#define SES_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ses::tensor {

/// CSR sparse float matrix. Used for node-feature matrices (bag-of-words
/// features are >95% zero on citation graphs), where keeping the first-layer
/// linear map sparse turns an O(N*F*H) matmul into O(nnz*H).
struct SparseMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;  ///< size rows + 1
  std::vector<int64_t> col_idx;  ///< size nnz
  std::vector<float> values;     ///< size nnz

  int64_t nnz() const { return static_cast<int64_t>(col_idx.size()); }

  /// Builds a CSR copy of a dense matrix (entries with |v| > 0 kept).
  static SparseMatrix FromDense(const Tensor& dense);

  /// Materializes as dense.
  Tensor ToDense() const;

  /// Dense product: this * dense (rows x dense.cols()).
  Tensor MatMul(const Tensor& dense) const;

  /// Identity pattern (used for PolBlogs' unit-matrix features).
  static SparseMatrix Identity(int64_t n);

  /// Row slice view copy: keeps rows in [lo, hi).
  SparseMatrix SliceRows(int64_t lo, int64_t hi) const;

  /// Copy with rows re-ordered/gathered: out row i = this row index[i].
  SparseMatrix GatherRows(const std::vector<int64_t>& index) const;
};

}  // namespace ses::tensor

#endif  // SES_TENSOR_SPARSE_H_
