#ifndef SES_CORE_MASK_GENERATOR_H_
#define SES_CORE_MASK_GENERATOR_H_

#include <memory>

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/sparse.h"
#include "util/rng.h"

namespace ses::core {

/// The global mask generator of SES (Fig. 3): one feature-mask head and one
/// structure-mask head, both reading the first-convolution output H and
/// co-trained with the graph encoder.
///
/// Feature head (Eq. 3): M_f = sigmoid(MLP(H)), evaluated only at the nonzero
/// positions of X (the only entries E_feat = M_f ⊙ X can expose), via the
/// fused FeatureMaskAtNnz kernel.
///
/// Structure head (Eq. 4): the paper scores a pair by a shared linear map
/// of cat(h_i, h_j); its stated mechanism is link-prediction-style
/// similarity ("make the node features within the neighborhood more similar
/// and distinguish them from the features of nodes outside the
/// neighborhood" — an inherently pairwise criterion). We realize it as
///   s_ij = sigmoid(gain * cos(W h_i, W h_j) + b)
/// with one shared projection W: a purely additive form f(h_i) + g(h_j)
/// cannot express pair similarity at all, and mixing additive terms in
/// makes the optimum bistable across seeds (the additive part can satisfy
/// the pair labels by scoring either cluster high). DESIGN.md §4 records
/// this refinement. W and b are shared between M_s and M_sneg exactly as in
/// the paper.
class MaskGenerator : public nn::Module {
 public:
  MaskGenerator(int64_t hidden_dim, int64_t feature_dim, util::Rng* rng);

  /// M_f restricted to `pattern`'s nonzeros: nnz x 1 in CSR order.
  autograd::Variable FeatureMask(
      const autograd::Variable& h,
      const std::shared_ptr<const tensor::SparseMatrix>& pattern) const;

  /// Structure-mask scores for an arbitrary pair list (k-hop pairs give M_s,
  /// negative pairs give M_sneg, the 1-hop adjacency gives the phase-2 edge
  /// mask): E x 1.
  autograd::Variable StructureMask(const autograd::Variable& h,
                                   const autograd::EdgeListPtr& pairs) const;

 private:
  nn::Linear feature_hidden_;       ///< hidden -> hidden (ReLU)
  autograd::Variable feature_w_;    ///< hidden x F (final sigmoid layer)
  autograd::Variable feature_b_;    ///< 1 x F
  autograd::Variable struct_proj_;  ///< hidden x hidden shared projection
  autograd::Variable struct_dot_;   ///< 1 x 1 gain on cos(W h_i, W h_j)
  autograd::Variable struct_b_;     ///< 1 x 1
};

}  // namespace ses::core

#endif  // SES_CORE_MASK_GENERATOR_H_
