#ifndef SES_CORE_PAIRS_H_
#define SES_CORE_PAIRS_H_

#include <cstdint>
#include <vector>

#include "graph/khop.h"
#include "graph/sampling.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ses::core {

/// Flattened anchor/positive/negative triplets produced by Algorithm 1. Row
/// j of the phase-2 triplet batch is (anchor[j], positive[j], negative[j]).
struct PosNegPairs {
  std::vector<int64_t> anchor;
  std::vector<int64_t> positive;
  std::vector<int64_t> negative;

  int64_t size() const { return static_cast<int64_t>(anchor.size()); }
};

/// Algorithm 1 — Construction of Positive-Negative Pairs.
///
/// For every node i: sort its k-hop neighbors by structure-mask weight
/// (Â^(k) = M̂_s · A^(k)), keep the top `sample_ratio` fraction as the
/// positive set S^p(i), and draw an equal number of negatives S^n(i) from
/// P_n(i). `structure_mask` holds one weight per k-hop pair in the order of
/// khop.PairEdges().
PosNegPairs ConstructPairs(const graph::KHopAdjacency& khop,
                           const tensor::Tensor& structure_mask,
                           const graph::NegativeSets& negatives,
                           double sample_ratio, util::Rng* rng);

}  // namespace ses::core

#endif  // SES_CORE_PAIRS_H_
