#include "core/ses_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "nn/optim.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/fault.h"
#include "robust/health.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ses::core {

namespace ag = ses::autograd;
namespace t = ses::tensor;

namespace {

/// Appends self-loop pairs to a pair list so it can serve as a
/// message-passing support (every node keeps its own features).
ag::EdgeListPtr WithSelfLoops(const ag::EdgeList& pairs) {
  auto out = std::make_shared<ag::EdgeList>();
  out->num_nodes = pairs.num_nodes;
  out->src = pairs.src;
  out->dst = pairs.dst;
  for (int64_t i = 0; i < pairs.num_nodes; ++i) {
    out->src.push_back(i);
    out->dst.push_back(i);
  }
  return out;
}

/// Extends an E x 1 mask Variable with constant-1 entries for the self-loops
/// appended by WithSelfLoops.
ag::Variable MaskWithSelfLoops(const ag::Variable& mask, int64_t num_nodes) {
  return ag::ConcatRows(mask,
                        ag::Variable::Constant(t::Tensor::Ones(num_nodes, 1)));
}

// ------------------------------------------------- checkpoint plumbing

/// Copies the current parameter values (registered order) out of the live
/// Variable handles.
std::vector<t::Tensor> SnapshotParams(const std::vector<ag::Variable>& params) {
  std::vector<t::Tensor> values;
  values.reserve(params.size());
  for (const auto& p : params) values.push_back(p.value());
  return values;
}

/// Positional, shape-checked restore of checkpointed values into the live
/// parameter handles.
void RestoreParams(std::vector<ag::Variable> params,
                   const std::vector<t::Tensor>& values) {
  SES_CHECK(params.size() == values.size());
  for (size_t i = 0; i < params.size(); ++i) {
    SES_CHECK(values[i].SameShape(params[i].value()));
    params[i].mutable_value() = values[i];
  }
}

std::vector<double> FlattenHistory(
    const std::vector<std::array<double, 3>>& history) {
  std::vector<double> flat;
  flat.reserve(history.size() * 3);
  for (const auto& row : history)
    flat.insert(flat.end(), row.begin(), row.end());
  return flat;
}

std::vector<std::array<double, 3>> UnflattenHistory(
    const std::vector<double>& flat) {
  std::vector<std::array<double, 3>> history(flat.size() / 3);
  for (size_t i = 0; i < history.size(); ++i)
    history[i] = {flat[3 * i], flat[3 * i + 1], flat[3 * i + 2]};
  return history;
}

/// Mirrors the robustness and serving counters into a telemetry record.
void FillRobustCounters(obs::EpochRecord* record) {
  t::workspace::SyncMetricsRegistry();
  auto& registry = obs::MetricsRegistry::Get();
  record->nan_skips = registry.GetCounter("ses.train.nan_skips").Value();
  record->rollbacks = registry.GetCounter("ses.train.rollbacks").Value();
  record->ckpt_writes = registry.GetCounter("ses.ckpt.writes").Value();
  record->pool_hits = registry.GetCounter("ses.pool.hits").Value();
  record->pool_misses = registry.GetCounter("ses.pool.misses").Value();
  record->infer_cache_hits =
      registry.GetCounter("ses.infer.cache_hits").Value();
}

/// Feeds one training forward's health signals (dead hidden units, GAT
/// attention entropy) to the ModelHealthMonitor. No-op while disabled.
void ObserveForwardHealth(const models::Encoder& encoder,
                          const models::Encoder::Output& out,
                          const ag::EdgeListPtr& edges) {
  auto& monitor = obs::ModelHealthMonitor::Get();
  if (!monitor.enabled()) return;
  const t::Tensor& hidden = out.hidden.value();
  monitor.ObserveActivations(hidden.data(), hidden.rows(), hidden.cols());
  const t::Tensor att = encoder.LastAttention();
  if (att.size() > 0 && att.size() == edges->size())
    monitor.ObserveAttention(att.data(), edges->dst.data(), edges->size());
}

/// Copies a finalized health window into the telemetry record.
void FillHealth(const obs::ModelHealthMonitor::EpochHealth& health,
                obs::EpochRecord* record) {
  for (const auto& p : health.params) {
    if (p.grad_norm >= 0.0)
      record->layer_grad_norms.emplace_back(p.name, p.grad_norm);
    if (p.update_ratio >= 0.0)
      record->update_ratios.emplace_back(p.name, p.update_ratio);
  }
  record->dead_fraction = health.dead_fraction;
  record->attn_entropy = health.attn_entropy;
}

/// Recovery context threaded through the phase-2 loop. `base` carries the
/// state a resumed run cannot recompute (frozen masks, pair lists, phase-1
/// loss history) into every phase-2 checkpoint write.
struct Phase2Context {
  robust::CheckpointManager* mgr = nullptr;
  robust::FaultPlan* faults = nullptr;
  const robust::TrainingCheckpoint* resume = nullptr;
  robust::TrainingCheckpoint base;
};

/// Phase 2 (Eq. 13) with optional checkpoint/restore + fault injection. The
/// public EnhancedPredictiveLearning entry point (the +{epl} ablation) calls
/// this with a null context.
void Phase2LoopImpl(models::Encoder* encoder, const data::Dataset& ds,
                    const FrozenMasks& masks, const PosNegPairs& pairs,
                    const SesOptions& options,
                    const models::TrainConfig& config, util::Rng* rng,
                    Phase2Context* ctx) {
  SES_TRACE_SPAN("ses/phase2");
  auto adj_edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  nn::FeatureInput input =
      (options.use_feature_mask && masks.feature_nnz.size() > 0)
          ? nn::FeatureInput::Sparse(
                ds.features, ag::Variable::Constant(masks.feature_nnz))
          : models::MakeInput(ds);
  ag::Variable adj_mask;
  if (options.use_structure_mask && masks.structure_adj.size() > 0)
    adj_mask = ag::Variable::Constant(masks.structure_adj);

  nn::Adam optimizer(encoder->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  optimizer.set_max_grad_norm(config.max_grad_norm);
  robust::HealthMonitor health(
      {config.max_bad_steps, config.rollback_lr_decay});
  models::ParameterSnapshot best;
  double best_val = -1.0;
  int64_t start_epoch = 0;

  auto make_checkpoint = [&](int64_t next_epoch) {
    robust::TrainingCheckpoint c = ctx->base;
    c.next_epoch = next_epoch;
    c.params = SnapshotParams(encoder->Parameters());
    c.optim.step_count = optimizer.step_count();
    c.optim.m = optimizer.moment1();
    c.optim.v = optimizer.moment2();
    c.rng = rng->State();
    c.best_val = best_val;
    c.lr = optimizer.lr();
    if (!best.empty()) c.tensor_lists["best_encoder"] = best.values();
    return c;
  };
  auto restore_checkpoint = [&](const robust::TrainingCheckpoint& c) {
    RestoreParams(encoder->Parameters(), c.params);
    optimizer.RestoreState(c.optim.step_count, c.optim.m, c.optim.v);
    optimizer.set_lr(c.lr);
    rng->SetState(c.rng);
    best_val = c.best_val;
    if (auto it = c.tensor_lists.find("best_encoder");
        it != c.tensor_lists.end())
      best.set_values(it->second);
    else
      best.set_values({});
  };
  auto write_checkpoint = [&](int64_t next_epoch) {
    if (ctx == nullptr || ctx->mgr == nullptr) return;
    const std::string path = ctx->mgr->Write(make_checkpoint(next_epoch));
    if (ctx->faults)
      ctx->faults->MaybeCorruptCheckpoint("phase2", next_epoch, path);
  };

  if (ctx && ctx->resume) {
    restore_checkpoint(*ctx->resume);
    start_epoch = ctx->resume->next_epoch;
    SES_LOG_INFO << "resuming phase 2 at epoch " << start_epoch
                 << " from checkpoint";
  } else {
    // Baseline: the phase-1 encoder itself (under masked inference). Phase 2
    // keeps whatever validates best, so it can refine but never regress.
    if (!ds.val_idx.empty()) {
      ag::InferenceGuard no_grad;
      auto initial = encoder->Forward(input, adj_edges, adj_mask, 0.0f,
                                      /*training=*/false, rng);
      best_val =
          models::Accuracy(initial.logits.value(), ds.labels, ds.val_idx);
      best.Capture(*encoder);
    }
    // Phase-boundary checkpoint: a kill inside phase 2 must never have to
    // replay phase 1.
    write_checkpoint(0);
  }

  const int64_t ckpt_every = std::max<int64_t>(1, config.checkpoint_every);
  auto& health_monitor = obs::ModelHealthMonitor::Get();
  const std::vector<std::string> param_names = encoder->ParameterNames();
  for (int64_t epoch = start_epoch; epoch < options.epl_epochs; ++epoch) {
    SES_TRACE_SPAN("ses/phase2_epoch");
    if (ctx && ctx->faults) ctx->faults->MaybeCrash("phase2", epoch);
    util::Timer epoch_timer;
    health_monitor.BeginEpoch("SES");
    auto out = encoder->Forward(input, adj_edges, adj_mask, config.dropout,
                                /*training=*/true, rng);
    ObserveForwardHealth(*encoder, out, adj_edges);
    ag::Variable loss;
    if (options.use_triplet && pairs.size() > 0) {
      // Eq. 11: gather anchor / positive / negative rows of Ẑ.
      ag::Variable a = ag::GatherRows(out.logits, pairs.anchor);
      ag::Variable p = ag::GatherRows(out.logits, pairs.positive);
      ag::Variable n = ag::GatherRows(out.logits, pairs.negative);
      ag::Variable l_triplet = ag::TripletLoss(a, p, n, options.margin);
      if (options.use_xent_phase2) {
        ag::Variable l_xent = ag::NllLoss(ag::LogSoftmaxRows(out.logits),
                                          ds.labels, ds.train_idx);
        loss = ag::Add(ag::Scale(l_triplet, options.beta),
                       ag::Scale(l_xent, 1.0f - options.beta));
      } else {
        loss = ag::Scale(l_triplet, options.beta);
      }
    } else {
      loss = ag::NllLoss(ag::LogSoftmaxRows(out.logits), ds.labels,
                         ds.train_idx);
    }
    if (ctx && ctx->faults && ctx->faults->TakeNanLoss("phase2", epoch))
      loss.mutable_value()[0] = std::numeric_limits<float>::quiet_NaN();
    ag::Backward(loss);
    if (ctx && ctx->faults && ctx->faults->TakeNanGrad("phase2", epoch)) {
      auto params = encoder->Parameters();
      if (!params.empty()) {
        params[0].mutable_grad()[0] = std::numeric_limits<float>::quiet_NaN();
      }
    }
    const double grad_norm = optimizer.GradNorm();
    const double loss_value = loss.value()[0];
    if (health_monitor.enabled())
      obs::ObserveParamsPreStep(param_names, encoder->Parameters());
    bool stepped = false;
    switch (health.Observe(loss_value, grad_norm)) {
      case robust::HealthMonitor::Action::kProceed:
        optimizer.Step();
        stepped = true;
        if (health_monitor.enabled())
          obs::ObserveParamsPostStep(param_names, encoder->Parameters());
        break;
      case robust::HealthMonitor::Action::kRollback:
        if (ctx && ctx->mgr) {
          auto good = ctx->mgr->LoadLatest();
          if (good && good->phase == "phase2") {
            optimizer.ZeroGrad();
            restore_checkpoint(*good);
            optimizer.set_lr(optimizer.lr() * config.rollback_lr_decay);
            health.NoteRollback();
            SES_LOG_WARN << "phase-2 rollback to epoch " << good->next_epoch
                         << " with lr " << optimizer.lr();
            epoch = good->next_epoch - 1;
            continue;
          }
        }
        [[fallthrough]];
      case robust::HealthMonitor::Action::kSkip:
        optimizer.ZeroGrad();
        break;
    }
    if (stepped && !ds.val_idx.empty()) {
      const double val =
          models::Accuracy(out.logits.value(), ds.labels, ds.val_idx);
      if (val > best_val) {
        best_val = val;
        best.Capture(*encoder);
      }
    }
    obs::ModelHealthMonitor::EpochHealth epoch_health;
    if (health_monitor.enabled()) epoch_health = health_monitor.EndEpoch();
    if (obs::Telemetry::Get().active()) {
      obs::EpochRecord record;
      record.model = "SES";
      record.phase = "phase2";
      record.epoch = epoch;
      record.loss = loss_value;
      record.grad_norm = grad_norm;
      record.epoch_seconds = epoch_timer.ElapsedSeconds();
      record.val_metric = best_val;
      FillRobustCounters(&record);
      FillHealth(epoch_health, &record);
      obs::Telemetry::Get().Emit(record);
    }
    if (config.verbose)
      SES_LOG_INFO << "phase-2 epoch " << epoch << " loss " << loss_value;
    if ((epoch + 1) % ckpt_every == 0) write_checkpoint(epoch + 1);
  }
  if (!best.empty()) best.Restore(encoder);
}

}  // namespace

SesModel::SesModel(SesOptions options) : options_(std::move(options)) {}

void SesModel::Fit(const data::Dataset& ds, const models::TrainConfig& config) {
  SES_TRACE_SPAN("ses/fit");
  config_ = config;
  util::Rng rng(config.seed + 7);
  encoder_ = models::MakeEncoder(options_.backbone, ds.num_features(),
                                 config.hidden, ds.num_classes, &rng);
  mask_generator_ =
      std::make_unique<MaskGenerator>(config.hidden, ds.num_features(), &rng);
  adj_edges_ = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  khop_ = std::make_unique<graph::KHopAdjacency>(ds.graph, options_.k,
                                                 options_.max_khop_neighbors);
  // Only training labels may steer negative sampling (semi-supervised).
  std::vector<int64_t> train_labels(static_cast<size_t>(ds.num_nodes()), -1);
  for (int64_t i : ds.train_idx)
    train_labels[static_cast<size_t>(i)] = ds.labels[static_cast<size_t>(i)];
  graph::NegativeSets negatives =
      graph::SampleNegativeSets(*khop_, train_labels, &rng);

  // Negative pair list aligned one-to-one with P_n.
  const int64_t nk = khop_->num_pairs();
  auto neg_pairs = std::make_shared<ag::EdgeList>();
  neg_pairs->num_nodes = ds.num_nodes();
  for (int64_t i = 0; i < ds.num_nodes(); ++i) {
    for (int64_t v : negatives.Of(i)) {
      neg_pairs->src.push_back(i);
      neg_pairs->dst.push_back(v);
    }
  }
  // Subgraph-loss targets (Eq. 7): Y_s / Y_sneg are derived from node
  // labels. A real k-hop pair is a positive when its endpoints agree in
  // structural role — same class, or both in minority ("motif") classes; a
  // base-class <-> motif-class pair and every sampled negative is a 0. Only
  // pairs whose endpoints both carry a training label contribute (the task
  // is semi-supervised; val/test labels must not leak into training).
  std::vector<bool> in_train(static_cast<size_t>(ds.num_nodes()), false);
  for (int64_t i : ds.train_idx) in_train[static_cast<size_t>(i)] = true;
  std::vector<int64_t> class_count(static_cast<size_t>(ds.num_classes), 0);
  for (int64_t i : ds.train_idx)
    ++class_count[static_cast<size_t>(ds.labels[static_cast<size_t>(i)])];
  const int64_t avg_count =
      static_cast<int64_t>(ds.train_idx.size()) / std::max<int64_t>(1, ds.num_classes);
  auto is_minority = [&](int64_t node) {
    return class_count[static_cast<size_t>(ds.labels[static_cast<size_t>(node)])] <
           avg_count;
  };
  std::vector<int64_t> sub_keep;
  std::vector<float> sub_target_values;
  {
    const auto& kp = *khop_->PairEdges();
    for (int64_t e = 0; e < nk; ++e) {
      const int64_t i = kp.src[static_cast<size_t>(e)];
      const int64_t j = kp.dst[static_cast<size_t>(e)];
      if (!in_train[static_cast<size_t>(i)] || !in_train[static_cast<size_t>(j)])
        continue;
      const bool affine = ds.labels[static_cast<size_t>(i)] ==
                              ds.labels[static_cast<size_t>(j)] ||
                          (is_minority(i) && is_minority(j));
      sub_keep.push_back(e);
      sub_target_values.push_back(affine ? 1.0f : 0.0f);
    }
    for (int64_t e = 0; e < neg_pairs->size(); ++e) {
      const int64_t i = neg_pairs->src[static_cast<size_t>(e)];
      const int64_t j = neg_pairs->dst[static_cast<size_t>(e)];
      if (!in_train[static_cast<size_t>(i)] || !in_train[static_cast<size_t>(j)])
        continue;
      sub_keep.push_back(nk + e);
      sub_target_values.push_back(0.0f);
    }
  }
  t::Tensor sub_target(static_cast<int64_t>(sub_target_values.size()), 1);
  for (size_t i = 0; i < sub_target_values.size(); ++i)
    sub_target[static_cast<int64_t>(i)] = sub_target_values[i];

  const ag::EdgeListPtr khop_support = WithSelfLoops(*khop_->PairEdges());
  nn::FeatureInput plain_input = models::MakeInput(ds);

  std::vector<ag::Variable> params = encoder_->Parameters();
  {
    auto mg = mask_generator_->Parameters();
    params.insert(params.end(), mg.begin(), mg.end());
  }
  nn::Adam optimizer(params, config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  optimizer.set_max_grad_norm(config.max_grad_norm);

  // ------------------------------------------------- fault-tolerance wiring
  std::unique_ptr<robust::CheckpointManager> ckpt_mgr;
  if (!config.checkpoint_dir.empty())
    ckpt_mgr = std::make_unique<robust::CheckpointManager>(
        config.checkpoint_dir, config.checkpoint_keep);
  robust::FaultPlan faults = robust::FaultPlan::FromEnv();
  robust::HealthMonitor health(
      {config.max_bad_steps, config.rollback_lr_decay});
  const int64_t ckpt_every = std::max<int64_t>(1, config.checkpoint_every);

  // ---------------------------------------------------------------- phase 1
  util::Timer timer;
  loss_history_.clear();
  mask_snapshots_.clear();
  models::ParameterSnapshot best;
  models::ParameterSnapshot best_masks;
  double best_val = -1.0;

  // Everything the phase-1 loop mutates between epochs goes into (or comes
  // back out of) one checkpoint, so a killed-and-resumed run replays the
  // remaining epochs bitwise identically to an uninterrupted one.
  auto make_phase1_checkpoint = [&](int64_t next_epoch) {
    robust::TrainingCheckpoint c;
    c.model = name();
    c.phase = "phase1";
    c.next_epoch = next_epoch;
    c.params = SnapshotParams(params);
    c.optim.step_count = optimizer.step_count();
    c.optim.m = optimizer.moment1();
    c.optim.v = optimizer.moment2();
    c.rng = rng.State();
    c.best_val = best_val;
    c.lr = optimizer.lr();
    if (!best.empty()) {
      c.tensor_lists["best_encoder"] = best.values();
      c.tensor_lists["best_masks"] = best_masks.values();
    }
    c.double_lists["loss_history"] = FlattenHistory(loss_history_);
    c.tensor_lists["mask_snapshots"] = mask_snapshots_;
    return c;
  };
  auto restore_phase1_checkpoint = [&](const robust::TrainingCheckpoint& c) {
    RestoreParams(params, c.params);
    optimizer.RestoreState(c.optim.step_count, c.optim.m, c.optim.v);
    optimizer.set_lr(c.lr);
    rng.SetState(c.rng);
    best_val = c.best_val;
    if (auto it = c.tensor_lists.find("best_encoder");
        it != c.tensor_lists.end()) {
      best.set_values(it->second);
      best_masks.set_values(c.tensor_lists.at("best_masks"));
    } else {
      best.set_values({});
      best_masks.set_values({});
    }
    if (auto it = c.double_lists.find("loss_history");
        it != c.double_lists.end())
      loss_history_ = UnflattenHistory(it->second);
    if (auto it = c.tensor_lists.find("mask_snapshots");
        it != c.tensor_lists.end())
      mask_snapshots_ = it->second;
  };

  int64_t start_epoch = 0;
  std::optional<robust::TrainingCheckpoint> resumed;
  if (ckpt_mgr && config.auto_resume) resumed = ckpt_mgr->LoadLatest();
  const bool resume_phase2 = resumed && resumed->phase == "phase2";
  if (resumed && resumed->phase == "phase1") {
    restore_phase1_checkpoint(*resumed);
    start_epoch = resumed->next_epoch;
    SES_LOG_INFO << name() << " resuming phase 1 at epoch " << start_epoch
                 << " from " << config.checkpoint_dir;
  }

  if (!resume_phase2) {
    const float alpha = options_.alpha;
    std::optional<obs::ScopedSpan> phase1_span;
    phase1_span.emplace("ses/phase1");
    auto& health_monitor = obs::ModelHealthMonitor::Get();
    // Names aligned with `params` (encoder then mask generator).
    std::vector<std::string> param_names = encoder_->ParameterNames();
    for (const std::string& n : mask_generator_->ParameterNames())
      param_names.push_back("maskgen." + n);
    util::Timer block_timer;  // verbose reporting: time per 20-epoch block
    for (int64_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
      SES_TRACE_SPAN("ses/phase1_epoch");
      faults.MaybeCrash("phase1", epoch);
      util::Timer epoch_timer;
      health_monitor.BeginEpoch(name());
      // Plain pass: Z and H (Eq. 2).
      auto out = encoder_->Forward(plain_input, adj_edges_, {}, config.dropout,
                                   /*training=*/true, &rng);
      ObserveForwardHealth(*encoder_, out, adj_edges_);
      ag::Variable l_xent = ag::NllLoss(ag::LogSoftmaxRows(out.logits),
                                        ds.labels, ds.train_idx);

      // Masks from H (Eqs. 3-5).
      ag::Variable m_s = mask_generator_->StructureMask(out.hidden,
                                                        khop_->PairEdges());
      ag::Variable m_sneg =
          mask_generator_->StructureMask(out.hidden, neg_pairs);
      ag::Variable stacked = ag::ConcatRows(m_s, m_sneg);
      ag::Variable l_sub =
          ag::Scale(ag::L1Loss(ag::GatherRows(stacked, sub_keep), sub_target),
                    options_.lambda_sub);
      if (options_.lambda_size > 0.0f)
        l_sub =
            ag::Add(l_sub, ag::Scale(ag::MeanAll(m_s), options_.lambda_size));
      if (options_.lambda_entropy > 0.0f) {
        // Bernoulli element entropy -m log m - (1-m) log(1-m), pushing mask
        // entries toward the {0, 1} poles.
        ag::Variable one_minus = ag::AddScalar(ag::Neg(m_s), 1.0f);
        ag::Variable entropy =
            ag::Neg(ag::Add(ag::Mul(m_s, ag::Log(m_s)),
                            ag::Mul(one_minus, ag::Log(one_minus))));
        l_sub = ag::Add(
            l_sub, ag::Scale(ag::MeanAll(entropy), options_.lambda_entropy));
      }

      ag::Variable m_f;
      if (options_.use_feature_mask) {
        m_f = mask_generator_->FeatureMask(out.hidden, ds.features);
        if (options_.lambda_feat_size > 0.0f)
          l_sub = ag::Add(l_sub, ag::Scale(ag::MeanAll(m_f),
                                           options_.lambda_feat_size));
      }

      // Masked pass Z_m = GE(M_f ⊙ X, M̂_s ⊙ A^(k)) (Eq. 8).
      ag::Variable loss;
      if (options_.use_mask_xent) {
        nn::FeatureInput masked_input =
            options_.use_feature_mask
                ? nn::FeatureInput::Sparse(ds.features, m_f)
                : plain_input;
        ag::Variable khop_mask = MaskWithSelfLoops(m_s, ds.num_nodes());
        auto masked_out = encoder_->Forward(
            masked_input, khop_support, khop_mask, config.dropout,
            /*training=*/true, &rng, /*renormalize_mask=*/false);
        ag::Variable l_mask_xent = ag::NllLoss(
            ag::LogSoftmaxRows(masked_out.logits), ds.labels, ds.train_idx);
        loss = ag::Add(ag::Scale(ag::Add(l_sub, l_mask_xent), alpha),
                       ag::Scale(l_xent, 1.0f - alpha));
      } else {
        loss =
            ag::Add(ag::Scale(l_sub, alpha), ag::Scale(l_xent, 1.0f - alpha));
      }
      if (faults.TakeNanLoss("phase1", epoch))
        loss.mutable_value()[0] = std::numeric_limits<float>::quiet_NaN();
      ag::Backward(loss);
      if (faults.TakeNanGrad("phase1", epoch) && !params.empty())
        params[0].mutable_grad()[0] = std::numeric_limits<float>::quiet_NaN();
      const double grad_norm = optimizer.GradNorm();
      const double loss_value = loss.value()[0];
      if (health_monitor.enabled())
        obs::ObserveParamsPreStep(param_names, params);
      bool stepped = false;
      switch (health.Observe(loss_value, grad_norm)) {
        case robust::HealthMonitor::Action::kProceed:
          optimizer.Step();
          stepped = true;
          if (health_monitor.enabled())
            obs::ObserveParamsPostStep(param_names, params);
          break;
        case robust::HealthMonitor::Action::kRollback:
          if (ckpt_mgr) {
            auto good = ckpt_mgr->LoadLatest();
            if (good && good->phase == "phase1") {
              optimizer.ZeroGrad();
              restore_phase1_checkpoint(*good);
              optimizer.set_lr(optimizer.lr() * config.rollback_lr_decay);
              health.NoteRollback();
              SES_LOG_WARN << name() << " phase-1 rollback to epoch "
                           << good->next_epoch << " with lr "
                           << optimizer.lr();
              epoch = good->next_epoch - 1;
              continue;
            }
          }
          [[fallthrough]];
        case robust::HealthMonitor::Action::kSkip:
          optimizer.ZeroGrad();
          break;
      }

      // Bookkeeping for Fig. 7 and best-val selection.
      double val_loss = 0.0;
      if (!ds.val_idx.empty()) {
        ag::Variable vl = ag::NllLoss(ag::LogSoftmaxRows(out.logits), ds.labels,
                                      ds.val_idx);
        val_loss = vl.value()[0];
        if (stepped) {
          const double val_acc = models::Accuracy(out.logits.value(), ds.labels,
                                                  ds.val_idx);
          if (val_acc > best_val) {
            best_val = val_acc;
            best.Capture(*encoder_);
            best_masks.Capture(*mask_generator_);
          }
        }
      }
      loss_history_.push_back(
          {static_cast<double>(epoch), loss_value, val_loss});
      if (options_.use_feature_mask &&
          (epoch == 0 || epoch == config.epochs / 2 ||
           epoch == config.epochs - 1))
        mask_snapshots_.push_back(m_f.value());
      obs::ModelHealthMonitor::EpochHealth epoch_health;
      if (health_monitor.enabled()) epoch_health = health_monitor.EndEpoch();
      if (obs::Telemetry::Get().active()) {
        obs::EpochRecord record;
        record.model = name();
        record.phase = "phase1";
        record.epoch = epoch;
        record.loss = loss_value;
        record.grad_norm = grad_norm;
        record.epoch_seconds = epoch_timer.ElapsedSeconds();
        record.val_metric = best_val;
        FillRobustCounters(&record);
        FillHealth(epoch_health, &record);
        obs::Telemetry::Get().Emit(record);
      }
      if (config.verbose && epoch % 20 == 0) {
        SES_LOG_INFO << name() << " phase-1 epoch " << epoch << " loss "
                     << loss_value << " ("
                     << util::FormatDuration(block_timer.ElapsedSeconds())
                     << " for last block)";
        block_timer.Reset();
      }
      if (ckpt_mgr && (epoch + 1) % ckpt_every == 0) {
        const std::string path =
            ckpt_mgr->Write(make_phase1_checkpoint(epoch + 1));
        faults.MaybeCorruptCheckpoint("phase1", epoch + 1, path);
      }
    }
    phase1_span.reset();
    // Restore the best-validation encoder AND the matching mask generator so
    // the frozen masks are coherent with the restored encoder's H.
    if (!best.empty()) {
      best.Restore(encoder_.get());
      best_masks.Restore(mask_generator_.get());
    }
  }
  et_seconds_ = timer.ElapsedSeconds();

  // -------------------------------------------- freeze masks (inference)
  timer.Reset();
  if (!resume_phase2) {
    SES_TRACE_SPAN("ses/freeze_masks");
    // Mask freezing only reads values out of the forward; no gradient flows
    // back, so the whole readout runs tape-free.
    ag::InferenceGuard no_grad;
    auto out = encoder_->Forward(plain_input, adj_edges_, {}, 0.0f,
                                 /*training=*/false, &rng);
    if (options_.use_feature_mask)
      masks_.feature_nnz =
          mask_generator_->FeatureMask(out.hidden, ds.features).value();
    masks_.structure_khop =
        mask_generator_->StructureMask(out.hidden, khop_->PairEdges()).value();
    // Mask over the 1-hop support (self-loop entries fixed at 1).
    ag::Variable adj_mask =
        mask_generator_->StructureMask(out.hidden, adj_edges_);
    masks_.structure_adj = adj_mask.value();
    for (int64_t e = 0; e < adj_edges_->size(); ++e)
      if (adj_edges_->src[static_cast<size_t>(e)] ==
          adj_edges_->dst[static_cast<size_t>(e)])
        masks_.structure_adj[e] = 1.0f;
  }
  inference_seconds_ = timer.ElapsedSeconds();

  // ---------------------------------------------------------------- phase 2
  timer.Reset();
  PosNegPairs pairs;
  Phase2Context ctx;
  ctx.mgr = ckpt_mgr.get();
  ctx.faults = &faults;
  if (resume_phase2) {
    const robust::TrainingCheckpoint& c = *resumed;
    masks_.feature_nnz = c.tensors.at("masks.feature_nnz");
    masks_.structure_khop = c.tensors.at("masks.structure_khop");
    masks_.structure_adj = c.tensors.at("masks.structure_adj");
    pairs.anchor = c.int_lists.at("pairs.anchor");
    pairs.positive = c.int_lists.at("pairs.positive");
    pairs.negative = c.int_lists.at("pairs.negative");
    if (auto it = c.double_lists.find("loss_history");
        it != c.double_lists.end())
      loss_history_ = UnflattenHistory(it->second);
    if (auto it = c.tensor_lists.find("mask_snapshots");
        it != c.tensor_lists.end())
      mask_snapshots_ = it->second;
    ctx.resume = &c;
    SES_LOG_INFO << name() << " skipping phase 1 (phase-2 checkpoint found in "
                 << config.checkpoint_dir << ")";
  } else {
    pairs = ConstructPairs(*khop_, masks_.structure_khop, negatives,
                           options_.sample_ratio, &rng);
  }
  ctx.base.model = name();
  ctx.base.phase = "phase2";
  ctx.base.tensors["masks.feature_nnz"] = masks_.feature_nnz;
  ctx.base.tensors["masks.structure_khop"] = masks_.structure_khop;
  ctx.base.tensors["masks.structure_adj"] = masks_.structure_adj;
  ctx.base.int_lists["pairs.anchor"] = pairs.anchor;
  ctx.base.int_lists["pairs.positive"] = pairs.positive;
  ctx.base.int_lists["pairs.negative"] = pairs.negative;
  ctx.base.double_lists["loss_history"] = FlattenHistory(loss_history_);
  ctx.base.tensor_lists["mask_snapshots"] = mask_snapshots_;
  Phase2LoopImpl(encoder_.get(), ds, masks_, pairs, options_, config, &rng,
                 &ctx);
  epl_seconds_ = timer.ElapsedSeconds();
}

void SesModel::EnhancedPredictiveLearning(
    models::Encoder* encoder, const data::Dataset& ds,
    const FrozenMasks& masks, const PosNegPairs& pairs,
    const SesOptions& options, const models::TrainConfig& config,
    util::Rng* rng) {
  Phase2LoopImpl(encoder, ds, masks, pairs, options, config, rng, nullptr);
}

models::Encoder::Output SesModel::EvalForward(const data::Dataset& ds) const {
  SES_CHECK(encoder_ != nullptr);
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  nn::FeatureInput input =
      (options_.use_feature_mask && masks_.feature_nnz.size() > 0)
          ? nn::FeatureInput::Sparse(
                ds.features, ag::Variable::Constant(masks_.feature_nnz))
          : models::MakeInput(ds);
  ag::Variable adj_mask;
  if (options_.use_structure_mask && masks_.structure_adj.size() > 0)
    adj_mask = ag::Variable::Constant(masks_.structure_adj);
  return encoder_->Forward(input, adj_edges_, adj_mask, 0.0f,
                           /*training=*/false, &rng);
}

tensor::Tensor SesModel::Logits(const data::Dataset& ds) {
  return EvalForward(ds).logits.value();
}

tensor::Tensor SesModel::Embeddings(const data::Dataset& ds) {
  return EvalForward(ds).hidden.value();
}

std::vector<float> SesModel::EdgeScores(const data::Dataset& ds) const {
  SES_CHECK(masks_.structure_khop.size() > 0);
  const auto& edges = ds.graph.edges();
  std::vector<float> scores(edges.size(), 0.0f);
  // The k-hop pair list contains (u, v) and (v, u) for 1-hop edges; average
  // the two directions.
  for (size_t idx = 0; idx < edges.size(); ++idx) {
    auto [u, v] = edges[idx];
    float total = 0.0f;
    int count = 0;
    for (auto [a, b] : {std::make_pair(u, v), std::make_pair(v, u)}) {
      const auto nbrs = khop_->Neighbors(a);
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), b);
      if (it != nbrs.end() && *it == b) {
        const int64_t pair_idx =
            khop_->PairOffset(a) + (it - nbrs.begin());
        total += masks_.structure_khop[pair_idx];
        ++count;
      }
    }
    scores[idx] = count > 0 ? total / static_cast<float>(count) : 0.0f;
  }
  return scores;
}

}  // namespace ses::core
