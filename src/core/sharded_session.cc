#include "core/sharded_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ses::core {

/// In-degree over the support is Degree(v) + 1 and the variance loop runs in
/// the same node order as ComputeGraphStats, so every field (including the
/// FP-accumulated degree_cv) matches bitwise; WholeGraphStatsMatchComputed in
/// tests/scale_test.cc holds the two equal.
kernels::GraphStats WholeGraphSpmmStats(const graph::Graph& g) {
  kernels::GraphStats s;
  const int64_t n = g.num_nodes();
  s.nodes = n;
  s.nnz = 2 * g.num_edges() + n;
  if (n == 0) return s;
  int64_t max_degree = 0;
  for (int64_t v = 0; v < n; ++v)
    max_degree = std::max(max_degree, g.Degree(v) + 1);
  s.max_degree = max_degree;
  s.avg_degree = static_cast<double>(s.nnz) / static_cast<double>(n);
  s.density = static_cast<double>(s.nnz) /
              (static_cast<double>(n) * static_cast<double>(n));
  double var = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    const double delta =
        static_cast<double>(g.Degree(v) + 1) - s.avg_degree;
    var += delta * delta;
  }
  var /= static_cast<double>(n);
  s.degree_cv = s.avg_degree > 0.0 ? std::sqrt(var) / s.avg_degree : 0.0;
  return s;
}

namespace {

/// Shard slice of the model's per-nonzero feature mask: the mask values of
/// each shard node's feature row, concatenated in shard-node order — exactly
/// the nonzero layout SparseMatrix::GatherRows produces for the shard's
/// features, so mask[i] still weights the same (row, col) nonzero.
tensor::Tensor SliceFeatureMask(const tensor::Tensor& mask,
                                const tensor::SparseMatrix& features,
                                const std::vector<int64_t>& nodes) {
  int64_t nnz = 0;
  for (const int64_t v : nodes)
    nnz += features.row_ptr[static_cast<size_t>(v) + 1] -
           features.row_ptr[static_cast<size_t>(v)];
  tensor::Tensor out(nnz, 1);
  int64_t w = 0;
  for (const int64_t v : nodes)
    for (int64_t e = features.row_ptr[static_cast<size_t>(v)];
         e < features.row_ptr[static_cast<size_t>(v) + 1]; ++e)
      out.data()[w++] = mask[e];
  return out;
}

/// Shard slice of the model's structure mask. The global mask is laid out in
/// DirectedEdges(add_self_loops=true) order — entries 2i / 2i+1 for the two
/// orientations of undirected edge i, then one self-loop per node — and the
/// shard's local support uses the same layout over its local edges, so each
/// local entry copies from the global index of the corresponding global
/// edge (found by binary search in the sorted global edge list).
tensor::Tensor SliceStructureMask(const tensor::Tensor& mask,
                                  const graph::Graph& global,
                                  const graph::Shard& shard) {
  const auto& global_edges = global.edges();
  const int64_t local_e = shard.graph.num_edges();
  const int64_t local_n = shard.graph.num_nodes();
  SES_CHECK(mask.size() ==
            2 * static_cast<int64_t>(global_edges.size()) + global.num_nodes());
  tensor::Tensor out(2 * local_e + local_n, 1);
  const auto& local_edges = shard.graph.edges();
  for (int64_t i = 0; i < local_e; ++i) {
    const auto [lu, lv] = local_edges[static_cast<size_t>(i)];
    // nodes[] is ascending, so lu < lv maps to gu < gv: orientations align.
    const std::pair<int64_t, int64_t> key{
        shard.nodes[static_cast<size_t>(lu)],
        shard.nodes[static_cast<size_t>(lv)]};
    const auto it =
        std::lower_bound(global_edges.begin(), global_edges.end(), key);
    SES_CHECK(it != global_edges.end() && *it == key &&
              "shard edge missing from the global graph");
    const int64_t g = it - global_edges.begin();
    out.data()[2 * i] = mask[2 * g];
    out.data()[2 * i + 1] = mask[2 * g + 1];
  }
  const int64_t self_base = 2 * static_cast<int64_t>(global_edges.size());
  for (int64_t i = 0; i < local_n; ++i)
    out.data()[2 * local_e + i] =
        mask[self_base + shard.nodes[static_cast<size_t>(i)]];
  return out;
}

}  // namespace

ShardedSession::ShardedSession(const SesModel* model, const data::Dataset* ds,
                               ShardedSessionOptions options)
    : model_(model), encoder_(model->encoder()), ds_(ds), options_(options) {
  SES_CHECK(encoder_ != nullptr && "SesModel must be Fit before serving");
  SES_CHECK(ds_ != nullptr);
  Build();
}

ShardedSession::ShardedSession(const models::Encoder* encoder,
                               const data::Dataset* ds,
                               ShardedSessionOptions options)
    : encoder_(encoder), ds_(ds), options_(options) {
  SES_CHECK(encoder_ != nullptr);
  SES_CHECK(ds_ != nullptr);
  Build();
}

void ShardedSession::Build() {
  partition_ = graph::Partitioner(options_.partition).Run(ds_->graph);
  const kernels::GraphStats whole_stats = WholeGraphSpmmStats(ds_->graph);
  const int64_t num_shards = partition_.num_shards();
  shard_data_.resize(static_cast<size_t>(num_shards));
  for (int64_t s = 0; s < num_shards; ++s) {
    const graph::Shard& shard = partition_.shards[static_cast<size_t>(s)];
    data::Dataset& local = shard_data_[static_cast<size_t>(s)];
    local.name = ds_->name + "/shard" + std::to_string(s);
    local.graph = shard.graph;
    local.num_classes = ds_->num_classes;
    local.labels.reserve(shard.nodes.size());
    for (const int64_t v : shard.nodes)
      local.labels.push_back(ds_->labels[static_cast<size_t>(v)]);
  }
  ExchangeHaloFeatures();
  obs::MetricsRegistry::Get()
      .GetGauge("ses.shard.sessions")
      .Set(static_cast<double>(num_shards));
  sessions_.reserve(static_cast<size_t>(num_shards));
  for (int64_t s = 0; s < num_shards; ++s) {
    const graph::Shard& shard = partition_.shards[static_cast<size_t>(s)];
    SessionOverrides overrides;
    overrides.pin_spmm_stats = options_.pin_spmm_stats;
    overrides.spmm_stats = whole_stats;
    if (model_ != nullptr) {
      if (model_->options().use_feature_mask &&
          model_->feature_mask_nnz().size() > 0)
        overrides.feature_mask_nnz = SliceFeatureMask(
            model_->feature_mask_nnz(), *ds_->features, shard.nodes);
      if (model_->options().use_structure_mask &&
          model_->structure_mask_adj().size() > 0)
        overrides.structure_mask_adj = SliceStructureMask(
            model_->structure_mask_adj(), ds_->graph, shard);
      sessions_.push_back(std::make_unique<InferenceSession>(
          model_, &shard_data_[static_cast<size_t>(s)],
          std::move(overrides)));
    } else {
      sessions_.push_back(std::make_unique<InferenceSession>(
          encoder_, &shard_data_[static_cast<size_t>(s)],
          std::move(overrides)));
    }
  }
}

void ShardedSession::ExchangeHaloFeatures() {
  SES_CHECK(ds_->features != nullptr);
  const auto start = std::chrono::steady_clock::now();
  int64_t halo_rows = 0;
  int64_t exchanged_nnz = 0;
  for (int64_t s = 0; s < partition_.num_shards(); ++s) {
    const graph::Shard& shard = partition_.shards[static_cast<size_t>(s)];
    auto gathered = std::make_shared<tensor::SparseMatrix>(
        ds_->features->GatherRows(shard.nodes));
    halo_rows += static_cast<int64_t>(shard.halo.size());
    for (const int64_t v : shard.halo)
      exchanged_nnz += ds_->features->row_ptr[static_cast<size_t>(v) + 1] -
                       ds_->features->row_ptr[static_cast<size_t>(v)];
    shard_data_[static_cast<size_t>(s)].features = std::move(gathered);
  }
  stats_.halo_rows = halo_rows;
  stats_.exchanged_nnz = exchanged_nnz;
  ++stats_.exchanges;
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetGauge("ses.shard.halo_rows").Set(static_cast<double>(halo_rows));
  reg.GetCounter("ses.shard.exchanges").Add(1);
  reg.GetCounter("ses.shard.exchanged_nnz").Add(exchanged_nnz);
  reg.GetGauge("ses.shard.exchange_us")
      .Set(static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - start)
                   .count()) *
           1e-3);
}

int64_t ShardedSession::ShardOf(int64_t node) const {
  SES_CHECK(node >= 0 &&
            node < static_cast<int64_t>(partition_.shard_of.size()));
  return partition_.shard_of[static_cast<size_t>(node)];
}

int64_t ShardedSession::LocalIdOf(int64_t node) const {
  const graph::Shard& shard =
      partition_.shards[static_cast<size_t>(ShardOf(node))];
  const int64_t local = shard.LocalOf(node);
  SES_CHECK(local >= 0 && "owned node must be in its shard's node list");
  return local;
}

int64_t ShardedSession::PredictNode(int64_t node) {
  return sessions_[static_cast<size_t>(ShardOf(node))]->PredictNode(
      LocalIdOf(node));
}

std::vector<int64_t> ShardedSession::PredictMany(
    const std::vector<int64_t>& nodes) {
  // Group per shard, one batched call each, then scatter back in order.
  const int64_t num_shards = this->num_shards();
  std::vector<std::vector<int64_t>> local(static_cast<size_t>(num_shards));
  std::vector<std::vector<size_t>> position(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int64_t s = ShardOf(nodes[i]);
    local[static_cast<size_t>(s)].push_back(LocalIdOf(nodes[i]));
    position[static_cast<size_t>(s)].push_back(i);
  }
  std::vector<int64_t> out(nodes.size());
  for (int64_t s = 0; s < num_shards; ++s) {
    if (local[static_cast<size_t>(s)].empty()) continue;
    const std::vector<int64_t> classes =
        sessions_[static_cast<size_t>(s)]->PredictMany(
            local[static_cast<size_t>(s)]);
    for (size_t j = 0; j < classes.size(); ++j)
      out[position[static_cast<size_t>(s)][j]] = classes[j];
  }
  return out;
}

tensor::Tensor ShardedSession::GatherLogits(
    const std::vector<int64_t>& nodes) {
  const int64_t num_shards = this->num_shards();
  std::vector<std::vector<int64_t>> local(static_cast<size_t>(num_shards));
  std::vector<std::vector<size_t>> position(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int64_t s = ShardOf(nodes[i]);
    local[static_cast<size_t>(s)].push_back(LocalIdOf(nodes[i]));
    position[static_cast<size_t>(s)].push_back(i);
  }
  tensor::Tensor out;
  for (int64_t s = 0; s < num_shards; ++s) {
    if (local[static_cast<size_t>(s)].empty()) continue;
    const tensor::Tensor rows = sessions_[static_cast<size_t>(s)]
                                    ->GatherLogits(local[static_cast<size_t>(s)]);
    if (out.rows() == 0)
      out = tensor::Tensor(static_cast<int64_t>(nodes.size()), rows.cols());
    for (int64_t j = 0; j < rows.rows(); ++j)
      std::copy(rows.RowPtr(j), rows.RowPtr(j) + rows.cols(),
                out.RowPtr(static_cast<int64_t>(
                    position[static_cast<size_t>(s)][static_cast<size_t>(j)])));
  }
  return out;
}

InferenceSession::Explanation ShardedSession::ExplainNode(
    int64_t node, int64_t top_k) const {
  // The structure mask and its k-hop support are GLOBAL model state, so the
  // owner shard's session explains the global id directly — routing is for
  // per-shard request accounting, not id translation.
  return sessions_[static_cast<size_t>(ShardOf(node))]->ExplainNode(node,
                                                                    top_k);
}

void ShardedSession::InvalidateGraph() {
  ExchangeHaloFeatures();
  for (auto& session : sessions_) session->InvalidateGraph();
}

}  // namespace ses::core
