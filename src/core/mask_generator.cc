#include "core/mask_generator.h"

#include "util/logging.h"

namespace ses::core {

namespace ag = ses::autograd;
namespace t = ses::tensor;

MaskGenerator::MaskGenerator(int64_t hidden_dim, int64_t feature_dim,
                             util::Rng* rng)
    : feature_hidden_(hidden_dim, hidden_dim, rng) {
  RegisterModule(&feature_hidden_);
  feature_w_ = RegisterParameter(t::Tensor::Xavier(hidden_dim, feature_dim, rng));
  feature_b_ = RegisterParameter(t::Tensor::Zeros(1, feature_dim));
  struct_proj_ = RegisterParameter(
      t::Tensor::Xavier(hidden_dim, hidden_dim, rng));
  struct_dot_ = RegisterParameter(t::Tensor::Full(1, 1, 2.0f));
  struct_b_ = RegisterParameter(t::Tensor::Zeros(1, 1));
}

ag::Variable MaskGenerator::FeatureMask(
    const ag::Variable& h,
    const std::shared_ptr<const t::SparseMatrix>& pattern) const {
  ag::Variable hidden = ag::Relu(feature_hidden_.Forward(h));
  return ag::FeatureMaskAtNnz(hidden, feature_w_, feature_b_, pattern);
}

ag::Variable MaskGenerator::StructureMask(
    const ag::Variable& h, const ag::EdgeListPtr& pairs) const {
  // Similarity of the (projected) endpoint embeddings, through a learned
  // gain and bias. A per-node additive term f(i) + g(j) is deliberately
  // absent: it admits two symmetric optima under the pair labels (score by
  // "which cluster is popular" in either direction) and flips between them
  // across seeds, whereas the cosine is anchored by the classifier's
  // embedding geometry. Row normalization keeps the similarity bounded
  // regardless of encoder scale.
  ag::Variable hp = ag::MatMul(h, struct_proj_);  // N x hidden
  ag::Variable norms =
      ag::Sqrt(ag::AddScalar(ag::SumRows(ag::Mul(hp, hp)), 1e-9f));  // N x 1
  ag::Variable hi = ag::GatherRows(hp, pairs->src);
  ag::Variable hj = ag::GatherRows(hp, pairs->dst);
  ag::Variable dots = ag::SumRows(ag::Mul(hi, hj));  // E x 1
  ag::Variable denom = ag::Mul(ag::GatherRows(norms, pairs->src),
                               ag::GatherRows(norms, pairs->dst));
  ag::Variable cosine = ag::Mul(dots, ag::Pow(denom, -1.0f));
  ag::Variable scores = ag::ScaleBy(cosine, struct_dot_);
  scores = ag::AddRowVector(scores, struct_b_);
  return ag::Sigmoid(scores);
}

}  // namespace ses::core
