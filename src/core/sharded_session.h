#ifndef SES_CORE_SHARDED_SESSION_H_
#define SES_CORE_SHARDED_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/inference_session.h"
#include "graph/partition.h"

namespace ses::core {

/// GraphStats of the full graph's message-passing support (both edge
/// orientations + self-loops) computed straight from the adjacency —
/// bitwise-equal to kernels::ComputeGraphStats over the materialized
/// DirectedEdges(true) list, without building that list. This is what a
/// ShardedSession pins into every shard's SpMM plan.
kernels::GraphStats WholeGraphSpmmStats(const graph::Graph& g);

struct ShardedSessionOptions {
  /// Partition shape. The default halo_hops (3) is the two-layer encoders'
  /// k-hop dependency depth plus one ring of degree padding — see
  /// graph::PartitionOptions and DESIGN.md §16.
  graph::PartitionOptions partition;
  /// Pin every shard plan's SpMM variant decision to the whole graph's
  /// statistics (required for the bitwise parity contract; off only for
  /// experiments that want per-shard autotuning).
  bool pin_spmm_stats = true;
};

/// Data-parallel serving across graph shards (DESIGN.md §16).
///
/// The graph is partitioned once (greedy edge-cut, graph::Partitioner); each
/// shard gets its own InferenceSession over the subgraph induced on its
/// owned nodes plus a (k+1)-hop halo, with the halo's feature rows gathered
/// from the global dataset before any shard forward — the "halo exchange".
/// Predict/logits queries route by the node→shard map and execute entirely
/// inside one shard; Explain reads the model's global k-hop mask through the
/// owner shard's session.
///
/// Parity contract: shard-local logits of OWNED nodes are bitwise-identical
/// to the whole-graph InferenceSession's, because (a) the halo closure makes
/// every degree an owned logit's GCN normalization reads exact, (b) shard
/// node lists are ascending so the global→local relabeling is monotone and
/// per-row accumulation order is preserved, and (c) each shard's SpMM plan
/// is pinned to the whole-graph statistics so all shards run the same
/// variant order class. The scale tests assert this equality on every graph
/// they touch.
class ShardedSession {
 public:
  /// Shards a trained SesModel: the global feature / structure masks are
  /// sliced per shard (see SessionOverrides) so masked forwards shard too.
  ShardedSession(const SesModel* model, const data::Dataset* ds,
                 ShardedSessionOptions options = {});

  /// Shards a bare trained encoder (no masks; ExplainNode returns empty).
  ShardedSession(const models::Encoder* encoder, const data::Dataset* ds,
                 ShardedSessionOptions options = {});

  int64_t num_shards() const {
    return static_cast<int64_t>(sessions_.size());
  }
  const graph::Partition& partition() const { return partition_; }
  /// Owning shard of a global node.
  int64_t ShardOf(int64_t node) const;
  /// Row of a global node inside its owning shard's local graph.
  int64_t LocalIdOf(int64_t node) const;
  InferenceSession* shard_session(int64_t s) {
    return sessions_[static_cast<size_t>(s)].get();
  }
  const data::Dataset& shard_dataset(int64_t s) const {
    return shard_data_[static_cast<size_t>(s)];
  }

  /// Argmax class of a GLOBAL node id, served by its owning shard only.
  int64_t PredictNode(int64_t node);
  /// Batched predict: requests are grouped per shard (one session lock + one
  /// memoized forward per shard touched), results in input order.
  std::vector<int64_t> PredictMany(const std::vector<int64_t>& nodes);
  /// Logit rows of GLOBAL node ids as a B x C tensor, grouped per shard.
  tensor::Tensor GatherLogits(const std::vector<int64_t>& nodes);
  /// Top-k explanation of a GLOBAL node id via the owner shard's session
  /// (the structure mask is global, so no id translation is needed).
  InferenceSession::Explanation ExplainNode(int64_t node, int64_t top_k) const;

  /// Re-runs the halo feature exchange from the global dataset and marks
  /// every shard session stale. Call after mutating global features.
  void InvalidateGraph();

  struct Stats {
    int64_t halo_rows = 0;      ///< ghost feature rows replicated per exchange
    int64_t exchanged_nnz = 0;  ///< feature nonzeros moved by the last exchange
    int64_t exchanges = 0;      ///< halo exchanges performed
  };
  Stats stats() const { return stats_; }

 private:
  void Build();
  /// Gathers every shard's owned + halo feature rows out of the global
  /// dataset (the k-hop dependency closure a shard-local forward reads) and
  /// publishes the `ses.shard.*` exchange metrics.
  void ExchangeHaloFeatures();

  const SesModel* model_ = nullptr;  ///< null for bare-encoder sessions
  const models::Encoder* encoder_ = nullptr;
  const data::Dataset* ds_ = nullptr;
  ShardedSessionOptions options_;
  graph::Partition partition_;
  std::vector<data::Dataset> shard_data_;  ///< sessions point into these
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  Stats stats_;
};

}  // namespace ses::core

#endif  // SES_CORE_SHARDED_SESSION_H_
