#include "core/inference_session.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "kernels/spmm.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::core {

namespace ag = ses::autograd;
namespace t = ses::tensor;

namespace {

/// Cheap result fingerprint for the access log: dims plus the first and last
/// logit rows — enough to notice a changed result without hashing the full
/// matrix on every request.
uint64_t LogitsDigest(const t::Tensor& logits) {
  uint64_t h = obs::Fnv1aBegin();
  const int64_t dims[2] = {logits.rows(), logits.cols()};
  h = obs::Fnv1a(h, dims, sizeof(dims));
  if (logits.rows() > 0 && logits.cols() > 0) {
    const size_t row_bytes = static_cast<size_t>(logits.cols()) * sizeof(float);
    h = obs::Fnv1a(h, logits.RowPtr(0), row_bytes);
    h = obs::Fnv1a(h, logits.RowPtr(logits.rows() - 1), row_bytes);
  }
  return h;
}

}  // namespace

InferenceSession::InferenceSession(const SesModel* model,
                                   const data::Dataset* ds,
                                   SessionOverrides overrides)
    : encoder_(model->encoder()),
      model_(model),
      ds_(ds),
      overrides_(std::move(overrides)) {
  SES_CHECK(encoder_ != nullptr && "SesModel must be Fit before serving");
  SES_CHECK(ds_ != nullptr);
}

InferenceSession::InferenceSession(const models::Encoder* encoder,
                                   const data::Dataset* ds,
                                   SessionOverrides overrides)
    : encoder_(encoder), ds_(ds), overrides_(std::move(overrides)) {
  SES_CHECK(encoder_ != nullptr);
  SES_CHECK(ds_ != nullptr);
}

void InferenceSession::EnsureArtifactsLocked() {
  const int64_t version = graph_version_.load();
  if (artifact_version_ == version) return;
  SES_TRACE_SPAN("infer/build_artifacts");
  ag::InferenceGuard no_grad;
  adj_edges_ = ds_->graph.DirectedEdges(/*add_self_loops=*/true);
  // Shard sessions pin the whole-graph statistics into their plan BEFORE the
  // Choose below memoizes a decision, so the shard replays the unsharded
  // session's variant (the bitwise shard-parity contract, DESIGN.md §16).
  if (overrides_.pin_spmm_stats)
    adj_edges_->plan()->PinChoiceStats(overrides_.spmm_stats);
  const bool use_feature_mask =
      model_ != nullptr && model_->options().use_feature_mask;
  if (use_feature_mask && overrides_.feature_mask_nnz.size() > 0) {
    input_ = nn::FeatureInput::Sparse(
        ds_->features, ag::Variable::Constant(overrides_.feature_mask_nnz));
  } else if (use_feature_mask && model_->feature_mask_nnz().size() > 0) {
    input_ = nn::FeatureInput::Sparse(
        ds_->features, ag::Variable::Constant(model_->feature_mask_nnz()));
  } else {
    input_ = models::MakeInput(*ds_);
  }
  adj_mask_ = {};
  const bool use_structure_mask =
      model_ != nullptr && model_->options().use_structure_mask;
  if (use_structure_mask && overrides_.structure_mask_adj.size() > 0)
    adj_mask_ = ag::Variable::Constant(overrides_.structure_mask_adj);
  else if (use_structure_mask && model_->structure_mask_adj().size() > 0)
    adj_mask_ = ag::Variable::Constant(model_->structure_mask_adj());
  cached_aggregation_ =
      encoder_->PrecomputeAggregation(adj_edges_, adj_mask_,
                                      /*renormalize_mask=*/true);
  // Autotune the SpMM variant for this graph version. Choose() is a pure
  // function of the graph statistics, the hidden feature width, and the
  // active SIMD tier, memoized on the edge list — so every forward over
  // adj_edges_ (warm query or benchmark) replays exactly this decision, and
  // a fresh-but-identical edge list (the taped eval path) lands on the same
  // variant. Exported as a labeled gauge so /metrics shows which kernel is
  // serving; the previous version's label is zeroed on change.
  const auto plan = adj_edges_->plan();
  const kernels::SpmmChoice choice =
      plan->Choose(encoder_->hidden_dim(), /*w=*/nullptr, /*x=*/nullptr);
  const char* variant = kernels::SpmmVariantName(choice);
  if (spmm_variant_ != nullptr && spmm_variant_ != variant) {
    obs::MetricsRegistry::Get()
        .GetGauge("ses.kernel.autotune",
                  {{"op", "spmm"}, {"variant", spmm_variant_}})
        .Set(0);
  }
  spmm_variant_ = variant;
  obs::MetricsRegistry::Get()
      .GetGauge("ses.kernel.autotune", {{"op", "spmm"}, {"variant", variant}})
      .Set(1);
  artifact_version_ = version;
  logits_version_ = -1;  // stale memo belongs to the previous graph
}

tensor::Tensor InferenceSession::RunForward() const {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  auto out = encoder_->Forward(input_, adj_edges_, adj_mask_, 0.0f,
                               /*training=*/false, &rng,
                               /*renormalize_mask=*/true, &cached_aggregation_);
  return out.logits.value();
}

const tensor::Tensor& InferenceSession::EnsureLogitsLocked(
    obs::RequestScope* request) {
  EnsureArtifactsLocked();
  if (logits_version_ == artifact_version_) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Get().GetCounter("ses.infer.cache_hits").Add(1);
    if (request != nullptr) request->NoteCacheHit(true);
    return logits_;
  }
  SES_TRACE_SPAN("infer/logits_miss");
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Get().GetCounter("ses.infer.cache_misses").Add(1);
  // The miss forward is the classic p99 outlier: whichever request arrives
  // first after an invalidation pays the whole rebuild. Observe() records
  // the calling request's trace-id as the bucket exemplar, so the slow
  // bucket of this histogram names the request that ate the forward.
  const auto forward_start = std::chrono::steady_clock::now();
  logits_ = RunForward();
  static obs::Histogram& forward_hist =
      obs::MetricsRegistry::Get().GetHistogram(
          "ses.infer.forward_us", obs::Histogram::DefaultLatencyEdgesUs());
  forward_hist.Observe(
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - forward_start)
                              .count()) *
      1e-3);
  logits_version_ = artifact_version_;
  return logits_;
}

tensor::Tensor InferenceSession::Logits() {
  obs::RequestScope request("infer.logits");
  std::lock_guard<std::mutex> lock(mutex_);
  const tensor::Tensor& logits = EnsureLogitsLocked(&request);
  request.SetDigest(LogitsDigest(logits));
  return logits;
}

int64_t InferenceSession::PredictNode(int64_t node) {
  obs::RequestScope request("infer.predict");
  std::lock_guard<std::mutex> lock(mutex_);
  const tensor::Tensor& logits = EnsureLogitsLocked(&request);
  SES_CHECK(node >= 0 && node < logits.rows());
  const float* row = logits.RowPtr(node);
  int64_t best = 0;
  for (int64_t c = 1; c < logits.cols(); ++c)
    if (row[c] > row[best]) best = c;
  const int64_t fingerprint[2] = {node, best};
  request.SetDigest(
      obs::Fnv1a(obs::Fnv1aBegin(), fingerprint, sizeof(fingerprint)));
  return best;
}

bool InferenceSession::TryPredictCached(int64_t node, int64_t* cls) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (logits_version_ < 0 || logits_version_ != graph_version_.load()) {
    return false;  // cold or stale: the caller decides whether to queue
  }
  SES_CHECK(node >= 0 && node < logits_.rows());
  // Same first-max-wins argmax as PredictNode over the same memoized rows,
  // so degraded-mode answers are bitwise-equal to the full path.
  const float* row = logits_.RowPtr(node);
  int64_t best = 0;
  for (int64_t c = 1; c < logits_.cols(); ++c)
    if (row[c] > row[best]) best = c;
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Get().GetCounter("ses.infer.cache_hits").Add(1);
  *cls = best;
  return true;
}

std::vector<int64_t> InferenceSession::PredictMany(
    const std::vector<int64_t>& nodes) {
  obs::RequestScope request("infer.predict_many");
  std::lock_guard<std::mutex> lock(mutex_);
  const tensor::Tensor& logits = EnsureLogitsLocked(&request);
  // Same argmax kernel as PredictNode (first max wins), batched over rows.
  std::vector<int64_t> classes = tensor::ArgmaxGatherRows(
      logits, nodes.data(), static_cast<int64_t>(nodes.size()));
  // The batch digest walks every node and class byte; only pay for it when
  // an access-log sink is actually attached.
  if (obs::AccessLog::Get().active()) {
    uint64_t h = obs::Fnv1aBegin();
    h = obs::Fnv1a(h, nodes.data(), nodes.size() * sizeof(int64_t));
    h = obs::Fnv1a(h, classes.data(), classes.size() * sizeof(int64_t));
    request.SetDigest(h);
  }
  return classes;
}

tensor::Tensor InferenceSession::GatherLogits(
    const std::vector<int64_t>& nodes) {
  obs::RequestScope request("infer.gather_logits");
  std::lock_guard<std::mutex> lock(mutex_);
  const tensor::Tensor& logits = EnsureLogitsLocked(&request);
  tensor::Tensor rows = tensor::GatherRows(
      logits, nodes.data(), static_cast<int64_t>(nodes.size()));
  if (obs::AccessLog::Get().active()) request.SetDigest(LogitsDigest(rows));
  return rows;
}

void InferenceSession::ExplainInto(int64_t node, int64_t top_k,
                                   std::vector<int64_t>* scratch,
                                   std::vector<int64_t>* selected,
                                   Explanation* out) const {
  out->neighbors.clear();
  out->scores.clear();
  if (model_ == nullptr || model_->structure_mask_khop().size() == 0) return;
  const graph::KHopAdjacency& khop = model_->khop();
  SES_CHECK(node >= 0 && node < khop.num_nodes());
  const auto nbrs = khop.Neighbors(node);
  const int64_t offset = khop.PairOffset(node);
  const tensor::Tensor& mask = model_->structure_mask_khop();
  const int64_t k =
      graph::TopKByScore(mask.data(), offset, static_cast<int64_t>(nbrs.size()),
                         top_k, scratch, selected);
  if (k <= 0) return;
  out->neighbors.reserve(static_cast<size_t>(k));
  out->scores.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const int64_t local = (*selected)[static_cast<size_t>(i)];
    out->neighbors.push_back(nbrs[static_cast<size_t>(local)]);
    out->scores.push_back(mask[offset + local]);
  }
}

InferenceSession::Explanation InferenceSession::ExplainNode(
    int64_t node, int64_t top_k) const {
  obs::RequestScope request("infer.explain");
  Explanation ex;
  std::vector<int64_t> scratch, selected;
  ExplainInto(node, top_k, &scratch, &selected, &ex);
  uint64_t h = obs::Fnv1a(obs::Fnv1aBegin(), &node, sizeof(node));
  h = obs::Fnv1a(h, ex.neighbors.data(),
                 ex.neighbors.size() * sizeof(int64_t));
  request.SetDigest(h);
  return ex;
}

std::vector<InferenceSession::Explanation> InferenceSession::ExplainMany(
    const std::vector<int64_t>& nodes, int64_t top_k) const {
  obs::RequestScope request("infer.explain_many");
  std::vector<Explanation> out(nodes.size());
  std::vector<int64_t> scratch, selected;
  uint64_t h = obs::Fnv1aBegin();
  for (size_t i = 0; i < nodes.size(); ++i) {
    ExplainInto(nodes[i], top_k, &scratch, &selected, &out[i]);
    h = obs::Fnv1a(h, &nodes[i], sizeof(nodes[i]));
    h = obs::Fnv1a(h, out[i].neighbors.data(),
                   out[i].neighbors.size() * sizeof(int64_t));
  }
  request.SetDigest(h);
  return out;
}

tensor::Tensor InferenceSession::ForwardLogits() {
  obs::RequestScope request("infer.forward");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureArtifactsLocked();
  }
  // Artifacts are immutable until the next InvalidateGraph(); the forward
  // itself only reads them, so it runs outside the lock and scales across
  // worker threads.
  SES_TRACE_SPAN("infer/forward");
  tensor::Tensor logits = RunForward();
  request.SetDigest(LogitsDigest(logits));
  return logits;
}

}  // namespace ses::core
