#include "core/pairs.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ses::core {

PosNegPairs ConstructPairs(const graph::KHopAdjacency& khop,
                           const tensor::Tensor& structure_mask,
                           const graph::NegativeSets& negatives,
                           double sample_ratio, util::Rng* rng) {
  SES_CHECK(structure_mask.rows() == khop.num_pairs());
  SES_CHECK(sample_ratio > 0.0 && sample_ratio <= 1.0);
  PosNegPairs result;
  const int64_t n = khop.num_nodes();
  std::vector<int64_t> order;
  for (int64_t i = 0; i < n; ++i) {
    const auto nbrs = khop.Neighbors(i);
    if (nbrs.empty()) continue;
    const int64_t offset = khop.PairOffset(i);
    // sorted(Â_i^(k)): indices of i's pairs ordered by mask weight, desc.
    order.resize(nbrs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return structure_mask[offset + a] > structure_mask[offset + b];
    });
    const int64_t num_sample = std::max<int64_t>(
        1, static_cast<int64_t>(sample_ratio * static_cast<double>(nbrs.size())));
    const auto negs = negatives.Of(i);
    if (negs.empty()) continue;
    for (int64_t j = 0; j < num_sample; ++j) {
      result.anchor.push_back(i);
      result.positive.push_back(nbrs[static_cast<size_t>(order[static_cast<size_t>(j)])]);
      result.negative.push_back(
          negs[static_cast<size_t>(rng->UniformInt(negs.size()))]);
    }
  }
  return result;
}

}  // namespace ses::core
