#ifndef SES_CORE_INFERENCE_SESSION_H_
#define SES_CORE_INFERENCE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/ses_model.h"
#include "kernels/spmm.h"

namespace ses::obs {
class RequestScope;
}

namespace ses::core {

/// Optional per-shard overrides a ShardedSession installs on its member
/// sessions (DESIGN.md §16). Default-constructed overrides change nothing.
struct SessionOverrides {
  /// When true, the shard's SpMM plan decides from `spmm_stats` (the WHOLE
  /// graph's statistics) instead of its own — every shard then lands in the
  /// same accumulation-order class as the single whole-graph session, which
  /// is what makes sharded logits bitwise-equal to unsharded ones.
  bool pin_spmm_stats = false;
  kernels::GraphStats spmm_stats;
  /// Shard-sliced feature mask M_f (one value per nonzero of the shard's
  /// feature rows, in GatherRows order). Empty = use the model's own mask.
  tensor::Tensor feature_mask_nnz;
  /// Shard-sliced structure mask over the shard's directed support (both
  /// orientations per local edge, then self-loops — DirectedEdges order).
  /// Empty = use the model's own mask.
  tensor::Tensor structure_mask_adj;
};

/// Serving-side view of one trained model over one graph.
///
/// Training rebuilds every per-graph artifact on each forward (edge lists,
/// GCN-normalized aggregation weights, mask constants) because the mask and
/// parameters move between steps. At serving time all of that is frozen, so
/// the session computes each artifact once per *graph version* and replays
/// warm queries against the cache:
///
///  - the message-passing edge list (A + self-loops),
///  - the FeatureInput with the frozen feature mask M_f,
///  - the frozen structure mask over the 1-hop support,
///  - the encoder's precomputed aggregation weights (symmetric GCN
///    normalization / GIN-SAGE weights; undefined for GAT whose attention is
///    input-dependent),
///  - the full-graph logits themselves (memoized; PredictNode serves argmax
///    rows out of them).
///
/// All forwards run under autograd::InferenceGuard (tape-free) and are
/// bitwise identical to the taped eval path — the same tensor kernels run in
/// the same order. Queries are thread-safe: artifact (re)builds and the
/// logits memo are mutex-guarded, warm reads copy out under the lock.
/// Explanation queries read the frozen structure mask directly and never
/// touch the encoder.
class InferenceSession {
 public:
  /// Serves a trained SesModel: masked forward + mask-based explanations.
  /// Both the model and the dataset must outlive the session. `overrides`
  /// customizes the artifacts for shard-local serving (see SessionOverrides).
  InferenceSession(const SesModel* model, const data::Dataset* ds,
                   SessionOverrides overrides = {});

  /// Serves a bare trained encoder (no masks; ExplainNode returns empty).
  InferenceSession(const models::Encoder* encoder, const data::Dataset* ds,
                   SessionOverrides overrides = {});

  /// Marks every cached artifact stale. Call after mutating the graph,
  /// features, or masks; the next query rebuilds under the new version.
  void InvalidateGraph() { graph_version_.fetch_add(1); }
  int64_t graph_version() const { return graph_version_.load(); }

  /// Full-graph class logits, memoized per graph version.
  tensor::Tensor Logits();

  /// Argmax class of `node`, served from the memoized logits.
  int64_t PredictNode(int64_t node);

  /// Cache-only PredictNode: answers from the memoized logits when they are
  /// warm for the CURRENT graph version, and returns false (without running
  /// any forward) otherwise. This is the degraded-mode serving path — under
  /// overload the scheduler answers warm predicts from here instead of
  /// queueing them. When it returns true, `*cls` is bitwise-equal to
  /// PredictNode(node).
  bool TryPredictCached(int64_t node, int64_t* cls);

  /// Argmax classes for a batch of target nodes: one lock acquisition and one
  /// (memoized) forward for the whole batch, then a single gathered argmax
  /// pass — the readout the batch scheduler amortizes B requests onto.
  /// Element i is bitwise-equal to PredictNode(nodes[i]).
  std::vector<int64_t> PredictMany(const std::vector<int64_t>& nodes);

  /// Logit-slice API: rows `nodes` of the memoized full-graph logits as a
  /// B x C tensor (row i = logits of nodes[i], bitwise-equal to the same row
  /// of Logits()). Like PredictMany, costs one lock + one forward per batch.
  tensor::Tensor GatherLogits(const std::vector<int64_t>& nodes);

  /// Top-k most important k-hop neighbors of `node` under the frozen
  /// structure mask, most important first. Empty for bare-encoder sessions
  /// (no mask to read).
  struct Explanation {
    std::vector<int64_t> neighbors;
    std::vector<float> scores;
  };
  Explanation ExplainNode(int64_t node, int64_t top_k) const;

  /// Batched ExplainNode: one request scope for the batch, and the top-k
  /// selection scratch is reused across nodes so a warm explain batch does
  /// not allocate per request. Element i equals ExplainNode(nodes[i], top_k).
  std::vector<Explanation> ExplainMany(const std::vector<int64_t>& nodes,
                                       int64_t top_k) const;

  /// Un-memoized tape-free forward through the cached per-graph artifacts —
  /// what a serving benchmark times as the steady-state fast path.
  tensor::Tensor ForwardLogits();

  /// Per-session memo outcomes (also mirrored into the metrics registry as
  /// `ses.infer.cache_hits` / `ses.infer.cache_misses`).
  struct Stats {
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
  };
  Stats stats() const {
    return {cache_hits_.load(), cache_misses_.load()};
  }

  /// The autotuned SpMM kernel variant serving the current graph version
  /// (e.g. "csr_avx2"), decided once per version inside the artifact rebuild
  /// and exported as `ses.kernel.autotune{op="spmm",variant=...}`. Empty
  /// until the first query builds the artifacts. Deterministic given
  /// identical graph statistics (the decision is a pure function of the
  /// graph stats, the encoder's hidden width, and the active SIMD tier).
  std::string spmm_variant() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spmm_variant_ == nullptr ? std::string() : spmm_variant_;
  }

 private:
  /// Rebuilds the per-graph artifacts if the version moved. Caller holds
  /// `mutex_`.
  void EnsureArtifactsLocked();
  /// Ensures the memoized logits match the current artifacts, recording one
  /// cache hit or miss against `request` (null ok). Caller holds `mutex_`.
  /// Returns the memoized logits.
  const tensor::Tensor& EnsureLogitsLocked(obs::RequestScope* request);
  /// ExplainNode body with caller-owned top-k scratch (batch reuse).
  void ExplainInto(int64_t node, int64_t top_k, std::vector<int64_t>* scratch,
                   std::vector<int64_t>* selected, Explanation* out) const;
  /// Tape-free forward over the cached artifacts. Caller holds `mutex_` or
  /// otherwise guarantees the artifacts are built and stable.
  tensor::Tensor RunForward() const;

  const models::Encoder* encoder_ = nullptr;
  const SesModel* model_ = nullptr;  ///< null for bare-encoder sessions
  const data::Dataset* ds_ = nullptr;
  const SessionOverrides overrides_;

  std::atomic<int64_t> graph_version_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};

  mutable std::mutex mutex_;
  int64_t artifact_version_ = -1;  ///< version the artifacts were built at
  autograd::EdgeListPtr adj_edges_;
  nn::FeatureInput input_;
  autograd::Variable adj_mask_;
  autograd::Variable cached_aggregation_;
  int64_t logits_version_ = -1;  ///< version the memoized logits match
  tensor::Tensor logits_;
  /// Static-storage variant name from kernels::SpmmVariantName (null before
  /// the first artifact build).
  const char* spmm_variant_ = nullptr;
};

}  // namespace ses::core

#endif  // SES_CORE_INFERENCE_SESSION_H_
