#ifndef SES_CORE_SES_MODEL_H_
#define SES_CORE_SES_MODEL_H_

#include <array>
#include <memory>
#include <string>

#include "core/mask_generator.h"
#include "core/pairs.h"
#include "graph/khop.h"
#include "models/backbone_models.h"
#include "models/encoders.h"
#include "models/node_classifier.h"

namespace ses::core {

/// SES hyperparameters and ablation switches beyond the shared TrainConfig.
struct SesOptions {
  std::string backbone = "GCN";  ///< "GCN" or "GAT"
  int64_t k = 2;                 ///< k-hop radius of A^(k)
  float alpha = 0.5f;            ///< Eq. 9 balance
  float beta = 0.5f;             ///< Eq. 13 balance
  float margin = 1.0f;           ///< triplet margin m (Eq. 12)
  double sample_ratio = 0.8;     ///< r of Algorithm 1
  int64_t epl_epochs = 15;       ///< enhanced-predictive-learning epochs
  /// Caps |P_r(i)| (closest-first) so N_k stays linear on dense graphs.
  int64_t max_khop_neighbors = 32;

  /// Weight of the link-prediction subgraph loss (Eq. 7) inside the
  /// mask-generator objective.
  float lambda_sub = 1.0f;
  /// Mask regularization inside the explainable-training objective: a size
  /// penalty (mean of M_s) and an element-entropy penalty that polarizes the
  /// mask. These give the co-trained L^m_xent term the competitive pressure
  /// that makes the structure mask selective — without them a mask that
  /// keeps every edge is a global optimum and explanations are uniform
  /// (GNNExplainer and PGExplainer regularize their masks identically).
  float lambda_size = 0.1f;
  float lambda_entropy = 0.05f;
  /// Size penalty on the feature mask M_f. Without it M_f saturates high
  /// and uniform (Eq. 9 gives no reason to suppress a harmless feature), so
  /// its weights carry no ranking information and Fidelity+ (Table 5)
  /// degenerates; with it, only features the masked CE defends stay high.
  float lambda_feat_size = 0.5f;

  /// Ablation switches (Table 10 / Table 5):
  bool use_feature_mask = true;    ///< -{M_f} when false
  bool use_structure_mask = true;  ///< -{M̂_s} when false (phase 2 uses A)
  bool use_xent_phase2 = true;     ///< -{L_xent} when false
  bool use_triplet = true;         ///< -{Triplet} when false
  bool use_mask_xent = true;       ///< -{L^m_xent} when false (Table 5)
};

/// Frozen explanation masks, either produced by SES's own mask generator or
/// injected from a post-hoc explainer (the +{epl} ablation).
struct FrozenMasks {
  /// M_f at the nonzeros of X, CSR order (empty => no feature mask).
  tensor::Tensor feature_nnz;
  /// M̂_s restricted to k-hop pairs (khop.PairEdges() order).
  tensor::Tensor structure_khop;
  /// M̂_s restricted to the 1-hop message-passing edges incl. self-loops
  /// (DirectedEdges(true) order; self-loop entries 1).
  tensor::Tensor structure_adj;
};

/// The Self-Explained and self-Supervised GNN (Algorithm 2).
///
/// Phase 1 (explainable training) co-trains the mask generator with the
/// graph encoder under Eq. 9; phase 2 (enhanced predictive learning) freezes
/// the masks, builds positive/negative pairs from them (Algorithm 1), and
/// fine-tunes the encoder under Eq. 13. The encoder parameters are shared
/// between phases.
class SesModel : public models::NodeClassifier {
 public:
  explicit SesModel(SesOptions options = {});

  std::string name() const override {
    return "SES (" + options_.backbone + ")";
  }
  void Fit(const data::Dataset& ds, const models::TrainConfig& config) override;
  tensor::Tensor Logits(const data::Dataset& ds) override;
  tensor::Tensor Embeddings(const data::Dataset& ds) override;

  /// --- explanation accessors (valid after Fit) -----------------------------
  /// M_f at the nonzeros of X (E_feat = M_f ⊙ X shares the CSR pattern).
  const tensor::Tensor& feature_mask_nnz() const { return masks_.feature_nnz; }
  /// M_s over k-hop pairs (E_sub = M̂_s ⊙ A^(k)).
  const tensor::Tensor& structure_mask_khop() const {
    return masks_.structure_khop;
  }
  /// M̂_s over the 1-hop message-passing edges (DirectedEdges(true) order) —
  /// the mask EvalForward applies; serving sessions cache it per graph.
  const tensor::Tensor& structure_mask_adj() const {
    return masks_.structure_adj;
  }
  const graph::KHopAdjacency& khop() const { return *khop_; }
  /// Symmetrized importance score per undirected edge of ds.graph — the
  /// representation the explanation-AUC metric consumes.
  std::vector<float> EdgeScores(const data::Dataset& ds) const;

  /// --- timing (Tables 6 and 7) ---------------------------------------------
  double explainable_training_seconds() const { return et_seconds_; }
  double enhanced_learning_seconds() const { return epl_seconds_; }
  /// Time from trained state to explanations for all nodes (mask readout).
  double explanation_inference_seconds() const { return inference_seconds_; }

  /// Loss history of phase 1 (Fig. 7 curves): {epoch, train loss, val loss}.
  const std::vector<std::array<double, 3>>& loss_history() const {
    return loss_history_;
  }
  /// Feature-mask snapshots taken at epochs 0, mid, last (Fig. 7 heatmaps).
  const std::vector<tensor::Tensor>& mask_snapshots() const {
    return mask_snapshots_;
  }

  const models::Encoder* encoder() const { return encoder_.get(); }
  const SesOptions& options() const { return options_; }

  /// Runs phase 2 alone with externally supplied masks — the +{epl} ablation
  /// of Table 10 (post-hoc GNNExplainer / PGExplainer masks feeding SES's
  /// enhanced predictive learning). `encoder` must already be trained.
  static void EnhancedPredictiveLearning(
      models::Encoder* encoder, const data::Dataset& ds,
      const FrozenMasks& masks, const PosNegPairs& pairs,
      const SesOptions& options, const models::TrainConfig& config,
      util::Rng* rng);

 private:
  models::Encoder::Output EvalForward(const data::Dataset& ds) const;

  SesOptions options_;
  models::TrainConfig config_;
  std::unique_ptr<models::Encoder> encoder_;
  std::unique_ptr<MaskGenerator> mask_generator_;
  std::unique_ptr<graph::KHopAdjacency> khop_;
  autograd::EdgeListPtr adj_edges_;  ///< A + self-loops
  FrozenMasks masks_;
  double et_seconds_ = 0.0;
  double epl_seconds_ = 0.0;
  double inference_seconds_ = 0.0;
  std::vector<std::array<double, 3>> loss_history_;
  std::vector<tensor::Tensor> mask_snapshots_;
};

}  // namespace ses::core

#endif  // SES_CORE_SES_MODEL_H_
