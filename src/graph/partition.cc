#include "graph/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ses::graph {

int64_t Shard::LocalOf(int64_t global) const {
  const auto it = std::lower_bound(nodes.begin(), nodes.end(), global);
  if (it == nodes.end() || *it != global) return -1;
  return it - nodes.begin();
}

double Partition::balance() const {
  if (shards.empty() || shard_of.empty()) return 1.0;
  int64_t max_owned = 0;
  for (const Shard& s : shards)
    max_owned = std::max(max_owned, static_cast<int64_t>(s.owned.size()));
  const double ideal = static_cast<double>(shard_of.size()) /
                       static_cast<double>(shards.size());
  return ideal > 0.0 ? static_cast<double>(max_owned) / ideal : 1.0;
}

double Partition::halo_fraction() const {
  if (shard_of.empty()) return 0.0;
  int64_t halo = 0;
  for (const Shard& s : shards) halo += static_cast<int64_t>(s.halo.size());
  return static_cast<double>(halo) / static_cast<double>(shard_of.size());
}

void Partition::ExportMetrics() const {
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetGauge("ses.partition.shards").Set(static_cast<double>(num_shards()));
  reg.GetGauge("ses.partition.edge_cut_fraction").Set(edge_cut_fraction());
  reg.GetGauge("ses.partition.balance").Set(balance());
  reg.GetGauge("ses.partition.halo_fraction").Set(halo_fraction());
  int64_t max_nodes = 0;
  for (const Shard& s : shards)
    max_nodes = std::max(max_nodes, static_cast<int64_t>(s.nodes.size()));
  reg.GetGauge("ses.partition.max_shard_nodes")
      .Set(static_cast<double>(max_nodes));
}

Partitioner::Partitioner(PartitionOptions options) : options_(options) {
  SES_CHECK(options_.num_shards >= 1);
  SES_CHECK(options_.halo_hops >= 0);
  SES_CHECK(options_.balance_slack >= 1.0);
}

Partition Partitioner::Run(const Graph& g) const {
  const int64_t n = g.num_nodes();
  const int64_t num_shards = std::min<int64_t>(options_.num_shards,
                                               std::max<int64_t>(n, 1));
  Partition part;
  part.options = options_;
  part.total_edges = g.num_edges();
  part.shard_of.assign(static_cast<size_t>(n), -1);
  part.shards.resize(static_cast<size_t>(num_shards));

  // --- Greedy assignment over the degree-sorted frontier -------------------
  const int64_t capacity = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(options_.balance_slack *
                                        static_cast<double>(n) /
                                        static_cast<double>(num_shards))));
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const int64_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });
  std::vector<int64_t> load(static_cast<size_t>(num_shards), 0);
  std::vector<int64_t> gain(static_cast<size_t>(num_shards), 0);
  std::vector<int32_t> touched;
  for (const int64_t v : order) {
    touched.clear();
    for (const int64_t u : g.Neighbors(v)) {
      const int32_t s = part.shard_of[static_cast<size_t>(u)];
      if (s < 0) continue;
      if (gain[static_cast<size_t>(s)]++ == 0) touched.push_back(s);
    }
    // Highest neighbor gain wins among shards with room; ties go to the
    // lighter shard, then the lower index — all deterministic.
    int32_t best = -1;
    for (int32_t s = 0; s < num_shards; ++s) {
      if (load[static_cast<size_t>(s)] >= capacity) continue;
      if (best < 0 ||
          gain[static_cast<size_t>(s)] > gain[static_cast<size_t>(best)] ||
          (gain[static_cast<size_t>(s)] == gain[static_cast<size_t>(best)] &&
           load[static_cast<size_t>(s)] < load[static_cast<size_t>(best)]))
        best = s;
    }
    SES_CHECK(best >= 0 && "balance_slack >= 1 guarantees a shard has room");
    part.shard_of[static_cast<size_t>(v)] = best;
    ++load[static_cast<size_t>(best)];
    for (const int32_t s : touched) gain[static_cast<size_t>(s)] = 0;
  }

  // --- Edge ownership and cut statistics -----------------------------------
  // Each undirected edge is owned by exactly one shard: the owner of its
  // smaller endpoint (the invariant the partition tests sum over).
  for (const auto& [u, v] : g.edges()) {
    const int32_t su = part.shard_of[static_cast<size_t>(u)];
    const int32_t sv = part.shard_of[static_cast<size_t>(v)];
    if (su != sv) ++part.cut_edges;
    ++part.shards[static_cast<size_t>(su)].num_owned_edges;
  }

  // --- Halo closure and induced local subgraphs ----------------------------
  // `stamp` marks membership for the shard being built; `local_of` is the
  // shared scratch global→local map, reset via the shard's node list.
  std::vector<int32_t> stamp(static_cast<size_t>(n), -1);
  std::vector<int64_t> local_of(static_cast<size_t>(n), -1);
  std::vector<int64_t> frontier, next;
  for (int32_t s = 0; s < num_shards; ++s) {
    Shard& shard = part.shards[static_cast<size_t>(s)];
    for (int64_t v = 0; v < n; ++v)
      if (part.shard_of[static_cast<size_t>(v)] == s)
        shard.owned.push_back(v);
    shard.nodes = shard.owned;
    frontier = shard.owned;
    for (const int64_t v : frontier) stamp[static_cast<size_t>(v)] = s;
    for (int64_t hop = 0; hop < options_.halo_hops; ++hop) {
      next.clear();
      for (const int64_t v : frontier) {
        for (const int64_t u : g.Neighbors(v)) {
          if (stamp[static_cast<size_t>(u)] == s) continue;
          stamp[static_cast<size_t>(u)] = s;
          next.push_back(u);
          shard.halo.push_back(u);
        }
      }
      std::swap(frontier, next);
    }
    std::sort(shard.halo.begin(), shard.halo.end());
    shard.nodes.insert(shard.nodes.end(), shard.halo.begin(),
                       shard.halo.end());
    std::sort(shard.nodes.begin(), shard.nodes.end());

    for (size_t i = 0; i < shard.nodes.size(); ++i)
      local_of[static_cast<size_t>(shard.nodes[i])] =
          static_cast<int64_t>(i);
    // Scanning nodes ascending and neighbors ascending emits local edges in
    // lexicographic order (the map is monotone), so the zero-sort Graph
    // constructor applies.
    std::vector<std::pair<int64_t, int64_t>> local_edges;
    for (size_t i = 0; i < shard.nodes.size(); ++i) {
      const int64_t v = shard.nodes[i];
      for (const int64_t u : g.Neighbors(v)) {
        if (u <= v || stamp[static_cast<size_t>(u)] != s) continue;
        local_edges.emplace_back(static_cast<int64_t>(i),
                                 local_of[static_cast<size_t>(u)]);
      }
    }
    shard.graph = Graph::FromSortedUniqueEdges(
        static_cast<int64_t>(shard.nodes.size()), std::move(local_edges));
    for (const int64_t v : shard.nodes)
      local_of[static_cast<size_t>(v)] = -1;
  }

  part.ExportMetrics();
  return part;
}

}  // namespace ses::graph
