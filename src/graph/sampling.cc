#include "graph/sampling.h"

#include <algorithm>

#include "util/logging.h"

namespace ses::graph {

NegativeSets SampleNegativeSets(const KHopAdjacency& khop,
                                const std::vector<int64_t>& labels,
                                util::Rng* rng,
                                const std::vector<int64_t>& counts) {
  const int64_t n = khop.num_nodes();
  SES_CHECK(counts.empty() || static_cast<int64_t>(counts.size()) == n);
  NegativeSets result;
  result.ptr.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t want = counts.empty()
                             ? static_cast<int64_t>(khop.Neighbors(i).size())
                             : counts[static_cast<size_t>(i)];
    result.ptr[static_cast<size_t>(i) + 1] =
        result.ptr[static_cast<size_t>(i)] + want;
  }
  result.idx.resize(static_cast<size_t>(result.ptr.back()));

  const bool has_labels = !labels.empty();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t want = result.ptr[static_cast<size_t>(i) + 1] -
                         result.ptr[static_cast<size_t>(i)];
    int64_t got = 0;
    // Rejection sampling from the complement; falls back to accepting
    // same-label nodes if too many rejections (tiny graphs).
    int64_t attempts = 0;
    const int64_t max_attempts = 50 * want + 100;
    while (got < want && attempts < max_attempts) {
      ++attempts;
      const int64_t cand = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(n)));
      if (cand == i || khop.Contains(i, cand)) continue;
      if (has_labels && attempts <= 10 * want &&
          labels[static_cast<size_t>(i)] >= 0 &&
          labels[static_cast<size_t>(cand)] == labels[static_cast<size_t>(i)])
        continue;  // prefer different-label negatives while attempts remain
      result.idx[static_cast<size_t>(result.ptr[static_cast<size_t>(i)] + got)] =
          cand;
      ++got;
    }
    // Pathological fallback (nearly-complete ball): pad by repeating an
    // arbitrary non-self node so downstream shapes stay aligned.
    while (got < want) {
      int64_t cand = (i + 1 + got) % n;
      if (cand == i) cand = (cand + 1) % n;
      result.idx[static_cast<size_t>(result.ptr[static_cast<size_t>(i)] + got)] =
          cand;
      ++got;
    }
  }
  return result;
}

}  // namespace ses::graph
