#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <stdexcept>
#include <string>

#include "util/logging.h"

namespace ses::graph {

Graph Graph::FromUndirectedEdges(
    int64_t num_nodes, const std::vector<std::pair<int64_t, int64_t>>& edges) {
  Graph g;
  g.num_nodes_ = num_nodes;
  std::set<std::pair<int64_t, int64_t>> unique;
  for (auto [u, v] : edges) {
    // Out-of-range endpoints are a data problem (malformed edge file), not a
    // programming error — reject with a catchable runtime_error.
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes)
      throw std::runtime_error("graph: edge (" + std::to_string(u) + ", " +
                               std::to_string(v) +
                               ") has an endpoint outside [0, " +
                               std::to_string(num_nodes) + ")");
    if (u == v) continue;
    unique.emplace(std::min(u, v), std::max(u, v));
  }
  g.edges_.assign(unique.begin(), unique.end());

  std::vector<int64_t> deg(static_cast<size_t>(num_nodes), 0);
  for (auto [u, v] : g.edges_) {
    ++deg[static_cast<size_t>(u)];
    ++deg[static_cast<size_t>(v)];
  }
  g.adj_ptr_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (int64_t i = 0; i < num_nodes; ++i)
    g.adj_ptr_[static_cast<size_t>(i) + 1] =
        g.adj_ptr_[static_cast<size_t>(i)] + deg[static_cast<size_t>(i)];
  g.adj_idx_.resize(static_cast<size_t>(g.adj_ptr_.back()));
  std::vector<int64_t> cursor(g.adj_ptr_.begin(), g.adj_ptr_.end() - 1);
  for (auto [u, v] : g.edges_) {
    g.adj_idx_[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
    g.adj_idx_[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
  }
  for (int64_t i = 0; i < num_nodes; ++i)
    std::sort(g.adj_idx_.begin() + g.adj_ptr_[static_cast<size_t>(i)],
              g.adj_idx_.begin() + g.adj_ptr_[static_cast<size_t>(i) + 1]);
  return g;
}

Graph Graph::FromUndirectedEdgesBulk(
    int64_t num_nodes, std::vector<std::pair<int64_t, int64_t>>&& edges) {
  size_t kept = 0;
  for (auto [u, v] : edges) {
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes)
      throw std::runtime_error("graph: edge (" + std::to_string(u) + ", " +
                               std::to_string(v) +
                               ") has an endpoint outside [0, " +
                               std::to_string(num_nodes) + ")");
    if (u == v) continue;
    edges[kept++] = {std::min(u, v), std::max(u, v)};
  }
  edges.resize(kept);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return FromSortedUniqueEdges(num_nodes, std::move(edges));
}

Graph Graph::FromSortedUniqueEdges(
    int64_t num_nodes, std::vector<std::pair<int64_t, int64_t>>&& edges) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.edges_ = std::move(edges);

  std::vector<int64_t> deg(static_cast<size_t>(num_nodes), 0);
  std::pair<int64_t, int64_t> prev{-1, -1};
  for (auto [u, v] : g.edges_) {
    SES_CHECK(u >= 0 && u < v && v < num_nodes &&
              "FromSortedUniqueEdges: endpoints must satisfy 0 <= u < v < n");
    SES_CHECK(std::make_pair(u, v) > prev &&
              "FromSortedUniqueEdges: edges must be sorted and unique");
    prev = {u, v};
    ++deg[static_cast<size_t>(u)];
    ++deg[static_cast<size_t>(v)];
  }
  g.adj_ptr_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (int64_t i = 0; i < num_nodes; ++i)
    g.adj_ptr_[static_cast<size_t>(i) + 1] =
        g.adj_ptr_[static_cast<size_t>(i)] + deg[static_cast<size_t>(i)];
  g.adj_idx_.resize(static_cast<size_t>(g.adj_ptr_.back()));
  std::vector<int64_t> cursor(g.adj_ptr_.begin(), g.adj_ptr_.end() - 1);
  // One pass in lexicographic edge order leaves every neighbor row sorted
  // without a sort: row w receives its smaller neighbors q while edges
  // (q, w) stream by in ascending q, then its larger neighbors x while
  // (w, x) stream by in ascending x, and every (q, w) precedes every (w, x).
  for (auto [u, v] : g.edges_) {
    g.adj_idx_[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
    g.adj_idx_[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
  }
  return g;
}

std::span<const int64_t> Graph::Neighbors(int64_t v) const {
  SES_CHECK(v >= 0 && v < num_nodes_);
  return {adj_idx_.data() + adj_ptr_[static_cast<size_t>(v)],
          static_cast<size_t>(adj_ptr_[static_cast<size_t>(v) + 1] -
                              adj_ptr_[static_cast<size_t>(v)])};
}

int64_t Graph::Degree(int64_t v) const {
  return adj_ptr_[static_cast<size_t>(v) + 1] - adj_ptr_[static_cast<size_t>(v)];
}

bool Graph::HasEdge(int64_t u, int64_t v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

autograd::EdgeListPtr Graph::DirectedEdges(bool add_self_loops) const {
  auto el = std::make_shared<autograd::EdgeList>();
  el->num_nodes = num_nodes_;
  const int64_t directed = 2 * num_edges() + (add_self_loops ? num_nodes_ : 0);
  el->src.reserve(static_cast<size_t>(directed));
  el->dst.reserve(static_cast<size_t>(directed));
  for (auto [u, v] : edges_) {
    el->src.push_back(u);
    el->dst.push_back(v);
    el->src.push_back(v);
    el->dst.push_back(u);
  }
  if (add_self_loops) {
    for (int64_t i = 0; i < num_nodes_; ++i) {
      el->src.push_back(i);
      el->dst.push_back(i);
    }
  }
  return el;
}

std::vector<float> Graph::GcnNormWeights(const autograd::EdgeList& edges) {
  std::vector<int64_t> deg(static_cast<size_t>(edges.num_nodes), 0);
  for (int64_t e = 0; e < edges.size(); ++e)
    ++deg[static_cast<size_t>(edges.dst[static_cast<size_t>(e)])];
  std::vector<float> weights(static_cast<size_t>(edges.size()));
  for (int64_t e = 0; e < edges.size(); ++e) {
    const int64_t du = deg[static_cast<size_t>(edges.src[static_cast<size_t>(e)])];
    const int64_t dv = deg[static_cast<size_t>(edges.dst[static_cast<size_t>(e)])];
    weights[static_cast<size_t>(e)] =
        1.0f / std::sqrt(static_cast<float>(std::max<int64_t>(du, 1)) *
                         static_cast<float>(std::max<int64_t>(dv, 1)));
  }
  return weights;
}

float Graph::NeighborhoodJaccard(int64_t u, int64_t v) const {
  auto nu = Neighbors(u);
  auto nv = Neighbors(v);
  if (nu.empty() && nv.empty()) return 0.0f;
  size_t i = 0, j = 0, common = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      ++common;
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = nu.size() + nv.size() - common;
  return uni == 0 ? 0.0f : static_cast<float>(common) / static_cast<float>(uni);
}

Graph Graph::WithExtraEdges(
    const std::vector<std::pair<int64_t, int64_t>>& extra) const {
  std::vector<std::pair<int64_t, int64_t>> all = edges_;
  all.insert(all.end(), extra.begin(), extra.end());
  return FromUndirectedEdges(num_nodes_, all);
}

Subgraph ExtractEgoNet(const Graph& g, int64_t center, int64_t hops) {
  Subgraph sub;
  std::vector<int64_t> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::queue<int64_t> frontier;
  frontier.push(center);
  dist[static_cast<size_t>(center)] = 0;
  sub.nodes.push_back(center);
  while (!frontier.empty()) {
    const int64_t u = frontier.front();
    frontier.pop();
    if (dist[static_cast<size_t>(u)] >= hops) continue;
    for (int64_t v : g.Neighbors(u)) {
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        sub.nodes.push_back(v);
        frontier.push(v);
      }
    }
  }
  std::sort(sub.nodes.begin(), sub.nodes.end());
  sub.local_of.assign(static_cast<size_t>(g.num_nodes()), -1);
  for (size_t i = 0; i < sub.nodes.size(); ++i)
    sub.local_of[static_cast<size_t>(sub.nodes[i])] = static_cast<int64_t>(i);
  sub.center_local = sub.local_of[static_cast<size_t>(center)];

  std::vector<std::pair<int64_t, int64_t>> local_edges;
  for (int64_t u : sub.nodes) {
    for (int64_t v : g.Neighbors(u)) {
      if (u < v && sub.local_of[static_cast<size_t>(v)] >= 0)
        local_edges.emplace_back(sub.local_of[static_cast<size_t>(u)],
                                 sub.local_of[static_cast<size_t>(v)]);
    }
  }
  sub.graph = Graph::FromUndirectedEdges(
      static_cast<int64_t>(sub.nodes.size()), local_edges);
  return sub;
}

}  // namespace ses::graph
