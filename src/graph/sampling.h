#ifndef SES_GRAPH_SAMPLING_H_
#define SES_GRAPH_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "graph/khop.h"
#include "util/rng.h"

namespace ses::graph {

/// Negative neighbor sets P_n(i) of the paper: for each node i, `count_i`
/// nodes sampled uniformly from the complement of its k-hop ball
/// (Ã^(k) = I - A^(k) in the paper's notation), preferring nodes whose label
/// differs from i's when labels are supplied (the paper samples negatives
/// "not part of the subgraph of the central node and with different labels").
/// Entries of `labels` may be -1 for unknown (semi-supervised callers must
/// mask out val/test labels — using them here would leak supervision); the
/// different-label preference only applies when both labels are known.
///
/// `counts[i]` defaults to |P_r(i)| when empty. Returns a CSR-like structure
/// parallel to the k-hop pair list.
struct NegativeSets {
  std::vector<int64_t> ptr;  ///< size N + 1
  std::vector<int64_t> idx;  ///< sampled negative node ids

  std::span<const int64_t> Of(int64_t i) const {
    return {idx.data() + ptr[static_cast<size_t>(i)],
            static_cast<size_t>(ptr[static_cast<size_t>(i) + 1] -
                                ptr[static_cast<size_t>(i)])};
  }
};

NegativeSets SampleNegativeSets(const KHopAdjacency& khop,
                                const std::vector<int64_t>& labels,
                                util::Rng* rng,
                                const std::vector<int64_t>& counts = {});

}  // namespace ses::graph

#endif  // SES_GRAPH_SAMPLING_H_
