#include "graph/khop.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/logging.h"

namespace ses::graph {

KHopAdjacency::KHopAdjacency(const Graph& g, int64_t k, int64_t max_neighbors)
    : k_(k), num_nodes_(g.num_nodes()) {
  SES_CHECK(k >= 1);
  nbr_ptr_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  std::vector<std::vector<int64_t>> balls(static_cast<size_t>(num_nodes_));

#pragma omp parallel
  {
    std::vector<int64_t> dist(static_cast<size_t>(num_nodes_), -1);
    std::vector<int64_t> touched;
#pragma omp for schedule(dynamic, 64)
    for (int64_t i = 0; i < num_nodes_; ++i) {
      touched.clear();
      std::queue<int64_t> frontier;
      frontier.push(i);
      dist[static_cast<size_t>(i)] = 0;
      touched.push_back(i);
      std::vector<int64_t>& ball = balls[static_cast<size_t>(i)];
      while (!frontier.empty()) {
        const int64_t u = frontier.front();
        frontier.pop();
        if (dist[static_cast<size_t>(u)] >= k) continue;
        for (int64_t v : g.Neighbors(u)) {
          if (dist[static_cast<size_t>(v)] < 0) {
            dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
            touched.push_back(v);
            ball.push_back(v);  // BFS order == closest-first
            frontier.push(v);
          }
        }
      }
      if (max_neighbors > 0 &&
          static_cast<int64_t>(ball.size()) > max_neighbors)
        ball.resize(static_cast<size_t>(max_neighbors));
      std::sort(ball.begin(), ball.end());
      for (int64_t v : touched) dist[static_cast<size_t>(v)] = -1;
    }
  }

  for (int64_t i = 0; i < num_nodes_; ++i)
    nbr_ptr_[static_cast<size_t>(i) + 1] =
        nbr_ptr_[static_cast<size_t>(i)] +
        static_cast<int64_t>(balls[static_cast<size_t>(i)].size());
  nbr_idx_.reserve(static_cast<size_t>(nbr_ptr_.back()));
  for (const auto& ball : balls)
    nbr_idx_.insert(nbr_idx_.end(), ball.begin(), ball.end());

  auto edges = std::make_shared<autograd::EdgeList>();
  edges->num_nodes = num_nodes_;
  edges->src.reserve(nbr_idx_.size());
  edges->dst.reserve(nbr_idx_.size());
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t e = nbr_ptr_[static_cast<size_t>(i)];
         e < nbr_ptr_[static_cast<size_t>(i) + 1]; ++e) {
      edges->src.push_back(i);
      edges->dst.push_back(nbr_idx_[static_cast<size_t>(e)]);
    }
  }
  pair_edges_ = std::move(edges);
}

std::span<const int64_t> KHopAdjacency::Neighbors(int64_t i) const {
  SES_CHECK(i >= 0 && i < num_nodes_);
  return {nbr_idx_.data() + nbr_ptr_[static_cast<size_t>(i)],
          static_cast<size_t>(nbr_ptr_[static_cast<size_t>(i) + 1] -
                              nbr_ptr_[static_cast<size_t>(i)])};
}

bool KHopAdjacency::Contains(int64_t i, int64_t j) const {
  auto nbrs = Neighbors(i);
  return std::binary_search(nbrs.begin(), nbrs.end(), j);
}

int64_t TopKByScore(const float* scores, int64_t offset, int64_t n, int64_t k,
                    std::vector<int64_t>* scratch, std::vector<int64_t>* out) {
  SES_CHECK(scratch != nullptr && out != nullptr);
  const int64_t take = std::min<int64_t>(k, n);
  out->clear();
  if (take <= 0) return 0;
  if (static_cast<int64_t>(scratch->size()) < n)
    scratch->resize(static_cast<size_t>(n));
  std::iota(scratch->begin(), scratch->begin() + n, int64_t{0});
  std::partial_sort(scratch->begin(), scratch->begin() + take,
                    scratch->begin() + n,
                    [scores, offset](int64_t a, int64_t b) {
                      return scores[offset + a] > scores[offset + b];
                    });
  out->assign(scratch->begin(), scratch->begin() + take);
  return take;
}

}  // namespace ses::graph
