#ifndef SES_GRAPH_PARTITION_H_
#define SES_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ses::graph {

/// Knobs for PartitionGraph / Partitioner (DESIGN.md §16).
struct PartitionOptions {
  int64_t num_shards = 4;
  /// Ghost-closure depth: every node within this many hops of an owned node
  /// is replicated into the shard's halo. Sharded serving of an L-layer
  /// encoder needs L + 1 (the extra ring makes the induced subgraph's
  /// degrees — and therefore the GCN normalization — exact on every node an
  /// owned logit reads), hence 3 for the library's two-layer encoders.
  int64_t halo_hops = 3;
  /// Per-shard owned-node capacity as a multiple of the ideal n / shards.
  double balance_slack = 1.05;
};

/// One shard: its owned nodes, the halo (ghost) replicas, and the subgraph
/// induced on their union, relabeled to local ids. `nodes` is ascending, so
/// the global→local map is monotone — local edge order equals global edge
/// order, which is what keeps shard-local forwards bitwise-equal to the
/// whole-graph forward (see ShardedSession).
struct Shard {
  std::vector<int64_t> owned;  ///< global ids, ascending
  std::vector<int64_t> halo;   ///< ghost global ids, ascending, disjoint
  std::vector<int64_t> nodes;  ///< owned ∪ halo, ascending; local id = index
  Graph graph;                 ///< induced subgraph over `nodes`, local ids
  int64_t num_owned_edges = 0;  ///< edges whose smaller endpoint is owned

  /// Local id of a global node, or -1 when not replicated here. O(log n).
  int64_t LocalOf(int64_t global) const;
};

/// A complete edge-cut partition plus its quality statistics.
struct Partition {
  PartitionOptions options;
  std::vector<int32_t> shard_of;  ///< global node -> owning shard
  std::vector<Shard> shards;
  int64_t total_edges = 0;
  int64_t cut_edges = 0;  ///< edges whose endpoints live on different shards

  int64_t num_shards() const { return static_cast<int64_t>(shards.size()); }
  double edge_cut_fraction() const {
    return total_edges == 0
               ? 0.0
               : static_cast<double>(cut_edges) /
                     static_cast<double>(total_edges);
  }
  /// Max owned-node count over the ideal n / shards (1.0 = perfectly even).
  double balance() const;
  /// Ghost replicas as a fraction of total nodes — the replication cost the
  /// halo exchange pays per graph version.
  double halo_fraction() const;

  /// Publishes `ses.partition.*` gauges (shards, edge_cut_fraction, balance,
  /// halo_fraction, max_shard_nodes). Called by Partitioner::Run.
  void ExportMetrics() const;
};

/// Greedy METIS-style edge-cut partitioner. Nodes are visited in
/// degree-descending order (hubs placed first, while every shard still has
/// room) and each is assigned to the shard holding most of its
/// already-assigned neighbors, subject to the balance_slack capacity —
/// linear deterministic gain scoring over the degree-sorted frontier, ties
/// broken toward the lighter then lower-indexed shard. O(N log N + E).
class Partitioner {
 public:
  explicit Partitioner(PartitionOptions options = {});

  /// Partitions `g`, builds every shard's halo closure and induced local
  /// subgraph, and exports the `ses.partition.*` quality metrics.
  Partition Run(const Graph& g) const;

 private:
  PartitionOptions options_;
};

}  // namespace ses::graph

#endif  // SES_GRAPH_PARTITION_H_
