#ifndef SES_GRAPH_KHOP_H_
#define SES_GRAPH_KHOP_H_

#include <cstdint>
#include <vector>

#include "autograd/sparse_ops.h"
#include "graph/graph.h"

namespace ses::graph {

/// The k-hop relational structure A^(k) of the paper (Table 2): for each node
/// i, the set P_r(i) of nodes within k hops (i excluded). Stored as a CSR
/// neighbor table plus the corresponding directed edge list whose entries
/// line up with the paper's Idx matrix (Eq. 5): edge e goes
/// src[e] = center i -> dst[e] = k-hop neighbor j.
class KHopAdjacency {
 public:
  /// BFS expansion of every node's k-hop ball. `max_neighbors`, when > 0,
  /// caps |P_r(i)| (closest-first) to bound N_k on dense graphs.
  KHopAdjacency(const Graph& g, int64_t k, int64_t max_neighbors = 0);

  int64_t k() const { return k_; }
  int64_t num_nodes() const { return num_nodes_; }
  /// Total number of (i, j) k-hop pairs == N_k in the paper.
  int64_t num_pairs() const { return static_cast<int64_t>(nbr_idx_.size()); }

  /// Sorted k-hop neighbor list of node `i` (P_r(i)).
  std::span<const int64_t> Neighbors(int64_t i) const;

  /// True if j is within k hops of i.
  bool Contains(int64_t i, int64_t j) const;

  /// Directed pair list (i -> j, one entry per k-hop pair). Entry order
  /// matches the flattened CSR: pairs of node 0 first, then node 1, ...
  /// This is the Idx matrix the structure mask M_s is indexed by.
  autograd::EdgeListPtr PairEdges() const { return pair_edges_; }

  /// Offset of node i's first pair in the flattened pair list.
  int64_t PairOffset(int64_t i) const {
    return nbr_ptr_[static_cast<size_t>(i)];
  }

 private:
  int64_t k_ = 0;
  int64_t num_nodes_ = 0;
  std::vector<int64_t> nbr_ptr_;
  std::vector<int64_t> nbr_idx_;
  autograd::EdgeListPtr pair_edges_;
};

/// Indices 0..n-1 ordered so the k highest `scores[offset + i]` come first
/// (descending), written into `out`. `scratch` is the full-length index
/// buffer the partial sort runs over; batched callers (ExplainMany, the
/// serving scheduler) pass the same scratch for every node in an index batch
/// so per-request selection does no allocation after the largest node.
/// Returns the number of selected entries, min(k, n).
int64_t TopKByScore(const float* scores, int64_t offset, int64_t n, int64_t k,
                    std::vector<int64_t>* scratch, std::vector<int64_t>* out);

}  // namespace ses::graph

#endif  // SES_GRAPH_KHOP_H_
