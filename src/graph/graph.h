#ifndef SES_GRAPH_GRAPH_H_
#define SES_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "autograd/sparse_ops.h"

namespace ses::graph {

/// Immutable undirected simple graph with CSR adjacency.
///
/// Construction dedups parallel edges and drops self-loops; neighbor lists
/// are kept sorted so membership queries are O(log deg).
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list (pairs may appear in any
  /// orientation / multiplicity; self-loops are ignored).
  static Graph FromUndirectedEdges(
      int64_t num_nodes, const std::vector<std::pair<int64_t, int64_t>>& edges);

  /// Bulk constructor for large graphs: same contract as FromUndirectedEdges
  /// but sorts the (consumed) edge vector in place instead of routing every
  /// pair through a std::set — O(E log E) time and O(E) memory, no per-node
  /// allocations. Produces a bitwise-identical Graph.
  static Graph FromUndirectedEdgesBulk(
      int64_t num_nodes, std::vector<std::pair<int64_t, int64_t>>&& edges);

  /// Zero-sort constructor for callers that already hold the canonical edge
  /// list (u < v, lexicographically sorted, unique, endpoints in range):
  /// adopts the vector and fills the CSR with one counting pass, O(N + E).
  /// The partitioner and the scale generator emit edges in this order by
  /// construction; order violations are a checked error.
  static Graph FromSortedUniqueEdges(
      int64_t num_nodes, std::vector<std::pair<int64_t, int64_t>>&& edges);

  int64_t num_nodes() const { return num_nodes_; }
  /// Number of undirected edges.
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  /// Each undirected edge once, with first < second.
  const std::vector<std::pair<int64_t, int64_t>>& edges() const {
    return edges_;
  }

  /// Sorted neighbor list of `v`.
  std::span<const int64_t> Neighbors(int64_t v) const;
  int64_t Degree(int64_t v) const;
  bool HasEdge(int64_t u, int64_t v) const;

  /// Directed edge list with both orientations of every undirected edge,
  /// plus optional self-loops — the message-passing support set.
  autograd::EdgeListPtr DirectedEdges(bool add_self_loops) const;

  /// Symmetric GCN normalization 1/sqrt(deg(u) deg(v)) per directed edge of
  /// `edges` (degrees counted over `edges` itself, so self-loops included
  /// when present).
  static std::vector<float> GcnNormWeights(const autograd::EdgeList& edges);

  /// Jaccard similarity of the two nodes' neighbor sets (SEGNN's local
  /// structure similarity).
  float NeighborhoodJaccard(int64_t u, int64_t v) const;

  /// Union of this graph's edges with `extra` undirected edges.
  Graph WithExtraEdges(
      const std::vector<std::pair<int64_t, int64_t>>& extra) const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<std::pair<int64_t, int64_t>> edges_;
  std::vector<int64_t> adj_ptr_;
  std::vector<int64_t> adj_idx_;
};

/// Node-induced subgraph with the node-id mapping retained; used by per-node
/// explainers (GNNExplainer optimizes a mask over this) and case studies.
struct Subgraph {
  Graph graph;                      ///< relabeled to [0, nodes.size())
  std::vector<int64_t> nodes;       ///< original ids; nodes[i] is local i
  std::vector<int64_t> local_of;    ///< original id -> local id (-1 if absent)
  int64_t center_local = -1;        ///< local id of the extraction center
};

/// Extracts the subgraph induced by all nodes within `hops` of `center`.
Subgraph ExtractEgoNet(const Graph& g, int64_t center, int64_t hops);

}  // namespace ses::graph

#endif  // SES_GRAPH_GRAPH_H_
