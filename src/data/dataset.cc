#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/logging.h"

namespace ses::data {

bool Dataset::IsMotifEdge(int64_t u, int64_t v) const {
  auto key = std::make_pair(std::min(u, v), std::max(u, v));
  return std::binary_search(gt_motif_edges.begin(), gt_motif_edges.end(), key);
}

void AssignSplit(Dataset* ds, double train_frac, double val_frac,
                 util::Rng* rng) {
  SES_CHECK(train_frac > 0 && val_frac >= 0 && train_frac + val_frac < 1.0);
  const int64_t n = ds->num_nodes();
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  const int64_t n_train = static_cast<int64_t>(train_frac * n);
  const int64_t n_val = static_cast<int64_t>(val_frac * n);
  ds->train_idx.assign(perm.begin(), perm.begin() + n_train);
  ds->val_idx.assign(perm.begin() + n_train, perm.begin() + n_train + n_val);
  ds->test_idx.assign(perm.begin() + n_train + n_val, perm.end());
  std::sort(ds->train_idx.begin(), ds->train_idx.end());
  std::sort(ds->val_idx.begin(), ds->val_idx.end());
  std::sort(ds->test_idx.begin(), ds->test_idx.end());
}

namespace {

[[noreturn]] void Fail(const Dataset& ds, const std::string& what) {
  throw std::runtime_error("dataset '" + ds.name + "': " + what);
}

void CheckSplit(const Dataset& ds, const char* split,
                const std::vector<int64_t>& idx) {
  for (int64_t i : idx)
    if (i < 0 || i >= ds.num_nodes())
      Fail(ds, std::string(split) + " index " + std::to_string(i) +
                   " outside [0, " + std::to_string(ds.num_nodes()) + ")");
}

}  // namespace

void ValidateDataset(const Dataset& ds) {
  const int64_t n = ds.num_nodes();
  if (static_cast<int64_t>(ds.labels.size()) != n)
    Fail(ds, "have " + std::to_string(ds.labels.size()) + " labels for " +
                 std::to_string(n) + " nodes");
  if (ds.num_classes <= 0) Fail(ds, "num_classes must be positive");
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = ds.labels[static_cast<size_t>(i)];
    if (y < 0 || y >= ds.num_classes)
      Fail(ds, "label " + std::to_string(y) + " of node " + std::to_string(i) +
                   " outside [0, " + std::to_string(ds.num_classes) + ")");
  }

  if (!ds.features) Fail(ds, "feature matrix missing");
  const tensor::SparseMatrix& x = *ds.features;
  if (x.rows != n)
    Fail(ds, "feature matrix has " + std::to_string(x.rows) + " rows for " +
                 std::to_string(n) + " nodes");
  if (static_cast<int64_t>(x.row_ptr.size()) != x.rows + 1 ||
      (x.rows > 0 && x.row_ptr.front() != 0) ||
      (x.rows > 0 && x.row_ptr.back() != x.nnz()))
    Fail(ds, "feature CSR row_ptr malformed");
  for (int64_t r = 0; r < x.rows; ++r)
    if (x.row_ptr[static_cast<size_t>(r)] > x.row_ptr[static_cast<size_t>(r) + 1])
      Fail(ds, "feature CSR row_ptr not monotone at row " + std::to_string(r));
  if (x.col_idx.size() != x.values.size())
    Fail(ds, "feature CSR col_idx/values length mismatch");
  for (size_t k = 0; k < x.col_idx.size(); ++k) {
    if (x.col_idx[k] < 0 || x.col_idx[k] >= x.cols)
      Fail(ds, "feature column index " + std::to_string(x.col_idx[k]) +
                   " outside [0, " + std::to_string(x.cols) + ")");
    if (!std::isfinite(x.values[k]))
      Fail(ds, "non-finite feature value at nnz " + std::to_string(k));
  }

  CheckSplit(ds, "train", ds.train_idx);
  CheckSplit(ds, "val", ds.val_idx);
  CheckSplit(ds, "test", ds.test_idx);

  for (auto [u, v] : ds.gt_motif_edges)
    if (u < 0 || u >= n || v < 0 || v >= n)
      Fail(ds, "ground-truth motif edge (" + std::to_string(u) + ", " +
                   std::to_string(v) + ") has an out-of-range endpoint");
  if (!ds.in_motif.empty() && static_cast<int64_t>(ds.in_motif.size()) != n)
    Fail(ds, "in_motif size does not match node count");
}

}  // namespace ses::data
