#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ses::data {

bool Dataset::IsMotifEdge(int64_t u, int64_t v) const {
  auto key = std::make_pair(std::min(u, v), std::max(u, v));
  return std::binary_search(gt_motif_edges.begin(), gt_motif_edges.end(), key);
}

void AssignSplit(Dataset* ds, double train_frac, double val_frac,
                 util::Rng* rng) {
  SES_CHECK(train_frac > 0 && val_frac >= 0 && train_frac + val_frac < 1.0);
  const int64_t n = ds->num_nodes();
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  const int64_t n_train = static_cast<int64_t>(train_frac * n);
  const int64_t n_val = static_cast<int64_t>(val_frac * n);
  ds->train_idx.assign(perm.begin(), perm.begin() + n_train);
  ds->val_idx.assign(perm.begin() + n_train, perm.begin() + n_train + n_val);
  ds->test_idx.assign(perm.begin() + n_train + n_val, perm.end());
  std::sort(ds->train_idx.begin(), ds->train_idx.end());
  std::sort(ds->val_idx.begin(), ds->val_idx.end());
  std::sort(ds->test_idx.begin(), ds->test_idx.end());
}

}  // namespace ses::data
