#ifndef SES_DATA_DATASET_H_
#define SES_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"
#include "util/rng.h"

namespace ses::data {

/// A node-classification dataset: graph + features + labels + split, plus
/// (for the synthetic explanation benchmarks) the ground-truth motif edges
/// explanation methods are scored against.
struct Dataset {
  std::string name;
  graph::Graph graph;
  /// Node features, CSR. Dense datasets are stored sparse too (the library's
  /// first-layer kernels exploit sparsity but tolerate full rows).
  std::shared_ptr<const tensor::SparseMatrix> features;
  std::vector<int64_t> labels;
  int64_t num_classes = 0;

  std::vector<int64_t> train_idx;
  std::vector<int64_t> val_idx;
  std::vector<int64_t> test_idx;

  /// Ground-truth explanation for synthetic datasets: undirected motif edges
  /// (u < v) and per-node motif membership. Empty for real-world graphs.
  std::vector<std::pair<int64_t, int64_t>> gt_motif_edges;
  std::vector<bool> in_motif;

  int64_t num_nodes() const { return graph.num_nodes(); }
  int64_t num_features() const { return features ? features->cols : 0; }
  bool HasGroundTruthExplanations() const { return !gt_motif_edges.empty(); }
  /// True if (u, v) (either orientation) is a ground-truth motif edge.
  bool IsMotifEdge(int64_t u, int64_t v) const;
};

/// Randomly splits nodes into train/val/test by the given fractions
/// (the paper uses 60/20/20 for real-world graphs, 80/10/10 for synthetic).
void AssignSplit(Dataset* ds, double train_frac, double val_frac,
                 util::Rng* rng);

/// Structural validation run by every loader before a dataset is returned.
/// Throws std::runtime_error (message prefixed with the dataset name) on:
/// label count/range mismatches, malformed feature CSR, non-finite feature
/// values, split indices outside [0, n), or ground-truth motif edges with
/// out-of-range endpoints. Corrupt inputs fail loudly at load time instead
/// of as NaNs ten epochs into training.
void ValidateDataset(const Dataset& ds);

}  // namespace ses::data

#endif  // SES_DATA_DATASET_H_
