#ifndef SES_DATA_SCALE_H_
#define SES_DATA_SCALE_H_

#include "data/dataset.h"

namespace ses::data {

/// Synthetic million-node benchmark generator (DESIGN.md §16).
///
/// The paper-scale synthetic suites (synthetic.h) top out around a thousand
/// nodes; this generator grows the same recipe — heavy-tailed base graph plus
/// planted labeled motifs with recorded ground-truth edges — to millions of
/// nodes so the serving stack can be exercised past one shard's worth of
/// memory. Properties the scale benchmarks rely on:
///
///  - Power-law degree distribution with a configurable exponent: out-stub
///    counts follow a Pareto tail and targets are drawn by inverse-CDF from
///    power-law node weights, so hubs exist at every size (the skew the SpMM
///    autotuner and partitioner balance heuristics care about).
///  - Deterministic under `seed`: every node and motif forks its own counted
///    RNG stream, so two runs with equal options produce bitwise-identical
///    datasets (see DatasetDigest) regardless of generation order.
///  - Streaming CSR construction: edges are generated twice from the same
///    per-node streams — once to count degrees, once to fill the adjacency —
///    so peak memory is O(E) CSR arrays, never a multiplicity-laden global
///    edge list. 10M nodes builds in a few GB.
///  - Ground truth stays measurable: house and cycle motifs are planted with
///    their edges recorded in Dataset::gt_motif_edges, exactly like the
///    paper-scale suites, so explanation AUC can be scored at any size.
struct ScaleGraphOptions {
  int64_t num_nodes = 100000;      ///< base nodes; motif nodes are appended
  double powerlaw_exponent = 2.5;  ///< degree-distribution exponent, > 2
  double avg_degree = 8.0;         ///< mean out-stubs per base node
  /// Motif counts; -1 derives one motif per 1000 base nodes (>= 1 each).
  int64_t num_houses = -1;
  int64_t num_cycles = -1;
  int64_t feature_dim = 16;  ///< must hold bias + degree + one-hot label
  uint64_t seed = 0;
  /// Split fractions are small by design: at 1M+ nodes a full 80% train set
  /// would dominate generation time without telling the benchmark anything.
  double train_frac = 0.02;
  double val_frac = 0.01;
};

/// Generates the dataset described above. Node ids: base nodes first, then
/// house nodes (5 per house), then cycle nodes (6 per cycle). Labels:
/// 0 = base, 1/2/3 = house bottom/middle/top, 4 = cycle member (label ids
/// compact when a motif kind is disabled). Features are sparse, 3 nonzeros
/// per node: bias, normalized degree, and a one-hot label channel.
Dataset MakeScaleGraph(const ScaleGraphOptions& options = {});

/// Order-independent FNV-1a fingerprint of everything a model can observe:
/// topology, labels, features, ground-truth edges, and split sizes. Two
/// MakeScaleGraph calls agree on the digest iff they produced the same
/// dataset — the CI determinism double-run compares exactly this.
uint64_t DatasetDigest(const Dataset& ds);

}  // namespace ses::data

#endif  // SES_DATA_SCALE_H_
