#ifndef SES_DATA_SYNTHETIC_H_
#define SES_DATA_SYNTHETIC_H_

#include "data/dataset.h"

namespace ses::data {

/// The four synthetic explanation benchmarks of GNNExplainer / PGExplainer,
/// used by the paper's Table 4 and Figure 6. Each attaches labeled motifs to
/// a base graph, records the motif edges as ground-truth explanations, and
/// adds 10% random perturbation edges. Splits default to 80/10/10.

/// Options shared by the generators. The defaults replicate the sizes in the
/// paper (BA base of 300 nodes, 80 motifs, ...); `scale` shrinks everything
/// proportionally for fast tests.
struct SyntheticOptions {
  double scale = 1.0;
  double perturb_frac = 0.1;  ///< random edges added, fraction of N
  int64_t feature_dim = 10;
  uint64_t seed = 0;
};

/// Barabasi-Albert base + 80 five-node "house" motifs; 4 structural classes
/// (0 = base, 1 = house bottom, 2 = house middle, 3 = house top).
Dataset MakeBaShapes(const SyntheticOptions& options = {});

/// Union of two BAShapes communities with inter-community edges; 8 classes
/// (role x community); Gaussian community features.
Dataset MakeBaCommunity(const SyntheticOptions& options = {});

/// Balanced binary tree + 80 six-node cycle motifs; 2 classes.
Dataset MakeTreeCycle(const SyntheticOptions& options = {});

/// Balanced binary tree + 80 3x3 grid motifs; 2 classes.
Dataset MakeTreeGrid(const SyntheticOptions& options = {});

/// Lookup by the paper's dataset name ("BAShapes", "BACommunity",
/// "Tree-Cycle", "Tree-Grid").
Dataset MakeSyntheticByName(const std::string& name,
                            const SyntheticOptions& options = {});

/// A plain Barabasi-Albert random graph (exposed for benchmarks that need a
/// scalable sparse graph, e.g. the Table 8 pair-construction timing).
graph::Graph MakeBarabasiAlbert(int64_t num_nodes, int64_t edges_per_node,
                                util::Rng* rng);

}  // namespace ses::data

#endif  // SES_DATA_SYNTHETIC_H_
