#include "data/scale.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace ses::data {

namespace {

/// splitmix64 mix of (seed, stream tag, index) — every node and motif gets
/// its own RNG stream, so the two generation passes (count, fill) replay
/// identical draws and the result is independent of any pass structure.
uint64_t MixSeed(uint64_t seed, uint64_t stream, uint64_t i) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1) +
               0xBF58476D1CE4E5B9ULL * (i + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

uint64_t Fnv1a(uint64_t h, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

struct Layout {
  int64_t base_nodes = 0;
  int64_t houses = 0;
  int64_t cycles = 0;
  int64_t total_nodes = 0;
  int64_t house_label_base = 0;  ///< labels 1..3 when houses enabled
  int64_t cycle_label = 0;
  int64_t num_classes = 1;

  int64_t HouseNode(int64_t m, int64_t k) const { return base_nodes + 5 * m + k; }
  int64_t CycleNode(int64_t m, int64_t k) const {
    return base_nodes + 5 * houses + 6 * m + k;
  }
};

Layout MakeLayout(const ScaleGraphOptions& o) {
  Layout l;
  l.base_nodes = o.num_nodes;
  l.houses = o.num_houses >= 0 ? o.num_houses
                               : std::max<int64_t>(1, o.num_nodes / 1000);
  l.cycles = o.num_cycles >= 0 ? o.num_cycles
                               : std::max<int64_t>(1, o.num_nodes / 1000);
  l.total_nodes = l.base_nodes + 5 * l.houses + 6 * l.cycles;
  l.house_label_base = l.houses > 0 ? 1 : 0;
  l.cycle_label = 1 + (l.houses > 0 ? 3 : 0);
  l.num_classes = 1 + (l.houses > 0 ? 3 : 0) + (l.cycles > 0 ? 1 : 0);
  return l;
}

/// Streams every candidate edge (u != v, unordered, duplicates possible) to
/// `emit`. Called twice — degree-count pass and CSR-fill pass — and MUST
/// emit the identical sequence both times; all randomness comes from
/// per-node / per-motif forked streams, never from shared state.
template <typename Emit>
void StreamEdges(const ScaleGraphOptions& o, const Layout& l, Emit&& emit) {
  const double alpha = o.powerlaw_exponent;
  // Pareto-tail stub count with mean ~ avg_degree: E[d] = dmin(a-1)/(a-2).
  const double dmin =
      std::max(0.5, o.avg_degree * (alpha - 2.0) / (alpha - 1.0));
  const int64_t cap = std::max<int64_t>(1, l.base_nodes - 1);
  // Target weight ~ (j+1)^-b gives in-degree density ~ j^-b; b = 1/(a-1)
  // keeps the combined degree distribution's tail exponent at ~alpha.
  const double b = std::clamp(1.0 / (alpha - 1.0), 0.05, 0.95);
  const double inv_exp = 1.0 / (1.0 - b);
  for (int64_t i = 0; i < l.base_nodes; ++i) {
    util::Rng rng(MixSeed(o.seed, /*stream=*/1, i));
    const double u = 1.0 - rng.Uniform();  // (0, 1]: keeps pow finite
    const int64_t stubs = std::clamp<int64_t>(
        static_cast<int64_t>(dmin * std::pow(u, -1.0 / (alpha - 1.0))), 1,
        cap);
    for (int64_t s = 0; s < stubs; ++s) {
      const int64_t t = std::min<int64_t>(
          l.base_nodes - 1,
          static_cast<int64_t>(static_cast<double>(l.base_nodes) *
                               std::pow(rng.Uniform(), inv_exp)));
      if (t != i) emit(i, t);
    }
  }
  for (int64_t m = 0; m < l.houses; ++m) {
    util::Rng rng(MixSeed(o.seed, /*stream=*/2, m));
    const int64_t anchor =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(l.base_nodes)));
    // Square 0-1-2-3 with roof apex 4 over the middle pair; the anchor edge
    // attaches the motif to the base graph and is NOT ground truth.
    static constexpr int kHouseEdges[6][2] = {{0, 1}, {1, 2}, {2, 3},
                                              {0, 3}, {2, 4}, {3, 4}};
    for (const auto& e : kHouseEdges)
      emit(l.HouseNode(m, e[0]), l.HouseNode(m, e[1]));
    emit(anchor, l.HouseNode(m, 0));
  }
  for (int64_t m = 0; m < l.cycles; ++m) {
    util::Rng rng(MixSeed(o.seed, /*stream=*/3, m));
    const int64_t anchor =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(l.base_nodes)));
    for (int64_t k = 0; k < 6; ++k)
      emit(l.CycleNode(m, k), l.CycleNode(m, (k + 1) % 6));
    emit(anchor, l.CycleNode(m, 0));
  }
}

}  // namespace

Dataset MakeScaleGraph(const ScaleGraphOptions& options) {
  SES_CHECK(options.num_nodes > 0);
  SES_CHECK(options.powerlaw_exponent > 2.0 &&
            "power-law exponent must exceed 2 for a finite mean degree");
  SES_CHECK(options.avg_degree >= 1.0);
  const Layout l = MakeLayout(options);
  SES_CHECK(options.feature_dim >= 2 + l.num_classes &&
            "feature_dim must hold bias + degree + one-hot label channels");
  const int64_t n = l.total_nodes;

  // Streaming CSR build: pass 1 counts stub endpoints, pass 2 fills the
  // adjacency through cursors, then each row is sorted and deduplicated in
  // place. No global edge list with multiplicities is ever materialized.
  std::vector<int64_t> row_ptr(static_cast<size_t>(n) + 1, 0);
  StreamEdges(options, l, [&](int64_t u, int64_t v) {
    ++row_ptr[static_cast<size_t>(u) + 1];
    ++row_ptr[static_cast<size_t>(v) + 1];
  });
  for (int64_t i = 0; i < n; ++i)
    row_ptr[static_cast<size_t>(i) + 1] += row_ptr[static_cast<size_t>(i)];
  std::vector<int64_t> idx(static_cast<size_t>(row_ptr.back()));
  {
    std::vector<int64_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
    StreamEdges(options, l, [&](int64_t u, int64_t v) {
      idx[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
      idx[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
    });
  }
  int64_t undirected = 0;
  std::vector<int64_t> row_end(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    auto begin = idx.begin() + row_ptr[static_cast<size_t>(i)];
    auto end = idx.begin() + row_ptr[static_cast<size_t>(i) + 1];
    std::sort(begin, end);
    auto last = std::unique(begin, end);
    row_end[static_cast<size_t>(i)] =
        row_ptr[static_cast<size_t>(i)] + (last - begin);
    for (auto it = begin; it != last; ++it)
      if (*it > i) ++undirected;
  }
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(static_cast<size_t>(undirected));
  for (int64_t i = 0; i < n; ++i)
    for (int64_t e = row_ptr[static_cast<size_t>(i)];
         e < row_end[static_cast<size_t>(i)]; ++e)
      if (idx[static_cast<size_t>(e)] > i)
        edges.emplace_back(i, idx[static_cast<size_t>(e)]);
  idx.clear();
  idx.shrink_to_fit();

  Dataset ds;
  ds.name = "ScaleGraph-" + std::to_string(n) + "-seed" +
            std::to_string(options.seed);
  ds.graph = graph::Graph::FromSortedUniqueEdges(n, std::move(edges));

  // Labels and motif ground truth (motif edges only; anchors excluded).
  ds.labels.assign(static_cast<size_t>(n), 0);
  ds.in_motif.assign(static_cast<size_t>(n), false);
  ds.num_classes = l.num_classes;
  static constexpr int kHouseRole[5] = {1, 1, 2, 2, 3};  // bottom/middle/top
  for (int64_t m = 0; m < l.houses; ++m) {
    static constexpr int kHouseEdges[6][2] = {{0, 1}, {1, 2}, {2, 3},
                                              {0, 3}, {2, 4}, {3, 4}};
    for (const auto& e : kHouseEdges) {
      const int64_t u = l.HouseNode(m, e[0]);
      const int64_t v = l.HouseNode(m, e[1]);
      ds.gt_motif_edges.emplace_back(std::min(u, v), std::max(u, v));
    }
    for (int64_t k = 0; k < 5; ++k) {
      ds.labels[static_cast<size_t>(l.HouseNode(m, k))] = kHouseRole[k];
      ds.in_motif[static_cast<size_t>(l.HouseNode(m, k))] = true;
    }
  }
  for (int64_t m = 0; m < l.cycles; ++m) {
    for (int64_t k = 0; k < 6; ++k) {
      const int64_t u = l.CycleNode(m, k);
      const int64_t v = l.CycleNode(m, (k + 1) % 6);
      ds.gt_motif_edges.emplace_back(std::min(u, v), std::max(u, v));
      ds.labels[static_cast<size_t>(u)] = l.cycle_label;
      ds.in_motif[static_cast<size_t>(u)] = true;
    }
  }
  std::sort(ds.gt_motif_edges.begin(), ds.gt_motif_edges.end());

  // Sparse structural features: bias, saturating normalized degree, and a
  // one-hot label channel — three nonzeros per node, ascending columns.
  auto features = std::make_shared<tensor::SparseMatrix>();
  features->rows = n;
  features->cols = options.feature_dim;
  features->row_ptr.resize(static_cast<size_t>(n) + 1);
  features->col_idx.reserve(static_cast<size_t>(3 * n));
  features->values.reserve(static_cast<size_t>(3 * n));
  for (int64_t i = 0; i < n; ++i) {
    features->col_idx.push_back(0);
    features->values.push_back(1.0f);
    features->col_idx.push_back(1);
    features->values.push_back(
        static_cast<float>(std::min<int64_t>(ds.graph.Degree(i), 64)) / 64.0f);
    features->col_idx.push_back(2 + ds.labels[static_cast<size_t>(i)]);
    features->values.push_back(1.0f);
    features->row_ptr[static_cast<size_t>(i) + 1] = features->nnz();
  }
  ds.features = std::move(features);

  util::Rng split_rng(MixSeed(options.seed, /*stream=*/4, 0));
  AssignSplit(&ds, options.train_frac, options.val_frac, &split_rng);
  ValidateDataset(ds);
  return ds;
}

uint64_t DatasetDigest(const Dataset& ds) {
  uint64_t h = 0xcbf29ce484222325ull;
  const int64_t header[3] = {ds.num_nodes(), ds.graph.num_edges(),
                             ds.num_classes};
  h = Fnv1a(h, header, sizeof(header));
  for (const auto& [u, v] : ds.graph.edges()) {
    const int64_t pair[2] = {u, v};
    h = Fnv1a(h, pair, sizeof(pair));
  }
  h = Fnv1a(h, ds.labels.data(), ds.labels.size() * sizeof(int64_t));
  if (ds.features != nullptr) {
    h = Fnv1a(h, ds.features->row_ptr.data(),
              ds.features->row_ptr.size() * sizeof(int64_t));
    h = Fnv1a(h, ds.features->col_idx.data(),
              ds.features->col_idx.size() * sizeof(int64_t));
    h = Fnv1a(h, ds.features->values.data(),
              ds.features->values.size() * sizeof(float));
  }
  for (const auto& [u, v] : ds.gt_motif_edges) {
    const int64_t pair[2] = {u, v};
    h = Fnv1a(h, pair, sizeof(pair));
  }
  for (const auto* split : {&ds.train_idx, &ds.val_idx, &ds.test_idx})
    h = Fnv1a(h, split->data(), split->size() * sizeof(int64_t));
  return h;
}

}  // namespace ses::data
