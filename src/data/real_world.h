#ifndef SES_DATA_REAL_WORLD_H_
#define SES_DATA_REAL_WORLD_H_

#include "data/dataset.h"

namespace ses::data {

/// Calibrated synthetic stand-ins for the paper's four real-world datasets.
///
/// The evaluation environment is offline, so the Planetoid / SNAP downloads
/// are replaced by generators that match each dataset's published statistics:
/// node count, edge count, class count, edge homophily, and feature model
/// (sparse class-conditional bag-of-words for the citation graphs, identity
/// features for PolBlogs exactly as the paper does, keyword counts for
/// Coauthor-CS). See DESIGN.md §3 for the substitution rationale.
struct RealWorldConfig {
  std::string name;
  int64_t num_nodes = 0;
  int64_t num_features = 0;  ///< 0 => identity features
  int64_t num_classes = 0;
  int64_t num_edges = 0;     ///< undirected
  double homophily = 0.8;    ///< fraction of edges joining same-class nodes
  int64_t words_per_node = 18;
  int64_t topic_words_per_class = 0;  ///< 0 => num_features / num_classes
  double class_skew = 0.3;   ///< 0 = uniform class sizes, 1 = heavily skewed
  /// Fraction of observed labels flipped to a random other class after the
  /// graph and features are generated. Real citation labels are imperfectly
  /// aligned with both text and citations; without this, structure-exploiting
  /// models saturate at 100%. The value sets the accuracy ceiling at
  /// roughly (1 - label_noise), calibrated per dataset to the paper's band.
  double label_noise = 0.08;
  uint64_t seed = 0;
  /// Shrinks nodes/edges for quick tests or CPU-budgeted benches.
  double scale = 1.0;
};

/// Generates a stand-in from an explicit config.
Dataset MakeRealWorldStandIn(const RealWorldConfig& config);

/// Published-statistics presets. `scale` in (0, 1] shrinks the graph.
RealWorldConfig CoraConfig(double scale = 1.0, uint64_t seed = 0);
RealWorldConfig CiteSeerConfig(double scale = 1.0, uint64_t seed = 0);
RealWorldConfig PolBlogsConfig(double scale = 1.0, uint64_t seed = 0);
RealWorldConfig CoauthorCsConfig(double scale = 1.0, uint64_t seed = 0);

/// Convenience: build by the paper's dataset name ("Cora", "CiteSeer",
/// "PolBlogs", "CS").
Dataset MakeRealWorldByName(const std::string& name, double scale = 1.0,
                            uint64_t seed = 0);

}  // namespace ses::data

#endif  // SES_DATA_REAL_WORLD_H_
