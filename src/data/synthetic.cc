#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"
#include "util/logging.h"

namespace ses::data {
namespace {

using EdgeVec = std::vector<std::pair<int64_t, int64_t>>;

/// Adds a motif's internal edges and one attachment edge to `edges`,
/// recording internal edges as ground truth.
struct MotifBuilder {
  EdgeVec edges;
  EdgeVec gt_edges;
  std::vector<int64_t> labels;
  std::vector<bool> in_motif;

  int64_t AddNode(int64_t label, bool motif) {
    labels.push_back(label);
    in_motif.push_back(motif);
    return static_cast<int64_t>(labels.size()) - 1;
  }

  void AddEdge(int64_t u, int64_t v, bool gt) {
    edges.emplace_back(u, v);
    if (gt) gt_edges.emplace_back(std::min(u, v), std::max(u, v));
  }
};

/// Builds a BA graph inside `b` with all nodes labeled `base_label`.
/// Returns the ids of the created nodes.
std::vector<int64_t> BuildBa(MotifBuilder* b, int64_t n, int64_t m,
                             int64_t base_label, util::Rng* rng) {
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(n));
  // Seed clique of m+1 nodes.
  std::vector<int64_t> endpoint_pool;  // preferential attachment by repetition
  for (int64_t i = 0; i < std::min(n, m + 1); ++i)
    ids.push_back(b->AddNode(base_label, false));
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      b->AddEdge(ids[i], ids[j], false);
      endpoint_pool.push_back(ids[i]);
      endpoint_pool.push_back(ids[j]);
    }
  }
  for (int64_t i = static_cast<int64_t>(ids.size()); i < n; ++i) {
    const int64_t u = b->AddNode(base_label, false);
    ids.push_back(u);
    // m distinct targets by preferential attachment.
    std::vector<int64_t> targets;
    int64_t guard = 0;
    while (static_cast<int64_t>(targets.size()) < m && guard++ < 100 * m) {
      const int64_t t = endpoint_pool[static_cast<size_t>(
          rng->UniformInt(endpoint_pool.size()))];
      if (t != u && std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (int64_t t : targets) {
      b->AddEdge(u, t, false);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(t);
    }
  }
  return ids;
}

/// Attaches one 5-node house: bottom pair (label_base+0) connects to the
/// anchor, middle pair (label_base+1), top/roof (label_base+2).
void AttachHouse(MotifBuilder* b, int64_t anchor, int64_t label_base,
                 util::Rng* rng) {
  const int64_t b1 = b->AddNode(label_base + 0, true);
  const int64_t b2 = b->AddNode(label_base + 0, true);
  const int64_t m1 = b->AddNode(label_base + 1, true);
  const int64_t m2 = b->AddNode(label_base + 1, true);
  const int64_t top = b->AddNode(label_base + 2, true);
  // Square walls + roof (the classic "house").
  b->AddEdge(b1, b2, true);
  b->AddEdge(b1, m1, true);
  b->AddEdge(b2, m2, true);
  b->AddEdge(m1, m2, true);
  b->AddEdge(m1, top, true);
  b->AddEdge(m2, top, true);
  // Attachment edge is NOT part of the ground-truth explanation.
  const int64_t attach = rng->Bernoulli(0.5) ? b1 : b2;
  b->AddEdge(attach, anchor, false);
}

void AttachCycle(MotifBuilder* b, int64_t anchor, int64_t label,
                 int64_t cycle_len, util::Rng* rng) {
  std::vector<int64_t> ring;
  for (int64_t i = 0; i < cycle_len; ++i) ring.push_back(b->AddNode(label, true));
  for (int64_t i = 0; i < cycle_len; ++i)
    b->AddEdge(ring[static_cast<size_t>(i)],
               ring[static_cast<size_t>((i + 1) % cycle_len)], true);
  b->AddEdge(ring[static_cast<size_t>(rng->UniformInt(
                 static_cast<uint64_t>(cycle_len)))],
             anchor, false);
}

void AttachGrid(MotifBuilder* b, int64_t anchor, int64_t label,
                util::Rng* rng) {
  // 3x3 grid.
  int64_t cell[3][3];
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) cell[r][c] = b->AddNode(label, true);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) b->AddEdge(cell[r][c], cell[r][c + 1], true);
      if (r + 1 < 3) b->AddEdge(cell[r][c], cell[r + 1][c], true);
    }
  }
  b->AddEdge(cell[rng->UniformInt(3)][rng->UniformInt(3)], anchor, false);
}

/// Balanced binary tree of the given depth; all nodes labeled `label`.
std::vector<int64_t> BuildTree(MotifBuilder* b, int64_t depth, int64_t label) {
  const int64_t n = (1ll << (depth + 1)) - 1;
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids.push_back(b->AddNode(label, false));
  for (int64_t i = 1; i < n; ++i)
    b->AddEdge(ids[static_cast<size_t>(i)], ids[static_cast<size_t>((i - 1) / 2)],
               false);
  return ids;
}

void AddPerturbationEdges(MotifBuilder* b, double frac, util::Rng* rng) {
  const int64_t n = static_cast<int64_t>(b->labels.size());
  const int64_t extra = static_cast<int64_t>(frac * n);
  for (int64_t i = 0; i < extra; ++i) {
    const int64_t u = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
    const int64_t v = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
    if (u != v) b->AddEdge(u, v, false);
  }
}

/// Structural node features for the constant-feature benchmarks: a bias
/// term, normalized degree, and a bucketed degree one-hot. GNNExplainer's
/// all-ones features make every GCN feature map rank-1 (all rows of XW are
/// identical), which starves a 2-layer encoder; degree encodings are the
/// standard remedy in reimplementations and keep the explanation task intact
/// (role labels still depend on multi-hop structure).
tensor::Tensor MakeStructuralFeatures(const graph::Graph& g, int64_t dim) {
  SES_CHECK(dim >= 3);
  tensor::Tensor x(g.num_nodes(), dim);
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    const int64_t deg = g.Degree(i);
    x.At(i, 0) = 1.0f;
    x.At(i, 1) = static_cast<float>(deg) / 10.0f;
    const int64_t bucket = std::min<int64_t>(deg, dim - 3);
    x.At(i, 2 + bucket) = 1.0f;
  }
  return x;
}

Dataset Finalize(MotifBuilder* b, const std::string& name,
                 int64_t num_classes, tensor::Tensor features,
                 util::Rng* rng) {
  Dataset ds;
  ds.name = name;
  const int64_t n = static_cast<int64_t>(b->labels.size());
  ds.graph = graph::Graph::FromUndirectedEdges(n, b->edges);
  ds.labels = std::move(b->labels);
  ds.num_classes = num_classes;
  ds.in_motif = std::move(b->in_motif);
  std::sort(b->gt_edges.begin(), b->gt_edges.end());
  b->gt_edges.erase(std::unique(b->gt_edges.begin(), b->gt_edges.end()),
                    b->gt_edges.end());
  ds.gt_motif_edges = std::move(b->gt_edges);
  // An empty feature tensor requests the default structural features.
  if (features.empty()) features = MakeStructuralFeatures(ds.graph, 10);
  ds.features = std::make_shared<tensor::SparseMatrix>(
      tensor::SparseMatrix::FromDense(features));
  AssignSplit(&ds, 0.8, 0.1, rng);
  ValidateDataset(ds);
  return ds;
}

}  // namespace

graph::Graph MakeBarabasiAlbert(int64_t num_nodes, int64_t edges_per_node,
                                util::Rng* rng) {
  MotifBuilder b;
  BuildBa(&b, num_nodes, edges_per_node, 0, rng);
  return graph::Graph::FromUndirectedEdges(num_nodes, b.edges);
}

Dataset MakeBaShapes(const SyntheticOptions& options) {
  util::Rng rng(options.seed + 101);
  MotifBuilder b;
  const int64_t base_n = std::max<int64_t>(20, static_cast<int64_t>(300 * options.scale));
  const int64_t houses = std::max<int64_t>(4, static_cast<int64_t>(80 * options.scale));
  auto base = BuildBa(&b, base_n, 5, 0, &rng);
  for (int64_t h = 0; h < houses; ++h) {
    const int64_t anchor = base[static_cast<size_t>(rng.UniformInt(base.size()))];
    AttachHouse(&b, anchor, 1, &rng);
  }
  AddPerturbationEdges(&b, options.perturb_frac, &rng);
  return Finalize(&b, "BAShapes", 4, tensor::Tensor(), &rng);
}

Dataset MakeBaCommunity(const SyntheticOptions& options) {
  util::Rng rng(options.seed + 202);
  MotifBuilder b;
  const int64_t base_n = std::max<int64_t>(20, static_cast<int64_t>(300 * options.scale));
  const int64_t houses = std::max<int64_t>(4, static_cast<int64_t>(80 * options.scale));
  std::vector<int64_t> community_of;  // parallel to node ids

  int64_t first_community_size = 0;
  for (int community = 0; community < 2; ++community) {
    const int64_t label_base = community * 4;
    auto base = BuildBa(&b, base_n, 5, label_base, &rng);
    for (int64_t h = 0; h < houses; ++h) {
      const int64_t anchor = base[static_cast<size_t>(rng.UniformInt(base.size()))];
      AttachHouse(&b, anchor, label_base + 1, &rng);
    }
    if (community == 0) first_community_size = static_cast<int64_t>(b.labels.size());
  }
  const int64_t n = static_cast<int64_t>(b.labels.size());
  community_of.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    community_of[static_cast<size_t>(i)] = i < first_community_size ? 0 : 1;
  // Sparse random inter-community bridges (1% of N).
  const int64_t bridges = std::max<int64_t>(2, n / 100);
  for (int64_t i = 0; i < bridges; ++i) {
    const int64_t u = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(first_community_size)));
    const int64_t v = first_community_size + static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(n - first_community_size)));
    b.AddEdge(u, v, false);
  }
  AddPerturbationEdges(&b, options.perturb_frac, &rng);
  // Gaussian community features (as in GNNExplainer) concatenated with the
  // structural dimensions: the community half of the label is featural, the
  // role half is structural.
  const graph::Graph g = graph::Graph::FromUndirectedEdges(n, b.edges);
  tensor::Tensor structural = MakeStructuralFeatures(g, options.feature_dim);
  tensor::Tensor x(n, 2 * options.feature_dim);
  for (int64_t i = 0; i < n; ++i) {
    const float mu = community_of[static_cast<size_t>(i)] == 0 ? -1.0f : 1.0f;
    for (int64_t c = 0; c < options.feature_dim; ++c) {
      x.At(i, c) = static_cast<float>(rng.Normal(mu, 1.0));
      x.At(i, options.feature_dim + c) = structural.At(i, c);
    }
  }
  return Finalize(&b, "BACommunity", 8, std::move(x), &rng);
}

Dataset MakeTreeCycle(const SyntheticOptions& options) {
  util::Rng rng(options.seed + 303);
  MotifBuilder b;
  const int64_t depth = options.scale >= 1.0 ? 8 : 5;
  const int64_t cycles = std::max<int64_t>(4, static_cast<int64_t>(80 * options.scale));
  auto tree = BuildTree(&b, depth, 0);
  for (int64_t i = 0; i < cycles; ++i) {
    const int64_t anchor = tree[static_cast<size_t>(rng.UniformInt(tree.size()))];
    AttachCycle(&b, anchor, 1, 6, &rng);
  }
  AddPerturbationEdges(&b, options.perturb_frac, &rng);
  return Finalize(&b, "Tree-Cycle", 2, tensor::Tensor(), &rng);
}

Dataset MakeTreeGrid(const SyntheticOptions& options) {
  util::Rng rng(options.seed + 404);
  MotifBuilder b;
  const int64_t depth = options.scale >= 1.0 ? 8 : 5;
  const int64_t grids = std::max<int64_t>(4, static_cast<int64_t>(80 * options.scale));
  auto tree = BuildTree(&b, depth, 0);
  for (int64_t i = 0; i < grids; ++i) {
    const int64_t anchor = tree[static_cast<size_t>(rng.UniformInt(tree.size()))];
    AttachGrid(&b, anchor, 1, &rng);
  }
  AddPerturbationEdges(&b, options.perturb_frac, &rng);
  return Finalize(&b, "Tree-Grid", 2, tensor::Tensor(), &rng);
}

Dataset MakeSyntheticByName(const std::string& name,
                            const SyntheticOptions& options) {
  if (name == "BAShapes") return MakeBaShapes(options);
  if (name == "BACommunity") return MakeBaCommunity(options);
  if (name == "Tree-Cycle") return MakeTreeCycle(options);
  if (name == "Tree-Grid") return MakeTreeGrid(options);
  SES_CHECK(false && "unknown synthetic dataset");
  return {};
}

}  // namespace ses::data
