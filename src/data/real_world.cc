#include "data/real_world.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"

namespace ses::data {
namespace {

/// Draws class sizes with mild skew (citation classes are imbalanced).
std::vector<int64_t> DrawClassOfNode(int64_t n, int64_t classes, double skew,
                                     util::Rng* rng) {
  std::vector<double> weights(static_cast<size_t>(classes));
  for (int64_t c = 0; c < classes; ++c)
    weights[static_cast<size_t>(c)] =
        1.0 + skew * static_cast<double>(rng->Uniform()) * 3.0;
  std::vector<int64_t> label(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    label[static_cast<size_t>(i)] = rng->Categorical(weights);
  return label;
}

}  // namespace

Dataset MakeRealWorldStandIn(const RealWorldConfig& config) {
  util::Rng rng(config.seed * 7919 + 17);
  Dataset ds;
  ds.name = config.name;
  const int64_t n =
      std::max<int64_t>(50, static_cast<int64_t>(config.num_nodes * config.scale));
  const int64_t target_edges =
      std::max<int64_t>(n, static_cast<int64_t>(config.num_edges * config.scale));
  ds.num_classes = config.num_classes;
  ds.labels = DrawClassOfNode(n, config.num_classes, config.class_skew, &rng);
  // Group same-class nodes contiguously so the connectivity backbone below
  // is homophilous (otherwise it dominates the edge budget of small scales
  // and destroys the calibrated homophily). Node ids carry no information
  // downstream, so the reordering is free.
  std::sort(ds.labels.begin(), ds.labels.end());

  // Nodes grouped by class for homophilous endpoint sampling.
  std::vector<std::vector<int64_t>> by_class(
      static_cast<size_t>(config.num_classes));
  for (int64_t i = 0; i < n; ++i)
    by_class[static_cast<size_t>(ds.labels[static_cast<size_t>(i)])].push_back(i);

  // Degree-heterogeneous homophilous wiring: hub weights ~ Zipf-ish.
  std::vector<double> hub_weight(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    hub_weight[static_cast<size_t>(i)] = 1.0 / std::sqrt(1.0 + rng.Uniform() * n);
  // Cumulative sampling table per class and globally.
  auto sample_weighted = [&rng, &hub_weight](const std::vector<int64_t>& pool) {
    // Cheap approximation: pick 3 candidates, keep the heaviest.
    int64_t best = pool[static_cast<size_t>(rng.UniformInt(pool.size()))];
    for (int round = 0; round < 2; ++round) {
      int64_t cand = pool[static_cast<size_t>(rng.UniformInt(pool.size()))];
      if (hub_weight[static_cast<size_t>(cand)] >
          hub_weight[static_cast<size_t>(best)])
        best = cand;
    }
    return best;
  };
  std::vector<int64_t> all_nodes(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) all_nodes[static_cast<size_t>(i)] = i;

  std::set<std::pair<int64_t, int64_t>> edge_set;
  // Ring backbone keeps the graph connected (matches citation graphs' giant
  // component dominance).
  for (int64_t i = 0; i < n; ++i)
    edge_set.emplace(std::min(i, (i + 1) % n), std::max(i, (i + 1) % n));
  int64_t guard = 0;
  while (static_cast<int64_t>(edge_set.size()) < target_edges &&
         guard++ < 60 * target_edges) {
    const int64_t u = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    const bool same = rng.Bernoulli(config.homophily);
    const auto& pool =
        same ? by_class[static_cast<size_t>(ds.labels[static_cast<size_t>(u)])]
             : all_nodes;
    const int64_t v = sample_weighted(pool);
    if (u == v) continue;
    edge_set.emplace(std::min(u, v), std::max(u, v));
  }
  std::vector<std::pair<int64_t, int64_t>> edges(edge_set.begin(), edge_set.end());
  ds.graph = graph::Graph::FromUndirectedEdges(n, edges);

  // Features.
  if (config.num_features == 0) {
    // PolBlogs: the paper assigns a unit matrix as node features.
    ds.features = std::make_shared<tensor::SparseMatrix>(
        tensor::SparseMatrix::Identity(n));
  } else {
    const int64_t f = config.num_features;
    const int64_t topic_words = config.topic_words_per_class > 0
                                    ? config.topic_words_per_class
                                    : f / config.num_classes;
    // Class-conditional topic vocabulary (overlapping draws allowed, as real
    // topics share vocabulary).
    std::vector<std::vector<int64_t>> topics(
        static_cast<size_t>(config.num_classes));
    for (auto& t : topics)
      t = rng.SampleWithoutReplacement(f, topic_words);
    tensor::SparseMatrix sm;
    sm.rows = n;
    sm.cols = f;
    sm.row_ptr.assign(static_cast<size_t>(n) + 1, 0);
    for (int64_t i = 0; i < n; ++i) {
      const auto& topic = topics[static_cast<size_t>(ds.labels[static_cast<size_t>(i)])];
      std::set<int64_t> words;
      const int64_t want = std::max<int64_t>(
          3, config.words_per_node + static_cast<int64_t>(rng.Normal(0, 3)));
      int64_t attempts = 0;
      // 60/40 topic/background mix: features correlate with the class but do
      // not determine it, so the graph carries real signal (as in Planetoid
      // benchmarks, where feature-only classifiers trail GNNs by 10-20 pts).
      while (static_cast<int64_t>(words.size()) < want && attempts++ < 10 * want) {
        if (rng.Bernoulli(0.6)) {
          words.insert(topic[static_cast<size_t>(rng.UniformInt(topic.size()))]);
        } else {
          words.insert(static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(f))));
        }
      }
      for (int64_t w : words) {
        sm.col_idx.push_back(w);
        sm.values.push_back(1.0f);
      }
      // CSR requires sorted columns per row for some kernels; keep sorted.
      auto begin = sm.col_idx.begin() + sm.row_ptr[static_cast<size_t>(i)];
      std::sort(begin, sm.col_idx.end());
      sm.row_ptr[static_cast<size_t>(i) + 1] = sm.nnz();
    }
    ds.features = std::make_shared<tensor::SparseMatrix>(std::move(sm));
  }
  // Observed-label noise (see RealWorldConfig::label_noise).
  if (config.label_noise > 0.0) {
    for (int64_t i = 0; i < n; ++i) {
      if (!rng.Bernoulli(config.label_noise)) continue;
      const int64_t shift = 1 + static_cast<int64_t>(rng.UniformInt(
          static_cast<uint64_t>(config.num_classes - 1)));
      ds.labels[static_cast<size_t>(i)] =
          (ds.labels[static_cast<size_t>(i)] + shift) % config.num_classes;
    }
  }
  AssignSplit(&ds, 0.6, 0.2, &rng);
  ValidateDataset(ds);
  return ds;
}

RealWorldConfig CoraConfig(double scale, uint64_t seed) {
  RealWorldConfig c;
  c.name = "Cora";
  c.num_nodes = 2708;
  c.num_features = 500;  // reduced from 1433 (see DESIGN.md §3)
  c.num_classes = 7;
  c.num_edges = 5278;    // 10,556 directed edges in the paper
  c.homophily = 0.81;
  c.words_per_node = 18;
  c.label_noise = 0.09;
  c.seed = seed;
  c.scale = scale;
  return c;
}

RealWorldConfig CiteSeerConfig(double scale, uint64_t seed) {
  RealWorldConfig c;
  c.name = "CiteSeer";
  c.num_nodes = 3327;
  c.num_features = 500;  // reduced from 3703 (see DESIGN.md §3)
  c.num_classes = 6;
  c.num_edges = 4552;
  c.homophily = 0.74;
  c.words_per_node = 20;
  c.label_noise = 0.20;
  c.seed = seed;
  c.scale = scale;
  return c;
}

RealWorldConfig PolBlogsConfig(double scale, uint64_t seed) {
  RealWorldConfig c;
  c.name = "PolBlogs";
  c.num_nodes = 1490;
  c.num_features = 0;  // identity features, as in the paper
  c.num_classes = 2;
  c.num_edges = 9512;  // 19,025 directed edges in the paper
  c.homophily = 0.91;
  c.class_skew = 0.05;
  c.label_noise = 0.02;
  c.seed = seed;
  c.scale = scale;
  return c;
}

RealWorldConfig CoauthorCsConfig(double scale, uint64_t seed) {
  RealWorldConfig c;
  c.name = "CS";
  c.num_nodes = 6000;  // reduced from 18,333 (see DESIGN.md §3)
  c.num_features = 600;
  c.num_classes = 15;
  c.num_edges = 27000;
  c.homophily = 0.80;
  c.words_per_node = 25;
  c.label_noise = 0.05;
  c.seed = seed;
  c.scale = scale;
  return c;
}

Dataset MakeRealWorldByName(const std::string& name, double scale,
                            uint64_t seed) {
  if (name == "Cora") return MakeRealWorldStandIn(CoraConfig(scale, seed));
  if (name == "CiteSeer")
    return MakeRealWorldStandIn(CiteSeerConfig(scale, seed));
  if (name == "PolBlogs")
    return MakeRealWorldStandIn(PolBlogsConfig(scale, seed));
  if (name == "CS") return MakeRealWorldStandIn(CoauthorCsConfig(scale, seed));
  SES_CHECK(false && "unknown real-world dataset");
  return {};
}

}  // namespace ses::data
