#ifndef SES_SERVE_STATUS_H_
#define SES_SERVE_STATUS_H_

#include <cstdint>

namespace ses::serve {

/// Typed outcome of a scheduled request. Every future the scheduler hands
/// out resolves with exactly one of these — rejected, expired and faulted
/// requests get a code, never a hang.
enum class StatusCode : uint8_t {
  kOk = 0,
  kDeadlineExceeded,  ///< expired in queue or mid-flight
  kOverloaded,        ///< shed by admission control; retry after the hint
  kShuttingDown,      ///< submitted after Stop() began
  kInternal,          ///< execution failed (poisoned request, thrown fault)
};

const char* StatusCodeName(StatusCode code);

/// Status plus the client-facing retry contract: on kOverloaded,
/// `retry_after_us` is the server's minimum-backoff hint (see retry.h for
/// the client side). 0 on every other code.
struct Status {
  StatusCode code = StatusCode::kOk;
  int64_t retry_after_us = 0;

  bool ok() const { return code == StatusCode::kOk; }
  const char* name() const { return StatusCodeName(code); }

  static Status Ok() { return {}; }
  static Status Overloaded(int64_t retry_after_us) {
    return {StatusCode::kOverloaded, retry_after_us};
  }
  static Status DeadlineExceeded() { return {StatusCode::kDeadlineExceeded}; }
  static Status ShuttingDown() { return {StatusCode::kShuttingDown}; }
  static Status Internal() { return {StatusCode::kInternal}; }
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kShuttingDown: return "shutting_down";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Public op kinds in shed-priority order: admission control sheds Explain
/// first (it is recomputable and off the interactive path), LogitsRow next,
/// Predict last.
enum class OpKind : uint8_t { kPredict = 0, kLogitsRow = 1, kExplain = 2 };

inline const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kPredict: return "predict";
    case OpKind::kLogitsRow: return "logits_row";
    case OpKind::kExplain: return "explain";
  }
  return "unknown";
}

}  // namespace ses::serve

#endif  // SES_SERVE_STATUS_H_
