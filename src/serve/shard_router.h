#ifndef SES_SERVE_SHARD_ROUTER_H_
#define SES_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sharded_session.h"
#include "serve/batch_scheduler.h"

namespace ses::serve {

/// Micro-batching front end for a ShardedSession: one BatchScheduler per
/// shard, requests routed by the node→shard map, so batches form and seal
/// per shard and a single predict only ever touches its own shard's session
/// lock and memoized logits (DESIGN.md §16).
///
/// Node ids are GLOBAL; the router translates Predict/LogitsRow submissions
/// to shard-local rows before enqueueing (Explain passes the global id
/// through — the structure mask is global model state). Every per-scheduler
/// behavior — admission control, deadlines, degraded mode, typed futures —
/// applies per shard unchanged, and results are bitwise-equal to
/// ShardedSession's direct calls by the same argument that makes one
/// scheduler bitwise-equal to its InferenceSession.
class ShardRouter {
 public:
  /// One scheduler per shard, all built from `options` (the admission
  /// controller instance, if any, is shared across shards).
  ShardRouter(core::ShardedSession* session, SchedulerOptions options = {});

  PredictFuture SubmitPredict(int64_t node, SubmitOptions submit = {});
  LogitsRowFuture SubmitLogitsRow(int64_t node, SubmitOptions submit = {});
  ExplainFuture SubmitExplain(int64_t node, int64_t top_k,
                              SubmitOptions submit = {});

  /// Streamed predicts: the stream is split per shard and each sub-stream is
  /// enqueued under that shard scheduler's single lock acquisition, futures
  /// written back in input order. Returns the number enqueued (shed slots
  /// still get valid typed-rejection futures, as with SubmitPredictStream).
  int64_t SubmitPredictStream(const int64_t* nodes, int64_t n,
                              PredictFuture* out, SubmitOptions submit = {});

  /// Stops every shard scheduler (drains queues, joins workers). Idempotent.
  void Stop();

  int64_t num_shards() const {
    return static_cast<int64_t>(schedulers_.size());
  }
  BatchScheduler* shard_scheduler(int64_t s) {
    return schedulers_[static_cast<size_t>(s)].get();
  }

  /// Element-wise sum of every shard scheduler's Stats (max_batch is a max).
  BatchScheduler::Stats stats() const;

 private:
  core::ShardedSession* session_;
  std::vector<std::unique_ptr<BatchScheduler>> schedulers_;
};

}  // namespace ses::serve

#endif  // SES_SERVE_SHARD_ROUTER_H_
