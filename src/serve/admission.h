#ifndef SES_SERVE_ADMISSION_H_
#define SES_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/status.h"

namespace ses::serve {

/// Outcome of one admission decision. `reason` must point at static storage
/// — it flows into metric labels and access-log lines without copies.
struct AdmissionDecision {
  bool admit = true;
  int64_t retry_after_us = 0;   ///< client backoff floor when !admit
  const char* reason = "";      ///< shed reason when !admit

  static AdmissionDecision Admit() { return {}; }
  static AdmissionDecision Shed(const char* reason, int64_t retry_after_us) {
    return {false, retry_after_us, reason};
  }
};

/// Policy hook in front of the forming batch. `Admit` runs under the
/// scheduler's queue lock on every Submit — it must be O(1) and must not
/// block or re-enter the scheduler. `ObserveBurnRate` is pushed by scheduler
/// workers after each batch completes (the queue-wait SLO burn rate), off
/// the submit path, so adaptive policies never add a clock read or map
/// lookup to admission.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  /// Decide whether to accept one request of kind `op` given
  /// `queued_requests` already waiting (forming batch + ready queue).
  virtual AdmissionDecision Admit(OpKind op, int64_t queued_requests) = 0;

  /// Latest queue-wait SLO burn rate (1.0 = burning error budget exactly at
  /// the objective's rate). Default: ignore.
  virtual void ObserveBurnRate(double burn_rate) { (void)burn_rate; }

  /// One-line JSON object describing live policy state, for /healthz.
  virtual std::string DebugState() const { return "{}"; }
};

/// Fixed bound on total queued requests; sheds everything above it. The
/// baseline policy — also the backstop inside BurnRateAdmission.
class BoundedQueueAdmission : public AdmissionController {
 public:
  explicit BoundedQueueAdmission(int64_t max_queued_requests,
                                 int64_t retry_after_us = 200)
      : max_queued_(max_queued_requests), retry_after_us_(retry_after_us) {}

  AdmissionDecision Admit(OpKind op, int64_t queued_requests) override;
  std::string DebugState() const override;

 private:
  const int64_t max_queued_;
  const int64_t retry_after_us_;
};

/// Adaptive shedding driven by the queue-wait burn rate, lowest-priority ops
/// first: above `shed_explain_burn_rate` Explain (then LogitsRow) is shed;
/// above `shed_all_burn_rate` everything is. The RetryAfter hint scales with
/// how far past the threshold the burn rate is, so clients back off harder
/// the deeper the overload. A hard queue bound backstops the adaptive part
/// (burn rate lags by one batch; the bound cannot).
class BurnRateAdmission : public AdmissionController {
 public:
  struct Options {
    double shed_explain_burn_rate = 1.0;
    double shed_all_burn_rate = 6.0;
    int64_t max_queued_requests = 4096;
    int64_t base_retry_after_us = 200;
  };

  BurnRateAdmission() : BurnRateAdmission(Options()) {}
  explicit BurnRateAdmission(Options options) : options_(options) {}

  AdmissionDecision Admit(OpKind op, int64_t queued_requests) override;
  void ObserveBurnRate(double burn_rate) override {
    burn_.store(burn_rate, std::memory_order_relaxed);
  }
  std::string DebugState() const override;

  double burn_rate() const { return burn_.load(std::memory_order_relaxed); }

 private:
  const Options options_;
  std::atomic<double> burn_{0.0};
};

/// Degraded-mode configuration: the scheduler enters degraded serving after
/// `enter_consecutive` batches whose queue-wait burn rate is at or above
/// `enter_burn_rate`, and leaves after `exit_consecutive` at or below
/// `exit_burn_rate` (hysteresis: between the thresholds the current state
/// holds). While degraded, Predict is answered from InferenceSession's
/// memoized-logits cache when warm and Explain is shed with `retry_after_us`;
/// every `probe_every`-th degraded Predict is enqueued normally as a canary
/// so the burn-rate signal keeps flowing and recovery can be observed.
struct DegradedModeOptions {
  bool enabled = false;
  double enter_burn_rate = 2.0;
  double exit_burn_rate = 0.5;
  int enter_consecutive = 3;
  int exit_consecutive = 16;
  int probe_every = 32;
  int64_t retry_after_us = 1000;
};

/// The hysteresis state machine behind degraded mode, separated from the
/// scheduler so the transition logic is unit-testable without serving
/// traffic. Not thread-safe: the scheduler calls Update from worker context
/// under its own lock.
class DegradedState {
 public:
  explicit DegradedState(const DegradedModeOptions& options)
      : options_(options) {}

  /// Feeds one burn-rate observation; returns the (possibly new) degraded
  /// flag.
  bool Update(double burn_rate);

  bool degraded() const { return degraded_; }
  int64_t entries() const { return entries_; }

 private:
  const DegradedModeOptions options_;
  bool degraded_ = false;
  int hot_streak_ = 0;
  int cool_streak_ = 0;
  int64_t entries_ = 0;  ///< cumulative enter transitions
};

}  // namespace ses::serve

#endif  // SES_SERVE_ADMISSION_H_
