#ifndef SES_SERVE_BATCH_SCHEDULER_H_
#define SES_SERVE_BATCH_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/inference_session.h"
#include "obs/metrics.h"

namespace ses::serve {

/// Micro-batching policy and pool shape of a BatchScheduler.
struct SchedulerOptions {
  /// A forming batch is sealed and dispatched as soon as it holds this many
  /// requests (the "full" flush).
  int64_t max_batch_size = 64;
  /// A forming batch older than this is sealed even if not full (the
  /// "deadline" flush) — bounds the latency a lone request can pay for
  /// batching. Measured from the batch's first enqueue.
  int64_t flush_deadline_us = 200;
  /// Fixed worker pool size. One worker is optimal on a single core; more
  /// overlap batch execution with enqueue on larger machines.
  int64_t num_workers = 1;
  /// Sealed batches allowed to queue before Submit* blocks (backpressure).
  int64_t max_queue_batches = 256;
  /// When > 0, declares an SloTracker budget on the scheduler's end-to-end
  /// (enqueue -> result published) latency under op "sched.e2e".
  double e2e_budget_us = 0.0;
};

namespace internal {

enum class Op : uint8_t { kPredict, kLogitsRow, kExplain };

/// One queued request plus its in-place result slot. Which result field is
/// live is determined by `op`.
struct Request {
  Op op = Op::kPredict;
  int64_t node = 0;
  int64_t top_k = 0;
  uint64_t trace_id = 0;
  std::chrono::steady_clock::time_point enqueue_time;
  int64_t predicted = -1;
  std::vector<float> logits_row;
  core::InferenceSession::Explanation explanation;
};

/// One micro-batch: the unit of queueing, dispatch, and completion. All
/// requests in a batch share a single mutex/cv, so fulfilling B requests
/// costs one lock + one notify_all instead of B promise round-trips.
/// Producers append under the scheduler queue lock until the batch is
/// sealed; a worker fills every result slot and then publishes `done`.
struct BatchState {
  std::vector<Request> requests;
  std::chrono::steady_clock::time_point opened_at;
  /// Bitwise-or of (1 << op) over the requests — lets a worker take the
  /// no-partitioning fast path for single-op batches.
  uint8_t ops_mask = 0;
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<bool> done{false};
};

int64_t TakePredict(Request& r);
std::vector<float> TakeLogitsRow(Request& r);
core::InferenceSession::Explanation TakeExplain(Request& r);

}  // namespace internal

/// Lightweight future bound to one slot of a micro-batch. Default-constructed
/// (or rejected-submit) futures are invalid; Get() on an invalid future is a
/// checked error. Get() blocks until the owning batch completes and moves the
/// result out, so it may be called once per future.
template <typename T, T (*Take)(internal::Request&)>
class BatchFuture {
 public:
  BatchFuture() = default;

  bool valid() const { return state_ != nullptr; }

  /// Non-blocking completion probe.
  bool Ready() const {
    return state_ != nullptr && state_->done.load(std::memory_order_acquire);
  }

  /// Trace-id the request carries from enqueue into the worker's spans.
  uint64_t trace_id() const {
    return state_ == nullptr ? 0 : state_->requests[index_].trace_id;
  }

  /// Blocks until the batch is executed, then moves this slot's result out.
  /// Lock-free when the batch already completed (the acquire load on `done`
  /// pairs with the worker's release store, which publishes every result
  /// slot); the mutex/cv only comes into play for an actual wait.
  T Get() {
    auto state = std::move(state_);
    if (!state->done.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->cv.wait(lock, [&] {
        return state->done.load(std::memory_order_acquire);
      });
    }
    return Take(state->requests[index_]);
  }

 private:
  friend class BatchScheduler;
  BatchFuture(std::shared_ptr<internal::BatchState> state, size_t index)
      : state_(std::move(state)), index_(index) {}

  std::shared_ptr<internal::BatchState> state_;
  size_t index_ = 0;
};

using PredictFuture = BatchFuture<int64_t, internal::TakePredict>;
using LogitsRowFuture =
    BatchFuture<std::vector<float>, internal::TakeLogitsRow>;
using ExplainFuture = BatchFuture<core::InferenceSession::Explanation,
                                  internal::TakeExplain>;

/// Micro-batching front end for one InferenceSession.
///
/// Concurrent callers enqueue Predict / logit-slice / Explain requests and
/// get futures back; the scheduler coalesces them into micro-batches (sealed
/// on max_batch_size or flush_deadline_us, whichever comes first) and a fixed
/// worker pool executes each batch against the session's cached per-graph
/// artifacts: all predicts and logit slices in a batch share ONE session lock
/// acquisition and one (memoized, SpMM-backed) forward via PredictMany /
/// GatherLogits, and explains share one top-k scratch via ExplainMany. A
/// batch of B requests therefore costs one gathered readout instead of B
/// locked calls — results are bitwise-identical to the direct path by
/// construction (same kernels over the same memoized logits).
///
/// Observability: each request captures the caller's trace-id at enqueue
/// (allocating one if the caller has none); workers adopt it so their spans
/// and access-log entries join the same request. The scheduler feeds
/// `ses.sched.*` metrics — queue-depth gauge, batch-size and queue-wait and
/// end-to-end latency histograms, flush-reason counters — and, when
/// configured, an SloTracker budget on end-to-end latency.
///
/// Shutdown: Stop() (or the destructor) stops admission, seals the forming
/// batch, and joins the workers only after every queued batch has executed —
/// every future handed out before Stop() is fulfilled. Submissions racing or
/// following Stop() return invalid futures.
class BatchScheduler {
 public:
  explicit BatchScheduler(core::InferenceSession* session,
                          SchedulerOptions options = {});
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  PredictFuture SubmitPredict(int64_t node);
  LogitsRowFuture SubmitLogitsRow(int64_t node);
  ExplainFuture SubmitExplain(int64_t node, int64_t top_k);

  /// Streamed submission for pipelined clients: enqueues n predict requests
  /// under ONE queue-lock acquisition and one arrival timestamp (the stream
  /// arrived together), writing one future per request into out[0..n).
  /// Micro-batch formation is unchanged — the stream spills across forming
  /// batches and max_batch_size seals apply as usual, so requests from
  /// concurrent streams still coalesce. Returns the number accepted; fewer
  /// than n (with the tail futures left invalid) only when stopping.
  int64_t SubmitPredictStream(const int64_t* nodes, int64_t n,
                              PredictFuture* out);

  /// Drains the queue and joins the worker pool. Idempotent.
  void Stop();

  const SchedulerOptions& options() const { return options_; }

  struct Stats {
    int64_t requests = 0;          ///< accepted submissions
    int64_t rejected = 0;          ///< submissions after/racing Stop()
    int64_t batches = 0;           ///< batches executed
    int64_t full_flushes = 0;      ///< seals due to max_batch_size
    int64_t deadline_flushes = 0;  ///< seals due to flush_deadline_us
    int64_t shutdown_flushes = 0;  ///< seals due to Stop()
    int64_t max_batch = 0;         ///< largest executed batch
  };
  Stats stats() const;

 private:
  std::shared_ptr<internal::BatchState> Append(internal::Request req,
                                               size_t* index);
  /// Moves the forming batch onto the ready queue. Caller holds mutex_;
  /// `reason_counter` is one of the flush counters below.
  void SealFormingLocked(int64_t* reason_counter);
  void WorkerLoop();
  /// Executes one sealed batch (no scheduler locks held).
  void ExecuteBatch(internal::BatchState* batch);

  core::InferenceSession* session_;
  const SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for batches
  std::condition_variable space_cv_;  ///< producers wait for queue room
  std::shared_ptr<internal::BatchState> forming_;
  std::deque<std::shared_ptr<internal::BatchState>> ready_;
  bool stopping_ = false;
  Stats stats_;

  std::vector<std::thread> workers_;

  // Registry instruments, resolved once (registration is the cold path).
  obs::Counter& requests_counter_;
  obs::Counter& batches_counter_;
  obs::Gauge& queue_depth_gauge_;
  obs::Histogram& batch_size_hist_;
  obs::Histogram& queue_wait_hist_;
  obs::Histogram& e2e_hist_;
};

}  // namespace ses::serve

#endif  // SES_SERVE_BATCH_SCHEDULER_H_
