#ifndef SES_SERVE_BATCH_SCHEDULER_H_
#define SES_SERVE_BATCH_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/inference_session.h"
#include "obs/metrics.h"
#include "robust/fault.h"
#include "serve/admission.h"
#include "serve/status.h"
#include "util/logging.h"

namespace ses::serve {

/// Micro-batching policy and pool shape of a BatchScheduler.
struct SchedulerOptions {
  /// A forming batch is sealed and dispatched as soon as it holds this many
  /// requests (the "full" flush).
  int64_t max_batch_size = 64;
  /// A forming batch older than this is sealed even if not full (the
  /// "deadline" flush) — bounds the latency a lone request can pay for
  /// batching. Measured from the batch's first enqueue.
  int64_t flush_deadline_us = 200;
  /// Fixed worker pool size. One worker is optimal on a single core; more
  /// overlap batch execution with enqueue on larger machines.
  int64_t num_workers = 1;
  /// Sealed batches allowed to queue before Submit* blocks (backpressure).
  int64_t max_queue_batches = 256;
  /// When > 0, declares an SloTracker budget on the scheduler's end-to-end
  /// (enqueue -> result published) latency under op "sched.e2e".
  double e2e_budget_us = 0.0;
  /// When > 0, declares an SloTracker budget on queue wait (enqueue ->
  /// dequeue) under op "sched.queue_wait". Its burn rate is the overload
  /// signal: workers push it to the admission controller and the degraded-
  /// mode state machine after every batch.
  double queue_wait_budget_us = 0.0;
  double queue_wait_target = 0.9;   ///< loose target: burn rate must move
  int64_t queue_wait_window = 256;  ///< small window: react within ~4 batches
  /// Deadline applied to requests submitted without one (0 = none).
  double default_deadline_us = 0.0;
  /// Admission policy consulted on every Submit (null = admit everything up
  /// to the queue-batch bound). Shared so callers can keep a handle for
  /// ObserveBurnRate-driven inspection.
  std::shared_ptr<AdmissionController> admission;
  /// Degraded-mode policy (requires queue_wait_budget_us > 0 when enabled).
  DegradedModeOptions degraded;
  /// Serving fault plan; when empty the scheduler loads $SES_FAULT_SPEC.
  /// Matching is by the scheduler's own sequence numbers: batch seal order
  /// for worker_stall / slow_forward / serve_throw, request accept order for
  /// poison_request.
  robust::FaultPlan fault_plan;
};

namespace internal {

/// One queued request plus its in-place result slot. Which result field is
/// live is determined by `op`.
struct Request {
  OpKind op = OpKind::kPredict;
  int64_t node = 0;
  int64_t top_k = 0;
  uint64_t trace_id = 0;
  int64_t seq = 0;  ///< accept order (fault matching)
  /// Critical-path stage stamps 1 and 2 (submit and admit); the batch holds
  /// seal, and the worker stamps forward-start/-end and resolve at execution.
  /// Submit is taken before the queue lock, admit after admission passes —
  /// their gap is backpressure wait plus admission-control time.
  std::chrono::steady_clock::time_point enqueue_time;
  std::chrono::steady_clock::time_point admit_time;
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  Status status;              ///< final per-request outcome
  const char* reason = "";    ///< static-storage failure/shed detail
  int64_t predicted = -1;
  std::vector<float> logits_row;
  core::InferenceSession::Explanation explanation;
};

/// One micro-batch: the unit of queueing, dispatch, and completion. All
/// requests in a batch share a single mutex/cv, so fulfilling B requests
/// costs one lock + one notify_all instead of B promise round-trips.
/// Producers append under the scheduler queue lock until the batch is
/// sealed; a worker fills every result slot and then publishes `done`.
struct BatchState {
  std::vector<Request> requests;
  std::chrono::steady_clock::time_point opened_at;
  /// Bitwise-or of (1 << op) over the requests — lets a worker take the
  /// no-partitioning fast path for single-op batches.
  uint8_t ops_mask = 0;
  bool has_deadlines = false;  ///< any request carries a deadline
  int64_t seq = 0;             ///< seal order (fault matching)
  /// Critical-path stage stamp 3: when SealFormingLocked moved this batch
  /// onto the ready queue. Shared by every request in the batch.
  std::chrono::steady_clock::time_point seal_time;
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<bool> done{false};
};

int64_t TakePredict(Request& r);
std::vector<float> TakeLogitsRow(Request& r);
core::InferenceSession::Explanation TakeExplain(Request& r);

}  // namespace internal

/// Lightweight future bound to one slot of a micro-batch, or carrying an
/// immediate result (degraded-mode cache answer / typed rejection) that
/// never touched the queue. Default-constructed futures are invalid; every
/// future a Submit* returns is valid and resolves with a typed Status —
/// rejected, expired, and faulted requests get their code, never a hang.
///
/// Consumption: Wait() blocks for the status without consuming the result;
/// Get(&out) blocks, moves the result out on kOk, and returns the status;
/// Get() is the checked sugar for callers that treat non-kOk as a bug.
template <typename T, T (*Take)(internal::Request&)>
class BatchFuture {
 public:
  BatchFuture() = default;

  bool valid() const { return immediate_ || state_ != nullptr; }

  /// Non-blocking completion probe.
  bool Ready() const {
    return immediate_ ||
           (state_ != nullptr && state_->done.load(std::memory_order_acquire));
  }

  /// Trace-id the request carries from enqueue into the worker's spans.
  uint64_t trace_id() const {
    if (state_ == nullptr) return trace_id_;
    return state_->requests[index_].trace_id;
  }

  /// Blocks until the result is resolved; returns the status WITHOUT
  /// consuming the result, so callers can branch on the code before moving
  /// the value out with Get.
  Status Wait() {
    SES_CHECK(valid());
    if (immediate_) return status_;
    WaitDone();
    return state_->requests[index_].status;
  }

  /// Blocks until resolved, moves the result into *out when the status is
  /// kOk, and returns the status. Consumes the future (one call per future;
  /// `out` may be null to discard the result).
  Status Get(T* out) {
    SES_CHECK(valid());
    if (immediate_) {
      immediate_ = false;
      if (status_.ok() && out != nullptr) *out = std::move(value_);
      return status_;
    }
    WaitDone();
    auto state = std::move(state_);
    internal::Request& r = state->requests[index_];
    if (r.status.ok() && out != nullptr) *out = Take(r);
    return r.status;
  }

  /// Blocks until resolved and returns the value; a non-kOk status is a
  /// checked error. The call sites that predate typed statuses (and any
  /// caller submitting without deadlines against a non-shedding scheduler)
  /// keep this contract.
  T Get() {
    T out{};
    const Status status = Get(&out);
    SES_CHECK(status.ok());
    return out;
  }

 private:
  friend class BatchScheduler;
  BatchFuture(std::shared_ptr<internal::BatchState> state, size_t index)
      : state_(std::move(state)), index_(index) {}
  /// Immediate typed rejection (never queued).
  BatchFuture(Status status, uint64_t trace_id)
      : immediate_(true), status_(status), trace_id_(trace_id) {}
  /// Immediate value (degraded-mode cache answer).
  BatchFuture(T value, uint64_t trace_id)
      : immediate_(true), value_(std::move(value)), trace_id_(trace_id) {}

  void WaitDone() {
    if (!state_->done.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->cv.wait(lock, [&] {
        return state_->done.load(std::memory_order_acquire);
      });
    }
  }

  std::shared_ptr<internal::BatchState> state_;
  size_t index_ = 0;
  bool immediate_ = false;
  Status status_;
  T value_{};
  uint64_t trace_id_ = 0;
};

using PredictFuture = BatchFuture<int64_t, internal::TakePredict>;
using LogitsRowFuture =
    BatchFuture<std::vector<float>, internal::TakeLogitsRow>;
using ExplainFuture = BatchFuture<core::InferenceSession::Explanation,
                                  internal::TakeExplain>;

/// Per-submit knobs.
struct SubmitOptions {
  /// Relative deadline: the request must complete within this many
  /// microseconds of submission or it resolves kDeadlineExceeded — dropped
  /// before the forward when it expires in queue ("doomed-work
  /// elimination"), after it when it expires mid-flight. 0 means "use
  /// SchedulerOptions::default_deadline_us" (which may be none); a negative
  /// value is already expired and deterministically resolves
  /// kDeadlineExceeded without executing.
  double deadline_us = 0.0;
};

/// Micro-batching front end for one InferenceSession.
///
/// Concurrent callers enqueue Predict / logit-slice / Explain requests and
/// get futures back; the scheduler coalesces them into micro-batches (sealed
/// on max_batch_size or flush_deadline_us, whichever comes first) and a fixed
/// worker pool executes each batch against the session's cached per-graph
/// artifacts: all predicts and logit slices in a batch share ONE session lock
/// acquisition and one (memoized, SpMM-backed) forward via PredictMany /
/// GatherLogits, and explains share one top-k scratch via ExplainMany. A
/// batch of B requests therefore costs one gathered readout instead of B
/// locked calls — results are bitwise-identical to the direct path by
/// construction (same kernels over the same memoized logits).
///
/// Overload behavior: an AdmissionController sees every submission before it
/// joins the forming batch and can shed it as an immediate kOverloaded
/// rejection with a RetryAfter hint (lowest-priority ops first — see
/// OpKind). Per-request deadlines bound how long a request may wait: work
/// that is already dead at dequeue is never executed. Under sustained
/// queue-wait SLO burn the scheduler enters degraded mode (hysteresis on
/// both edges): warm Predicts are answered straight from the session's
/// memoized-logits cache without queueing, Explains are shed, and every
/// probe_every-th Predict still goes through the queue as a canary so
/// recovery is observable. All of it is typed — no future ever hangs.
///
/// Observability: each request captures the caller's trace-id at enqueue
/// (allocating one if the caller has none); workers adopt it so their spans
/// and access-log entries join the same request. The scheduler feeds
/// `ses.sched.*` metrics — live request-level queue-depth gauge, batch-size
/// / queue-wait / end-to-end histograms, flush-reason counters, shed /
/// rejected / expired counters (by reason and stage), the degraded_mode
/// gauge — SloTracker budgets on e2e and queue wait, shed/expiry reasons in
/// the access log, and a /healthz component ("scheduler") with admission and
/// degradation state.
///
/// Request forensics (DESIGN.md §15): every request is stamped at six
/// critical-path stages — submit (enqueue_time, before the queue lock),
/// admit (admission passed), seal (batch moved to the ready queue),
/// forward-start / forward-end (around batch execution), resolve (results
/// written back). The gaps feed `ses.sched.stage.*` histograms carrying the
/// request's trace-id as an OpenMetrics exemplar, appear as `stages_us` in
/// access-log entries and as per-stage Chrome-trace spans, and every
/// completed request is offered to the FlightRecorder (top-K slowest,
/// /debug/slowest). After each batch the worker feeds the queue-wait burn
/// rate to the FlightRecorder's auto-dump trigger and samples the
/// AnomalyWatch series (queue depth, e2e p99, shed rate) plus its probes.
///
/// Shutdown: Stop() (or the destructor) stops admission, seals the forming
/// batch, and joins the workers only after every queued batch has executed —
/// every future handed out before Stop() is fulfilled. Submissions racing or
/// following Stop() resolve as typed kShuttingDown rejections.
class BatchScheduler {
 public:
  explicit BatchScheduler(core::InferenceSession* session,
                          SchedulerOptions options = {});
  ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  PredictFuture SubmitPredict(int64_t node, SubmitOptions submit = {});
  LogitsRowFuture SubmitLogitsRow(int64_t node, SubmitOptions submit = {});
  ExplainFuture SubmitExplain(int64_t node, int64_t top_k,
                              SubmitOptions submit = {});

  /// Streamed submission for pipelined clients: enqueues n predict requests
  /// under ONE queue-lock acquisition and one arrival timestamp (the stream
  /// arrived together), writing one future per request into out[0..n).
  /// Micro-batch formation is unchanged — the stream spills across forming
  /// batches and max_batch_size seals apply as usual, so requests from
  /// concurrent streams still coalesce. Returns the number enqueued; slots
  /// shed by admission or racing Stop() get immediate typed rejection
  /// futures instead (every out[i] is valid either way).
  int64_t SubmitPredictStream(const int64_t* nodes, int64_t n,
                              PredictFuture* out, SubmitOptions submit = {});

  /// Drains the queue and joins the worker pool. Idempotent.
  void Stop();

  const SchedulerOptions& options() const { return options_; }

  /// True while the degraded-mode state machine (or the test override) has
  /// degraded serving switched on.
  bool degraded() const {
    return degraded_mode_.load(std::memory_order_relaxed);
  }

  /// Pins degraded mode on/off regardless of burn rate (test support for the
  /// cache-serve / shed paths without generating real overload).
  void ForceDegradedForTest(bool on);

  struct Stats {
    int64_t requests = 0;          ///< accepted submissions
    int64_t rejected = 0;          ///< typed kShuttingDown rejections
    int64_t shed = 0;              ///< typed kOverloaded rejections
    int64_t expired = 0;           ///< kDeadlineExceeded in queue (pre-exec)
    int64_t expired_inflight = 0;  ///< kDeadlineExceeded mid-flight
    int64_t internal_errors = 0;   ///< kInternal (poison / thrown fault)
    int64_t degraded_served = 0;   ///< predicts answered from cache
    int64_t degraded_entries = 0;  ///< degraded-mode enter transitions
    int64_t batches = 0;           ///< batches executed
    int64_t full_flushes = 0;      ///< seals due to max_batch_size
    int64_t deadline_flushes = 0;  ///< seals due to flush_deadline_us
    int64_t shutdown_flushes = 0;  ///< seals due to Stop()
    int64_t max_batch = 0;         ///< largest executed batch
  };
  Stats stats() const;

 private:
  /// Appends one request to the forming batch, or rejects it: returns the
  /// owning batch on admission, else null with *rejection set to the typed
  /// status (kShuttingDown / kOverloaded). `*trace_id` always receives the
  /// request's id so rejection futures stay traceable.
  std::shared_ptr<internal::BatchState> Append(internal::Request req,
                                               double deadline_us,
                                               size_t* index, Status* rejection,
                                               uint64_t* trace_id);
  /// Moves the forming batch onto the ready queue. Caller holds mutex_;
  /// `reason_counter` is one of the flush counters below.
  void SealFormingLocked(int64_t* reason_counter);
  void WorkerLoop();
  /// Executes one sealed batch (no scheduler locks held). Returns the
  /// queue-wait burn rate after recording the batch (-1 when no queue-wait
  /// budget is configured).
  double ExecuteBatch(internal::BatchState* batch);
  /// Degraded-mode fast path for SubmitPredict. True when it produced a
  /// future (cache answer or shutdown rejection); false to fall through to
  /// the normal queue (cold cache or canary probe).
  bool TryDegradedPredict(int64_t node, PredictFuture* out);
  /// Immediate kOverloaded rejection bookkeeping: stats, labeled shed
  /// counter, access-log line. Takes mutex_ internally.
  Status ShedRequest(OpKind op, uint64_t trace_id, const char* reason,
                     int64_t retry_after_us);
  /// Immediate kShuttingDown rejection bookkeeping. Takes mutex_ internally.
  Status RejectShutdown(OpKind op, uint64_t trace_id);
  std::string HealthJson() const;

  core::InferenceSession* session_;
  const SchedulerOptions options_;
  robust::FaultPlan fault_plan_;  ///< guarded by fault_mutex_ after ctor
  const bool has_faults_;
  const int64_t serve_delay_us_;  ///< persistent synthetic service cost
  const std::string health_name_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for batches
  std::condition_variable space_cv_;  ///< producers wait for queue room
  std::shared_ptr<internal::BatchState> forming_;
  std::deque<std::shared_ptr<internal::BatchState>> ready_;
  bool stopping_ = false;
  int64_t queued_requests_ = 0;  ///< forming + ready, request-level
  int64_t next_batch_seq_ = 0;
  Stats stats_;
  DegradedState degraded_state_;
  // Last-seen counters for the anomaly watch's shed-rate series (guarded by
  // mutex_): each batch completion publishes the shed fraction of the
  // submissions that arrived since the previous batch.
  int64_t anomaly_prev_shed_ = 0;
  int64_t anomaly_prev_requests_ = 0;

  std::mutex fault_mutex_;  ///< FaultPlan is not internally synchronized

  std::atomic<bool> stopping_flag_{false};  ///< lock-free fast-path probe
  std::atomic<bool> degraded_mode_{false};
  std::atomic<bool> forced_degraded_{false};
  std::atomic<int64_t> degraded_seq_{0};  ///< canary-probe cadence
  // Worker-side failure tallies (no scheduler lock held during execution).
  std::atomic<int64_t> expired_queue_total_{0};
  std::atomic<int64_t> expired_inflight_total_{0};
  std::atomic<int64_t> internal_errors_total_{0};

  std::vector<std::thread> workers_;

  // Registry instruments, resolved once (registration is the cold path).
  obs::Counter& requests_counter_;
  obs::Counter& batches_counter_;
  obs::Gauge& queue_depth_gauge_;
  obs::Histogram& batch_size_hist_;
  obs::Histogram& queue_wait_hist_;
  obs::Histogram& e2e_hist_;
  // Critical-path stage histograms (`ses.sched.stage.*`), one per gap between
  // consecutive stage stamps. Observed with per-request trace-id exemplars so
  // a slow bucket on any stage links back to a concrete request.
  obs::Histogram& stage_admit_hist_;    ///< submit -> admit
  obs::Histogram& stage_seal_hist_;     ///< admit -> seal
  obs::Histogram& stage_queue_hist_;    ///< seal -> forward-start
  obs::Histogram& stage_forward_hist_;  ///< forward-start -> forward-end
  obs::Histogram& stage_resolve_hist_;  ///< forward-end -> resolve
  obs::Counter& rejected_shutdown_counter_;
  obs::Counter& expired_queue_counter_;
  obs::Counter& expired_inflight_counter_;
  obs::Counter& internal_error_counter_;
  obs::Counter& degraded_served_counter_;
  obs::Gauge& degraded_mode_gauge_;
};

}  // namespace ses::serve

#endif  // SES_SERVE_BATCH_SCHEDULER_H_
