#include "serve/batch_scheduler.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "obs/anomaly.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/request.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/logging.h"

namespace ses::serve {

namespace {

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                 .count()) *
         1e-3;
}

const std::string& E2eSloOp() {
  static const std::string op("sched.e2e");
  return op;
}

const std::string& QueueWaitSloOp() {
  static const std::string op("sched.queue_wait");
  return op;
}

const char* SchedOpName(OpKind op) {
  switch (op) {
    case OpKind::kPredict: return "sched.predict";
    case OpKind::kLogitsRow: return "sched.logits_row";
    case OpKind::kExplain: return "sched.explain";
  }
  return "sched.unknown";
}

robust::FaultPlan ResolveFaultPlan(const robust::FaultPlan& plan) {
  return plan.empty() ? robust::FaultPlan::FromEnv() : plan;
}

std::string HealthNameForInstance() {
  static std::atomic<int> counter{0};
  const int instance = counter.fetch_add(1, std::memory_order_relaxed);
  return instance == 0 ? "scheduler" : "scheduler-" + std::to_string(instance);
}

/// Synthetic per-request service cost (serve_delay fault): a busy-wait, not
/// a sleep, so the emulated work consumes CPU the way a real forward would
/// and overload saturates compute instead of timers.
void BusyWaitUs(int64_t us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

obs::Counter& ShedCounter(const char* reason) {
  return obs::MetricsRegistry::Get().GetCounter("ses.sched.shed",
                                                {{"reason", reason}});
}

void LogRejection(OpKind op, uint64_t trace_id, const char* reason) {
  if (!obs::AccessLog::Get().active()) return;
  obs::AccessEntry entry;
  entry.trace_id = trace_id;
  entry.op = SchedOpName(op);
  entry.error = true;
  entry.reason = reason;
  obs::AccessLog::Get().Record(entry);
}

}  // namespace

namespace internal {

int64_t TakePredict(Request& r) { return r.predicted; }

std::vector<float> TakeLogitsRow(Request& r) {
  return std::move(r.logits_row);
}

core::InferenceSession::Explanation TakeExplain(Request& r) {
  return std::move(r.explanation);
}

}  // namespace internal

BatchScheduler::BatchScheduler(core::InferenceSession* session,
                               SchedulerOptions options)
    : session_(session),
      options_(std::move(options)),
      fault_plan_(ResolveFaultPlan(options_.fault_plan)),
      has_faults_(!fault_plan_.empty()),
      serve_delay_us_(fault_plan_.ServeDelayUs()),
      health_name_(HealthNameForInstance()),
      degraded_state_(options_.degraded),
      requests_counter_(
          obs::MetricsRegistry::Get().GetCounter("ses.sched.requests")),
      batches_counter_(
          obs::MetricsRegistry::Get().GetCounter("ses.sched.batches")),
      queue_depth_gauge_(
          obs::MetricsRegistry::Get().GetGauge("ses.sched.queue_depth")),
      batch_size_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.batch_size",
          obs::Histogram::ExponentialEdges(1.0, 2.0, 12))),
      queue_wait_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.queue_wait_us", obs::Histogram::DefaultLatencyEdgesUs())),
      e2e_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.e2e_us", obs::Histogram::DefaultLatencyEdgesUs())),
      stage_admit_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.stage.admit_us",
          obs::Histogram::DefaultLatencyEdgesUs())),
      stage_seal_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.stage.seal_us",
          obs::Histogram::DefaultLatencyEdgesUs())),
      stage_queue_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.stage.queue_us",
          obs::Histogram::DefaultLatencyEdgesUs())),
      stage_forward_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.stage.forward_us",
          obs::Histogram::DefaultLatencyEdgesUs())),
      stage_resolve_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.stage.resolve_us",
          obs::Histogram::DefaultLatencyEdgesUs())),
      rejected_shutdown_counter_(obs::MetricsRegistry::Get().GetCounter(
          "ses.sched.rejected", {{"reason", "shutting_down"}})),
      expired_queue_counter_(obs::MetricsRegistry::Get().GetCounter(
          "ses.sched.expired", {{"stage", "queue"}})),
      expired_inflight_counter_(obs::MetricsRegistry::Get().GetCounter(
          "ses.sched.expired", {{"stage", "inflight"}})),
      internal_error_counter_(obs::MetricsRegistry::Get().GetCounter(
          "ses.sched.internal_errors")),
      degraded_served_counter_(obs::MetricsRegistry::Get().GetCounter(
          "ses.sched.degraded_served")),
      degraded_mode_gauge_(
          obs::MetricsRegistry::Get().GetGauge("ses.sched.degraded_mode")) {
  SES_CHECK(session_ != nullptr);
  SES_CHECK(options_.max_batch_size >= 1);
  SES_CHECK(options_.flush_deadline_us >= 0);
  SES_CHECK(options_.num_workers >= 1);
  SES_CHECK(options_.max_queue_batches >= 1);
  // Degraded mode is driven by the queue-wait burn rate; without that budget
  // there is no signal and the mode could never engage or recover.
  SES_CHECK(!options_.degraded.enabled || options_.queue_wait_budget_us > 0.0);
  if (options_.degraded.enabled) {
    SES_CHECK(options_.degraded.enter_burn_rate >
              options_.degraded.exit_burn_rate);
    SES_CHECK(options_.degraded.enter_consecutive >= 1);
    SES_CHECK(options_.degraded.exit_consecutive >= 1);
  }
  if (options_.e2e_budget_us > 0.0)
    obs::SloTracker::Get().SetBudget(E2eSloOp(), options_.e2e_budget_us);
  if (options_.queue_wait_budget_us > 0.0)
    obs::SloTracker::Get().SetBudget(
        QueueWaitSloOp(), options_.queue_wait_budget_us,
        options_.queue_wait_target, options_.queue_wait_window);
  obs::RegisterHealthProvider(health_name_, [this] { return HealthJson(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t i = 0; i < options_.num_workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

BatchScheduler::~BatchScheduler() { Stop(); }

std::shared_ptr<internal::BatchState> BatchScheduler::Append(
    internal::Request req, double deadline_us, size_t* index,
    Status* rejection, uint64_t* trace_id) {
  const uint64_t caller_id = obs::CurrentTraceId();
  req.trace_id = caller_id != 0 ? caller_id : obs::AllocateTraceId();
  *trace_id = req.trace_id;
  req.enqueue_time = std::chrono::steady_clock::now();
  const double effective_deadline =
      deadline_us != 0.0 ? deadline_us : options_.default_deadline_us;
  if (effective_deadline != 0.0) {
    req.has_deadline = true;
    req.deadline =
        req.enqueue_time +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::micro>(effective_deadline));
  }

  const char* shed_reason = nullptr;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock, [&] {
      return stopping_ ||
             static_cast<int64_t>(ready_.size()) < options_.max_queue_batches;
    });
    if (stopping_) {
      ++stats_.rejected;
      lock.unlock();
      rejected_shutdown_counter_.Add(1);
      LogRejection(req.op, req.trace_id, "shutting_down");
      *rejection = Status::ShuttingDown();
      return nullptr;
    }
    if (options_.admission != nullptr) {
      const AdmissionDecision decision =
          options_.admission->Admit(req.op, queued_requests_);
      if (!decision.admit) {
        ++stats_.shed;
        shed_reason = decision.reason;
        *rejection = Status::Overloaded(decision.retry_after_us);
        lock.unlock();
        ShedCounter(shed_reason).Add(1);
        LogRejection(req.op, req.trace_id, shed_reason);
        return nullptr;
      }
    }
    // Stage stamp 2 (admit): backpressure wait and admission control are
    // behind us; submit -> admit is the time the producer spent getting in.
    req.admit_time = std::chrono::steady_clock::now();
    if (!forming_) {
      forming_ = std::make_shared<internal::BatchState>();
      forming_->requests.reserve(static_cast<size_t>(options_.max_batch_size));
    }
    internal::BatchState& batch = *forming_;
    if (batch.requests.empty()) {
      batch.opened_at = req.enqueue_time;
      // First request of a fresh batch: wake a worker so one arms the
      // flush-deadline timer for it.
      work_cv_.notify_one();
    }
    batch.ops_mask |=
        static_cast<uint8_t>(1u << static_cast<unsigned>(req.op));
    batch.has_deadlines |= req.has_deadline;
    req.seq = stats_.requests;
    batch.requests.push_back(std::move(req));
    *index = batch.requests.size() - 1;
    ++stats_.requests;
    ++queued_requests_;
    queue_depth_gauge_.Set(static_cast<double>(queued_requests_));
    std::shared_ptr<internal::BatchState> state = forming_;
    if (static_cast<int64_t>(batch.requests.size()) >= options_.max_batch_size)
      SealFormingLocked(&stats_.full_flushes);
    return state;
  }
}

PredictFuture BatchScheduler::SubmitPredict(int64_t node,
                                            SubmitOptions submit) {
  if (degraded_mode_.load(std::memory_order_relaxed)) {
    PredictFuture fut;
    if (TryDegradedPredict(node, &fut)) return fut;
  }
  internal::Request req;
  req.op = OpKind::kPredict;
  req.node = node;
  size_t index = 0;
  Status rejection;
  uint64_t trace_id = 0;
  auto state = Append(std::move(req), submit.deadline_us, &index, &rejection,
                      &trace_id);
  return state == nullptr ? PredictFuture(rejection, trace_id)
                          : PredictFuture(std::move(state), index);
}

LogitsRowFuture BatchScheduler::SubmitLogitsRow(int64_t node,
                                                SubmitOptions submit) {
  internal::Request req;
  req.op = OpKind::kLogitsRow;
  req.node = node;
  size_t index = 0;
  Status rejection;
  uint64_t trace_id = 0;
  auto state = Append(std::move(req), submit.deadline_us, &index, &rejection,
                      &trace_id);
  return state == nullptr ? LogitsRowFuture(rejection, trace_id)
                          : LogitsRowFuture(std::move(state), index);
}

ExplainFuture BatchScheduler::SubmitExplain(int64_t node, int64_t top_k,
                                            SubmitOptions submit) {
  if (degraded_mode_.load(std::memory_order_relaxed)) {
    // Degraded mode sheds Explain outright: it is the recomputable,
    // lowest-priority op, and the cache cannot answer it.
    const uint64_t caller_id = obs::CurrentTraceId();
    const uint64_t trace_id =
        caller_id != 0 ? caller_id : obs::AllocateTraceId();
    if (stopping_flag_.load(std::memory_order_relaxed))
      return ExplainFuture(RejectShutdown(OpKind::kExplain, trace_id),
                           trace_id);
    return ExplainFuture(
        ShedRequest(OpKind::kExplain, trace_id, "degraded",
                    options_.degraded.retry_after_us),
        trace_id);
  }
  internal::Request req;
  req.op = OpKind::kExplain;
  req.node = node;
  req.top_k = top_k;
  size_t index = 0;
  Status rejection;
  uint64_t trace_id = 0;
  auto state = Append(std::move(req), submit.deadline_us, &index, &rejection,
                      &trace_id);
  return state == nullptr ? ExplainFuture(rejection, trace_id)
                          : ExplainFuture(std::move(state), index);
}

int64_t BatchScheduler::SubmitPredictStream(const int64_t* nodes, int64_t n,
                                            PredictFuture* out,
                                            SubmitOptions submit) {
  if (n <= 0) return 0;
  const uint64_t caller_id = obs::CurrentTraceId();
  const auto arrival = std::chrono::steady_clock::now();
  const double effective_deadline =
      submit.deadline_us != 0.0 ? submit.deadline_us
                                : options_.default_deadline_us;
  std::chrono::steady_clock::time_point deadline;
  const bool has_deadline = effective_deadline != 0.0;
  if (has_deadline)
    deadline = arrival +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::micro>(
                       effective_deadline));

  int64_t enqueued = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  // Stage stamp 2 (admit) for the stream path: requests admitted back-to-back
  // under the one lock acquisition share one admit timestamp — re-taken only
  // after a backpressure wait actually blocked — so the stamp stays truthful
  // without paying a per-request clock read on the hot path.
  auto admit_now = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < n; ++i) {
    if (!stopping_ &&
        static_cast<int64_t>(ready_.size()) >= options_.max_queue_batches) {
      space_cv_.wait(lock, [&] {
        return stopping_ || static_cast<int64_t>(ready_.size()) <
                                options_.max_queue_batches;
      });
      admit_now = std::chrono::steady_clock::now();
    }
    if (stopping_) {
      // Typed rejection for the whole tail; nothing in it was enqueued.
      stats_.rejected += n - i;
      lock.unlock();
      rejected_shutdown_counter_.Add(n - i);
      for (; i < n; ++i)
        out[i] = PredictFuture(Status::ShuttingDown(),
                               caller_id != 0 ? caller_id
                                              : obs::AllocateTraceId());
      return enqueued;
    }
    const uint64_t trace_id =
        caller_id != 0 ? caller_id : obs::AllocateTraceId();
    if (options_.admission != nullptr) {
      const AdmissionDecision decision =
          options_.admission->Admit(OpKind::kPredict, queued_requests_);
      if (!decision.admit) {
        ++stats_.shed;
        out[i] = PredictFuture(Status::Overloaded(decision.retry_after_us),
                               trace_id);
        ShedCounter(decision.reason).Add(1);
        continue;
      }
    }
    if (!forming_) {
      forming_ = std::make_shared<internal::BatchState>();
      forming_->requests.reserve(static_cast<size_t>(options_.max_batch_size));
    }
    internal::BatchState& batch = *forming_;
    if (batch.requests.empty()) {
      batch.opened_at = arrival;
      work_cv_.notify_one();
    }
    internal::Request req;
    req.op = OpKind::kPredict;
    req.node = nodes[i];
    req.trace_id = trace_id;
    req.enqueue_time = arrival;
    req.admit_time = admit_now;
    req.has_deadline = has_deadline;
    req.deadline = deadline;
    req.seq = stats_.requests;
    batch.ops_mask |=
        static_cast<uint8_t>(1u << static_cast<unsigned>(req.op));
    batch.has_deadlines |= has_deadline;
    batch.requests.push_back(std::move(req));
    out[i] = PredictFuture(forming_, batch.requests.size() - 1);
    ++stats_.requests;
    ++queued_requests_;
    ++enqueued;
    if (static_cast<int64_t>(batch.requests.size()) >= options_.max_batch_size)
      SealFormingLocked(&stats_.full_flushes);
  }
  queue_depth_gauge_.Set(static_cast<double>(queued_requests_));
  return enqueued;
}

bool BatchScheduler::TryDegradedPredict(int64_t node, PredictFuture* out) {
  const uint64_t caller_id = obs::CurrentTraceId();
  if (stopping_flag_.load(std::memory_order_relaxed)) {
    // Shutdown outranks degraded serving: a post-Stop Submit must never be
    // answered from the cache.
    const uint64_t trace_id =
        caller_id != 0 ? caller_id : obs::AllocateTraceId();
    *out = PredictFuture(RejectShutdown(OpKind::kPredict, trace_id), trace_id);
    return true;
  }
  // Every probe_every-th degraded predict goes through the queue as a canary
  // so queue-wait samples keep flowing — without them the burn rate would
  // freeze at its overload value and the mode could never observe recovery.
  const int64_t probe_every = options_.degraded.probe_every;
  const int64_t seq = degraded_seq_.fetch_add(1, std::memory_order_relaxed);
  if (probe_every > 0 && seq % probe_every == 0) return false;
  int64_t cls = 0;
  if (!session_->TryPredictCached(node, &cls)) return false;  // cold: queue it
  const uint64_t trace_id = caller_id != 0 ? caller_id : obs::AllocateTraceId();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.degraded_served;
  }
  degraded_served_counter_.Add(1);
  if (obs::AccessLog::Get().active()) {
    obs::AccessEntry entry;
    entry.trace_id = trace_id;
    entry.op = SchedOpName(OpKind::kPredict);
    entry.cache_hit = true;
    entry.reason = "degraded_cache";
    const int64_t fingerprint[2] = {node, cls};
    entry.digest =
        obs::Fnv1a(obs::Fnv1aBegin(), fingerprint, sizeof(fingerprint));
    obs::AccessLog::Get().Record(entry);
  }
  *out = PredictFuture(cls, trace_id);
  return true;
}

Status BatchScheduler::ShedRequest(OpKind op, uint64_t trace_id,
                                   const char* reason,
                                   int64_t retry_after_us) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.shed;
  }
  ShedCounter(reason).Add(1);
  LogRejection(op, trace_id, reason);
  return Status::Overloaded(retry_after_us);
}

Status BatchScheduler::RejectShutdown(OpKind op, uint64_t trace_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
  }
  rejected_shutdown_counter_.Add(1);
  LogRejection(op, trace_id, "shutting_down");
  return Status::ShuttingDown();
}

void BatchScheduler::SealFormingLocked(int64_t* reason_counter) {
  ++(*reason_counter);
  // The registry counter advances once per seal (covering the whole batch)
  // to keep the per-submit fast path down to one clock read + one push.
  requests_counter_.Add(static_cast<int64_t>(forming_->requests.size()));
  forming_->seq = next_batch_seq_++;
  // Stage stamp 3 (seal): admit -> seal is the batching delay this request
  // paid waiting for the batch to fill or hit its flush deadline.
  forming_->seal_time = std::chrono::steady_clock::now();
  ready_.push_back(std::move(forming_));
  forming_.reset();
  work_cv_.notify_one();
}

void BatchScheduler::WorkerLoop() {
  // Workers live as long as the scheduler: one workspace scope per worker
  // keeps every batched forward drawing tensors from the thread's pool.
  tensor::workspace::Scope pool;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!ready_.empty()) {
      std::shared_ptr<internal::BatchState> batch = std::move(ready_.front());
      ready_.pop_front();
      queued_requests_ -= static_cast<int64_t>(batch->requests.size());
      queue_depth_gauge_.Set(static_cast<double>(queued_requests_));
      space_cv_.notify_one();
      lock.unlock();
      if (has_faults_) {
        int64_t stall_ms = 0;
        bool stall = false;
        {
          std::lock_guard<std::mutex> fault_lock(fault_mutex_);
          stall = fault_plan_.TakeWorkerStall(batch->seq, &stall_ms);
        }
        if (stall)
          std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      }
      const double burn = ExecuteBatch(batch.get());
      // The flight recorder's auto-dump triggers on the same queue-wait burn
      // signal that drives admission and degraded mode (-1 = no budget).
      if (burn >= 0.0) obs::FlightRecorder::Get().ObserveBurn(burn);
      lock.lock();
      ++stats_.batches;
      stats_.max_batch =
          std::max(stats_.max_batch,
                   static_cast<int64_t>(batch->requests.size()));
      batches_counter_.Add(1);
      if (options_.degraded.enabled && burn >= 0.0 &&
          !forced_degraded_.load(std::memory_order_relaxed)) {
        const bool was = degraded_state_.degraded();
        const bool now_degraded = degraded_state_.Update(burn);
        if (now_degraded != was) {
          degraded_mode_.store(now_degraded, std::memory_order_relaxed);
          degraded_mode_gauge_.Set(now_degraded ? 1.0 : 0.0);
          SES_LOG_WARN << "scheduler " << (now_degraded ? "entered" : "left")
                       << " degraded mode (queue-wait burn rate " << burn
                       << ")";
        }
      }
      // Shed fraction of the submissions seen since the previous batch, for
      // the anomaly watch (counters are mutex_-guarded, so read them here).
      const int64_t d_shed = stats_.shed - anomaly_prev_shed_;
      const int64_t d_seen =
          d_shed + (stats_.requests - anomaly_prev_requests_);
      anomaly_prev_shed_ = stats_.shed;
      anomaly_prev_requests_ = stats_.requests;
      const double shed_rate =
          d_seen > 0 ? static_cast<double>(d_shed) / d_seen : 0.0;
      // Publish only after the aggregate stats above: a caller whose Get()
      // returned must never observe stats() missing its own batch.
      {
        std::lock_guard<std::mutex> result_lock(batch->mutex);
        batch->done.store(true, std::memory_order_release);
      }
      batch->cv.notify_all();
      // Anomaly sampling runs with mutex_ RELEASED: the first Sample of a
      // series registers the watch's health provider, which takes the health-
      // registry lock — while a concurrent /healthz scrape holds that lock
      // and calls this scheduler's HealthJson, which wants mutex_. Sampling
      // under mutex_ would close that cycle into a deadlock.
      lock.unlock();
      {
        obs::AnomalyWatch& watch = obs::AnomalyWatch::Get();
        watch.Sample("sched.queue_depth", queue_depth_gauge_.Value());
        watch.Sample("sched.e2e_p99_us", e2e_hist_.P99());
        watch.Sample("sched.shed_rate", shed_rate);
        watch.PollProbes();
      }
      lock.lock();
      continue;
    }
    if (forming_ && !forming_->requests.empty()) {
      const auto deadline =
          forming_->opened_at +
          std::chrono::microseconds(options_.flush_deadline_us);
      if (std::chrono::steady_clock::now() >= deadline) {
        SealFormingLocked(&stats_.deadline_flushes);
        continue;
      }
      work_cv_.wait_until(lock, deadline);
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

double BatchScheduler::ExecuteBatch(internal::BatchState* batch) {
  SES_TRACE_SPAN("sched/batch");
  const auto exec_start = std::chrono::steady_clock::now();
  std::vector<internal::Request>& reqs = batch->requests;
  batch_size_hist_.Observe(static_cast<double>(reqs.size()));
  // Latency scratch, reused across batches and for the end-to-end pass
  // below: the batched Observe/Record calls are what amortize per-request
  // bookkeeping to O(1) contended ops per batch.
  thread_local std::vector<double> latencies_us;
  thread_local std::vector<int64_t> node_scratch;
  thread_local std::vector<uint64_t> trace_ids;
  thread_local std::vector<double> stage_scratch;
  latencies_us.resize(reqs.size());
  trace_ids.resize(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    latencies_us[i] = MicrosBetween(reqs[i].enqueue_time, exec_start);
    trace_ids[i] = reqs[i].trace_id;
  }
  queue_wait_hist_.ObserveMany(latencies_us.data(), trace_ids.data(),
                               static_cast<int64_t>(latencies_us.size()));
  // Queue wait is recorded for EVERY request — including ones about to be
  // dropped as expired, whose wait is precisely the overload evidence the
  // admission burn-rate signal needs.
  if (options_.queue_wait_budget_us > 0.0)
    obs::SloTracker::Get().RecordMany(
        QueueWaitSloOp(), latencies_us.data(),
        static_cast<int64_t>(latencies_us.size()));

  // Injected serving faults (one fault-plan lock per batch when armed).
  bool throw_fault = false;
  bool slow_forward = false;
  int64_t slow_ms = 0;
  int64_t poisoned = 0;
  if (has_faults_) {
    std::lock_guard<std::mutex> fault_lock(fault_mutex_);
    slow_forward = fault_plan_.TakeSlowForward(batch->seq, &slow_ms);
    throw_fault = fault_plan_.TakeServeThrow(batch->seq);
    for (internal::Request& r : reqs) {
      if (fault_plan_.TakePoisonRequest(r.seq)) {
        r.status = Status::Internal();
        r.reason = "poisoned";
        ++poisoned;
      }
    }
  }

  // Doomed-work elimination: a request already past its deadline is dropped
  // BEFORE the forward — executing it would burn capacity on an answer the
  // client has stopped waiting for, which is how overload collapses.
  int64_t doomed = 0;
  if (batch->has_deadlines) {
    for (internal::Request& r : reqs) {
      if (r.status.ok() && r.has_deadline && r.deadline <= exec_start) {
        r.status = Status::DeadlineExceeded();
        r.reason = "expired_queue";
        ++doomed;
      }
    }
  }
  // Slow-forward fault runs AFTER elimination, so it models a forward that
  // became slow — live requests can still expire mid-flight below.
  if (slow_forward)
    std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));

  const int64_t dead = poisoned + doomed;
  const int64_t live =
      static_cast<int64_t>(reqs.size()) - dead;
  if (serve_delay_us_ > 0 && live > 0) BusyWaitUs(serve_delay_us_ * live);

  constexpr uint8_t kPredictBit =
      1u << static_cast<unsigned>(OpKind::kPredict);
  try {
    if (throw_fault)
      throw std::runtime_error("injected serve_throw fault");
    if (batch->ops_mask == kPredictBit && dead == 0) {
      // Homogeneous predict batch (the steady-state serving shape): no
      // partitioning, identity scatter.
      node_scratch.resize(reqs.size());
      for (size_t i = 0; i < reqs.size(); ++i) node_scratch[i] = reqs[i].node;
      const std::vector<int64_t> classes = session_->PredictMany(node_scratch);
      for (size_t i = 0; i < reqs.size(); ++i) reqs[i].predicted = classes[i];
    } else if (live > 0) {
      // Partition the live requests by op. Predicts and logit slices each
      // become ONE batched session call (one lock, one memoized forward, one
      // gathered readout); explains group by top_k so each group shares a
      // selection scratch. Dead slots (expired / poisoned) are skipped.
      std::vector<int64_t> predict_nodes, predict_idx;
      std::vector<int64_t> slice_nodes, slice_idx;
      std::vector<std::pair<int64_t, std::vector<int64_t>>> explain_groups;
      for (size_t i = 0; i < reqs.size(); ++i) {
        if (!reqs[i].status.ok()) continue;
        switch (reqs[i].op) {
          case OpKind::kPredict:
            predict_nodes.push_back(reqs[i].node);
            predict_idx.push_back(static_cast<int64_t>(i));
            break;
          case OpKind::kLogitsRow:
            slice_nodes.push_back(reqs[i].node);
            slice_idx.push_back(static_cast<int64_t>(i));
            break;
          case OpKind::kExplain: {
            auto group = std::find_if(
                explain_groups.begin(), explain_groups.end(),
                [&](const auto& g) { return g.first == reqs[i].top_k; });
            if (group == explain_groups.end()) {
              explain_groups.push_back({reqs[i].top_k, {}});
              group = explain_groups.end() - 1;
            }
            group->second.push_back(static_cast<int64_t>(i));
            break;
          }
        }
      }

      if (!predict_nodes.empty()) {
        const std::vector<int64_t> classes =
            session_->PredictMany(predict_nodes);
        for (size_t i = 0; i < predict_idx.size(); ++i)
          reqs[static_cast<size_t>(predict_idx[i])].predicted = classes[i];
      }
      if (!slice_nodes.empty()) {
        const tensor::Tensor rows = session_->GatherLogits(slice_nodes);
        for (size_t i = 0; i < slice_idx.size(); ++i) {
          internal::Request& r = reqs[static_cast<size_t>(slice_idx[i])];
          const float* row = rows.RowPtr(static_cast<int64_t>(i));
          r.logits_row.assign(row, row + rows.cols());
        }
      }
      for (const auto& [top_k, idx] : explain_groups) {
        std::vector<int64_t> nodes;
        nodes.reserve(idx.size());
        for (int64_t i : idx)
          nodes.push_back(reqs[static_cast<size_t>(i)].node);
        std::vector<core::InferenceSession::Explanation> exs =
            session_->ExplainMany(nodes, top_k);
        for (size_t i = 0; i < idx.size(); ++i)
          reqs[static_cast<size_t>(idx[i])].explanation = std::move(exs[i]);
      }
    }
  } catch (const std::exception& e) {
    // The worker must survive anything a batch throws: every still-pending
    // request resolves kInternal, the batch completes, the loop continues.
    int64_t failed = 0;
    for (internal::Request& r : reqs) {
      if (!r.status.ok()) continue;
      r.status = Status::Internal();
      r.reason = "exception";
      ++failed;
    }
    internal_errors_total_.fetch_add(failed, std::memory_order_relaxed);
    internal_error_counter_.Add(failed);
    SES_LOG_WARN << "batch " << batch->seq << " failed (" << failed
                 << " requests resolve kInternal): " << e.what();
  }

  // Completion-time deadline check: the result may exist, but the contract
  // is "within the deadline" — a mid-flight expiry (slow forward, stalled
  // worker) still resolves kDeadlineExceeded.
  const auto exec_end = std::chrono::steady_clock::now();
  int64_t expired_inflight = 0;
  if (batch->has_deadlines) {
    for (internal::Request& r : reqs) {
      if (r.status.ok() && r.has_deadline && r.deadline < exec_end) {
        r.status = Status::DeadlineExceeded();
        r.reason = "expired_inflight";
        ++expired_inflight;
      }
    }
  }
  if (doomed > 0) {
    expired_queue_total_.fetch_add(doomed, std::memory_order_relaxed);
    expired_queue_counter_.Add(doomed);
  }
  if (expired_inflight > 0) {
    expired_inflight_total_.fetch_add(expired_inflight,
                                      std::memory_order_relaxed);
    expired_inflight_counter_.Add(expired_inflight);
  }
  if (poisoned > 0) {
    internal_errors_total_.fetch_add(poisoned, std::memory_order_relaxed);
    internal_error_counter_.Add(poisoned);
  }

  // End-to-end latency (enqueue -> results ready) for every request, fed to
  // the histogram and the SLO tracker as one batched pass each. e2e is the
  // queue wait plus the batch's execution time, which is shared by every
  // request in the batch. Failed requests count as SLO errors individually;
  // the common all-ok batch keeps the single batched Record.
  const double exec_us = MicrosBetween(exec_start, exec_end);
  for (double& l : latencies_us) l += exec_us;
  e2e_hist_.ObserveMany(latencies_us.data(), trace_ids.data(),
                        static_cast<int64_t>(latencies_us.size()));
  const bool any_failed = dead > 0 || expired_inflight > 0 ||
                          (!reqs.empty() && !reqs.front().status.ok());
  if (!any_failed) {
    obs::SloTracker::Get().RecordMany(
        E2eSloOp(), latencies_us.data(),
        static_cast<int64_t>(latencies_us.size()));
  } else {
    for (size_t i = 0; i < reqs.size(); ++i)
      obs::SloTracker::Get().Record(E2eSloOp(), latencies_us[i],
                                    !reqs[i].status.ok());
  }

  // ---- Request forensics (DESIGN.md §15) ----
  // Stage stamp 6 (resolve): results are written back and aggregate
  // accounting is done; the per-request log/span emission below is resolve
  // overhead charged to the NEXT batch, not to these requests.
  const auto resolve_time = std::chrono::steady_clock::now();
  const int64_t n_reqs = static_cast<int64_t>(reqs.size());
  // Stage gap histograms, one batched pass per stage, each observation
  // carrying its request's trace-id so slow buckets expose an exemplar.
  stage_scratch.resize(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i)
    stage_scratch[i] = MicrosBetween(reqs[i].enqueue_time, reqs[i].admit_time);
  stage_admit_hist_.ObserveMany(stage_scratch.data(), trace_ids.data(),
                                n_reqs);
  for (size_t i = 0; i < reqs.size(); ++i)
    stage_scratch[i] = MicrosBetween(reqs[i].admit_time, batch->seal_time);
  stage_seal_hist_.ObserveMany(stage_scratch.data(), trace_ids.data(), n_reqs);
  // The last three gaps are batch-wide: every request shares the seal, the
  // forward, and the resolve of its batch.
  const double queue_gap_us = MicrosBetween(batch->seal_time, exec_start);
  const double resolve_gap_us = MicrosBetween(exec_end, resolve_time);
  for (double& s : stage_scratch) s = queue_gap_us;
  stage_queue_hist_.ObserveMany(stage_scratch.data(), trace_ids.data(),
                                n_reqs);
  for (double& s : stage_scratch) s = exec_us;
  stage_forward_hist_.ObserveMany(stage_scratch.data(), trace_ids.data(),
                                  n_reqs);
  for (double& s : stage_scratch) s = resolve_gap_us;
  stage_resolve_hist_.ObserveMany(stage_scratch.data(), trace_ids.data(),
                                  n_reqs);

  // Map the steady-clock stamps onto the trace-epoch clock once per batch:
  // take trace-now at resolve and back-compute every earlier stage from its
  // steady-clock gap to resolve. Flight records and manual stage spans then
  // share the Chrome trace's timebase exactly.
  const uint64_t resolve_tr_ns = obs::internal::TraceNowNs();
  const double resolve_tr_us = static_cast<double>(resolve_tr_ns) * 1e-3;
  auto ns_before_resolve = [resolve_time](
                               std::chrono::steady_clock::time_point t) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(resolve_time - t)
            .count());
  };
  const uint64_t seal_tr_ns = resolve_tr_ns - ns_before_resolve(batch->seal_time);
  const uint64_t fwd_start_tr_ns = resolve_tr_ns - ns_before_resolve(exec_start);
  const uint64_t fwd_end_tr_ns = resolve_tr_ns - ns_before_resolve(exec_end);
  // Every completed request is offered to the flight recorder; its lock-free
  // floor check keeps the common (fast-request) case to a few loads.
  for (size_t i = 0; i < reqs.size(); ++i) {
    const internal::Request& r = reqs[i];
    obs::FlightRecord rec;
    rec.trace_id = r.trace_id;
    rec.op = SchedOpName(r.op);
    rec.error = !r.status.ok();
    rec.reason = r.reason[0] != '\0' ? r.reason : (rec.error ? "error" : "ok");
    rec.resolve_us = resolve_tr_us;
    rec.submit_us =
        resolve_tr_us -
        static_cast<double>(ns_before_resolve(r.enqueue_time)) * 1e-3;
    rec.admit_us =
        resolve_tr_us -
        static_cast<double>(ns_before_resolve(r.admit_time)) * 1e-3;
    rec.seal_us = static_cast<double>(seal_tr_ns) * 1e-3;
    rec.forward_start_us = static_cast<double>(fwd_start_tr_ns) * 1e-3;
    rec.forward_end_us = static_cast<double>(fwd_end_tr_ns) * 1e-3;
    rec.e2e_us = rec.resolve_us - rec.submit_us;
    obs::FlightRecorder::Get().Record(rec);
  }

  // Per-request completion records under the request's own trace-id, so the
  // worker-side span and access-log line join the id the producer got at
  // enqueue time. Skipped entirely when neither sink is live — the batched
  // histograms above already carry the aggregate story.
  const bool log_active = obs::AccessLog::Get().active();
  const bool tracing = obs::TracingEnabled();
  if (log_active || tracing) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      internal::Request& r = reqs[i];
      obs::ScopedTraceId adopt(r.trace_id);
      SES_TRACE_SPAN("sched/complete");
      if (tracing) {
        // Retroactive critical-path spans on the trace-epoch timebase: the
        // Chrome trace shows each request's submit->resolve pipeline as five
        // adjacent spans joined to everything else by args.trace_id.
        const uint64_t submit_ns =
            resolve_tr_ns - ns_before_resolve(r.enqueue_time);
        const uint64_t admit_ns =
            resolve_tr_ns - ns_before_resolve(r.admit_time);
        obs::RecordManualSpan("sched/stage/admit", submit_ns,
                              admit_ns - submit_ns, r.trace_id);
        obs::RecordManualSpan("sched/stage/seal", admit_ns,
                              seal_tr_ns - admit_ns, r.trace_id);
        obs::RecordManualSpan("sched/stage/queue", seal_tr_ns,
                              fwd_start_tr_ns - seal_tr_ns, r.trace_id);
        obs::RecordManualSpan("sched/stage/forward", fwd_start_tr_ns,
                              fwd_end_tr_ns - fwd_start_tr_ns, r.trace_id);
        obs::RecordManualSpan("sched/stage/resolve", fwd_end_tr_ns,
                              resolve_tr_ns - fwd_end_tr_ns, r.trace_id);
      }
      if (!log_active) continue;
      obs::AccessEntry entry;
      entry.trace_id = r.trace_id;
      entry.op = SchedOpName(r.op);
      entry.latency_us = latencies_us[i];
      entry.error = !r.status.ok();
      entry.reason = r.reason;
      entry.has_stages = true;
      entry.admit_us = MicrosBetween(r.enqueue_time, r.admit_time);
      entry.seal_us = MicrosBetween(r.enqueue_time, batch->seal_time);
      entry.forward_start_us = MicrosBetween(r.enqueue_time, exec_start);
      entry.forward_end_us = MicrosBetween(r.enqueue_time, exec_end);
      entry.resolve_us = MicrosBetween(r.enqueue_time, resolve_time);
      if (r.status.ok()) {
        uint64_t h = obs::Fnv1aBegin();
        switch (r.op) {
          case OpKind::kPredict: {
            const int64_t fingerprint[2] = {r.node, r.predicted};
            h = obs::Fnv1a(h, fingerprint, sizeof(fingerprint));
            break;
          }
          case OpKind::kLogitsRow:
            h = obs::Fnv1a(h, r.logits_row.data(),
                           r.logits_row.size() * sizeof(float));
            break;
          case OpKind::kExplain:
            h = obs::Fnv1a(h, &r.node, sizeof(r.node));
            h = obs::Fnv1a(h, r.explanation.neighbors.data(),
                           r.explanation.neighbors.size() * sizeof(int64_t));
            break;
        }
        entry.digest = h;
      }
      obs::AccessLog::Get().Record(entry);
    }
  }
  // Completion (`done` + notify) is published by WorkerLoop after it has
  // folded this batch into the aggregate stats under the scheduler mutex.

  double burn = -1.0;
  if (options_.queue_wait_budget_us > 0.0) {
    burn = obs::SloTracker::Get().Snapshot(QueueWaitSloOp()).burn_rate;
    if (options_.admission != nullptr)
      options_.admission->ObserveBurnRate(burn);
  }
  return burn;
}

void BatchScheduler::ForceDegradedForTest(bool on) {
  forced_degraded_.store(on, std::memory_order_relaxed);
  degraded_mode_.store(on, std::memory_order_relaxed);
  degraded_mode_gauge_.Set(on ? 1.0 : 0.0);
}

void BatchScheduler::Stop() {
  // Unregister first (it is a barrier — see health.h): after this no
  // /healthz scrape can be inside HealthJson when the members go away.
  obs::UnregisterHealthProvider(health_name_);
  // The lock-free flag goes up before the queue flag so the degraded fast
  // path can never cache-serve a Submit that raced past a completed Stop().
  stopping_flag_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (forming_ && !forming_->requests.empty())
      SealFormingLocked(&stats_.shutdown_flushes);
    forming_.reset();
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.expired = expired_queue_total_.load(std::memory_order_relaxed);
  s.expired_inflight =
      expired_inflight_total_.load(std::memory_order_relaxed);
  s.internal_errors = internal_errors_total_.load(std::memory_order_relaxed);
  s.degraded_entries = degraded_state_.entries();
  return s;
}

std::string BatchScheduler::HealthJson() const {
  const Stats s = stats();
  bool stopping;
  int64_t queued;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping = stopping_;
    queued = queued_requests_;
  }
  std::ostringstream out;
  out << "{\"stopping\":" << (stopping ? "true" : "false")
      << ",\"degraded\":" << (degraded() ? "true" : "false")
      << ",\"queued_requests\":" << queued << ",\"requests\":" << s.requests
      << ",\"shed\":" << s.shed << ",\"rejected\":" << s.rejected
      << ",\"expired\":" << (s.expired + s.expired_inflight)
      << ",\"internal_errors\":" << s.internal_errors
      << ",\"degraded_served\":" << s.degraded_served
      << ",\"degraded_entries\":" << s.degraded_entries << ",\"admission\":"
      << (options_.admission != nullptr ? options_.admission->DebugState()
                                        : std::string("null"))
      << "}";
  return out.str();
}

}  // namespace ses::serve
