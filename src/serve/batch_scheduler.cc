#include "serve/batch_scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/request.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/logging.h"

namespace ses::serve {

namespace {

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                 .count()) *
         1e-3;
}

const std::string& E2eSloOp() {
  static const std::string op("sched.e2e");
  return op;
}

}  // namespace

namespace internal {

int64_t TakePredict(Request& r) { return r.predicted; }

std::vector<float> TakeLogitsRow(Request& r) {
  return std::move(r.logits_row);
}

core::InferenceSession::Explanation TakeExplain(Request& r) {
  return std::move(r.explanation);
}

}  // namespace internal

BatchScheduler::BatchScheduler(core::InferenceSession* session,
                               SchedulerOptions options)
    : session_(session),
      options_(options),
      requests_counter_(
          obs::MetricsRegistry::Get().GetCounter("ses.sched.requests")),
      batches_counter_(
          obs::MetricsRegistry::Get().GetCounter("ses.sched.batches")),
      queue_depth_gauge_(
          obs::MetricsRegistry::Get().GetGauge("ses.sched.queue_depth")),
      batch_size_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.batch_size",
          obs::Histogram::ExponentialEdges(1.0, 2.0, 12))),
      queue_wait_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.queue_wait_us", obs::Histogram::DefaultLatencyEdgesUs())),
      e2e_hist_(obs::MetricsRegistry::Get().GetHistogram(
          "ses.sched.e2e_us", obs::Histogram::DefaultLatencyEdgesUs())) {
  SES_CHECK(session_ != nullptr);
  SES_CHECK(options_.max_batch_size >= 1);
  SES_CHECK(options_.flush_deadline_us >= 0);
  SES_CHECK(options_.num_workers >= 1);
  SES_CHECK(options_.max_queue_batches >= 1);
  if (options_.e2e_budget_us > 0.0)
    obs::SloTracker::Get().SetBudget(E2eSloOp(), options_.e2e_budget_us);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t i = 0; i < options_.num_workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

BatchScheduler::~BatchScheduler() { Stop(); }

std::shared_ptr<internal::BatchState> BatchScheduler::Append(
    internal::Request req, size_t* index) {
  const uint64_t caller_id = obs::CurrentTraceId();
  req.trace_id = caller_id != 0 ? caller_id : obs::AllocateTraceId();
  req.enqueue_time = std::chrono::steady_clock::now();

  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [&] {
    return stopping_ ||
           static_cast<int64_t>(ready_.size()) < options_.max_queue_batches;
  });
  if (stopping_) {
    ++stats_.rejected;
    return nullptr;
  }
  if (!forming_) {
    forming_ = std::make_shared<internal::BatchState>();
    forming_->requests.reserve(static_cast<size_t>(options_.max_batch_size));
  }
  internal::BatchState& batch = *forming_;
  if (batch.requests.empty()) {
    batch.opened_at = req.enqueue_time;
    // First request of a fresh batch: wake a worker so one arms the
    // flush-deadline timer for it.
    work_cv_.notify_one();
  }
  batch.ops_mask |= static_cast<uint8_t>(1u << static_cast<unsigned>(req.op));
  batch.requests.push_back(std::move(req));
  *index = batch.requests.size() - 1;
  ++stats_.requests;
  std::shared_ptr<internal::BatchState> state = forming_;
  if (static_cast<int64_t>(batch.requests.size()) >= options_.max_batch_size)
    SealFormingLocked(&stats_.full_flushes);
  return state;
}

PredictFuture BatchScheduler::SubmitPredict(int64_t node) {
  internal::Request req;
  req.op = internal::Op::kPredict;
  req.node = node;
  size_t index = 0;
  auto state = Append(std::move(req), &index);
  return state == nullptr ? PredictFuture()
                          : PredictFuture(std::move(state), index);
}

LogitsRowFuture BatchScheduler::SubmitLogitsRow(int64_t node) {
  internal::Request req;
  req.op = internal::Op::kLogitsRow;
  req.node = node;
  size_t index = 0;
  auto state = Append(std::move(req), &index);
  return state == nullptr ? LogitsRowFuture()
                          : LogitsRowFuture(std::move(state), index);
}

int64_t BatchScheduler::SubmitPredictStream(const int64_t* nodes, int64_t n,
                                            PredictFuture* out) {
  if (n <= 0) return 0;
  const uint64_t caller_id = obs::CurrentTraceId();
  const auto arrival = std::chrono::steady_clock::now();

  std::unique_lock<std::mutex> lock(mutex_);
  int64_t accepted = 0;
  for (; accepted < n; ++accepted) {
    space_cv_.wait(lock, [&] {
      return stopping_ ||
             static_cast<int64_t>(ready_.size()) < options_.max_queue_batches;
    });
    if (stopping_) {
      stats_.rejected += n - accepted;
      break;
    }
    if (!forming_) {
      forming_ = std::make_shared<internal::BatchState>();
      forming_->requests.reserve(static_cast<size_t>(options_.max_batch_size));
    }
    internal::BatchState& batch = *forming_;
    if (batch.requests.empty()) {
      batch.opened_at = arrival;
      work_cv_.notify_one();
    }
    internal::Request req;
    req.op = internal::Op::kPredict;
    req.node = nodes[accepted];
    req.trace_id = caller_id != 0 ? caller_id : obs::AllocateTraceId();
    req.enqueue_time = arrival;
    batch.ops_mask |=
        static_cast<uint8_t>(1u << static_cast<unsigned>(req.op));
    batch.requests.push_back(std::move(req));
    out[accepted] = PredictFuture(forming_, batch.requests.size() - 1);
    ++stats_.requests;
    if (static_cast<int64_t>(batch.requests.size()) >= options_.max_batch_size)
      SealFormingLocked(&stats_.full_flushes);
  }
  return accepted;
}

ExplainFuture BatchScheduler::SubmitExplain(int64_t node, int64_t top_k) {
  internal::Request req;
  req.op = internal::Op::kExplain;
  req.node = node;
  req.top_k = top_k;
  size_t index = 0;
  auto state = Append(std::move(req), &index);
  return state == nullptr ? ExplainFuture()
                          : ExplainFuture(std::move(state), index);
}

void BatchScheduler::SealFormingLocked(int64_t* reason_counter) {
  ++(*reason_counter);
  // The registry counter advances once per seal (covering the whole batch)
  // to keep the per-submit fast path down to one clock read + one push.
  requests_counter_.Add(static_cast<int64_t>(forming_->requests.size()));
  ready_.push_back(std::move(forming_));
  forming_.reset();
  queue_depth_gauge_.Set(static_cast<double>(ready_.size()));
  work_cv_.notify_one();
}

void BatchScheduler::WorkerLoop() {
  // Workers live as long as the scheduler: one workspace scope per worker
  // keeps every batched forward drawing tensors from the thread's pool.
  tensor::workspace::Scope pool;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!ready_.empty()) {
      std::shared_ptr<internal::BatchState> batch = std::move(ready_.front());
      ready_.pop_front();
      queue_depth_gauge_.Set(static_cast<double>(ready_.size()));
      space_cv_.notify_one();
      lock.unlock();
      ExecuteBatch(batch.get());
      lock.lock();
      ++stats_.batches;
      stats_.max_batch =
          std::max(stats_.max_batch,
                   static_cast<int64_t>(batch->requests.size()));
      batches_counter_.Add(1);
      // Publish only after the aggregate stats above: a caller whose Get()
      // returned must never observe stats() missing its own batch.
      {
        std::lock_guard<std::mutex> result_lock(batch->mutex);
        batch->done.store(true, std::memory_order_release);
      }
      batch->cv.notify_all();
      continue;
    }
    if (forming_ && !forming_->requests.empty()) {
      const auto deadline =
          forming_->opened_at +
          std::chrono::microseconds(options_.flush_deadline_us);
      if (std::chrono::steady_clock::now() >= deadline) {
        SealFormingLocked(&stats_.deadline_flushes);
        continue;
      }
      work_cv_.wait_until(lock, deadline);
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

void BatchScheduler::ExecuteBatch(internal::BatchState* batch) {
  SES_TRACE_SPAN("sched/batch");
  const auto exec_start = std::chrono::steady_clock::now();
  std::vector<internal::Request>& reqs = batch->requests;
  batch_size_hist_.Observe(static_cast<double>(reqs.size()));
  // Latency scratch, reused across batches and for the end-to-end pass
  // below: the batched Observe/Record calls are what amortize per-request
  // bookkeeping to O(1) contended ops per batch.
  thread_local std::vector<double> latencies_us;
  thread_local std::vector<int64_t> node_scratch;
  latencies_us.resize(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i)
    latencies_us[i] = MicrosBetween(reqs[i].enqueue_time, exec_start);
  queue_wait_hist_.ObserveMany(latencies_us.data(),
                               static_cast<int64_t>(latencies_us.size()));

  constexpr uint8_t kPredictBit =
      1u << static_cast<unsigned>(internal::Op::kPredict);
  if (batch->ops_mask == kPredictBit) {
    // Homogeneous predict batch (the steady-state serving shape): no
    // partitioning, identity scatter.
    node_scratch.resize(reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) node_scratch[i] = reqs[i].node;
    const std::vector<int64_t> classes = session_->PredictMany(node_scratch);
    for (size_t i = 0; i < reqs.size(); ++i) reqs[i].predicted = classes[i];
  } else {
    // Partition the batch by op. Predicts and logit slices each become ONE
    // batched session call (one lock, one memoized forward, one gathered
    // readout); explains group by top_k so each group shares a selection
    // scratch.
    std::vector<int64_t> predict_nodes, predict_idx;
    std::vector<int64_t> slice_nodes, slice_idx;
    std::vector<std::pair<int64_t, std::vector<int64_t>>> explain_groups;
    for (size_t i = 0; i < reqs.size(); ++i) {
      switch (reqs[i].op) {
        case internal::Op::kPredict:
          predict_nodes.push_back(reqs[i].node);
          predict_idx.push_back(static_cast<int64_t>(i));
          break;
        case internal::Op::kLogitsRow:
          slice_nodes.push_back(reqs[i].node);
          slice_idx.push_back(static_cast<int64_t>(i));
          break;
        case internal::Op::kExplain: {
          auto group = std::find_if(
              explain_groups.begin(), explain_groups.end(),
              [&](const auto& g) { return g.first == reqs[i].top_k; });
          if (group == explain_groups.end()) {
            explain_groups.push_back({reqs[i].top_k, {}});
            group = explain_groups.end() - 1;
          }
          group->second.push_back(static_cast<int64_t>(i));
          break;
        }
      }
    }

    if (!predict_nodes.empty()) {
      const std::vector<int64_t> classes =
          session_->PredictMany(predict_nodes);
      for (size_t i = 0; i < predict_idx.size(); ++i)
        reqs[static_cast<size_t>(predict_idx[i])].predicted = classes[i];
    }
    if (!slice_nodes.empty()) {
      const tensor::Tensor rows = session_->GatherLogits(slice_nodes);
      for (size_t i = 0; i < slice_idx.size(); ++i) {
        internal::Request& r = reqs[static_cast<size_t>(slice_idx[i])];
        const float* row = rows.RowPtr(static_cast<int64_t>(i));
        r.logits_row.assign(row, row + rows.cols());
      }
    }
    for (const auto& [top_k, idx] : explain_groups) {
      std::vector<int64_t> nodes;
      nodes.reserve(idx.size());
      for (int64_t i : idx) nodes.push_back(reqs[static_cast<size_t>(i)].node);
      std::vector<core::InferenceSession::Explanation> exs =
          session_->ExplainMany(nodes, top_k);
      for (size_t i = 0; i < idx.size(); ++i)
        reqs[static_cast<size_t>(idx[i])].explanation = std::move(exs[i]);
    }
  }

  // End-to-end latency (enqueue -> results ready) for every request, fed to
  // the histogram and the SLO tracker as one batched pass each. e2e is the
  // queue wait plus the batch's execution time, which is shared by every
  // request in the batch.
  const auto exec_end = std::chrono::steady_clock::now();
  const double exec_us = MicrosBetween(exec_start, exec_end);
  for (double& l : latencies_us) l += exec_us;
  e2e_hist_.ObserveMany(latencies_us.data(),
                        static_cast<int64_t>(latencies_us.size()));
  obs::SloTracker::Get().RecordMany(E2eSloOp(), latencies_us.data(),
                                    static_cast<int64_t>(latencies_us.size()));

  // Per-request completion records under the request's own trace-id, so the
  // worker-side span and access-log line join the id the producer got at
  // enqueue time. Skipped entirely when neither sink is live — the batched
  // histograms above already carry the aggregate story.
  const bool log_active = obs::AccessLog::Get().active();
  if (log_active || obs::TracingEnabled()) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      internal::Request& r = reqs[i];
      obs::ScopedTraceId adopt(r.trace_id);
      SES_TRACE_SPAN("sched/complete");
      if (!log_active) continue;
      obs::AccessEntry entry;
      entry.trace_id = r.trace_id;
      entry.latency_us = latencies_us[i];
      uint64_t h = obs::Fnv1aBegin();
      switch (r.op) {
        case internal::Op::kPredict: {
          entry.op = "sched.predict";
          const int64_t fingerprint[2] = {r.node, r.predicted};
          h = obs::Fnv1a(h, fingerprint, sizeof(fingerprint));
          break;
        }
        case internal::Op::kLogitsRow:
          entry.op = "sched.logits_row";
          h = obs::Fnv1a(h, r.logits_row.data(),
                         r.logits_row.size() * sizeof(float));
          break;
        case internal::Op::kExplain:
          entry.op = "sched.explain";
          h = obs::Fnv1a(h, &r.node, sizeof(r.node));
          h = obs::Fnv1a(h, r.explanation.neighbors.data(),
                         r.explanation.neighbors.size() * sizeof(int64_t));
          break;
      }
      entry.digest = h;
      obs::AccessLog::Get().Record(entry);
    }
  }
  // Completion (`done` + notify) is published by WorkerLoop after it has
  // folded this batch into the aggregate stats under the scheduler mutex.
}

void BatchScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (forming_ && !forming_->requests.empty())
      SealFormingLocked(&stats_.shutdown_flushes);
    forming_.reset();
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ses::serve
