#include "serve/shard_router.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace ses::serve {

ShardRouter::ShardRouter(core::ShardedSession* session,
                         SchedulerOptions options)
    : session_(session) {
  SES_CHECK(session_ != nullptr);
  schedulers_.reserve(static_cast<size_t>(session_->num_shards()));
  for (int64_t s = 0; s < session_->num_shards(); ++s)
    schedulers_.push_back(std::make_unique<BatchScheduler>(
        session_->shard_session(s), options));
}

PredictFuture ShardRouter::SubmitPredict(int64_t node, SubmitOptions submit) {
  const int64_t s = session_->ShardOf(node);
  return schedulers_[static_cast<size_t>(s)]->SubmitPredict(
      session_->LocalIdOf(node), submit);
}

LogitsRowFuture ShardRouter::SubmitLogitsRow(int64_t node,
                                             SubmitOptions submit) {
  const int64_t s = session_->ShardOf(node);
  return schedulers_[static_cast<size_t>(s)]->SubmitLogitsRow(
      session_->LocalIdOf(node), submit);
}

ExplainFuture ShardRouter::SubmitExplain(int64_t node, int64_t top_k,
                                         SubmitOptions submit) {
  // Global id on purpose: the k-hop structure mask the explain reads is
  // global model state (see ShardedSession::ExplainNode).
  return schedulers_[static_cast<size_t>(session_->ShardOf(node))]
      ->SubmitExplain(node, top_k, submit);
}

int64_t ShardRouter::SubmitPredictStream(const int64_t* nodes, int64_t n,
                                         PredictFuture* out,
                                         SubmitOptions submit) {
  const int64_t num_shards = this->num_shards();
  std::vector<std::vector<int64_t>> local(static_cast<size_t>(num_shards));
  std::vector<std::vector<int64_t>> position(static_cast<size_t>(num_shards));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t s = session_->ShardOf(nodes[i]);
    local[static_cast<size_t>(s)].push_back(session_->LocalIdOf(nodes[i]));
    position[static_cast<size_t>(s)].push_back(i);
  }
  int64_t enqueued = 0;
  std::vector<PredictFuture> futures;
  for (int64_t s = 0; s < num_shards; ++s) {
    const auto& rows = local[static_cast<size_t>(s)];
    if (rows.empty()) continue;
    futures.assign(rows.size(), PredictFuture());
    enqueued += schedulers_[static_cast<size_t>(s)]->SubmitPredictStream(
        rows.data(), static_cast<int64_t>(rows.size()), futures.data(),
        submit);
    for (size_t j = 0; j < rows.size(); ++j)
      out[position[static_cast<size_t>(s)][j]] = std::move(futures[j]);
  }
  return enqueued;
}

void ShardRouter::Stop() {
  for (auto& scheduler : schedulers_) scheduler->Stop();
}

BatchScheduler::Stats ShardRouter::stats() const {
  BatchScheduler::Stats total;
  for (const auto& scheduler : schedulers_) {
    const BatchScheduler::Stats s = scheduler->stats();
    total.requests += s.requests;
    total.rejected += s.rejected;
    total.shed += s.shed;
    total.expired += s.expired;
    total.expired_inflight += s.expired_inflight;
    total.internal_errors += s.internal_errors;
    total.degraded_served += s.degraded_served;
    total.degraded_entries += s.degraded_entries;
    total.batches += s.batches;
    total.full_flushes += s.full_flushes;
    total.deadline_flushes += s.deadline_flushes;
    total.shutdown_flushes += s.shutdown_flushes;
    total.max_batch = std::max(total.max_batch, s.max_batch);
  }
  return total;
}

}  // namespace ses::serve
