#include "serve/admission.h"

#include <algorithm>
#include <sstream>

namespace ses::serve {

AdmissionDecision BoundedQueueAdmission::Admit(OpKind op,
                                               int64_t queued_requests) {
  (void)op;
  if (queued_requests < max_queued_) return AdmissionDecision::Admit();
  return AdmissionDecision::Shed("queue_depth", retry_after_us_);
}

std::string BoundedQueueAdmission::DebugState() const {
  std::ostringstream out;
  out << "{\"policy\":\"bounded_queue\",\"max_queued\":" << max_queued_ << "}";
  return out.str();
}

AdmissionDecision BurnRateAdmission::Admit(OpKind op,
                                           int64_t queued_requests) {
  if (queued_requests >= options_.max_queued_requests)
    return AdmissionDecision::Shed("queue_depth",
                                   options_.base_retry_after_us);
  const double burn = burn_.load(std::memory_order_relaxed);
  if (burn < options_.shed_explain_burn_rate) return AdmissionDecision::Admit();
  // Scale the backoff hint with overload depth: a client rejected at 8x the
  // shed threshold should stay away ~8x longer than one rejected at the
  // margin. Capped so the hint never exceeds a reasonable retry horizon.
  const auto hint = [&](double threshold) {
    const double factor = std::min(64.0, burn / std::max(1e-9, threshold));
    return static_cast<int64_t>(
        static_cast<double>(options_.base_retry_after_us) *
        std::max(1.0, factor));
  };
  if (burn >= options_.shed_all_burn_rate)
    return AdmissionDecision::Shed("burn_rate",
                                   hint(options_.shed_all_burn_rate));
  // Between the thresholds: shed recomputable work first, keep Predict.
  if (op != OpKind::kPredict)
    return AdmissionDecision::Shed("burn_rate_explain",
                                   hint(options_.shed_explain_burn_rate));
  return AdmissionDecision::Admit();
}

std::string BurnRateAdmission::DebugState() const {
  std::ostringstream out;
  out << "{\"policy\":\"burn_rate\",\"burn_rate\":" << burn_rate()
      << ",\"shed_explain_at\":" << options_.shed_explain_burn_rate
      << ",\"shed_all_at\":" << options_.shed_all_burn_rate
      << ",\"max_queued\":" << options_.max_queued_requests << "}";
  return out.str();
}

bool DegradedState::Update(double burn_rate) {
  if (burn_rate >= options_.enter_burn_rate) {
    cool_streak_ = 0;
    if (!degraded_ && ++hot_streak_ >= options_.enter_consecutive) {
      degraded_ = true;
      hot_streak_ = 0;
      ++entries_;
    }
  } else if (burn_rate <= options_.exit_burn_rate) {
    hot_streak_ = 0;
    if (degraded_ && ++cool_streak_ >= options_.exit_consecutive) {
      degraded_ = false;
      cool_streak_ = 0;
    }
  } else {
    // Mid-band: hold the current state, restart both streaks — a transition
    // needs `*_consecutive` observations past its own threshold, not merely
    // near it.
    hot_streak_ = 0;
    cool_streak_ = 0;
  }
  return degraded_;
}

}  // namespace ses::serve
