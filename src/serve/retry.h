#ifndef SES_SERVE_RETRY_H_
#define SES_SERVE_RETRY_H_

#include <algorithm>
#include <cstdint>

namespace ses::serve {

/// Client-side backoff policy for kOverloaded rejections. The schedule is
/// jittered exponential: attempt k waits
///
///   base_k = initial_backoff_us * multiplier^k   (capped at max_backoff_us)
///   floor  = max(base_k, server retry_after hint)
///   delay  = floor * (1 - jitter + 2 * jitter * u),  u ~ U[0,1)
///
/// Full-spread jitter decorrelates a thundering herd: without it, every
/// client rejected by the same overloaded batch retries in the same
/// microsecond and re-creates the spike it is backing off from.
struct RetryPolicy {
  int max_attempts = 4;             ///< total tries including the first
  int64_t initial_backoff_us = 200;
  double multiplier = 2.0;
  int64_t max_backoff_us = 50000;
  double jitter = 0.5;              ///< 0 = deterministic, 0.5 = ±50%
};

/// Delay before retry number `attempt` (0 = first retry). `retry_after_us`
/// is the server hint from Status (a floor, never shortened by backoff);
/// `unit_random` is a caller-supplied draw in [0,1) so benches can seed
/// deterministically.
inline int64_t RetryDelayUs(const RetryPolicy& policy, int attempt,
                            int64_t retry_after_us, double unit_random) {
  double base = static_cast<double>(policy.initial_backoff_us);
  for (int k = 0; k < attempt; ++k) base *= policy.multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff_us));
  base = std::max(base, static_cast<double>(retry_after_us));
  const double spread = 1.0 - policy.jitter + 2.0 * policy.jitter * unit_random;
  return static_cast<int64_t>(base * std::max(0.0, spread));
}

}  // namespace ses::serve

#endif  // SES_SERVE_RETRY_H_
