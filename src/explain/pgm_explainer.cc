#include "explain/pgm_explainer.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::explain {

namespace t = ses::tensor;

std::vector<float> PgmExplainer::ExplainEdges(
    const data::Dataset& ds, const std::vector<int64_t>& nodes) {
  SES_TRACE_SPAN("explain/PGMExplainer");
  // Perturbation-based: only forward predictions are compared, never grads.
  autograd::InferenceGuard no_grad;
  util::Rng rng(37);
  const auto& und_edges = ds.graph.edges();
  std::vector<float> scores(und_edges.size(), 0.0f);
  std::vector<float> counts(und_edges.size(), 0.0f);

  for (int64_t v : nodes.empty() ? NodesToExplain(ds, 0) : nodes) {
    graph::Subgraph sub = graph::ExtractEgoNet(ds.graph, v, options_.hops);
    const int64_t ns = static_cast<int64_t>(sub.nodes.size());
    if (ns <= 1) continue;
    auto sub_edges = sub.graph.DirectedEdges(/*add_self_loops=*/true);
    auto base_features = ds.features->GatherRows(sub.nodes);

    // Original prediction for the center inside its subgraph.
    util::Rng r0(0);
    auto base_out = encoder_->Forward(
        nn::FeatureInput::Sparse(
            std::make_shared<t::SparseMatrix>(base_features)),
        sub_edges, {}, 0.0f, /*training=*/false, &r0);
    const int64_t base_pred =
        t::ArgmaxRows(base_out.logits.value())[static_cast<size_t>(
            sub.center_local)];

    // Contingency counts per local node: [perturbed][changed].
    std::vector<std::array<double, 4>> table(
        static_cast<size_t>(ns), {0.0, 0.0, 0.0, 0.0});
    std::vector<bool> perturbed(static_cast<size_t>(ns));
    for (int64_t s = 0; s < options_.samples; ++s) {
      t::SparseMatrix mutated = base_features;
      bool any = false;
      for (int64_t i = 0; i < ns; ++i) {
        perturbed[static_cast<size_t>(i)] =
            i != sub.center_local && rng.Bernoulli(options_.perturb_prob);
        if (!perturbed[static_cast<size_t>(i)]) continue;
        any = true;
        for (int64_t e = mutated.row_ptr[static_cast<size_t>(i)];
             e < mutated.row_ptr[static_cast<size_t>(i) + 1]; ++e)
          mutated.values[static_cast<size_t>(e)] = 0.0f;
      }
      if (!any) continue;
      util::Rng r1(0);
      auto out = encoder_->Forward(
          nn::FeatureInput::Sparse(
              std::make_shared<t::SparseMatrix>(mutated)),
          sub_edges, {}, 0.0f, /*training=*/false, &r1);
      const bool changed =
          t::ArgmaxRows(out.logits.value())[static_cast<size_t>(
              sub.center_local)] != base_pred;
      for (int64_t i = 0; i < ns; ++i) {
        const int p = perturbed[static_cast<size_t>(i)] ? 1 : 0;
        const int c = changed ? 1 : 0;
        table[static_cast<size_t>(i)][static_cast<size_t>(2 * p + c)] += 1.0;
      }
    }

    // Chi-square dependence score per neighbor.
    std::vector<float> dependence(static_cast<size_t>(ns), 0.0f);
    for (int64_t i = 0; i < ns; ++i) {
      const auto& cell = table[static_cast<size_t>(i)];
      const double total = cell[0] + cell[1] + cell[2] + cell[3];
      if (total <= 0.0) continue;
      const double row0 = cell[0] + cell[1], row1 = cell[2] + cell[3];
      const double col0 = cell[0] + cell[2], col1 = cell[1] + cell[3];
      double chi2 = 0.0;
      const double expected[4] = {row0 * col0 / total, row0 * col1 / total,
                                  row1 * col0 / total, row1 * col1 / total};
      for (int k = 0; k < 4; ++k) {
        if (expected[k] <= 1e-9) continue;
        const double d = cell[static_cast<size_t>(k)] - expected[k];
        chi2 += d * d / expected[k];
      }
      dependence[static_cast<size_t>(i)] = static_cast<float>(chi2);
    }

    // Edge (a, b) in the subgraph scores by the endpoint dependences.
    for (auto [la, lb] : sub.graph.edges()) {
      const int64_t ga = sub.nodes[static_cast<size_t>(la)];
      const int64_t gb = sub.nodes[static_cast<size_t>(lb)];
      auto key = std::make_pair(std::min(ga, gb), std::max(ga, gb));
      auto it = std::lower_bound(und_edges.begin(), und_edges.end(), key);
      if (it == und_edges.end() || *it != key) continue;
      const size_t idx = static_cast<size_t>(it - und_edges.begin());
      scores[idx] += 0.5f * (dependence[static_cast<size_t>(la)] +
                             dependence[static_cast<size_t>(lb)]);
      counts[idx] += 1.0f;
    }
  }
  for (size_t i = 0; i < scores.size(); ++i)
    if (counts[i] > 0.0f) scores[i] /= counts[i];
  return scores;
}

}  // namespace ses::explain
