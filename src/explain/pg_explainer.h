#ifndef SES_EXPLAIN_PG_EXPLAINER_H_
#define SES_EXPLAIN_PG_EXPLAINER_H_

#include <memory>

#include "explain/explainer.h"
#include "nn/linear.h"

namespace ses::explain {

/// PGExplainer (Luo et al., NeurIPS'20): a parameterized explainer. A small
/// MLP maps each edge's endpoint embeddings [z_u || z_v] to an importance
/// logit; during training, masks are sampled from the concrete (relaxed
/// Bernoulli) distribution over those logits and optimized to preserve the
/// trained model's predictions under size/entropy regularization. One
/// training run explains every instance collectively — the multi-instance
/// property the paper credits PGExplainer with, and the reason it is an
/// order of magnitude faster than GNNExplainer in Table 6.
class PgExplainer : public Explainer {
 public:
  struct Options {
    int64_t epochs = 30;
    float lr = 0.01f;
    float temperature = 1.0f;
    float lambda_size = 0.05f;
    float lambda_entropy = 0.1f;
    int64_t mlp_hidden = 64;
  };

  explicit PgExplainer(const models::Encoder* encoder)
      : encoder_(encoder), options_(Options()) {}
  PgExplainer(const models::Encoder* encoder, Options options)
      : encoder_(encoder), options_(options) {}

  std::string name() const override { return "PGExplainer"; }
  std::vector<float> ExplainEdges(const data::Dataset& ds,
                                  const std::vector<int64_t>& nodes = {}) override;

 private:
  const models::Encoder* encoder_;
  Options options_;
};

}  // namespace ses::explain

#endif  // SES_EXPLAIN_PG_EXPLAINER_H_
