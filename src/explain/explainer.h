#ifndef SES_EXPLAIN_EXPLAINER_H_
#define SES_EXPLAIN_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/graph.h"
#include "models/encoders.h"

namespace ses::explain {

/// Uniform interface over the post-hoc explanation baselines so the Table 4
/// (explanation AUC), Table 5 (Fidelity+) and Table 6 (timing) harnesses can
/// sweep them generically.
///
/// Representation conventions shared with SES:
///  - edge importance: one float per undirected edge of ds.graph.edges();
///  - feature importance: one float per CSR nonzero of ds.features.
class Explainer {
 public:
  virtual ~Explainer() = default;
  virtual std::string name() const = 0;

  virtual bool SupportsEdgeExplanations() const { return true; }
  virtual bool SupportsFeatureExplanations() const { return false; }

  /// Importance per undirected edge. `nodes` selects which nodes the
  /// per-node explainers process (empty = every node); the global explainers
  /// (GRAD, ATT, PGExplainer) ignore it. This is the knob the timing
  /// benchmark and the case studies turn.
  virtual std::vector<float> ExplainEdges(const data::Dataset& ds,
                                          const std::vector<int64_t>& nodes = {}) = 0;

  /// Importance per feature nonzero (CSR order of ds.features).
  virtual std::vector<float> ExplainFeaturesNnz(
      const data::Dataset& ds, const std::vector<int64_t>& nodes = {});
};

/// Shared helper for per-node explainers: runs the trained encoder on a
/// node-induced subgraph with optional differentiable edge / feature masks
/// and returns log-probabilities for the subgraph nodes.
autograd::Variable SubgraphLogProbs(
    const models::Encoder& encoder, const data::Dataset& ds,
    const graph::Subgraph& sub, const autograd::EdgeListPtr& sub_edges,
    const autograd::Variable& edge_mask, const autograd::Variable& nnz_mask,
    const std::shared_ptr<const tensor::SparseMatrix>& sub_features);

/// Nodes to explain: motif nodes first (they carry ground truth), then the
/// rest; truncated to `max_nodes` when positive.
std::vector<int64_t> NodesToExplain(const data::Dataset& ds, int64_t max_nodes);

}  // namespace ses::explain

#endif  // SES_EXPLAIN_EXPLAINER_H_
