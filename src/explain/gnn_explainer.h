#ifndef SES_EXPLAIN_GNN_EXPLAINER_H_
#define SES_EXPLAIN_GNN_EXPLAINER_H_

#include "explain/explainer.h"

namespace ses::explain {

/// GNNExplainer (Ying et al., NeurIPS'19). For each explained node it
/// optimizes, on the node's 2-hop computation subgraph, a per-edge mask and
/// a per-feature mask that keep the trained model's prediction (mutual
/// information surrogate: NLL of the original prediction) while being small
/// and near-binary (size + element-entropy regularizers). This per-node
/// re-optimization is what makes GNNExplainer the slowest column of the
/// paper's Table 6.
class GnnExplainer : public Explainer {
 public:
  struct Options {
    int64_t epochs = 100;
    float lr = 0.05f;
    int64_t hops = 2;
    float lambda_size = 0.05f;
    float lambda_entropy = 0.1f;
    float lambda_feat_size = 0.1f;
  };

  explicit GnnExplainer(const models::Encoder* encoder)
      : encoder_(encoder), options_(Options()) {}
  GnnExplainer(const models::Encoder* encoder, Options options)
      : encoder_(encoder), options_(options) {}

  std::string name() const override { return "GNNExplainer"; }
  bool SupportsFeatureExplanations() const override { return true; }
  std::vector<float> ExplainEdges(const data::Dataset& ds,
                                  const std::vector<int64_t>& nodes = {}) override;
  std::vector<float> ExplainFeaturesNnz(
      const data::Dataset& ds, const std::vector<int64_t>& nodes = {}) override;

 private:
  /// Runs the per-node optimizations once and fills both caches.
  void Run(const data::Dataset& ds, const std::vector<int64_t>& nodes);

  const models::Encoder* encoder_;
  Options options_;
  const data::Dataset* cached_ds_ = nullptr;
  std::vector<int64_t> cached_nodes_;
  bool has_cache_ = false;
  std::vector<float> edge_scores_;
  std::vector<float> feature_scores_;
};

}  // namespace ses::explain

#endif  // SES_EXPLAIN_GNN_EXPLAINER_H_
