#include "explain/graphlime.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::explain {

namespace t = ses::tensor;

namespace {

/// Centered, Frobenius-normalized Gaussian kernel over a single value
/// vector (one feature dimension, or reused per output class). Bandwidth by
/// the median heuristic.
std::vector<double> CenteredKernel(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<double> k(n * n, 0.0);
  // Bandwidth: variance-based (cheap, robust for binary features).
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var = std::max(var / static_cast<double>(n), 1e-6);
  const double gamma = 1.0 / (2.0 * var);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      const double d = values[i] - values[j];
      k[i * n + j] = std::exp(-gamma * d * d);
    }
  // Double centering: K <- H K H with H = I - 11^T/n.
  std::vector<double> row_mean(n, 0.0), col_mean(n, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      row_mean[i] += k[i * n + j];
      col_mean[j] += k[i * n + j];
      total += k[i * n + j];
    }
  for (size_t i = 0; i < n; ++i) row_mean[i] /= static_cast<double>(n);
  for (size_t j = 0; j < n; ++j) col_mean[j] /= static_cast<double>(n);
  total /= static_cast<double>(n * n);
  double norm = 0.0;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      k[i * n + j] = k[i * n + j] - row_mean[i] - col_mean[j] + total;
      norm += k[i * n + j] * k[i * n + j];
    }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (auto& v : k) v /= norm;
  return k;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

std::vector<float> GraphLimeExplainer::ExplainEdges(
    const data::Dataset&, const std::vector<int64_t>&) {
  SES_CHECK(false && "GraphLIME provides feature explanations only");
  return {};
}

std::vector<float> GraphLimeExplainer::ExplainFeaturesNnz(
    const data::Dataset& ds, const std::vector<int64_t>& nodes) {
  SES_TRACE_SPAN("explain/GraphLIME");
  util::Rng rng(41);
  std::vector<float> scores(static_cast<size_t>(ds.features->nnz()), 0.0f);

  // Soft predictions from the trained model (the dependent variable).
  t::Tensor probs;
  {
    autograd::InferenceGuard no_grad;
    util::Rng r0(0);
    auto out = encoder_->Forward(nn::FeatureInput::Sparse(ds.features),
                                 ds.graph.DirectedEdges(true), {}, 0.0f,
                                 /*training=*/false, &r0);
    probs = t::SoftmaxRows(out.logits.value());
  }
  t::Tensor dense_x = ds.features->ToDense();

  for (int64_t v : nodes.empty() ? NodesToExplain(ds, 0) : nodes) {
    // Local dataset: the node plus its k-hop neighborhood (capped).
    graph::Subgraph sub = graph::ExtractEgoNet(ds.graph, v, options_.hops);
    std::vector<int64_t> samples = sub.nodes;
    if (static_cast<int64_t>(samples.size()) > options_.max_neighborhood) {
      rng.Shuffle(&samples);
      samples.resize(static_cast<size_t>(options_.max_neighborhood));
      if (std::find(samples.begin(), samples.end(), v) == samples.end())
        samples[0] = v;
    }
    const size_t n = samples.size();
    if (n < 4) continue;

    // Candidate dimensions: the center's nonzero features (the only entries
    // the per-nnz output can carry).
    const int64_t lo = ds.features->row_ptr[static_cast<size_t>(v)];
    const int64_t hi = ds.features->row_ptr[static_cast<size_t>(v) + 1];
    const int64_t d = hi - lo;
    if (d == 0) continue;

    // Output kernel: summed centered kernels of the class probabilities.
    std::vector<double> l(n * n, 0.0);
    {
      std::vector<double> col(n);
      for (int64_t c = 0; c < probs.cols(); ++c) {
        for (size_t i = 0; i < n; ++i) col[i] = probs.At(samples[i], c);
        auto k = CenteredKernel(col);
        for (size_t i = 0; i < l.size(); ++i) l[i] += k[i];
      }
    }

    // Feature kernels for candidate dimensions.
    std::vector<std::vector<double>> kernels(static_cast<size_t>(d));
    std::vector<double> col(n);
    for (int64_t j = 0; j < d; ++j) {
      const int64_t dim = ds.features->col_idx[static_cast<size_t>(lo + j)];
      for (size_t i = 0; i < n; ++i) col[i] = dense_x.At(samples[i], dim);
      kernels[static_cast<size_t>(j)] = CenteredKernel(col);
    }

    // Non-negative HSIC lasso by cyclic coordinate descent.
    std::vector<double> gram(static_cast<size_t>(d * d));
    std::vector<double> corr(static_cast<size_t>(d));
    for (int64_t a = 0; a < d; ++a) {
      corr[static_cast<size_t>(a)] = Dot(kernels[static_cast<size_t>(a)], l);
      for (int64_t b = 0; b <= a; ++b) {
        const double g = Dot(kernels[static_cast<size_t>(a)],
                             kernels[static_cast<size_t>(b)]);
        gram[static_cast<size_t>(a * d + b)] = g;
        gram[static_cast<size_t>(b * d + a)] = g;
      }
    }
    std::vector<double> beta(static_cast<size_t>(d), 0.0);
    for (int64_t it = 0; it < options_.cd_iterations; ++it) {
      for (int64_t a = 0; a < d; ++a) {
        double residual = corr[static_cast<size_t>(a)];
        for (int64_t b = 0; b < d; ++b) {
          if (b == a) continue;
          residual -= gram[static_cast<size_t>(a * d + b)] *
                      beta[static_cast<size_t>(b)];
        }
        const double denom =
            std::max(gram[static_cast<size_t>(a * d + a)], 1e-9);
        beta[static_cast<size_t>(a)] =
            std::max(0.0, (residual - options_.rho) / denom);
      }
    }
    for (int64_t j = 0; j < d; ++j)
      scores[static_cast<size_t>(lo + j)] =
          static_cast<float>(beta[static_cast<size_t>(j)]);
  }
  return scores;
}

}  // namespace ses::explain
