#include "explain/explainer.h"

#include "autograd/ops.h"
#include "util/logging.h"

namespace ses::explain {

namespace ag = ses::autograd;

std::vector<float> Explainer::ExplainFeaturesNnz(
    const data::Dataset&, const std::vector<int64_t>&) {
  SES_CHECK(false && "this explainer does not produce feature explanations");
  return {};
}

ag::Variable SubgraphLogProbs(
    const models::Encoder& encoder, const data::Dataset& ds,
    const graph::Subgraph& sub, const ag::EdgeListPtr& sub_edges,
    const ag::Variable& edge_mask, const ag::Variable& nnz_mask,
    const std::shared_ptr<const tensor::SparseMatrix>& sub_features) {
  (void)ds;
  util::Rng rng(0);
  nn::FeatureInput input = nn::FeatureInput::Sparse(sub_features, nnz_mask);
  auto out = encoder.Forward(input, sub_edges, edge_mask, 0.0f,
                             /*training=*/false, &rng);
  return ag::LogSoftmaxRows(out.logits);
}

std::vector<int64_t> NodesToExplain(const data::Dataset& ds,
                                    int64_t max_nodes) {
  std::vector<int64_t> nodes;
  nodes.reserve(static_cast<size_t>(ds.num_nodes()));
  if (!ds.in_motif.empty()) {
    for (int64_t i = 0; i < ds.num_nodes(); ++i)
      if (ds.in_motif[static_cast<size_t>(i)]) nodes.push_back(i);
    for (int64_t i = 0; i < ds.num_nodes(); ++i)
      if (!ds.in_motif[static_cast<size_t>(i)]) nodes.push_back(i);
  } else {
    for (int64_t i = 0; i < ds.num_nodes(); ++i) nodes.push_back(i);
  }
  if (max_nodes > 0 && static_cast<int64_t>(nodes.size()) > max_nodes)
    nodes.resize(static_cast<size_t>(max_nodes));
  return nodes;
}

}  // namespace ses::explain
