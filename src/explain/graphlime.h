#ifndef SES_EXPLAIN_GRAPHLIME_H_
#define SES_EXPLAIN_GRAPHLIME_H_

#include "explain/explainer.h"

namespace ses::explain {

/// GraphLIME (Huang et al., TKDE'22): a local, nonlinear, model-agnostic
/// feature explainer built on HSIC Lasso. For each explained node it takes
/// the node's neighborhood as the local dataset, forms centered Gaussian
/// kernel matrices per feature dimension and for the model's soft
/// predictions, and solves a non-negative lasso whose coefficients rank the
/// feature dimensions by dependence with the prediction.
class GraphLimeExplainer : public Explainer {
 public:
  struct Options {
    int64_t hops = 2;
    float rho = 0.1f;           ///< lasso regularization
    int64_t cd_iterations = 50; ///< coordinate-descent sweeps
    int64_t max_neighborhood = 64;
  };

  explicit GraphLimeExplainer(const models::Encoder* encoder)
      : encoder_(encoder), options_(Options()) {}
  GraphLimeExplainer(const models::Encoder* encoder, Options options)
      : encoder_(encoder), options_(options) {}

  std::string name() const override { return "GraphLIME"; }
  bool SupportsEdgeExplanations() const override { return false; }
  bool SupportsFeatureExplanations() const override { return true; }
  std::vector<float> ExplainEdges(const data::Dataset& ds,
                                  const std::vector<int64_t>& nodes = {}) override;
  std::vector<float> ExplainFeaturesNnz(
      const data::Dataset& ds, const std::vector<int64_t>& nodes = {}) override;

 private:
  const models::Encoder* encoder_;
  Options options_;
};

}  // namespace ses::explain

#endif  // SES_EXPLAIN_GRAPHLIME_H_
