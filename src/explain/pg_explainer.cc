#include "explain/pg_explainer.h"

#include "obs/trace.h"

#include <cmath>

#include "autograd/ops.h"
#include "nn/optim.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::explain {

namespace ag = ses::autograd;
namespace t = ses::tensor;

std::vector<float> PgExplainer::ExplainEdges(const data::Dataset& ds,
                                             const std::vector<int64_t>&) {
  SES_TRACE_SPAN("explain/PGExplainer");
  util::Rng rng(31);
  auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  nn::FeatureInput input = nn::FeatureInput::Sparse(ds.features);

  // Frozen embeddings + original predictions from the trained model.
  // Tape-free: gradient later flows to the scorer through `mask`, not
  // through this embedding extraction.
  t::Tensor embeddings;
  std::vector<int64_t> original_pred;
  {
    ag::InferenceGuard no_grad;
    util::Rng r0(0);
    auto out = encoder_->Forward(input, edges, {}, 0.0f, /*training=*/false,
                                 &r0);
    embeddings = out.hidden.value();
    original_pred = t::ArgmaxRows(out.logits.value());
  }
  std::vector<int64_t> all(static_cast<size_t>(ds.num_nodes()));
  for (int64_t i = 0; i < ds.num_nodes(); ++i) all[static_cast<size_t>(i)] = i;

  // Edge scorer g([z_u || z_v]) — evaluated as two projections + gathers.
  nn::Mlp scorer({2 * embeddings.cols(), options_.mlp_hidden, 1}, &rng);
  nn::Adam optimizer(scorer.Parameters(), options_.lr);
  ag::Variable z = ag::Variable::Constant(embeddings);

  auto edge_logits = [&]() {
    ag::Variable zu = ag::GatherRows(z, edges->src);
    ag::Variable zv = ag::GatherRows(z, edges->dst);
    return scorer.Forward(ag::ConcatCols(zu, zv));  // E x 1
  };

  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    ag::Variable logits = edge_logits();
    // Concrete / Gumbel-sigmoid relaxation: sigmoid((logits + noise) / tau).
    t::Tensor noise(edges->size(), 1);
    for (int64_t e = 0; e < edges->size(); ++e) {
      const double u = std::max(1e-9, rng.Uniform());
      noise[e] = static_cast<float>(std::log(u) - std::log(1.0 - u));
    }
    ag::Variable mask = ag::Sigmoid(ag::Scale(
        ag::Add(logits, ag::Variable::Constant(noise)),
        1.0f / options_.temperature));
    util::Rng r1(0);
    auto out = encoder_->Forward(input, edges, mask, 0.0f, /*training=*/false,
                                 &r1);
    ag::Variable loss = ag::NllLoss(ag::LogSoftmaxRows(out.logits),
                                    original_pred, all);
    loss = ag::Add(loss,
                   ag::Scale(ag::MeanAll(mask), options_.lambda_size));
    ag::Variable one_minus = ag::AddScalar(ag::Neg(mask), 1.0f);
    ag::Variable ent =
        ag::Neg(ag::Add(ag::Mul(mask, ag::Log(mask)),
                        ag::Mul(one_minus, ag::Log(one_minus))));
    loss = ag::Add(loss, ag::Scale(ag::MeanAll(ent),
                                   options_.lambda_entropy));
    ag::Backward(loss);
    optimizer.Step();
  }

  // Deterministic readout (no noise), symmetrized over directions.
  t::Tensor final_scores = t::Sigmoid(edge_logits().value());
  const auto& und = ds.graph.edges();
  std::vector<float> scores(und.size());
  for (size_t i = 0; i < und.size(); ++i)
    scores[i] = 0.5f * (final_scores[2 * static_cast<int64_t>(i)] +
                        final_scores[2 * static_cast<int64_t>(i) + 1]);
  return scores;
}

}  // namespace ses::explain
