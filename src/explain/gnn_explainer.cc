#include "explain/gnn_explainer.h"

#include "obs/trace.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "nn/optim.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::explain {

namespace ag = ses::autograd;
namespace t = ses::tensor;

void GnnExplainer::Run(const data::Dataset& ds,
                       const std::vector<int64_t>& nodes) {
  if (has_cache_ && cached_ds_ == &ds && cached_nodes_ == nodes) return;
  cached_ds_ = &ds;
  cached_nodes_ = nodes;
  has_cache_ = true;
  util::Rng rng(23);

  const auto& und_edges = ds.graph.edges();
  edge_scores_.assign(und_edges.size(), 0.0f);
  std::vector<float> edge_counts(und_edges.size(), 0.0f);
  feature_scores_.assign(static_cast<size_t>(ds.features->nnz()), 0.0f);
  std::vector<float> feature_counts(feature_scores_.size(), 0.0f);

  // Original full-graph predictions (the explanation target). Read-only,
  // so tape-free; the mask optimization below still records its own tape.
  std::vector<int64_t> original_pred;
  {
    ag::InferenceGuard no_grad;
    util::Rng r0(0);
    auto out = encoder_->Forward(nn::FeatureInput::Sparse(ds.features),
                                 ds.graph.DirectedEdges(true), {}, 0.0f,
                                 /*training=*/false, &r0);
    original_pred = t::ArgmaxRows(out.logits.value());
  }

  for (int64_t v : nodes.empty() ? NodesToExplain(ds, 0) : nodes) {
    graph::Subgraph sub = graph::ExtractEgoNet(ds.graph, v, options_.hops);
    if (sub.graph.num_edges() == 0) continue;
    auto sub_edges = sub.graph.DirectedEdges(/*add_self_loops=*/true);
    auto sub_features = std::make_shared<t::SparseMatrix>(
        ds.features->GatherRows(sub.nodes));

    // Trainable mask logits (sigmoid applied in the loss graph).
    ag::Variable edge_logits = ag::Variable::Parameter(
        t::Tensor::Randn(sub_edges->size(), 1, &rng));
    edge_logits.mutable_value().ScaleInPlace(0.1f);
    ag::Variable feat_logits = ag::Variable::Parameter(
        t::Tensor::Randn(sub_features->nnz(), 1, &rng));
    feat_logits.mutable_value().ScaleInPlace(0.1f);

    nn::Adam optimizer({edge_logits, feat_logits}, options_.lr);
    const std::vector<int64_t> center{sub.center_local};
    std::vector<int64_t> target_labels(sub.nodes.size(), 0);
    target_labels[static_cast<size_t>(sub.center_local)] =
        original_pred[static_cast<size_t>(v)];

    ag::Variable edge_mask, feat_mask;
    for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
      edge_mask = ag::Sigmoid(edge_logits);
      feat_mask = ag::Sigmoid(feat_logits);
      ag::Variable logp = SubgraphLogProbs(*encoder_, ds, sub, sub_edges,
                                           edge_mask, feat_mask, sub_features);
      ag::Variable loss = ag::NllLoss(logp, target_labels, center);
      loss = ag::Add(loss, ag::Scale(ag::MeanAll(edge_mask),
                                     options_.lambda_size));
      loss = ag::Add(loss, ag::Scale(ag::MeanAll(feat_mask),
                                     options_.lambda_feat_size));
      // Element entropy pushes the edge mask toward binary decisions.
      ag::Variable one_minus = ag::AddScalar(ag::Neg(edge_mask), 1.0f);
      ag::Variable ent = ag::Neg(
          ag::Add(ag::Mul(edge_mask, ag::Log(edge_mask)),
                  ag::Mul(one_minus, ag::Log(one_minus))));
      loss = ag::Add(loss, ag::Scale(ag::MeanAll(ent),
                                     options_.lambda_entropy));
      ag::Backward(loss);
      optimizer.Step();
    }

    // Fold the learned masks back onto global edges / feature nonzeros.
    const t::Tensor& em = edge_mask.value();
    for (int64_t e = 0; e < sub_edges->size(); ++e) {
      const int64_t ls = sub_edges->src[static_cast<size_t>(e)];
      const int64_t ld = sub_edges->dst[static_cast<size_t>(e)];
      if (ls == ld) continue;  // self-loop
      const int64_t gu = sub.nodes[static_cast<size_t>(ls)];
      const int64_t gv = sub.nodes[static_cast<size_t>(ld)];
      // Find the undirected edge index by binary search in the sorted list.
      auto key = std::make_pair(std::min(gu, gv), std::max(gu, gv));
      auto it = std::lower_bound(und_edges.begin(), und_edges.end(), key);
      if (it == und_edges.end() || *it != key) continue;
      const size_t idx = static_cast<size_t>(it - und_edges.begin());
      edge_scores_[idx] += em[e];
      edge_counts[idx] += 1.0f;
    }
    const t::Tensor& fm = feat_mask.value();
    // Feature mask of the CENTER row only (per-node feature explanation).
    const int64_t row = sub.center_local;
    const int64_t global_lo = ds.features->row_ptr[static_cast<size_t>(v)];
    const int64_t local_lo = sub_features->row_ptr[static_cast<size_t>(row)];
    const int64_t count = sub_features->row_ptr[static_cast<size_t>(row) + 1] -
                          local_lo;
    for (int64_t j = 0; j < count; ++j) {
      feature_scores_[static_cast<size_t>(global_lo + j)] += fm[local_lo + j];
      feature_counts[static_cast<size_t>(global_lo + j)] += 1.0f;
    }
  }
  for (size_t i = 0; i < edge_scores_.size(); ++i)
    if (edge_counts[i] > 0.0f) edge_scores_[i] /= edge_counts[i];
  for (size_t i = 0; i < feature_scores_.size(); ++i)
    if (feature_counts[i] > 0.0f) feature_scores_[i] /= feature_counts[i];
}

std::vector<float> GnnExplainer::ExplainEdges(
    const data::Dataset& ds, const std::vector<int64_t>& nodes) {
  SES_TRACE_SPAN("explain/GNNExplainer");
  Run(ds, nodes);
  return edge_scores_;
}

std::vector<float> GnnExplainer::ExplainFeaturesNnz(
    const data::Dataset& ds, const std::vector<int64_t>& nodes) {
  SES_TRACE_SPAN("explain/GNNExplainer");
  Run(ds, nodes);
  return feature_scores_;
}

}  // namespace ses::explain
