#ifndef SES_EXPLAIN_PGM_EXPLAINER_H_
#define SES_EXPLAIN_PGM_EXPLAINER_H_

#include "explain/explainer.h"

namespace ses::explain {

/// PGMExplainer (Vu & Thai, NeurIPS'20). Per explained node it perturbs
/// random subsets of its neighborhood's features, records whether the
/// model's prediction for the node changes, and screens each neighbor by
/// the statistical dependence (chi-square score on the 2x2 contingency
/// table) between "neighbor was perturbed" and "prediction changed". The
/// dependence scores are the probabilistic-graphical-model explanation; an
/// edge (v, u) inherits the dependence score of u.
class PgmExplainer : public Explainer {
 public:
  struct Options {
    int64_t samples = 60;       ///< perturbation rounds per node
    double perturb_prob = 0.4;  ///< chance each neighbor is perturbed
    int64_t hops = 2;
  };

  explicit PgmExplainer(const models::Encoder* encoder)
      : encoder_(encoder), options_(Options()) {}
  PgmExplainer(const models::Encoder* encoder, Options options)
      : encoder_(encoder), options_(options) {}

  std::string name() const override { return "PGMExplainer"; }
  std::vector<float> ExplainEdges(const data::Dataset& ds,
                                  const std::vector<int64_t>& nodes = {}) override;

 private:
  const models::Encoder* encoder_;
  Options options_;
};

}  // namespace ses::explain

#endif  // SES_EXPLAIN_PGM_EXPLAINER_H_
