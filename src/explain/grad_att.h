#ifndef SES_EXPLAIN_GRAD_ATT_H_
#define SES_EXPLAIN_GRAD_ATT_H_

#include "explain/explainer.h"

namespace ses::explain {

/// GRAD baseline (Ying et al.): saliency — the absolute gradient of the
/// model's loss with respect to each edge's aggregation weight and each
/// input-feature value. One backward pass over the full graph produces every
/// edge and feature score simultaneously.
class GradExplainer : public Explainer {
 public:
  /// `encoder` must already be trained; not owned.
  explicit GradExplainer(const models::Encoder* encoder) : encoder_(encoder) {}

  std::string name() const override { return "GRAD"; }
  bool SupportsFeatureExplanations() const override { return true; }
  std::vector<float> ExplainEdges(const data::Dataset& ds,
                                  const std::vector<int64_t>& nodes = {}) override;
  std::vector<float> ExplainFeaturesNnz(
      const data::Dataset& ds, const std::vector<int64_t>& nodes = {}) override;

 private:
  /// Runs the forward pass with mask parameters of 1 and backprops the
  /// predicted-label NLL; gradients land on the masks.
  void ComputeGradients(const data::Dataset& ds,
                        tensor::Tensor* edge_grad,
                        tensor::Tensor* feature_grad) const;

  const models::Encoder* encoder_;
};

/// ATT baseline (Velickovic et al. / Ying et al.): a GAT's averaged
/// attention coefficients, read directly from the trained attention layer.
class AttExplainer : public Explainer {
 public:
  explicit AttExplainer(const models::Encoder* gat_encoder)
      : encoder_(gat_encoder) {}

  std::string name() const override { return "ATT"; }
  std::vector<float> ExplainEdges(const data::Dataset& ds,
                                  const std::vector<int64_t>& nodes = {}) override;

 private:
  const models::Encoder* encoder_;
};

}  // namespace ses::explain

#endif  // SES_EXPLAIN_GRAD_ATT_H_
