#include "explain/grad_att.h"

#include "obs/trace.h"

#include <cmath>

#include "autograd/ops.h"
#include "models/node_classifier.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::explain {

namespace ag = ses::autograd;
namespace t = ses::tensor;

void GradExplainer::ComputeGradients(const data::Dataset& ds,
                                     t::Tensor* edge_grad,
                                     t::Tensor* feature_grad) const {
  util::Rng rng(0);
  auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  ag::Variable edge_mask =
      ag::Variable::Parameter(t::Tensor::Ones(edges->size(), 1));
  ag::Variable nnz_mask =
      ag::Variable::Parameter(t::Tensor::Ones(ds.features->nnz(), 1));
  nn::FeatureInput input = nn::FeatureInput::Sparse(ds.features, nnz_mask);
  auto out = encoder_->Forward(input, edges, edge_mask, 0.0f,
                               /*training=*/false, &rng);
  // Loss of the model's own predictions (saliency of the decision).
  auto pred = t::ArgmaxRows(out.logits.value());
  std::vector<int64_t> all(static_cast<size_t>(ds.num_nodes()));
  for (int64_t i = 0; i < ds.num_nodes(); ++i) all[static_cast<size_t>(i)] = i;
  ag::Variable loss =
      ag::NllLoss(ag::LogSoftmaxRows(out.logits), pred, all);
  ag::Backward(loss);
  if (edge_grad) *edge_grad = edge_mask.grad();
  if (feature_grad) *feature_grad = nnz_mask.grad();
}

std::vector<float> GradExplainer::ExplainEdges(const data::Dataset& ds,
                                               const std::vector<int64_t>&) {
  SES_TRACE_SPAN("explain/GRAD");
  t::Tensor edge_grad;
  ComputeGradients(ds, &edge_grad, nullptr);
  // Map |gradient| of the two directed copies onto the undirected edge.
  const auto& und = ds.graph.edges();
  std::vector<float> scores(und.size());
  // DirectedEdges(true) lays out both orientations of edge i at 2i, 2i+1.
  for (size_t i = 0; i < und.size(); ++i)
    scores[i] = 0.5f * (std::fabs(edge_grad[2 * static_cast<int64_t>(i)]) +
                        std::fabs(edge_grad[2 * static_cast<int64_t>(i) + 1]));
  return scores;
}

std::vector<float> GradExplainer::ExplainFeaturesNnz(
    const data::Dataset& ds, const std::vector<int64_t>&) {
  SES_TRACE_SPAN("explain/GRAD");
  t::Tensor feature_grad;
  ComputeGradients(ds, nullptr, &feature_grad);
  std::vector<float> scores(static_cast<size_t>(feature_grad.size()));
  for (int64_t i = 0; i < feature_grad.size(); ++i)
    scores[static_cast<size_t>(i)] = std::fabs(feature_grad[i]);
  return scores;
}

std::vector<float> AttExplainer::ExplainEdges(const data::Dataset& ds,
                                              const std::vector<int64_t>&) {
  SES_TRACE_SPAN("explain/ATT");
  // ATT only reads the attention coefficients the forward leaves behind;
  // GRAD above needs the tape and must NOT take this guard.
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  auto edges = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  nn::FeatureInput input = nn::FeatureInput::Sparse(ds.features);
  (void)encoder_->Forward(input, edges, {}, 0.0f, /*training=*/false, &rng);
  t::Tensor att = encoder_->LastAttention();
  SES_CHECK(att.size() == edges->size() && "ATT requires a GAT backbone");
  const auto& und = ds.graph.edges();
  std::vector<float> scores(und.size());
  for (size_t i = 0; i < und.size(); ++i)
    scores[i] = 0.5f * (att[2 * static_cast<int64_t>(i)] +
                        att[2 * static_cast<int64_t>(i) + 1]);
  return scores;
}

}  // namespace ses::explain
