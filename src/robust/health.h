#ifndef SES_ROBUST_HEALTH_H_
#define SES_ROBUST_HEALTH_H_

#include <cstdint>

namespace ses::robust {

/// Policy knobs for HealthMonitor (mirrored from models::TrainConfig).
struct HealthOptions {
  /// Consecutive poisoned steps tolerated before requesting a rollback to
  /// the last good checkpoint.
  int64_t max_bad_steps = 3;
  /// Multiplier applied to the learning rate on every rollback, so a
  /// diverging run restarts from good parameters on a gentler trajectory.
  float rollback_lr_decay = 0.5f;
};

/// Per-step numerical guard for training loops. Feed it the step's loss and
/// global gradient norm; it classifies the step:
///   kProceed  — both finite, apply the optimizer step
///   kSkip     — NaN/Inf seen, zero the gradients and skip the update
///   kRollback — max_bad_steps consecutive poisoned steps; restore the last
///               good checkpoint with a lowered LR (callers without a
///               checkpoint fall back to skipping)
/// Skips are counted in `ses.train.nan_skips`, acknowledged rollbacks in
/// `ses.train.rollbacks`.
class HealthMonitor {
 public:
  enum class Action { kProceed, kSkip, kRollback };

  explicit HealthMonitor(HealthOptions options = {});

  Action Observe(double loss, double grad_norm);

  /// Callers invoke this after actually performing a rollback; it resets
  /// the bad-step streak and bumps the rollback counter.
  void NoteRollback();

  int64_t consecutive_bad() const { return consecutive_bad_; }
  const HealthOptions& options() const { return options_; }

 private:
  HealthOptions options_;
  int64_t consecutive_bad_ = 0;
};

}  // namespace ses::robust

#endif  // SES_ROBUST_HEALTH_H_
