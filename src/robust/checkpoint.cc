#include "robust/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.h"
#include "robust/serialize.h"
#include "util/logging.h"

namespace ses::robust {

namespace fs = std::filesystem;

namespace {

constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".ses";

obs::Counter& WritesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("ses.ckpt.writes");
  return c;
}

obs::Counter& ResumeOkCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("ses.ckpt.resume_ok");
  return c;
}

obs::Counter& ResumeCorruptCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("ses.ckpt.resume_corrupt");
  return c;
}

template <typename T, typename WriteFn>
void WriteNamed(Serializer* s, const std::map<std::string, T>& map,
                WriteFn write) {
  s->WriteU64(map.size());
  for (const auto& [name, value] : map) {
    s->WriteString(name);
    write(s, value);
  }
}

template <typename T, typename ReadFn>
std::map<std::string, T> ReadNamed(Deserializer* d, ReadFn read) {
  std::map<std::string, T> map;
  const uint64_t n = d->ReadU64();
  for (uint64_t i = 0; i < n; ++i) {
    std::string name = d->ReadString();
    map.emplace(std::move(name), read(d));
  }
  return map;
}

}  // namespace

std::string TrainingCheckpoint::Serialize() const {
  Serializer s;
  s.WriteString(model);
  s.WriteString(phase);
  s.WriteI64(next_epoch);
  s.WriteTensorVec(params);
  s.WriteI64(optim.step_count);
  s.WriteTensorVec(optim.m);
  s.WriteTensorVec(optim.v);
  s.WriteRngState(rng);
  s.WriteF64(best_val);
  s.WriteF32(lr);
  WriteNamed(&s, tensors, [](Serializer* out, const tensor::Tensor& t) {
    out->WriteTensor(t);
  });
  WriteNamed(&s, tensor_lists,
             [](Serializer* out, const std::vector<tensor::Tensor>& v) {
               out->WriteTensorVec(v);
             });
  WriteNamed(&s, int_lists,
             [](Serializer* out, const std::vector<int64_t>& v) {
               out->WriteI64Vec(v);
             });
  WriteNamed(&s, double_lists,
             [](Serializer* out, const std::vector<double>& v) {
               out->WriteF64Vec(v);
             });
  WriteNamed(&s, scalars,
             [](Serializer* out, double v) { out->WriteF64(v); });
  return s.TakeBuffer();
}

TrainingCheckpoint TrainingCheckpoint::Deserialize(const std::string& payload) {
  Deserializer d(payload);
  TrainingCheckpoint ckpt;
  ckpt.model = d.ReadString();
  ckpt.phase = d.ReadString();
  ckpt.next_epoch = d.ReadI64();
  ckpt.params = d.ReadTensorVec();
  ckpt.optim.step_count = d.ReadI64();
  ckpt.optim.m = d.ReadTensorVec();
  ckpt.optim.v = d.ReadTensorVec();
  ckpt.rng = d.ReadRngState();
  ckpt.best_val = d.ReadF64();
  ckpt.lr = d.ReadF32();
  ckpt.tensors = ReadNamed<tensor::Tensor>(
      &d, [](Deserializer* in) { return in->ReadTensor(); });
  ckpt.tensor_lists = ReadNamed<std::vector<tensor::Tensor>>(
      &d, [](Deserializer* in) { return in->ReadTensorVec(); });
  ckpt.int_lists = ReadNamed<std::vector<int64_t>>(
      &d, [](Deserializer* in) { return in->ReadI64Vec(); });
  ckpt.double_lists = ReadNamed<std::vector<double>>(
      &d, [](Deserializer* in) { return in->ReadF64Vec(); });
  ckpt.scalars =
      ReadNamed<double>(&d, [](Deserializer* in) { return in->ReadF64(); });
  if (!d.AtEnd())
    throw std::runtime_error("checkpoint: trailing bytes after payload");
  return ckpt;
}

CheckpointManager::CheckpointManager(std::string dir, int64_t keep_last)
    : dir_(std::move(dir)), keep_last_(std::max<int64_t>(1, keep_last)) {
  fs::create_directories(dir_);
  const auto existing = ListSorted();
  next_seq_ = existing.empty() ? 1 : existing.back().first + 1;
}

std::vector<std::pair<uint64_t, std::string>> CheckpointManager::ListSorted()
    const {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= sizeof(kFilePrefix) - 1 + sizeof(kFileSuffix) - 1)
      continue;
    if (name.rfind(kFilePrefix, 0) != 0 || !name.ends_with(kFileSuffix))
      continue;
    const std::string digits = name.substr(
        sizeof(kFilePrefix) - 1,
        name.size() - (sizeof(kFilePrefix) - 1) - (sizeof(kFileSuffix) - 1));
    uint64_t seq = 0;
    try {
      seq = std::stoull(digits);
    } catch (const std::exception&) {
      continue;
    }
    out.emplace_back(seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string CheckpointManager::Write(const TrainingCheckpoint& ckpt) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%010llu%s", kFilePrefix,
                static_cast<unsigned long long>(next_seq_++), kFileSuffix);
  const std::string path = (fs::path(dir_) / name).string();
  WriteFileAtomic(path, ckpt.Serialize());
  WritesCounter().Add();
  auto all = ListSorted();
  while (static_cast<int64_t>(all.size()) > keep_last_) {
    std::error_code ec;
    fs::remove(all.front().second, ec);
    all.erase(all.begin());
  }
  return path;
}

std::optional<TrainingCheckpoint> CheckpointManager::LoadLatest() {
  auto all = ListSorted();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    try {
      TrainingCheckpoint ckpt =
          TrainingCheckpoint::Deserialize(ReadValidatedFile(it->second));
      ResumeOkCounter().Add();
      return ckpt;
    } catch (const std::runtime_error& e) {
      ResumeCorruptCounter().Add();
      SES_LOG_WARN << "checkpoint " << it->second
                   << " rejected, falling back to previous rotation: "
                   << e.what();
    }
  }
  return std::nullopt;
}

std::string CheckpointManager::LatestPath() const {
  auto all = ListSorted();
  return all.empty() ? std::string() : all.back().second;
}

}  // namespace ses::robust
