#include "robust/health.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ses::robust {

namespace {

obs::Counter& NanSkipsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("ses.train.nan_skips");
  return c;
}

obs::Counter& RollbacksCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("ses.train.rollbacks");
  return c;
}

}  // namespace

HealthMonitor::HealthMonitor(HealthOptions options) : options_(options) {}

HealthMonitor::Action HealthMonitor::Observe(double loss, double grad_norm) {
  if (std::isfinite(loss) && std::isfinite(grad_norm)) {
    consecutive_bad_ = 0;
    return Action::kProceed;
  }
  ++consecutive_bad_;
  NanSkipsCounter().Add();
  SES_LOG_WARN << "numerical guard: non-finite "
               << (std::isfinite(loss) ? "grad norm" : "loss")
               << " (streak " << consecutive_bad_ << "/"
               << options_.max_bad_steps << "), skipping optimizer step";
  if (consecutive_bad_ >= options_.max_bad_steps) return Action::kRollback;
  return Action::kSkip;
}

void HealthMonitor::NoteRollback() {
  consecutive_bad_ = 0;
  RollbacksCounter().Add();
}

}  // namespace ses::robust
