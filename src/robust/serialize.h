#ifndef SES_ROBUST_SERIALIZE_H_
#define SES_ROBUST_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace ses::robust {

/// Little-endian byte-buffer writer for the checkpoint payload. All
/// multi-byte scalars are written in host order (the library targets a
/// single-architecture deployment; the container version field leaves room
/// for an endian-tagged format later).
class Serializer {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU32(v ? 1 : 0); }
  void WriteString(const std::string& s);
  /// rows, cols, then row-major float32 data.
  void WriteTensor(const tensor::Tensor& t);
  void WriteTensorVec(const std::vector<tensor::Tensor>& v);
  void WriteI64Vec(const std::vector<int64_t>& v);
  void WriteF64Vec(const std::vector<double>& v);
  void WriteRngState(const util::RngState& s);

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }

 private:
  void WriteRaw(const void* p, size_t n);
  std::string buf_;
};

/// Matching reader. Every Read* throws std::runtime_error on buffer
/// underflow or malformed lengths, so a truncated payload can never be
/// silently accepted.
class Deserializer {
 public:
  explicit Deserializer(std::string_view buf) : buf_(buf) {}

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  bool ReadBool() { return ReadU32() != 0; }
  std::string ReadString();
  tensor::Tensor ReadTensor();
  std::vector<tensor::Tensor> ReadTensorVec();
  std::vector<int64_t> ReadI64Vec();
  std::vector<double> ReadF64Vec();
  util::RngState ReadRngState();

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  void ReadRaw(void* p, size_t n);
  std::string_view buf_;
  size_t pos_ = 0;
};

/// Checkpoint file container:
///   bytes 0-7   magic "SESCKPT1"
///   bytes 8-11  u32 format version (currently 1)
///   bytes 12-15 u32 CRC-32 of the payload
///   bytes 16-23 u64 payload size
///   bytes 24-   payload
/// The write is atomic: payload goes to `path + ".tmp"`, is fsync'd, and is
/// renamed over `path` — a crash mid-write can never leave a half-written
/// file under the final name. Throws std::runtime_error on I/O failure.
void WriteFileAtomic(const std::string& path, std::string_view payload);

/// Reads and validates a container written by WriteFileAtomic. Throws
/// std::runtime_error on missing file, bad magic, version mismatch,
/// truncation, or CRC mismatch.
std::string ReadValidatedFile(const std::string& path);

}  // namespace ses::robust

#endif  // SES_ROBUST_SERIALIZE_H_
