#include "robust/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "util/crc32.h"

namespace ses::robust {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kVersion = 1;
/// Caps element counts read from untrusted bytes so a corrupted length field
/// fails fast instead of triggering a giant allocation.
constexpr uint64_t kMaxElements = 1ull << 32;

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

}  // namespace

// ---------------------------------------------------------------- Serializer

void Serializer::WriteRaw(const void* p, size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

void Serializer::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void Serializer::WriteTensor(const tensor::Tensor& t) {
  WriteI64(t.rows());
  WriteI64(t.cols());
  WriteRaw(t.data(), sizeof(float) * static_cast<size_t>(t.size()));
}

void Serializer::WriteTensorVec(const std::vector<tensor::Tensor>& v) {
  WriteU64(v.size());
  for (const auto& t : v) WriteTensor(t);
}

void Serializer::WriteI64Vec(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), sizeof(int64_t) * v.size());
}

void Serializer::WriteF64Vec(const std::vector<double>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), sizeof(double) * v.size());
}

void Serializer::WriteRngState(const util::RngState& s) {
  for (uint64_t word : s.s) WriteU64(word);
  WriteBool(s.has_cached_normal);
  WriteF64(s.cached_normal);
}

// -------------------------------------------------------------- Deserializer

void Deserializer::ReadRaw(void* p, size_t n) {
  if (pos_ + n > buf_.size()) Fail("payload truncated");
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
}

uint32_t Deserializer::ReadU32() {
  uint32_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t Deserializer::ReadU64() {
  uint64_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

int64_t Deserializer::ReadI64() {
  int64_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

float Deserializer::ReadF32() {
  float v;
  ReadRaw(&v, sizeof(v));
  return v;
}

double Deserializer::ReadF64() {
  double v;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string Deserializer::ReadString() {
  const uint64_t n = ReadU64();
  if (n > remaining()) Fail("string length exceeds payload");
  std::string s(buf_.substr(pos_, n));
  pos_ += n;
  return s;
}

tensor::Tensor Deserializer::ReadTensor() {
  const int64_t rows = ReadI64();
  const int64_t cols = ReadI64();
  if (rows < 0 || cols < 0 ||
      static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols) > kMaxElements)
    Fail("tensor shape corrupt");
  tensor::Tensor t(rows, cols);
  ReadRaw(t.data(), sizeof(float) * static_cast<size_t>(t.size()));
  return t;
}

std::vector<tensor::Tensor> Deserializer::ReadTensorVec() {
  const uint64_t n = ReadU64();
  if (n > kMaxElements) Fail("tensor count corrupt");
  std::vector<tensor::Tensor> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(ReadTensor());
  return v;
}

std::vector<int64_t> Deserializer::ReadI64Vec() {
  const uint64_t n = ReadU64();
  if (n * sizeof(int64_t) > remaining()) Fail("int list length corrupt");
  std::vector<int64_t> v(n);
  ReadRaw(v.data(), sizeof(int64_t) * n);
  return v;
}

std::vector<double> Deserializer::ReadF64Vec() {
  const uint64_t n = ReadU64();
  if (n * sizeof(double) > remaining()) Fail("double list length corrupt");
  std::vector<double> v(n);
  ReadRaw(v.data(), sizeof(double) * n);
  return v;
}

util::RngState Deserializer::ReadRngState() {
  util::RngState s;
  for (auto& word : s.s) word = ReadU64();
  s.has_cached_normal = ReadBool();
  s.cached_normal = ReadF64();
  return s;
}

// ---------------------------------------------------------------- container

void WriteFileAtomic(const std::string& path, std::string_view payload) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // open() reports failure
  }
  const std::string tmp = path + ".tmp";
  std::string blob;
  blob.reserve(24 + payload.size());
  blob.append(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  blob.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint32_t crc = util::Crc32(payload);
  blob.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  const uint64_t size = payload.size();
  blob.append(reinterpret_cast<const char*>(&size), sizeof(size));
  blob.append(payload.data(), payload.size());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) Fail("cannot open " + tmp + ": " + std::strerror(errno));
  size_t written = 0;
  while (written < blob.size()) {
    const ssize_t n = ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      Fail("write to " + tmp + " failed: " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    Fail("fsync of " + tmp + " failed: " + std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    Fail("rename to " + path + " failed: " + std::strerror(err));
  }
}

std::string ReadValidatedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) Fail("cannot open " + path + ": " + std::strerror(errno));
  std::string blob;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      Fail("read of " + path + " failed: " + std::strerror(err));
    }
    if (n == 0) break;
    blob.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  if (blob.size() < 24 || std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0)
    Fail(path + ": bad magic (not a SES checkpoint)");
  uint32_t version, crc;
  uint64_t size;
  std::memcpy(&version, blob.data() + 8, sizeof(version));
  std::memcpy(&crc, blob.data() + 12, sizeof(crc));
  std::memcpy(&size, blob.data() + 16, sizeof(size));
  if (version != kVersion)
    Fail(path + ": unsupported version " + std::to_string(version));
  if (blob.size() - 24 != size)
    Fail(path + ": truncated (header says " + std::to_string(size) +
         " payload bytes, file has " + std::to_string(blob.size() - 24) + ")");
  const std::string payload = blob.substr(24);
  if (util::Crc32(payload) != crc) Fail(path + ": CRC mismatch");
  return payload;
}

}  // namespace ses::robust
