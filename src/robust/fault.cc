#include "robust/fault.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/crash_flush.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ses::robust {

namespace {

[[noreturn]] void BadSpec(const std::string& spec, const std::string& why) {
  throw std::runtime_error("SES_FAULT_SPEC '" + spec + "': " + why);
}

int64_t ParseInt(const std::string& spec, const std::string& value) {
  try {
    size_t used = 0;
    const int64_t v = std::stoll(value, &used);
    if (used != value.size()) BadSpec(spec, "bad integer '" + value + "'");
    return v;
  } catch (const std::logic_error&) {
    BadSpec(spec, "bad integer '" + value + "'");
  }
}

}  // namespace

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& piece : util::Split(spec, ';')) {
    if (piece.empty()) continue;
    Fault fault;
    const size_t colon = piece.find(':');
    fault.kind = piece.substr(0, colon);
    const bool is_training_kind =
        fault.kind == "nan_grad" || fault.kind == "nan_loss" ||
        fault.kind == "crash" || fault.kind == "corrupt_ckpt";
    const bool is_serving_kind =
        fault.kind == "worker_stall" || fault.kind == "slow_forward" ||
        fault.kind == "poison_request" || fault.kind == "serve_throw" ||
        fault.kind == "serve_delay";
    if (!is_training_kind && !is_serving_kind)
      BadSpec(spec, "unknown fault kind '" + fault.kind + "'");
    if (colon != std::string::npos) {
      for (const std::string& kv : util::Split(piece.substr(colon + 1), ',')) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos)
          BadSpec(spec, "expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "phase") {
          fault.phase = value;
        } else if (key == "epoch") {
          fault.epoch = ParseInt(spec, value);
        } else if (key == "step") {
          fault.step = ParseInt(spec, value);
        } else if (key == "mode") {
          fault.mode = value;
        } else if (key == "ms") {
          fault.ms = ParseInt(spec, value);
        } else if (key == "us") {
          fault.us = ParseInt(spec, value);
        } else {
          BadSpec(spec, "unknown key '" + key + "'");
        }
      }
    }
    const bool wants_epoch =
        fault.kind == "crash" || fault.kind == "corrupt_ckpt";
    if (wants_epoch && fault.epoch < 0)
      BadSpec(spec, fault.kind + " needs epoch=<n>");
    if (fault.kind == "serve_delay") {
      if (fault.us <= 0) BadSpec(spec, "serve_delay needs us=<n> (positive)");
      if (fault.step >= 0)
        BadSpec(spec, "serve_delay is persistent and takes no step=");
    } else if (!wants_epoch && fault.step < 0) {
      BadSpec(spec, fault.kind + " needs step=<n>");
    }
    if (fault.kind == "crash" && !fault.mode.empty() &&
        fault.mode != "exit" && fault.mode != "throw")
      BadSpec(spec, "crash mode must be exit or throw");
    if (fault.kind == "corrupt_ckpt" && !fault.mode.empty() &&
        fault.mode != "flip" && fault.mode != "truncate")
      BadSpec(spec, "corrupt_ckpt mode must be flip or truncate");
    plan.faults_.push_back(std::move(fault));
  }
  return plan;
}

FaultPlan FaultPlan::FromEnv() {
  const char* spec = std::getenv("SES_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') return {};
  return Parse(spec);
}

Fault* FaultPlan::Find(const std::string& kind, const std::string& phase,
                       int64_t epoch, int64_t step) {
  for (Fault& f : faults_) {
    if (f.fired || f.kind != kind) continue;
    if (!f.phase.empty() && f.phase != phase) continue;
    if (f.epoch >= 0 && f.epoch != epoch) continue;
    if (f.step >= 0 && f.step != step) continue;
    f.fired = true;
    return &f;
  }
  return nullptr;
}

void FaultPlan::MaybeCrash(const std::string& phase, int64_t epoch) {
  Fault* f = Find("crash", phase, epoch, -1);
  if (f == nullptr) return;
  SES_LOG_WARN << "fault injection: simulated crash at " << phase << " epoch "
               << epoch;
  if (f->mode == "throw")
    throw SimulatedCrash("injected crash at " + phase + " epoch " +
                         std::to_string(epoch));
  // _Exit skips atexit hooks and signal handlers by design (that is the
  // point of the simulated hard kill), so flush the observability artifacts
  // here — a crashed run must still leave its trace, metrics and access log.
  obs::FlushObservability();
  std::_Exit(kCrashExitCode);
}

bool FaultPlan::TakeNanGrad(const std::string& phase, int64_t step) {
  if (Find("nan_grad", phase, -1, step) == nullptr) return false;
  SES_LOG_WARN << "fault injection: NaN gradient at " << phase << " step "
               << step;
  return true;
}

bool FaultPlan::TakeNanLoss(const std::string& phase, int64_t step) {
  if (Find("nan_loss", phase, -1, step) == nullptr) return false;
  SES_LOG_WARN << "fault injection: NaN loss at " << phase << " step " << step;
  return true;
}

namespace {
/// Stall faults default to 10 ms when the spec omits `ms=` — long enough to
/// observe, short enough to keep fault-matrix tests fast.
constexpr int64_t kDefaultStallMs = 10;
}  // namespace

bool FaultPlan::TakeWorkerStall(int64_t batch_seq, int64_t* ms) {
  Fault* f = Find("worker_stall", "", -1, batch_seq);
  if (f == nullptr) return false;
  *ms = f->ms > 0 ? f->ms : kDefaultStallMs;
  SES_LOG_WARN << "fault injection: worker stall " << *ms << " ms before batch "
               << batch_seq;
  return true;
}

bool FaultPlan::TakeSlowForward(int64_t batch_seq, int64_t* ms) {
  Fault* f = Find("slow_forward", "", -1, batch_seq);
  if (f == nullptr) return false;
  *ms = f->ms > 0 ? f->ms : kDefaultStallMs;
  SES_LOG_WARN << "fault injection: slow forward " << *ms << " ms in batch "
               << batch_seq;
  return true;
}

bool FaultPlan::TakePoisonRequest(int64_t request_seq) {
  if (Find("poison_request", "", -1, request_seq) == nullptr) return false;
  SES_LOG_WARN << "fault injection: poisoned request " << request_seq;
  return true;
}

bool FaultPlan::TakeServeThrow(int64_t batch_seq) {
  if (Find("serve_throw", "", -1, batch_seq) == nullptr) return false;
  SES_LOG_WARN << "fault injection: throwing in batch " << batch_seq;
  return true;
}

int64_t FaultPlan::ServeDelayUs() const {
  for (const Fault& f : faults_)
    if (f.kind == "serve_delay") return f.us;
  return 0;
}

void FaultPlan::MaybeCorruptCheckpoint(const std::string& phase, int64_t epoch,
                                       const std::string& path) {
  Fault* f = Find("corrupt_ckpt", phase, epoch, -1);
  if (f == nullptr || path.empty()) return;
  SES_LOG_WARN << "fault injection: corrupting checkpoint " << path
               << " (mode " << (f->mode.empty() ? "flip" : f->mode) << ")";
  CorruptFile(path, f->mode.empty() ? "flip" : f->mode);
}

void CorruptFile(const std::string& path, const std::string& mode) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return;
  if (mode == "truncate") {
    fs::resize_file(path, size / 2, ec);
    return;
  }
  // Flip one byte inside the payload (past the 24-byte header when there is
  // one) at a deterministic offset, so the CRC check must catch it.
  const uint64_t offset = size > 32 ? 24 + (size - 24) / 2 : size - 1;
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

}  // namespace ses::robust
