#ifndef SES_ROBUST_CHECKPOINT_H_
#define SES_ROBUST_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace ses::robust {

/// Optimizer state captured into a checkpoint: Adam's first/second moments
/// (aligned with the parameter order) and the bias-correction step counter.
/// SGD leaves the moment lists empty.
struct OptimizerState {
  int64_t step_count = 0;
  std::vector<tensor::Tensor> m;
  std::vector<tensor::Tensor> v;
};

/// One resumable training state. `params` follows the registered-parameter
/// order of the module(s) being trained (the same order the optimizer sees),
/// so restore is a positional copy with shape checks at the call site. The
/// named maps carry phase-specific extras — frozen masks, best-validation
/// snapshots, pair lists, loss history — without the core format having to
/// know about them.
struct TrainingCheckpoint {
  std::string model;       ///< e.g. "SES (GAT)"
  std::string phase;       ///< "phase1" / "phase2"
  int64_t next_epoch = 0;  ///< first epoch the resumed loop should run
  std::vector<tensor::Tensor> params;
  OptimizerState optim;
  util::RngState rng;
  double best_val = -1.0;
  float lr = 0.0f;  ///< optimizer LR at capture (rollback may have lowered it)

  std::map<std::string, tensor::Tensor> tensors;
  std::map<std::string, std::vector<tensor::Tensor>> tensor_lists;
  std::map<std::string, std::vector<int64_t>> int_lists;
  std::map<std::string, std::vector<double>> double_lists;
  std::map<std::string, double> scalars;

  /// Flat payload for WriteFileAtomic.
  std::string Serialize() const;
  /// Inverse of Serialize; throws std::runtime_error on malformed payload.
  static TrainingCheckpoint Deserialize(const std::string& payload);
};

/// Writes rotated, integrity-checked checkpoints under one directory
/// (`ckpt-<seq>.ses`, monotonically increasing `seq`) and resumes from the
/// newest one that validates. Corrupt or truncated files are skipped with a
/// warning — a damaged latest checkpoint falls back to the previous
/// rotation instead of killing the run. Counters: `ses.ckpt.writes`,
/// `ses.ckpt.resume_ok`, `ses.ckpt.resume_corrupt`.
class CheckpointManager {
 public:
  /// Creates `dir` if missing. `keep_last` bounds the rotation depth.
  explicit CheckpointManager(std::string dir, int64_t keep_last = 3);

  /// Atomically writes the next checkpoint in sequence and prunes rotations
  /// beyond keep_last. Returns the path written.
  std::string Write(const TrainingCheckpoint& ckpt);

  /// Loads the newest checkpoint that passes validation (magic, version,
  /// CRC, structural decode). Returns nullopt if none does.
  std::optional<TrainingCheckpoint> LoadLatest();

  /// Path of the newest checkpoint file on disk ("" if none). Exposed for
  /// the fault-injection harness, which corrupts it on purpose.
  std::string LatestPath() const;

  const std::string& dir() const { return dir_; }
  int64_t keep_last() const { return keep_last_; }

 private:
  /// (sequence, path) pairs sorted ascending by sequence.
  std::vector<std::pair<uint64_t, std::string>> ListSorted() const;

  std::string dir_;
  int64_t keep_last_;
  uint64_t next_seq_ = 0;
};

}  // namespace ses::robust

#endif  // SES_ROBUST_CHECKPOINT_H_
