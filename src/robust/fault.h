#ifndef SES_ROBUST_FAULT_H_
#define SES_ROBUST_FAULT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ses::robust {

/// Thrown by a `crash` fault with mode=throw — the in-process stand-in for
/// SIGKILL that lets unit tests exercise the kill/resume path without
/// forking.
struct SimulatedCrash : std::runtime_error {
  explicit SimulatedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Process exit code used by `crash` faults with mode=exit, so CI can tell
/// an injected crash (expected) from a genuine failure.
constexpr int kCrashExitCode = 42;

/// One parsed fault directive. Matching is exact on (phase, epoch/step);
/// each fault fires at most once (except the persistent `serve_delay`).
struct Fault {
  std::string kind;   ///< nan_grad | nan_loss | crash | corrupt_ckpt |
                      ///< worker_stall | slow_forward | poison_request |
                      ///< serve_throw | serve_delay
  std::string phase;  ///< "phase1" / "phase2"; empty matches any phase
  int64_t epoch = -1; ///< for crash / corrupt_ckpt
  int64_t step = -1;  ///< training: optimizer step; serving: batch seal /
                      ///< request accept sequence number
  int64_t ms = -1;    ///< worker_stall / slow_forward: stall length
  int64_t us = -1;    ///< serve_delay: per-request synthetic service cost
  std::string mode;   ///< crash: exit(default)|throw; corrupt_ckpt: flip(default)|truncate
  bool fired = false;
};

/// Deterministic fault-injection plan, driven by the `SES_FAULT_SPEC`
/// environment variable (or an explicit spec string). Grammar:
///
///   spec  := fault (';' fault)*
///   fault := kind (':' kv (',' kv)*)?
///   kv    := key '=' value        keys: phase, epoch, step, mode, ms, us
///
/// Examples:
///   nan_grad:phase=phase1,step=7       poison one gradient to NaN
///   nan_loss:phase=phase2,step=3       poison the loss value to NaN
///   crash:phase=phase1,epoch=12        _Exit(42) at the start of the epoch
///   crash:phase=phase2,epoch=2,mode=throw   throw SimulatedCrash instead
///   corrupt_ckpt:phase=phase1,epoch=40,mode=truncate
///                                      damage the newest checkpoint file
///                                      right after the epoch's write
///
/// Serving faults target the batch scheduler's own sequence numbers (step =
/// batch seal order for worker_stall / slow_forward / serve_throw, request
/// accept order for poison_request):
///   worker_stall:step=3,ms=40          worker sleeps 40 ms before batch 3
///   slow_forward:step=0,ms=20          batch 0's forward takes 20 ms extra,
///                                      AFTER doomed-work elimination — live
///                                      requests can expire mid-flight
///   poison_request:step=17             request 17 resolves kInternal without
///                                      executing; its batch is unharmed
///   serve_throw:step=5                 throw inside batch 5's execution; the
///                                      worker must fail the batch typed and
///                                      keep serving
///   serve_delay:us=20                  persistent (never consumed): every
///                                      executed batch busy-waits 20 us per
///                                      live request — service-time emulation
///                                      so an overload bench can drive offered
///                                      load past capacity with few clients
///
/// Every injection point is a no-op when the plan is empty, so instrumented
/// loops cost nothing in normal runs. FaultPlan is NOT internally
/// synchronized: concurrent callers (the scheduler's producers and workers)
/// must serialize access themselves.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses a spec; throws std::runtime_error on bad grammar, unknown kinds
  /// or keys (a mistyped fault spec must not silently test nothing).
  static FaultPlan Parse(const std::string& spec);

  /// Plan from $SES_FAULT_SPEC; empty plan when the variable is unset.
  static FaultPlan FromEnv();

  bool empty() const { return faults_.empty(); }

  /// Crash injection: _Exit(kCrashExitCode) or throw SimulatedCrash when a
  /// matching `crash` fault is armed for (phase, epoch).
  void MaybeCrash(const std::string& phase, int64_t epoch);

  /// True exactly once for a matching `nan_grad` / `nan_loss` fault; the
  /// caller poisons the corresponding value.
  bool TakeNanGrad(const std::string& phase, int64_t step);
  bool TakeNanLoss(const std::string& phase, int64_t step);

  /// Corrupts `path` in place when a matching `corrupt_ckpt` fault is armed:
  /// mode=truncate halves the file, mode=flip (default) XORs one payload
  /// byte at a deterministic offset. No-op on empty path.
  void MaybeCorruptCheckpoint(const std::string& phase, int64_t epoch,
                              const std::string& path);

  /// Serving faults (step-matched one-shots, except ServeDelayUs). Each
  /// Take* returns true exactly once for a matching armed fault; the stall
  /// kinds also report their duration via `*ms` (default 10 when the spec
  /// omitted `ms=`).
  bool TakeWorkerStall(int64_t batch_seq, int64_t* ms);
  bool TakeSlowForward(int64_t batch_seq, int64_t* ms);
  bool TakePoisonRequest(int64_t request_seq);
  bool TakeServeThrow(int64_t batch_seq);

  /// Persistent per-request synthetic service cost from a `serve_delay`
  /// fault; 0 when none is armed. Never consumes the fault.
  int64_t ServeDelayUs() const;

  const std::vector<Fault>& faults() const { return faults_; }

 private:
  Fault* Find(const std::string& kind, const std::string& phase,
              int64_t epoch, int64_t step);

  std::vector<Fault> faults_;
};

/// Damages a file on disk the way real corruption would: mode "truncate"
/// halves it, mode "flip" XORs one byte past the header. Exposed for tests.
void CorruptFile(const std::string& path, const std::string& mode);

}  // namespace ses::robust

#endif  // SES_ROBUST_FAULT_H_
