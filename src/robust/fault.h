#ifndef SES_ROBUST_FAULT_H_
#define SES_ROBUST_FAULT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ses::robust {

/// Thrown by a `crash` fault with mode=throw — the in-process stand-in for
/// SIGKILL that lets unit tests exercise the kill/resume path without
/// forking.
struct SimulatedCrash : std::runtime_error {
  explicit SimulatedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Process exit code used by `crash` faults with mode=exit, so CI can tell
/// an injected crash (expected) from a genuine failure.
constexpr int kCrashExitCode = 42;

/// One parsed fault directive. Matching is exact on (phase, epoch/step);
/// each fault fires at most once.
struct Fault {
  std::string kind;   ///< nan_grad | nan_loss | crash | corrupt_ckpt
  std::string phase;  ///< "phase1" / "phase2"; empty matches any phase
  int64_t epoch = -1; ///< for crash / corrupt_ckpt
  int64_t step = -1;  ///< for nan_grad / nan_loss (optimizer step in phase)
  std::string mode;   ///< crash: exit(default)|throw; corrupt_ckpt: flip(default)|truncate
  bool fired = false;
};

/// Deterministic fault-injection plan, driven by the `SES_FAULT_SPEC`
/// environment variable (or an explicit spec string). Grammar:
///
///   spec  := fault (';' fault)*
///   fault := kind (':' kv (',' kv)*)?
///   kv    := key '=' value        keys: phase, epoch, step, mode
///
/// Examples:
///   nan_grad:phase=phase1,step=7       poison one gradient to NaN
///   nan_loss:phase=phase2,step=3       poison the loss value to NaN
///   crash:phase=phase1,epoch=12        _Exit(42) at the start of the epoch
///   crash:phase=phase2,epoch=2,mode=throw   throw SimulatedCrash instead
///   corrupt_ckpt:phase=phase1,epoch=40,mode=truncate
///                                      damage the newest checkpoint file
///                                      right after the epoch's write
///
/// Every injection point is a no-op when the plan is empty, so instrumented
/// loops cost nothing in normal runs.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses a spec; throws std::runtime_error on bad grammar, unknown kinds
  /// or keys (a mistyped fault spec must not silently test nothing).
  static FaultPlan Parse(const std::string& spec);

  /// Plan from $SES_FAULT_SPEC; empty plan when the variable is unset.
  static FaultPlan FromEnv();

  bool empty() const { return faults_.empty(); }

  /// Crash injection: _Exit(kCrashExitCode) or throw SimulatedCrash when a
  /// matching `crash` fault is armed for (phase, epoch).
  void MaybeCrash(const std::string& phase, int64_t epoch);

  /// True exactly once for a matching `nan_grad` / `nan_loss` fault; the
  /// caller poisons the corresponding value.
  bool TakeNanGrad(const std::string& phase, int64_t step);
  bool TakeNanLoss(const std::string& phase, int64_t step);

  /// Corrupts `path` in place when a matching `corrupt_ckpt` fault is armed:
  /// mode=truncate halves the file, mode=flip (default) XORs one payload
  /// byte at a deterministic offset. No-op on empty path.
  void MaybeCorruptCheckpoint(const std::string& phase, int64_t epoch,
                              const std::string& path);

  const std::vector<Fault>& faults() const { return faults_; }

 private:
  Fault* Find(const std::string& kind, const std::string& phase,
              int64_t epoch, int64_t step);

  std::vector<Fault> faults_;
};

/// Damages a file on disk the way real corruption would: mode "truncate"
/// halves it, mode "flip" XORs one byte past the header. Exposed for tests.
void CorruptFile(const std::string& path, const std::string& mode);

}  // namespace ses::robust

#endif  // SES_ROBUST_FAULT_H_
