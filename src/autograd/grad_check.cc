#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ses::autograd {

GradCheckResult CheckGradients(const std::function<Variable()>& forward,
                               const std::vector<Variable>& params,
                               float epsilon, float tolerance) {
  GradCheckResult result;
  // Analytic pass.
  for (const Variable& p : params) const_cast<Variable&>(p).ZeroGrad();
  Variable loss = forward();
  SES_CHECK(loss.value().size() == 1);
  Backward(loss);

  for (const Variable& p : params) {
    Variable& param = const_cast<Variable&>(p);
    tensor::Tensor analytic = param.grad();
    if (!analytic.SameShape(param.value()))
      analytic = tensor::Tensor(param.value().rows(), param.value().cols());
    tensor::Tensor& v = param.mutable_value();
    for (int64_t i = 0; i < v.size(); ++i) {
      const float original = v[i];
      v[i] = original + epsilon;
      const float up = forward().value()[0];
      v[i] = original - epsilon;
      const float down = forward().value()[0];
      v[i] = original;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float abs_err = std::fabs(analytic[i] - numeric);
      const float denom =
          std::max({std::fabs(analytic[i]), std::fabs(numeric), 1e-2f});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
  }
  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace ses::autograd
