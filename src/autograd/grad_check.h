#ifndef SES_AUTOGRAD_GRAD_CHECK_H_
#define SES_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace ses::autograd {

/// Result of one finite-difference gradient verification.
struct GradCheckResult {
  float max_abs_error = 0.0f;   ///< worst |analytic - numeric|
  float max_rel_error = 0.0f;   ///< worst relative error (guarded denominator)
  bool ok = false;              ///< max_rel_error <= tolerance
};

/// Verifies d(loss)/d(param) for every listed parameter against central
/// finite differences. `forward` must rebuild the graph from the parameters'
/// current values and return a scalar Variable. Used by the test suite on
/// every op and on both GNN layers.
GradCheckResult CheckGradients(const std::function<Variable()>& forward,
                               const std::vector<Variable>& params,
                               float epsilon = 1e-3f, float tolerance = 2e-2f);

}  // namespace ses::autograd

#endif  // SES_AUTOGRAD_GRAD_CHECK_H_
