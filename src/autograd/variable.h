#ifndef SES_AUTOGRAD_VARIABLE_H_
#define SES_AUTOGRAD_VARIABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace ses::autograd {

/// One node of the dynamically built computation graph.
///
/// Nodes are created in topological order (define-by-run), so backward simply
/// walks reachable nodes in decreasing creation order. `backward_fn` pulls
/// this node's accumulated gradient and pushes contributions into the
/// parents' gradients; it captures parent NodePtrs (never its own).
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;  ///< allocated lazily, same shape as value
  bool requires_grad = false;
  uint64_t id = 0;  ///< creation counter; defines topological order
  /// Span label for this node's backward closure (a string literal like
  /// "bwd:MatMul"); null for leaves / unlabeled ops.
  const char* bwd_label = nullptr;
  std::vector<std::shared_ptr<Node>> parents;
  /// Consumes `self_grad` (the gradient of the loss w.r.t. this node's value)
  /// and accumulates into parents' `grad` tensors. Null for leaves.
  std::function<void(const tensor::Tensor& self_grad)> backward_fn;

  /// Ensures `grad` is allocated (zero-filled) with `value`'s shape.
  tensor::Tensor& EnsureGrad();
};

using NodePtr = std::shared_ptr<Node>;

/// Lightweight handle onto a graph node. Copies share the node.
///
/// Leaves come in two flavors: parameters (requires_grad, persistent across
/// iterations, updated by an optimizer) and constants (no gradient).
class Variable {
 public:
  Variable() = default;
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  /// Creates a trainable leaf.
  static Variable Parameter(tensor::Tensor value);

  /// Creates a non-trainable leaf.
  static Variable Constant(tensor::Tensor value);

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const { return node_->value; }
  tensor::Tensor& mutable_value() { return node_->value; }
  const tensor::Tensor& grad() const { return node_->grad; }
  /// Writable gradient, allocated (zero-filled) on first access. Used by the
  /// optimizer's clipping pass and the fault-injection harness.
  tensor::Tensor& mutable_grad() { return node_->EnsureGrad(); }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  int64_t rows() const { return node_->value.rows(); }
  int64_t cols() const { return node_->value.cols(); }
  NodePtr node() const { return node_; }

  /// Zeroes the accumulated gradient (keeps allocation).
  void ZeroGrad();

 private:
  NodePtr node_;
};

/// Runs reverse-mode differentiation from `root` (must be scalar 1x1 unless
/// `seed` is given). Gradients accumulate into every reachable node with
/// requires_grad set on itself or any ancestor.
void Backward(const Variable& root);
void Backward(const Variable& root, const tensor::Tensor& seed);

/// Thread-local, re-entrant no-grad scope. While one (or more) guards are
/// alive on a thread, every op in autograd/ops.cc and autograd/sparse_ops.cc
/// produces a *tape-free* node: no parent edges, no backward closure, no
/// requires_grad propagation. Forward values are bitwise identical to the
/// taped path (the same tensor kernels run); only the bookkeeping is elided.
/// Serving and eval-only paths wrap their forwards in this guard; calling
/// Backward on a guard-built graph is a silent no-op past the root.
class InferenceGuard {
 public:
  InferenceGuard();
  ~InferenceGuard();
  InferenceGuard(const InferenceGuard&) = delete;
  InferenceGuard& operator=(const InferenceGuard&) = delete;

  /// True when at least one guard is alive on the calling thread.
  static bool Active();
};

/// True when ops on this thread should record backward state — i.e. no
/// InferenceGuard is active.
inline bool GradEnabled() { return !InferenceGuard::Active(); }

/// Process-wide count of interior nodes created *with* a backward closure
/// (tape nodes). Leaves (Parameter/Constant) and guard-mode tape-free nodes
/// do not count. Tests snapshot this around an eval forward to assert the
/// no-grad path allocates zero tape nodes.
uint64_t TapeNodesCreated();

/// Internal: tape-free interior node (no parents, no closure, no grad).
NodePtr MakeTapeFreeNode(tensor::Tensor value);

/// Internal: full tape node; `requires_grad` is inferred from parents.
NodePtr MakeTapeNode(tensor::Tensor value, std::vector<NodePtr> parents,
                     std::function<void(const tensor::Tensor&)> backward_fn,
                     const char* bwd_label);

/// Internal: allocates a fresh interior node; `requires_grad` is inferred
/// from parents. `bwd_label`, when given, must be a string literal; Backward
/// opens a profiling span with it around the node's backward closure.
///
/// Templated over the closure so that under an active InferenceGuard the
/// std::function (and its heap allocation) is never constructed — the raw
/// lambda argument is simply dropped along with the parents vector.
template <typename BackwardFn>
NodePtr MakeOpNode(tensor::Tensor value, std::vector<NodePtr> parents,
                   BackwardFn&& backward_fn, const char* bwd_label = nullptr) {
  if (!GradEnabled()) return MakeTapeFreeNode(std::move(value));
  return MakeTapeNode(std::move(value), std::move(parents),
                      std::forward<BackwardFn>(backward_fn), bwd_label);
}

}  // namespace ses::autograd

#endif  // SES_AUTOGRAD_VARIABLE_H_
