#ifndef SES_AUTOGRAD_SPARSE_OPS_H_
#define SES_AUTOGRAD_SPARSE_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "kernels/spmm.h"
#include "tensor/sparse.h"

namespace ses::autograd {

/// Shared immutable edge list (src -> dst). Ops capture it by shared_ptr so
/// per-epoch graph rebuilds never copy the index arrays.
///
/// Fill `src`/`dst`/`num_nodes` once after construction and treat the list
/// as frozen: `plan()` memoizes per-graph kernel state (CSR-by-destination
/// view, graph statistics, the autotuned SpMM variant decision) against the
/// current arrays, and every SpMM over this list replays that plan — which
/// is what keeps taped and InferenceGuard forwards on identical kernels.
struct EdgeList {
  std::vector<int64_t> src;
  std::vector<int64_t> dst;
  int64_t num_nodes = 0;
  /// Lazily-built memoized kernel plan (copying an EdgeList resets it).
  kernels::SpmmPlanCell plan_cell;

  int64_t size() const { return static_cast<int64_t>(src.size()); }

  /// The memoized per-graph SpMM plan; built on first use, thread-safe.
  std::shared_ptr<const kernels::SpmmPlan> plan() const {
    return plan_cell.Get(src.data(), dst.data(), size(), num_nodes);
  }
};

using EdgeListPtr = std::shared_ptr<const EdgeList>;

/// Sparse-dense product with differentiable edge weights:
///   out[dst[e], :] += w[e] * x[src[e], :]
/// Gradients flow to both `w` (E x 1) and `x` (N x F). This is the op that
/// lets SES co-train the structure mask with the encoder (Eq. 8): the mask
/// enters the aggregation as `w` and receives d(loss)/d(w_e) directly.
/// The forward runs the plan-selected kernel variant (edge-order, CSR, or
/// blocked CSR at the active SIMD tier); see kernels/spmm.h for the
/// equivalence contract.
Variable SpMM(const EdgeListPtr& edges, const Variable& edge_weight,
              const Variable& x);

/// SpMM with the GCN epilogue fused into the aggregation pass:
///   out = act(SpMM(edges, w, x) + bias),  act = ReLU when `relu`
/// `bias` (1 x F) may be undefined. One pass over CSR rows applies
/// normalize-weighted aggregation, bias add, and activation while the row is
/// hot — equivalent to the SpMM → AddRowVector → Relu chain bitwise at
/// scalar tier and per-tier deterministically at SIMD tiers. Used by both
/// taped and InferenceGuard paths; gradients flow to `w`, `x`, and `bias`.
Variable SpMMBiasAct(const EdgeListPtr& edges, const Variable& edge_weight,
                     const Variable& x, const Variable& bias, bool relu);

/// Numerically-stable softmax over incoming edges grouped by destination:
///   y_e = exp(s_e) / sum_{e': dst[e'] == dst[e]} exp(s_{e'})
/// Scores and output are E x 1. Used by GAT attention.
Variable EdgeSoftmax(const EdgeListPtr& edges, const Variable& scores);

/// First-layer linear map over sparse input features with an optional
/// per-nonzero feature mask:
///   out[i, :] = sum_{e in row i} mask[e] * x_val[e] * W[col(e), :]
/// `mask` may be undefined (treated as all-ones). Gradients flow to `W` and,
/// when defined, to `mask` (nnz x 1) — never densifying N x F.
Variable SparseMaskedLinear(const std::shared_ptr<const tensor::SparseMatrix>& x,
                            const Variable& mask, const Variable& w);

/// Evaluates the feature-mask head only at the nonzero feature positions:
///   m[e] = sigmoid( h[row(e), :] . w2[:, col(e)] + b2[col(e)] )
/// for each nonzero e of `pattern`. Output is nnz x 1. This computes Eq. (3)
/// restricted to the entries that E_feat = M_f ⊙ X can ever expose, turning
/// an O(N*F*H) dense MLP head into O(nnz*H).
Variable FeatureMaskAtNnz(const Variable& h, const Variable& w2,
                          const Variable& b2,
                          const std::shared_ptr<const tensor::SparseMatrix>& pattern);

}  // namespace ses::autograd

#endif  // SES_AUTOGRAD_SPARSE_OPS_H_
