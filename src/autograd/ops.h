#ifndef SES_AUTOGRAD_OPS_H_
#define SES_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

namespace ses::autograd {

/// Differentiable dense operators. Each builds one graph node whose backward
/// closure pushes gradients into the parents. Shapes follow the kernels in
/// tensor/ops.h.

Variable MatMul(const Variable& a, const Variable& b);
Variable Transpose(const Variable& a);

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);

/// a (N x C) + bias broadcast over rows; bias is 1 x C.
Variable AddRowVector(const Variable& a, const Variable& bias);
/// a (N x C) - row broadcast; used by the prototype layer.
Variable SubRowVector(const Variable& a, const Variable& row);

Variable Scale(const Variable& a, float s);
Variable AddScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float slope);
Variable Elu(const Variable& a, float alpha = 1.0f);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);       ///< clamped at 1e-12
Variable Sqrt(const Variable& a, float eps = 1e-12f);

/// Elementwise power x^p (inputs clamped away from 0 for negative p).
Variable Pow(const Variable& a, float p);

/// a * s where s is a trainable 1 x 1 scalar Variable (broadcast).
Variable ScaleBy(const Variable& a, const Variable& scalar);

Variable LogSoftmaxRows(const Variable& a);
Variable SoftmaxRows(const Variable& a);

/// Inverted dropout; identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, bool training, util::Rng* rng);

Variable SumAll(const Variable& a);   ///< 1 x 1
Variable MeanAll(const Variable& a);  ///< 1 x 1
Variable SumRows(const Variable& a);  ///< N x C -> N x 1
Variable SumCols(const Variable& a);  ///< N x C -> 1 x C

Variable GatherRows(const Variable& a, std::vector<int64_t> index);
Variable ConcatCols(const Variable& a, const Variable& b);
Variable ConcatRows(const Variable& a, const Variable& b);
Variable SliceRows(const Variable& a, int64_t lo, int64_t hi);

/// Mean over `indices` of -log_probs[i, labels[i]] (negative log-likelihood
/// over a node subset — the semi-supervised cross-entropy of Eq. 6).
Variable NllLoss(const Variable& log_probs, const std::vector<int64_t>& labels,
                 const std::vector<int64_t>& indices);

/// Mean |pred - target| (the subgraph loss of Eq. 7 uses this against the
/// stacked 1/0 labels).
Variable L1Loss(const Variable& pred, const tensor::Tensor& target);

/// Mean (pred - target)^2.
Variable MseLoss(const Variable& pred, const tensor::Tensor& target);

/// Row-wise Euclidean distance between a and b: N x 1.
Variable RowDistance(const Variable& a, const Variable& b, float eps = 1e-9f);

/// Triplet margin loss (Eq. 12): mean over rows of
/// max(||a-p||_2 - ||a-n||_2 + margin, 0).
Variable TripletLoss(const Variable& anchor, const Variable& positive,
                     const Variable& negative, float margin);

}  // namespace ses::autograd

#endif  // SES_AUTOGRAD_OPS_H_
