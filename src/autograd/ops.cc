#include "autograd/ops.h"

#include <cmath>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

/// Per-op instrumentation: SES_OP_FWD opens a span over the op's forward
/// computation; the matching "bwd:" literal passed to MakeOpNode labels the
/// span Backward() opens around the backward closure. Composite ops (Neg,
/// MeanAll, TripletLoss, ...) are covered by the primitives they expand into.
#define SES_OP_FWD(name) SES_TRACE_SPAN("fwd:" name)

namespace ses::autograd {

namespace t = ses::tensor;

namespace {

/// Shorthand for a unary op whose backward multiplies the incoming gradient
/// elementwise with a locally computed factor tensor.
Variable UnaryWithFactor(const Variable& a, t::Tensor value, t::Tensor factor,
                         const char* bwd_label) {
  NodePtr pa = a.node();
  auto node = MakeOpNode(
      std::move(value), {pa},
      [pa, factor = std::move(factor)](const t::Tensor& g) {
        if (pa->requires_grad) {
          t::Tensor& dst = pa->EnsureGrad();
          const int64_t n = g.size();
          const float* pg = g.data();
          const float* pf = factor.data();
          float* pd = dst.data();
          for (int64_t i = 0; i < n; ++i) pd[i] += pg[i] * pf[i];
        }
      },
      bwd_label);
  return Variable(node);
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  SES_OP_FWD("MatMul");
  NodePtr pa = a.node(), pb = b.node();
  t::Tensor value = t::MatMul(pa->value, pb->value);
  auto node = MakeOpNode(std::move(value), {pa, pb},
                         [pa, pb](const t::Tensor& g) {
                           if (pa->requires_grad)
                             pa->EnsureGrad().AddInPlace(
                                 t::MatMulTransposedB(g, pb->value));
                           if (pb->requires_grad)
                             pb->EnsureGrad().AddInPlace(
                                 t::MatMulTransposedA(pa->value, g));
                         },
                         "bwd:MatMul");
  return Variable(node);
}

Variable Transpose(const Variable& a) {
  SES_OP_FWD("Transpose");
  NodePtr pa = a.node();
  auto node = MakeOpNode(t::Transpose(pa->value), {pa},
                         [pa](const t::Tensor& g) {
                           if (pa->requires_grad)
                             pa->EnsureGrad().AddInPlace(t::Transpose(g));
                         },
                         "bwd:Transpose");
  return Variable(node);
}

Variable Add(const Variable& a, const Variable& b) {
  SES_OP_FWD("Add");
  NodePtr pa = a.node(), pb = b.node();
  auto node = MakeOpNode(t::Add(pa->value, pb->value), {pa, pb},
                         [pa, pb](const t::Tensor& g) {
                           if (pa->requires_grad) pa->EnsureGrad().AddInPlace(g);
                           if (pb->requires_grad) pb->EnsureGrad().AddInPlace(g);
                         },
                         "bwd:Add");
  return Variable(node);
}

Variable Sub(const Variable& a, const Variable& b) {
  SES_OP_FWD("Sub");
  NodePtr pa = a.node(), pb = b.node();
  auto node = MakeOpNode(t::Sub(pa->value, pb->value), {pa, pb},
                         [pa, pb](const t::Tensor& g) {
                           if (pa->requires_grad) pa->EnsureGrad().AddInPlace(g);
                           if (pb->requires_grad) pb->EnsureGrad().AddScaled(g, -1.0f);
                         },
                         "bwd:Sub");
  return Variable(node);
}

Variable Mul(const Variable& a, const Variable& b) {
  SES_OP_FWD("Mul");
  NodePtr pa = a.node(), pb = b.node();
  auto node = MakeOpNode(t::Mul(pa->value, pb->value), {pa, pb},
                         [pa, pb](const t::Tensor& g) {
                           if (pa->requires_grad)
                             pa->EnsureGrad().AddInPlace(t::Mul(g, pb->value));
                           if (pb->requires_grad)
                             pb->EnsureGrad().AddInPlace(t::Mul(g, pa->value));
                         },
                         "bwd:Mul");
  return Variable(node);
}

Variable AddRowVector(const Variable& a, const Variable& bias) {
  SES_OP_FWD("AddRowVector");
  NodePtr pa = a.node(), pb = bias.node();
  auto node = MakeOpNode(t::AddRowVector(pa->value, pb->value), {pa, pb},
                         [pa, pb](const t::Tensor& g) {
                           if (pa->requires_grad) pa->EnsureGrad().AddInPlace(g);
                           if (pb->requires_grad) {
                             t::Tensor colsum = t::SumCols(g);
                             colsum.Reshape(pb->value.rows(), pb->value.cols());
                             pb->EnsureGrad().AddInPlace(colsum);
                           }
                         },
                         "bwd:AddRowVector");
  return Variable(node);
}

Variable SubRowVector(const Variable& a, const Variable& row) {
  return AddRowVector(a, Neg(row));
}

Variable Scale(const Variable& a, float s) {
  SES_OP_FWD("Scale");
  NodePtr pa = a.node();
  auto node = MakeOpNode(t::Scale(pa->value, s), {pa},
                         [pa, s](const t::Tensor& g) {
                           if (pa->requires_grad) pa->EnsureGrad().AddScaled(g, s);
                         },
                         "bwd:Scale");
  return Variable(node);
}

Variable AddScalar(const Variable& a, float s) {
  SES_OP_FWD("AddScalar");
  NodePtr pa = a.node();
  auto node = MakeOpNode(t::AddScalar(pa->value, s), {pa},
                         [pa](const t::Tensor& g) {
                           if (pa->requires_grad) pa->EnsureGrad().AddInPlace(g);
                         },
                         "bwd:AddScalar");
  return Variable(node);
}

Variable Neg(const Variable& a) { return Scale(a, -1.0f); }

Variable Sigmoid(const Variable& a) {
  SES_OP_FWD("Sigmoid");
  t::Tensor y = t::Sigmoid(a.value());
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor factor(y.rows(), y.cols());
  for (int64_t i = 0; i < y.size(); ++i) factor[i] = y[i] * (1.0f - y[i]);
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Sigmoid");
}

Variable Tanh(const Variable& a) {
  SES_OP_FWD("Tanh");
  t::Tensor y = t::Tanh(a.value());
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor factor(y.rows(), y.cols());
  for (int64_t i = 0; i < y.size(); ++i) factor[i] = 1.0f - y[i] * y[i];
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Tanh");
}

Variable Relu(const Variable& a) {
  SES_OP_FWD("Relu");
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(t::Relu(a.value())));
  const t::Tensor& x = a.value();
  t::Tensor y(x.rows(), x.cols());
  t::Tensor factor(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] > 0.0f ? x[i] : 0.0f;
    factor[i] = x[i] > 0.0f ? 1.0f : 0.0f;
  }
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Relu");
}

Variable LeakyRelu(const Variable& a, float slope) {
  SES_OP_FWD("LeakyRelu");
  if (!GradEnabled())
    return Variable(MakeTapeFreeNode(t::LeakyRelu(a.value(), slope)));
  const t::Tensor& x = a.value();
  t::Tensor y(x.rows(), x.cols());
  t::Tensor factor(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
    factor[i] = x[i] > 0.0f ? 1.0f : slope;
  }
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:LeakyRelu");
}

Variable Elu(const Variable& a, float alpha) {
  SES_OP_FWD("Elu");
  if (!GradEnabled())
    return Variable(MakeTapeFreeNode(t::Elu(a.value(), alpha)));
  const t::Tensor& x = a.value();
  t::Tensor y(x.rows(), x.cols());
  t::Tensor factor(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0f) {
      y[i] = x[i];
      factor[i] = 1.0f;
    } else {
      y[i] = alpha * (std::exp(x[i]) - 1.0f);
      factor[i] = y[i] + alpha;  // d/dx elu = elu(x) + alpha for x <= 0
    }
  }
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Elu");
}

Variable Exp(const Variable& a) {
  SES_OP_FWD("Exp");
  t::Tensor y = t::Exp(a.value());
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor factor = y;
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Exp");
}

Variable Log(const Variable& a) {
  SES_OP_FWD("Log");
  const t::Tensor& x = a.value();
  t::Tensor y = t::Log(x);
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor factor(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i)
    factor[i] = 1.0f / std::max(x[i], 1e-12f);
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Log");
}

Variable Sqrt(const Variable& a, float eps) {
  SES_OP_FWD("Sqrt");
  t::Tensor y = t::Sqrt(a.value());
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor factor(y.rows(), y.cols());
  for (int64_t i = 0; i < y.size(); ++i)
    factor[i] = 0.5f / std::max(y[i], eps);
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Sqrt");
}

Variable Pow(const Variable& a, float p) {
  SES_OP_FWD("Pow");
  const t::Tensor& x = a.value();
  t::Tensor y(x.rows(), x.cols());
  if (!GradEnabled()) {
    for (int64_t i = 0; i < x.size(); ++i) {
      float base = x[i];
      if (p < 0.0f && std::fabs(base) < 1e-12f)
        base = base >= 0.0f ? 1e-12f : -1e-12f;
      y[i] = std::pow(base, p);
    }
    return Variable(MakeTapeFreeNode(std::move(y)));
  }
  t::Tensor factor(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i) {
    float base = x[i];
    if (p < 0.0f && std::fabs(base) < 1e-12f)
      base = base >= 0.0f ? 1e-12f : -1e-12f;
    y[i] = std::pow(base, p);
    factor[i] = p * std::pow(base, p - 1.0f);
  }
  return UnaryWithFactor(a, std::move(y), std::move(factor), "bwd:Pow");
}

Variable ScaleBy(const Variable& a, const Variable& scalar) {
  SES_OP_FWD("ScaleBy");
  NodePtr pa = a.node(), ps = scalar.node();
  SES_CHECK(ps->value.size() == 1);
  t::Tensor y = t::Scale(pa->value, ps->value[0]);
  auto node = MakeOpNode(
      std::move(y), {pa, ps},
      [pa, ps](const t::Tensor& g) {
        if (pa->requires_grad) pa->EnsureGrad().AddScaled(g, ps->value[0]);
        if (ps->requires_grad) {
          double acc = 0.0;
          for (int64_t i = 0; i < g.size(); ++i)
            acc += static_cast<double>(g[i]) * pa->value[i];
          ps->EnsureGrad()[0] += static_cast<float>(acc);
        }
      },
      "bwd:ScaleBy");
  return Variable(node);
}

Variable LogSoftmaxRows(const Variable& a) {
  SES_OP_FWD("LogSoftmaxRows");
  NodePtr pa = a.node();
  t::Tensor y = t::LogSoftmaxRows(pa->value);
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor softmax = t::Exp(y);
  auto node = MakeOpNode(
      std::move(y), {pa},
      [pa, softmax = std::move(softmax)](const t::Tensor& g) {
        if (!pa->requires_grad) return;
        // dX = dY - softmax * rowsum(dY)
        t::Tensor& dst = pa->EnsureGrad();
        for (int64_t r = 0; r < g.rows(); ++r) {
          const float* pg = g.RowPtr(r);
          const float* ps = softmax.RowPtr(r);
          float* pd = dst.RowPtr(r);
          double rowsum = 0.0;
          for (int64_t c = 0; c < g.cols(); ++c) rowsum += pg[c];
          for (int64_t c = 0; c < g.cols(); ++c)
            pd[c] += pg[c] - ps[c] * static_cast<float>(rowsum);
        }
      },
      "bwd:LogSoftmaxRows");
  return Variable(node);
}

Variable SoftmaxRows(const Variable& a) {
  SES_OP_FWD("SoftmaxRows");
  NodePtr pa = a.node();
  t::Tensor y = t::SoftmaxRows(pa->value);
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor y_copy = y;
  auto node = MakeOpNode(
      std::move(y), {pa},
      [pa, y = std::move(y_copy)](const t::Tensor& g) {
        if (!pa->requires_grad) return;
        // dX = y * (dY - rowsum(dY * y))
        t::Tensor& dst = pa->EnsureGrad();
        for (int64_t r = 0; r < g.rows(); ++r) {
          const float* pg = g.RowPtr(r);
          const float* py = y.RowPtr(r);
          float* pd = dst.RowPtr(r);
          double dot = 0.0;
          for (int64_t c = 0; c < g.cols(); ++c) dot += pg[c] * py[c];
          for (int64_t c = 0; c < g.cols(); ++c)
            pd[c] += py[c] * (pg[c] - static_cast<float>(dot));
        }
      },
      "bwd:SoftmaxRows");
  return Variable(node);
}

Variable Dropout(const Variable& a, float p, bool training, util::Rng* rng) {
  if (!training || p <= 0.0f) return a;
  SES_OP_FWD("Dropout");
  SES_CHECK(p < 1.0f);
  const t::Tensor& x = a.value();
  const float keep = 1.0f - p;
  t::Tensor mask(x.rows(), x.cols());
  for (int64_t i = 0; i < x.size(); ++i)
    mask[i] = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  t::Tensor y = t::Mul(x, mask);
  return UnaryWithFactor(a, std::move(y), std::move(mask), "bwd:Dropout");
}

Variable SumAll(const Variable& a) {
  SES_OP_FWD("SumAll");
  NodePtr pa = a.node();
  t::Tensor y(1, 1);
  y[0] = pa->value.Sum();
  auto node = MakeOpNode(std::move(y), {pa},
                         [pa](const t::Tensor& g) {
                           if (!pa->requires_grad) return;
                           t::Tensor& dst = pa->EnsureGrad();
                           const float gv = g[0];
                           float* pd = dst.data();
                           for (int64_t i = 0; i < dst.size(); ++i) pd[i] += gv;
                         },
                         "bwd:SumAll");
  return Variable(node);
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return Scale(SumAll(a), inv);
}

Variable SumRows(const Variable& a) {
  SES_OP_FWD("SumRows");
  NodePtr pa = a.node();
  auto node = MakeOpNode(t::SumRows(pa->value), {pa},
                         [pa](const t::Tensor& g) {
                           if (!pa->requires_grad) return;
                           t::Tensor& dst = pa->EnsureGrad();
                           for (int64_t r = 0; r < dst.rows(); ++r) {
                             const float gv = g[r];
                             float* pd = dst.RowPtr(r);
                             for (int64_t c = 0; c < dst.cols(); ++c) pd[c] += gv;
                           }
                         },
                         "bwd:SumRows");
  return Variable(node);
}

Variable SumCols(const Variable& a) {
  SES_OP_FWD("SumCols");
  NodePtr pa = a.node();
  auto node = MakeOpNode(t::SumCols(pa->value), {pa},
                         [pa](const t::Tensor& g) {
                           if (!pa->requires_grad) return;
                           t::Tensor& dst = pa->EnsureGrad();
                           const float* pg = g.data();
                           for (int64_t r = 0; r < dst.rows(); ++r) {
                             float* pd = dst.RowPtr(r);
                             for (int64_t c = 0; c < dst.cols(); ++c) pd[c] += pg[c];
                           }
                         },
                         "bwd:SumCols");
  return Variable(node);
}

Variable GatherRows(const Variable& a, std::vector<int64_t> index) {
  SES_OP_FWD("GatherRows");
  NodePtr pa = a.node();
  t::Tensor y = t::GatherRows(pa->value, index);
  auto node = MakeOpNode(std::move(y), {pa},
                         [pa, index = std::move(index)](const t::Tensor& g) {
                           if (!pa->requires_grad) return;
                           t::ScatterAddRows(g, index, &pa->EnsureGrad());
                         },
                         "bwd:GatherRows");
  return Variable(node);
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  SES_OP_FWD("ConcatCols");
  NodePtr pa = a.node(), pb = b.node();
  auto node = MakeOpNode(
      t::ConcatCols(pa->value, pb->value), {pa, pb},
      [pa, pb](const t::Tensor& g) {
        const int64_t ca = pa->value.cols();
        const int64_t cb = pb->value.cols();
        if (pa->requires_grad) {
          t::Tensor& dst = pa->EnsureGrad();
          for (int64_t r = 0; r < g.rows(); ++r) {
            const float* pg = g.RowPtr(r);
            float* pd = dst.RowPtr(r);
            for (int64_t c = 0; c < ca; ++c) pd[c] += pg[c];
          }
        }
        if (pb->requires_grad) {
          t::Tensor& dst = pb->EnsureGrad();
          for (int64_t r = 0; r < g.rows(); ++r) {
            const float* pg = g.RowPtr(r) + ca;
            float* pd = dst.RowPtr(r);
            for (int64_t c = 0; c < cb; ++c) pd[c] += pg[c];
          }
        }
      },
      "bwd:ConcatCols");
  return Variable(node);
}

Variable ConcatRows(const Variable& a, const Variable& b) {
  SES_OP_FWD("ConcatRows");
  NodePtr pa = a.node(), pb = b.node();
  auto node = MakeOpNode(
      t::ConcatRows(pa->value, pb->value), {pa, pb},
      [pa, pb](const t::Tensor& g) {
        const int64_t ra = pa->value.rows();
        if (pa->requires_grad)
          pa->EnsureGrad().AddInPlace(t::SliceRows(g, 0, ra));
        if (pb->requires_grad)
          pb->EnsureGrad().AddInPlace(t::SliceRows(g, ra, g.rows()));
      },
      "bwd:ConcatRows");
  return Variable(node);
}

Variable SliceRows(const Variable& a, int64_t lo, int64_t hi) {
  SES_OP_FWD("SliceRows");
  NodePtr pa = a.node();
  auto node = MakeOpNode(
      t::SliceRows(pa->value, lo, hi), {pa},
      [pa, lo](const t::Tensor& g) {
        if (!pa->requires_grad) return;
        t::Tensor& dst = pa->EnsureGrad();
        for (int64_t r = 0; r < g.rows(); ++r) {
          const float* pg = g.RowPtr(r);
          float* pd = dst.RowPtr(lo + r);
          for (int64_t c = 0; c < g.cols(); ++c) pd[c] += pg[c];
        }
      },
      "bwd:SliceRows");
  return Variable(node);
}

Variable NllLoss(const Variable& log_probs, const std::vector<int64_t>& labels,
                 const std::vector<int64_t>& indices) {
  SES_OP_FWD("NllLoss");
  SES_CHECK(!indices.empty());
  NodePtr pa = log_probs.node();
  const t::Tensor& lp = pa->value;
  double acc = 0.0;
  for (int64_t i : indices) {
    SES_CHECK(i >= 0 && i < lp.rows());
    SES_CHECK(labels[static_cast<size_t>(i)] >= 0 &&
              labels[static_cast<size_t>(i)] < lp.cols());
    acc -= lp.At(i, labels[static_cast<size_t>(i)]);
  }
  t::Tensor y(1, 1);
  const float inv = 1.0f / static_cast<float>(indices.size());
  y[0] = static_cast<float>(acc) * inv;
  auto node = MakeOpNode(std::move(y), {pa},
                         [pa, labels, indices, inv](const t::Tensor& g) {
                           if (!pa->requires_grad) return;
                           t::Tensor& dst = pa->EnsureGrad();
                           const float gv = g[0] * inv;
                           for (int64_t i : indices)
                             dst.At(i, labels[static_cast<size_t>(i)]) -= gv;
                         },
                         "bwd:NllLoss");
  return Variable(node);
}

Variable L1Loss(const Variable& pred, const tensor::Tensor& target) {
  SES_OP_FWD("L1Loss");
  NodePtr pa = pred.node();
  SES_CHECK(pa->value.SameShape(target));
  const int64_t n = pa->value.size();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += std::fabs(pa->value[i] - target[i]);
  t::Tensor y(1, 1);
  y[0] = static_cast<float>(acc / static_cast<double>(n));
  auto node = MakeOpNode(
      std::move(y), {pa},
      [pa, target](const t::Tensor& g) {
        if (!pa->requires_grad) return;
        t::Tensor& dst = pa->EnsureGrad();
        const float gv = g[0] / static_cast<float>(pa->value.size());
        for (int64_t i = 0; i < pa->value.size(); ++i) {
          const float d = pa->value[i] - target[i];
          dst[i] += gv * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
        }
      },
      "bwd:L1Loss");
  return Variable(node);
}

Variable MseLoss(const Variable& pred, const tensor::Tensor& target) {
  SES_OP_FWD("MseLoss");
  NodePtr pa = pred.node();
  SES_CHECK(pa->value.SameShape(target));
  const int64_t n = pa->value.size();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = pa->value[i] - target[i];
    acc += d * d;
  }
  t::Tensor y(1, 1);
  y[0] = static_cast<float>(acc / static_cast<double>(n));
  auto node = MakeOpNode(
      std::move(y), {pa},
      [pa, target](const t::Tensor& g) {
        if (!pa->requires_grad) return;
        t::Tensor& dst = pa->EnsureGrad();
        const float gv = 2.0f * g[0] / static_cast<float>(pa->value.size());
        for (int64_t i = 0; i < pa->value.size(); ++i)
          dst[i] += gv * (pa->value[i] - target[i]);
      },
      "bwd:MseLoss");
  return Variable(node);
}

Variable RowDistance(const Variable& a, const Variable& b, float eps) {
  Variable diff = Sub(a, b);
  Variable sq = Mul(diff, diff);
  Variable sums = SumRows(sq);
  return Sqrt(AddScalar(sums, eps));
}

Variable TripletLoss(const Variable& anchor, const Variable& positive,
                     const Variable& negative, float margin) {
  SES_TRACE_SPAN("loss/TripletLoss");
  Variable d_ap = RowDistance(anchor, positive);
  Variable d_an = RowDistance(anchor, negative);
  Variable hinge = Relu(AddScalar(Sub(d_ap, d_an), margin));
  return MeanAll(hinge);
}

}  // namespace ses::autograd
