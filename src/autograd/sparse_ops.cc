#include "autograd/sparse_ops.h"

#include <cmath>

#include "kernels/dispatch.h"
#include "obs/perfcount.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::autograd {

namespace t = ses::tensor;

namespace {

/// Shared SpMM backward: dw[e] += x[src[e]]·g[dst[e]], dx[src[e]] += w[e] *
/// g[dst[e]]. Used by both SpMM and the fused SpMMBiasAct (whose epilogue
/// gradient is folded into `g` by the caller).
void AccumulateSpmmGrads(const EdgeList& edges, const NodePtr& pw,
                         const NodePtr& px, int64_t f, const t::Tensor& g) {
  const int64_t e_count = edges.size();
  if (pw->requires_grad) {
    t::Tensor& dw = pw->EnsureGrad();
    const t::Tensor& xv = px->value;
#pragma omp parallel for schedule(static)
    for (int64_t e = 0; e < e_count; ++e) {
      const float* xrow = xv.RowPtr(edges.src[static_cast<size_t>(e)]);
      const float* grow = g.RowPtr(edges.dst[static_cast<size_t>(e)]);
      double acc = 0.0;
      for (int64_t c = 0; c < f; ++c) acc += xrow[c] * grow[c];
      dw[e] += static_cast<float>(acc);
    }
  }
  if (px->requires_grad) {
    t::Tensor& dx = px->EnsureGrad();
    const t::Tensor& w = pw->value;
    for (int64_t e = 0; e < e_count; ++e) {
      const float we = w[e];
      if (we == 0.0f) continue;
      const float* grow = g.RowPtr(edges.dst[static_cast<size_t>(e)]);
      float* drow = dx.RowPtr(edges.src[static_cast<size_t>(e)]);
      for (int64_t c = 0; c < f; ++c) drow[c] += we * grow[c];
    }
  }
}

}  // namespace

Variable SpMM(const EdgeListPtr& edges, const Variable& edge_weight,
              const Variable& x) {
  SES_TRACE_SPAN("fwd:SpMM");
  SES_CHECK(edges != nullptr);
  NodePtr pw = edge_weight.node(), px = x.node();
  const int64_t e_count = edges->size();
  SES_CHECK(pw->value.rows() == e_count && pw->value.cols() == 1);
  const int64_t f = px->value.cols();
  t::Tensor out(edges->num_nodes, f);
  const auto plan = edges->plan();
  const kernels::SpmmChoice choice =
      plan->Choose(f, pw->value.data(), px->value.data());
  {
    // One multiply-add per edge element; per edge — weight + two indices,
    // the source row read and the destination row read-modify-written. The
    // plan-selected variant (edge-order / CSR / blocked CSR at the active
    // SIMD tier) is the KernelScope variant label.
    obs::KernelScope kscope(
        "spmm", kernels::SpmmVariantName(choice),
        2.0 * static_cast<double>(e_count) * f,
        static_cast<double>(e_count) * (20.0 + 12.0 * f));
    plan->Run(choice, pw->value.data(), px->value.data(), f, out.data(),
              /*bias=*/nullptr, /*relu=*/false);
  }
  auto node = MakeOpNode(
      std::move(out), {pw, px},
      [edges, pw, px, f](const t::Tensor& g) {
        AccumulateSpmmGrads(*edges, pw, px, f, g);
      },
      "bwd:SpMM");
  return Variable(node);
}

Variable SpMMBiasAct(const EdgeListPtr& edges, const Variable& edge_weight,
                     const Variable& x, const Variable& bias, bool relu) {
  SES_TRACE_SPAN("fwd:SpMMBiasAct");
  SES_CHECK(edges != nullptr);
  NodePtr pw = edge_weight.node(), px = x.node();
  NodePtr pb = bias.defined() ? bias.node() : nullptr;
  const int64_t e_count = edges->size();
  SES_CHECK(pw->value.rows() == e_count && pw->value.cols() == 1);
  const int64_t f = px->value.cols();
  if (pb != nullptr) SES_CHECK(pb->value.size() == f);
  const bool fused = pb != nullptr || relu;
  const double n_out = static_cast<double>(edges->num_nodes);
  t::Tensor out(edges->num_nodes, f);
  const auto plan = edges->plan();
  const kernels::SpmmChoice choice =
      plan->Choose(f, pw->value.data(), px->value.data());
  {
    // Aggregation plus the fused epilogue (bias add + activation applied
    // per CSR row while it is cache-hot): epilogue adds ~2 ops/element but
    // no extra output traffic.
    obs::KernelScope kscope(
        fused ? "spmm_fused" : "spmm", kernels::SpmmVariantName(choice),
        2.0 * static_cast<double>(e_count) * f + (fused ? 2.0 * n_out * f : 0.0),
        static_cast<double>(e_count) * (20.0 + 12.0 * f) + 4.0 * f);
    plan->Run(choice, pw->value.data(), px->value.data(), f, out.data(),
              pb != nullptr ? pb->value.data() : nullptr, relu);
  }
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(out)));
  t::Tensor out_copy;
  if (relu) out_copy = out;  // ReLU mask: out > 0 ⟺ pre-activation > 0
  std::vector<NodePtr> parents{pw, px};
  if (pb != nullptr) parents.push_back(pb);
  auto node = MakeOpNode(
      std::move(out), std::move(parents),
      [edges, pw, px, pb, f, relu,
       y = std::move(out_copy)](const t::Tensor& g) {
        // d(pre) = g ⊙ 1[out > 0] when the ReLU was fused; then the bias
        // gradient is the column sum and the aggregation gradient is the
        // plain SpMM backward — identical to the unfused chain's composition.
        const t::Tensor* gp = &g;
        t::Tensor dpre;
        if (relu) {
          dpre = t::Tensor(g.rows(), g.cols());
          const int64_t n = g.size();
          const float* pg = g.data();
          const float* py = y.data();
          float* pd = dpre.data();
          for (int64_t i = 0; i < n; ++i)
            pd[i] = py[i] > 0.0f ? pg[i] : 0.0f;
          gp = &dpre;
        }
        if (pb != nullptr && pb->requires_grad) {
          const t::Tensor db = t::SumCols(*gp);  // 1 x F
          t::Tensor& acc = pb->EnsureGrad();
          for (int64_t c = 0; c < f; ++c) acc[c] += db[c];
        }
        AccumulateSpmmGrads(*edges, pw, px, f, *gp);
      },
      "bwd:SpMMBiasAct");
  return Variable(node);
}

Variable EdgeSoftmax(const EdgeListPtr& edges, const Variable& scores) {
  SES_TRACE_SPAN("fwd:EdgeSoftmax");
  SES_CHECK(edges != nullptr);
  NodePtr ps = scores.node();
  const int64_t e_count = edges->size();
  SES_CHECK(ps->value.rows() == e_count && ps->value.cols() == 1);
  const int64_t n = edges->num_nodes;

  // Per-destination max for numerical stability, then exp / group-sum.
  std::vector<float> group_max(static_cast<size_t>(n),
                               -std::numeric_limits<float>::infinity());
  const t::Tensor& s = ps->value;
  for (int64_t e = 0; e < e_count; ++e) {
    const int64_t d = edges->dst[static_cast<size_t>(e)];
    group_max[static_cast<size_t>(d)] =
        std::max(group_max[static_cast<size_t>(d)], s[e]);
  }
  std::vector<double> group_sum(static_cast<size_t>(n), 0.0);
  t::Tensor y(e_count, 1);
  for (int64_t e = 0; e < e_count; ++e) {
    const int64_t d = edges->dst[static_cast<size_t>(e)];
    y[e] = std::exp(s[e] - group_max[static_cast<size_t>(d)]);
    group_sum[static_cast<size_t>(d)] += y[e];
  }
  for (int64_t e = 0; e < e_count; ++e) {
    const int64_t d = edges->dst[static_cast<size_t>(e)];
    y[e] = static_cast<float>(y[e] / group_sum[static_cast<size_t>(d)]);
  }
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor y_copy = y;
  auto node = MakeOpNode(
      std::move(y), {ps},
      [edges, ps, y = std::move(y_copy), n](const t::Tensor& g) {
        if (!ps->requires_grad) return;
        // dS_e = y_e * (dY_e - sum_{e' in group} dY_e' * y_e')
        std::vector<double> group_dot(static_cast<size_t>(n), 0.0);
        const int64_t e_count = edges->size();
        for (int64_t e = 0; e < e_count; ++e)
          group_dot[static_cast<size_t>(edges->dst[static_cast<size_t>(e)])] +=
              static_cast<double>(g[e]) * y[e];
        t::Tensor& ds = ps->EnsureGrad();
        for (int64_t e = 0; e < e_count; ++e) {
          const int64_t d = edges->dst[static_cast<size_t>(e)];
          ds[e] += y[e] * (g[e] - static_cast<float>(
                                      group_dot[static_cast<size_t>(d)]));
        }
      },
      "bwd:EdgeSoftmax");
  return Variable(node);
}

Variable SparseMaskedLinear(const std::shared_ptr<const tensor::SparseMatrix>& x,
                            const Variable& mask, const Variable& w) {
  SES_TRACE_SPAN("fwd:SparseMaskedLinear");
  SES_CHECK(x != nullptr);
  NodePtr pw = w.node();
  NodePtr pm = mask.defined() ? mask.node() : nullptr;
  SES_CHECK(pw->value.rows() == x->cols);
  if (pm) SES_CHECK(pm->value.rows() == x->nnz() && pm->value.cols() == 1);
  const int64_t h = pw->value.cols();

  t::Tensor out(x->rows, h);
  {
    // Masked CSR x dense-weight product: 2·nnz·h FLOPs (+1 mask multiply per
    // entry); traffic = CSR entry + mask + one W row per nonzero, output
    // written once.
    obs::KernelScope kscope(
        "spmm", "masked_linear",
        static_cast<double>(x->nnz()) * (2.0 * h + 1.0),
        static_cast<double>(x->nnz()) * (16.0 + 4.0 * h) +
            4.0 * static_cast<double>(x->rows) * h);
    const t::Tensor& wv = pw->value;
#pragma omp parallel for schedule(dynamic, 64)
    for (int64_t r = 0; r < x->rows; ++r) {
      float* dst = out.RowPtr(r);
      for (int64_t e = x->row_ptr[static_cast<size_t>(r)];
           e < x->row_ptr[static_cast<size_t>(r) + 1]; ++e) {
        float v = x->values[static_cast<size_t>(e)];
        if (pm) v *= pm->value[e];
        if (v == 0.0f) continue;
        const float* wrow = wv.RowPtr(x->col_idx[static_cast<size_t>(e)]);
        for (int64_t c = 0; c < h; ++c) dst[c] += v * wrow[c];
      }
    }
  }
  std::vector<NodePtr> parents{pw};
  if (pm) parents.push_back(pm);
  auto node = MakeOpNode(
      std::move(out), std::move(parents),
      [x, pw, pm, h](const t::Tensor& g) {
        if (pw->requires_grad) {
          // dW[j, :] += (mask*x)[i, j] * g[i, :]
          t::Tensor& dw = pw->EnsureGrad();
          for (int64_t r = 0; r < x->rows; ++r) {
            const float* grow = g.RowPtr(r);
            for (int64_t e = x->row_ptr[static_cast<size_t>(r)];
                 e < x->row_ptr[static_cast<size_t>(r) + 1]; ++e) {
              float v = x->values[static_cast<size_t>(e)];
              if (pm) v *= pm->value[e];
              if (v == 0.0f) continue;
              float* dwrow = dw.RowPtr(x->col_idx[static_cast<size_t>(e)]);
              for (int64_t c = 0; c < h; ++c) dwrow[c] += v * grow[c];
            }
          }
        }
        if (pm && pm->requires_grad) {
          // dmask[e] = x_val[e] * dot(W[col(e), :], g[row(e), :])
          t::Tensor& dm = pm->EnsureGrad();
          const t::Tensor& wv = pw->value;
#pragma omp parallel for schedule(dynamic, 64)
          for (int64_t r = 0; r < x->rows; ++r) {
            const float* grow = g.RowPtr(r);
            for (int64_t e = x->row_ptr[static_cast<size_t>(r)];
                 e < x->row_ptr[static_cast<size_t>(r) + 1]; ++e) {
              const float* wrow = wv.RowPtr(x->col_idx[static_cast<size_t>(e)]);
              double acc = 0.0;
              for (int64_t c = 0; c < h; ++c) acc += wrow[c] * grow[c];
              dm[e] += x->values[static_cast<size_t>(e)] *
                       static_cast<float>(acc);
            }
          }
        }
      },
      "bwd:SparseMaskedLinear");
  return Variable(node);
}

Variable FeatureMaskAtNnz(const Variable& h, const Variable& w2,
                          const Variable& b2,
                          const std::shared_ptr<const tensor::SparseMatrix>& pattern) {
  SES_TRACE_SPAN("fwd:FeatureMaskAtNnz");
  SES_CHECK(pattern != nullptr);
  NodePtr ph = h.node(), pw = w2.node(), pb = b2.node();
  SES_CHECK(ph->value.rows() == pattern->rows);
  SES_CHECK(pw->value.rows() == ph->value.cols());
  SES_CHECK(pw->value.cols() == pattern->cols);
  SES_CHECK(pb->value.size() == pattern->cols);
  const int64_t hd = ph->value.cols();
  const int64_t nnz = pattern->nnz();

  // Pre-compute row index per nonzero.
  auto row_of = std::make_shared<std::vector<int64_t>>(static_cast<size_t>(nnz));
  for (int64_t r = 0; r < pattern->rows; ++r)
    for (int64_t e = pattern->row_ptr[static_cast<size_t>(r)];
         e < pattern->row_ptr[static_cast<size_t>(r) + 1]; ++e)
      (*row_of)[static_cast<size_t>(e)] = r;

  t::Tensor y(nnz, 1);
  {
    // Per-nonzero sigmoid(h[i]·W2[:,j] + b[j]): a length-hd dot product per
    // entry; W2 column access is strided, billed once per entry.
    obs::KernelScope kscope(
        "spmm", "feature_mask", 2.0 * static_cast<double>(nnz) * hd,
        static_cast<double>(nnz) * (16.0 + 8.0 * hd));
    const t::Tensor& hv = ph->value;
    const t::Tensor& wv = pw->value;
    const t::Tensor& bv = pb->value;
#pragma omp parallel for schedule(static)
    for (int64_t e = 0; e < nnz; ++e) {
      const int64_t i = (*row_of)[static_cast<size_t>(e)];
      const int64_t j = pattern->col_idx[static_cast<size_t>(e)];
      const float* hrow = hv.RowPtr(i);
      double acc = bv[j];
      for (int64_t c = 0; c < hd; ++c) acc += hrow[c] * wv.At(c, j);
      const float z = static_cast<float>(acc);
      y[e] = z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                       : std::exp(z) / (1.0f + std::exp(z));
    }
  }
  if (!GradEnabled()) return Variable(MakeTapeFreeNode(std::move(y)));
  t::Tensor y_copy = y;
  auto node = MakeOpNode(
      std::move(y), {ph, pw, pb},
      [pattern, ph, pw, pb, row_of, hd, y = std::move(y_copy)](
          const t::Tensor& g) {
        const int64_t nnz = pattern->nnz();
        // dz[e] = g[e] * y[e] * (1 - y[e])
        std::vector<float> dz(static_cast<size_t>(nnz));
        for (int64_t e = 0; e < nnz; ++e)
          dz[static_cast<size_t>(e)] = g[e] * y[e] * (1.0f - y[e]);
        const t::Tensor& hv = ph->value;
        const t::Tensor& wv = pw->value;
        if (ph->requires_grad) {
          t::Tensor& dh = ph->EnsureGrad();
          for (int64_t e = 0; e < nnz; ++e) {
            const float d = dz[static_cast<size_t>(e)];
            if (d == 0.0f) continue;
            const int64_t i = (*row_of)[static_cast<size_t>(e)];
            const int64_t j = pattern->col_idx[static_cast<size_t>(e)];
            float* drow = dh.RowPtr(i);
            for (int64_t c = 0; c < hd; ++c) drow[c] += d * wv.At(c, j);
          }
        }
        if (pw->requires_grad) {
          t::Tensor& dw = pw->EnsureGrad();
          for (int64_t e = 0; e < nnz; ++e) {
            const float d = dz[static_cast<size_t>(e)];
            if (d == 0.0f) continue;
            const int64_t i = (*row_of)[static_cast<size_t>(e)];
            const int64_t j = pattern->col_idx[static_cast<size_t>(e)];
            const float* hrow = hv.RowPtr(i);
            for (int64_t c = 0; c < hd; ++c) dw.At(c, j) += d * hrow[c];
          }
        }
        if (pb->requires_grad) {
          t::Tensor& db = pb->EnsureGrad();
          for (int64_t e = 0; e < nnz; ++e)
            db[pattern->col_idx[static_cast<size_t>(e)]] +=
                dz[static_cast<size_t>(e)];
        }
      },
      "bwd:FeatureMaskAtNnz");
  return Variable(node);
}

}  // namespace ses::autograd
