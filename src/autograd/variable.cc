#include "autograd/variable.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "obs/trace.h"
#include "util/logging.h"

namespace ses::autograd {
namespace {
std::atomic<uint64_t> g_node_counter{0};
std::atomic<uint64_t> g_tape_nodes_created{0};
thread_local int t_inference_depth = 0;
}  // namespace

InferenceGuard::InferenceGuard() { ++t_inference_depth; }

InferenceGuard::~InferenceGuard() { --t_inference_depth; }

bool InferenceGuard::Active() { return t_inference_depth > 0; }

uint64_t TapeNodesCreated() { return g_tape_nodes_created.load(); }

tensor::Tensor& Node::EnsureGrad() {
  if (!grad.SameShape(value)) grad = tensor::Tensor(value.rows(), value.cols());
  return grad;
}

Variable Variable::Parameter(tensor::Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->id = g_node_counter.fetch_add(1);
  return Variable(std::move(node));
}

Variable Variable::Constant(tensor::Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  node->id = g_node_counter.fetch_add(1);
  return Variable(std::move(node));
}

void Variable::ZeroGrad() {
  if (node_ && node_->grad.SameShape(node_->value)) node_->grad.Fill(0.0f);
}

NodePtr MakeTapeFreeNode(tensor::Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->id = g_node_counter.fetch_add(1);
  return node;
}

NodePtr MakeTapeNode(tensor::Tensor value, std::vector<NodePtr> parents,
                     std::function<void(const tensor::Tensor&)> backward_fn,
                     const char* bwd_label) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  node->backward_fn = std::move(backward_fn);
  node->bwd_label = bwd_label;
  node->id = g_node_counter.fetch_add(1);
  g_tape_nodes_created.fetch_add(1, std::memory_order_relaxed);
  for (const auto& p : node->parents) {
    if (p && p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  return node;
}

void Backward(const Variable& root, const tensor::Tensor& seed) {
  SES_TRACE_SPAN("autograd/backward");
  SES_CHECK(root.defined());
  SES_CHECK(seed.SameShape(root.value()));
  // Collect reachable nodes (iterative DFS to survive deep graphs).
  std::vector<Node*> reachable;
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack{root.node().get()};
  seen.insert(root.node().get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    reachable.push_back(n);
    for (const auto& p : n->parents) {
      if (p && p->requires_grad && seen.insert(p.get()).second)
        stack.push_back(p.get());
    }
  }
  // Creation order is a topological order; process in reverse.
  std::sort(reachable.begin(), reachable.end(),
            [](const Node* a, const Node* b) { return a->id > b->id; });
  root.node()->EnsureGrad().AddInPlace(seed);
  for (Node* n : reachable) {
    if (n->backward_fn && n->requires_grad) {
      obs::ScopedSpan span(n->bwd_label != nullptr ? n->bwd_label : "bwd:op");
      n->backward_fn(n->EnsureGrad());
    }
  }
}

void Backward(const Variable& root) {
  SES_CHECK(root.defined());
  SES_CHECK(root.value().size() == 1);
  tensor::Tensor seed(root.value().rows(), root.value().cols());
  seed.Fill(1.0f);
  Backward(root, seed);
}

}  // namespace ses::autograd
