#include "viz/tsne.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::viz {

namespace t = ses::tensor;

namespace {

/// Binary-searches the Gaussian bandwidth of row i so the conditional
/// distribution's perplexity matches the target; writes p_{j|i}.
void RowConditional(const t::Tensor& d2, int64_t i, double perplexity,
                    std::vector<double>* p_row) {
  const int64_t n = d2.rows();
  double beta = 1.0, beta_min = -1e30, beta_max = 1e30;
  const double log_perp = std::log(perplexity);
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0, dot = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) {
        (*p_row)[static_cast<size_t>(j)] = 0.0;
        continue;
      }
      const double pj = std::exp(-beta * d2.At(i, j));
      (*p_row)[static_cast<size_t>(j)] = pj;
      sum += pj;
      dot += pj * d2.At(i, j);
    }
    if (sum <= 0.0) sum = 1e-12;
    const double entropy = std::log(sum) + beta * dot / sum;
    const double diff = entropy - log_perp;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_min = beta;
      beta = beta_max > 1e29 ? beta * 2.0 : 0.5 * (beta + beta_max);
    } else {
      beta_max = beta;
      beta = beta_min < -1e29 ? beta / 2.0 : 0.5 * (beta + beta_min);
    }
  }
  double sum = 0.0;
  for (double v : *p_row) sum += v;
  if (sum <= 0.0) sum = 1e-12;
  for (double& v : *p_row) v /= sum;
}

}  // namespace

t::Tensor Tsne(const t::Tensor& data, const TsneOptions& options) {
  const int64_t n = data.rows();
  SES_CHECK(n >= 4);
  util::Rng rng(options.seed + 777);

  // Symmetrized affinities P.
  t::Tensor d2 = t::PairwiseSquaredDistances(data);
  std::vector<double> p(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
  const double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);
#pragma omp parallel
  {
    std::vector<double> row(static_cast<size_t>(n));
#pragma omp for schedule(dynamic, 16)
    for (int64_t i = 0; i < n; ++i) {
      RowConditional(d2, i, perplexity, &row);
      for (int64_t j = 0; j < n; ++j)
        p[static_cast<size_t>(i * n + j)] = row[static_cast<size_t>(j)];
    }
  }
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = i + 1; j < n; ++j) {
      const double sym = (p[static_cast<size_t>(i * n + j)] +
                          p[static_cast<size_t>(j * n + i)]) /
                         (2.0 * n);
      p[static_cast<size_t>(i * n + j)] = std::max(sym, 1e-12);
      p[static_cast<size_t>(j * n + i)] = std::max(sym, 1e-12);
    }

  // Gradient descent with momentum on the KL divergence.
  const int64_t dims = options.output_dims;
  t::Tensor y = t::Tensor::Randn(n, dims, &rng);
  y.ScaleInPlace(1e-2f);
  t::Tensor velocity(n, dims);
  std::vector<double> q(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (int64_t iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    const double momentum = iter < 100 ? 0.5 : 0.8;
    // Student-t affinities Q (unnormalized), then total.
    double q_total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : q_total)
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) {
          q[static_cast<size_t>(i * n + j)] = 0.0;
          continue;
        }
        double dist = 0.0;
        for (int64_t c = 0; c < dims; ++c) {
          const double d = y.At(i, c) - y.At(j, c);
          dist += d * d;
        }
        const double w = 1.0 / (1.0 + dist);
        q[static_cast<size_t>(i * n + j)] = w;
        q_total += w;
      }
    }
    if (q_total <= 0.0) q_total = 1e-12;
#pragma omp parallel for schedule(static)
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < dims; ++c) {
        double grad = 0.0;
        for (int64_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const double w = q[static_cast<size_t>(i * n + j)];
          const double qij = std::max(w / q_total, 1e-12);
          const double mult =
              (exaggeration * p[static_cast<size_t>(i * n + j)] - qij) * w;
          grad += 4.0 * mult * (y.At(i, c) - y.At(j, c));
        }
        velocity.At(i, c) = static_cast<float>(
            momentum * velocity.At(i, c) - options.learning_rate * grad);
      }
    }
    y.AddInPlace(velocity);
  }
  return y;
}

}  // namespace ses::viz
