#include "viz/graph_export.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"

namespace ses::viz {
namespace {

const char* kPalette[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
                          "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
                          "#9c755f", "#bab0ac"};

std::string ColorOf(int64_t label) {
  return kPalette[static_cast<size_t>(label) % 10];
}

/// Deterministic Fruchterman-Reingold layout in the unit square.
std::vector<std::pair<double, double>> Layout(const graph::Graph& g) {
  const int64_t n = g.num_nodes();
  util::Rng rng(12345);
  std::vector<std::pair<double, double>> pos(static_cast<size_t>(n));
  for (auto& p : pos) p = {rng.Uniform(), rng.Uniform()};
  const double k = std::sqrt(1.0 / std::max<int64_t>(n, 1));
  double temperature = 0.1;
  for (int iter = 0; iter < 120; ++iter) {
    std::vector<std::pair<double, double>> disp(static_cast<size_t>(n),
                                                {0.0, 0.0});
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double dx = pos[static_cast<size_t>(i)].first -
                    pos[static_cast<size_t>(j)].first;
        double dy = pos[static_cast<size_t>(i)].second -
                    pos[static_cast<size_t>(j)].second;
        double dist = std::max(1e-6, std::sqrt(dx * dx + dy * dy));
        const double repulse = k * k / dist;
        dx /= dist;
        dy /= dist;
        disp[static_cast<size_t>(i)].first += dx * repulse;
        disp[static_cast<size_t>(i)].second += dy * repulse;
        disp[static_cast<size_t>(j)].first -= dx * repulse;
        disp[static_cast<size_t>(j)].second -= dy * repulse;
      }
    }
    for (auto [u, v] : g.edges()) {
      double dx = pos[static_cast<size_t>(u)].first -
                  pos[static_cast<size_t>(v)].first;
      double dy = pos[static_cast<size_t>(u)].second -
                  pos[static_cast<size_t>(v)].second;
      double dist = std::max(1e-6, std::sqrt(dx * dx + dy * dy));
      const double attract = dist * dist / k;
      dx /= dist;
      dy /= dist;
      disp[static_cast<size_t>(u)].first -= dx * attract;
      disp[static_cast<size_t>(u)].second -= dy * attract;
      disp[static_cast<size_t>(v)].first += dx * attract;
      disp[static_cast<size_t>(v)].second += dy * attract;
    }
    for (int64_t i = 0; i < n; ++i) {
      double dx = disp[static_cast<size_t>(i)].first;
      double dy = disp[static_cast<size_t>(i)].second;
      const double len = std::max(1e-9, std::sqrt(dx * dx + dy * dy));
      const double step = std::min(len, temperature);
      auto& p = pos[static_cast<size_t>(i)];
      p.first = std::clamp(p.first + dx / len * step, 0.0, 1.0);
      p.second = std::clamp(p.second + dy / len * step, 0.0, 1.0);
    }
    temperature *= 0.95;
  }
  return pos;
}

float MaxWeight(const std::vector<float>& w) {
  float mx = 1e-9f;
  for (float v : w) mx = std::max(mx, v);
  return mx;
}

}  // namespace

std::string SubgraphToSvg(const graph::Subgraph& sub,
                          const std::vector<int64_t>& labels,
                          const std::vector<float>& edge_weights,
                          int64_t highlight_node) {
  const auto& g = sub.graph;
  SES_CHECK(edge_weights.size() == static_cast<size_t>(g.num_edges()));
  auto pos = Layout(g);
  const double size = 480.0, margin = 24.0;
  auto px = [&](double x) { return margin + x * (size - 2 * margin); };
  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size
      << "\" height=\"" << size << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  const float mx = MaxWeight(edge_weights);
  for (size_t e = 0; e < edge_weights.size(); ++e) {
    auto [u, v] = g.edges()[e];
    const double alpha = 0.15 + 0.85 * edge_weights[e] / mx;
    const double width = 0.6 + 2.4 * edge_weights[e] / mx;
    svg << "<line x1=\"" << px(pos[static_cast<size_t>(u)].first) << "\" y1=\""
        << px(pos[static_cast<size_t>(u)].second) << "\" x2=\""
        << px(pos[static_cast<size_t>(v)].first) << "\" y2=\""
        << px(pos[static_cast<size_t>(v)].second)
        << "\" stroke=\"#333333\" stroke-opacity=\"" << alpha
        << "\" stroke-width=\"" << width << "\"/>\n";
  }
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    const int64_t global = sub.nodes[static_cast<size_t>(i)];
    const bool is_center = i == highlight_node;
    svg << "<circle cx=\"" << px(pos[static_cast<size_t>(i)].first)
        << "\" cy=\"" << px(pos[static_cast<size_t>(i)].second) << "\" r=\""
        << (is_center ? 9 : 6) << "\" fill=\""
        << ColorOf(labels[static_cast<size_t>(global)]) << "\" stroke=\""
        << (is_center ? "#000000" : "#ffffff") << "\" stroke-width=\""
        << (is_center ? 2.5 : 1.0) << "\"/>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string SubgraphToDot(const graph::Subgraph& sub,
                          const std::vector<int64_t>& labels,
                          const std::vector<float>& edge_weights,
                          int64_t highlight_node) {
  const auto& g = sub.graph;
  SES_CHECK(edge_weights.size() == static_cast<size_t>(g.num_edges()));
  std::ostringstream dot;
  dot << "graph explanation {\n  node [style=filled];\n";
  for (int64_t i = 0; i < g.num_nodes(); ++i) {
    const int64_t global = sub.nodes[static_cast<size_t>(i)];
    dot << "  n" << global << " [fillcolor=\""
        << ColorOf(labels[static_cast<size_t>(global)]) << "\""
        << (i == highlight_node ? ", penwidth=3" : "") << "];\n";
  }
  const float mx = MaxWeight(edge_weights);
  for (size_t e = 0; e < edge_weights.size(); ++e) {
    auto [u, v] = g.edges()[e];
    dot << "  n" << sub.nodes[static_cast<size_t>(u)] << " -- n"
        << sub.nodes[static_cast<size_t>(v)] << " [penwidth="
        << (0.5 + 3.0 * edge_weights[e] / mx) << "];\n";
  }
  dot << "}\n";
  return dot.str();
}

void WriteHeatmapPgm(const tensor::Tensor& matrix, const std::string& path) {
  util::EnsureDirectories(path);
  std::ofstream out(path, std::ios::binary);
  SES_CHECK(out.good());
  const float lo = matrix.Min();
  const float hi = std::max(matrix.Max(), lo + 1e-9f);
  out << "P5\n" << matrix.cols() << " " << matrix.rows() << "\n255\n";
  for (int64_t i = 0; i < matrix.size(); ++i) {
    const float norm = (matrix[i] - lo) / (hi - lo);
    out.put(static_cast<char>(static_cast<unsigned char>(255.0f * norm)));
  }
}

std::string ScatterToSvg(const tensor::Tensor& points2d,
                         const std::vector<int64_t>& labels,
                         const std::string& title) {
  SES_CHECK(points2d.cols() == 2);
  const double size = 520.0, margin = 30.0;
  float xlo = points2d.At(0, 0), xhi = xlo, ylo = points2d.At(0, 1), yhi = ylo;
  for (int64_t i = 0; i < points2d.rows(); ++i) {
    xlo = std::min(xlo, points2d.At(i, 0));
    xhi = std::max(xhi, points2d.At(i, 0));
    ylo = std::min(ylo, points2d.At(i, 1));
    yhi = std::max(yhi, points2d.At(i, 1));
  }
  const float xr = std::max(xhi - xlo, 1e-6f), yr = std::max(yhi - ylo, 1e-6f);
  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size
      << "\" height=\"" << size << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << "<text x=\"12\" y=\"18\" font-family=\"sans-serif\" font-size=\"14\">"
      << title << "</text>\n";
  for (int64_t i = 0; i < points2d.rows(); ++i) {
    const double x = margin + (points2d.At(i, 0) - xlo) / xr * (size - 2 * margin);
    const double y = margin + (points2d.At(i, 1) - ylo) / yr * (size - 2 * margin);
    svg << "<circle cx=\"" << x << "\" cy=\"" << y << "\" r=\"2.5\" fill=\""
        << ColorOf(labels[static_cast<size_t>(i)]) << "\" fill-opacity=\"0.8\"/>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace ses::viz
