#ifndef SES_VIZ_GRAPH_EXPORT_H_
#define SES_VIZ_GRAPH_EXPORT_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ses::viz {

/// Renders a subgraph with edge-importance weights as a standalone SVG
/// (Figure 6 / Figure 8 style: darker edge = higher importance, node color
/// by label). Layout is force-directed (Fruchterman-Reingold, deterministic
/// seed).
std::string SubgraphToSvg(const graph::Subgraph& sub,
                          const std::vector<int64_t>& labels,
                          const std::vector<float>& edge_weights,
                          int64_t highlight_node = -1);

/// Graphviz DOT export of the same data (for offline re-rendering).
std::string SubgraphToDot(const graph::Subgraph& sub,
                          const std::vector<int64_t>& labels,
                          const std::vector<float>& edge_weights,
                          int64_t highlight_node = -1);

/// Writes a matrix as a binary PGM (P5) grayscale heatmap, min-max scaled —
/// the Figure-7 mask-evolution images.
void WriteHeatmapPgm(const tensor::Tensor& matrix, const std::string& path);

/// 2-D scatter (e.g. t-SNE output) as SVG, colored by label (Figure 5).
std::string ScatterToSvg(const tensor::Tensor& points2d,
                         const std::vector<int64_t>& labels,
                         const std::string& title);

}  // namespace ses::viz

#endif  // SES_VIZ_GRAPH_EXPORT_H_
