#ifndef SES_VIZ_TSNE_H_
#define SES_VIZ_TSNE_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace ses::viz {

/// Exact t-SNE (van der Maaten & Hinton, 2008) for the Figure-5 embedding
/// visualizations. O(N^2) per iteration — fine at the few-thousand-node
/// scale of the paper's CiteSeer plots; callers subsample above that.
struct TsneOptions {
  int64_t output_dims = 2;
  double perplexity = 30.0;
  int64_t iterations = 300;
  double learning_rate = 200.0;
  double early_exaggeration = 4.0;
  int64_t exaggeration_iters = 50;
  uint64_t seed = 0;
};

/// Returns an N x output_dims embedding of the rows of `data`.
tensor::Tensor Tsne(const tensor::Tensor& data, const TsneOptions& options);

}  // namespace ses::viz

#endif  // SES_VIZ_TSNE_H_
