#ifndef SES_KERNELS_SPMM_H_
#define SES_KERNELS_SPMM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "kernels/dispatch.h"

namespace ses::kernels {

/// ---------------------------------------------------------------------------
/// Per-graph SpMM planning and autotuning.
///
/// Aggregation SpMMs run thousands of times over the same adjacency (per
/// epoch in training, per request in serving), so the per-graph work — a
/// CSR-by-destination view of the edge list, cheap graph statistics, and the
/// variant decision derived from them — is computed once and memoized in an
/// `SpmmPlan` that lives on the owning EdgeList. The decision is a PURE
/// function of (graph statistics, feature width, active SIMD tier) so that
/// every path over the same graph — taped training, taped eval, the
/// InferenceGuard serving fast path — provably picks the same kernel and
/// stays bitwise reproducible. One-shot timed calibration on the real
/// operands is available behind SES_KERNEL_AUTOTUNE=timed; it can pick a
/// differently-ordered variant (csr_blocked), so it is opt-in and documented
/// as tolerance-level, not bitwise, reproducible.

/// Structure-only CSR view of an edge list, grouped by destination. Entries
/// keep their original edge order within each row (stable counting sort), so
/// per-row accumulation order equals edge order — the property that makes
/// csr_* bitwise-equal to edges_* at the same tier. `perm` maps each entry
/// back to its edge index for weight lookup (weights change every call; the
/// structure does not).
struct CsrAdj {
  int64_t rows = 0;  ///< destination nodes
  int64_t cols = 0;  ///< source nodes
  std::vector<int64_t> row_ptr;  ///< size rows + 1
  std::vector<int64_t> col;      ///< source node per entry (edge order)
  std::vector<int64_t> perm;     ///< entry -> original edge index
  /// Column-ascending reorder of (col, perm) per row, built on demand for
  /// the blocked variant (which sweeps source blocks).
  std::vector<int64_t> sorted_col;
  std::vector<int64_t> sorted_perm;

  int64_t nnz() const { return static_cast<int64_t>(col.size()); }
};

/// Builds the CSR-by-destination view with a stable counting sort: O(E + N),
/// no comparisons, entry order within each row == edge order.
CsrAdj BuildCsrByDst(const int64_t* src, const int64_t* dst, int64_t e,
                     int64_t n);

/// Cheap statistics the autotuner decides from. Degree means in-degree (by
/// destination — the scatter side that determines SpMM locality).
struct GraphStats {
  int64_t nodes = 0;
  int64_t nnz = 0;
  int64_t max_degree = 0;
  double density = 0.0;     ///< nnz / nodes^2
  double avg_degree = 0.0;  ///< nnz / nodes
  double degree_cv = 0.0;   ///< stddev(in-degree) / mean — skew proxy
};

GraphStats ComputeGraphStats(const int64_t* dst, int64_t e, int64_t n);

enum class SpmmAlgo : int {
  kEdgeOrder = 0,   ///< edge-stream scatter; no per-graph setup
  kCsr = 1,         ///< CSR-by-dst rows, edge order preserved
  kCsrBlocked = 2,  ///< CSR + source-blocked sweep (skewed-degree graphs)
};
inline constexpr int kNumSpmmAlgos = 3;

struct SpmmChoice {
  SpmmAlgo algo = SpmmAlgo::kCsr;
  SimdTier tier = SimdTier::kScalar;
};

/// Static-storage variant label ("csr_avx512", "edges_scalar", ...) for
/// KernelScope / metrics / bench entries.
const char* SpmmVariantName(SpmmChoice choice);

/// Autotune modes (SES_KERNEL_AUTOTUNE env: "heuristic" default, "timed").
enum class AutotuneMode { kHeuristic = 0, kTimed = 1 };
AutotuneMode ActiveAutotuneMode();
void ResetAutotuneModeForTest();

/// The deterministic decision rule: a pure function of (stats, feature
/// width, tier). Exposed directly for the CI determinism check.
SpmmChoice HeuristicSpmmChoice(const GraphStats& stats, int64_t feat,
                               SimdTier tier);

/// Deterministic source-block width for the blocked variant: sized so the
/// gathered x block (block_cols rows of f floats) fits the L2 budget.
int64_t BlockColsFor(int64_t feat);

/// Memoized per-graph plan: stats eagerly, CSR views lazily (an edge-order
/// decision never pays for the CSR build), choice per feature width. All
/// accessors are thread-safe; serving threads share one plan.
///
/// The plan RETAINS the src/dst pointers it was built from — it lives inside
/// the owning EdgeList (see SpmmPlanCell), whose index arrays are immutable
/// and outlive it. Callers that copy a plan pointer out must keep the
/// EdgeListPtr alive alongside it.
class SpmmPlan {
 public:
  SpmmPlan(const int64_t* src, const int64_t* dst, int64_t e, int64_t n);

  const GraphStats& stats() const { return stats_; }

  /// The variant decision for feature width `feat`, memoized per width.
  /// Heuristic mode ignores `w`/`x`; timed mode (when they are non-null)
  /// runs a one-shot calibration over the real operands the first time a
  /// width is seen. The first call for a width wins — later calls replay
  /// the memo, so a session's pre-warm decision and its forwards agree.
  SpmmChoice Choose(int64_t feat, const float* w, const float* x) const;

  /// Pins the statistics Choose decides from to `stats` instead of this
  /// plan's own, clearing any memoized decisions. Sharded serving pins every
  /// shard plan to the WHOLE-graph statistics so all shards land in the same
  /// accumulation-order class as the single-session plan (csr/edges vs
  /// csr_blocked) — the property the bitwise shard-parity contract rests on.
  /// Pinned plans always decide heuristically; timed calibration could pick
  /// a differently-ordered variant on one shard only, so it is bypassed.
  void PinChoiceStats(const GraphStats& stats) const;

  /// Runs the chosen SpMM: out(nodes x f, zero-initialized) accumulates the
  /// weighted aggregation, then the optional fused epilogue (bias/ReLU).
  void Run(SpmmChoice choice, const float* w, const float* x, int64_t f,
           float* out, const float* bias, bool relu) const;

 private:
  const CsrAdj& EnsureCsr() const;
  const CsrAdj& EnsureSortedCsr() const;
  SpmmChoice TimedChoice(int64_t feat, const float* w, const float* x) const;

  const int64_t* src_ = nullptr;
  const int64_t* dst_ = nullptr;
  int64_t edges_ = 0;
  GraphStats stats_;
  mutable std::mutex mu_;
  mutable CsrAdj csr_;          ///< rows empty until built
  mutable bool csr_built_ = false;
  mutable bool sorted_built_ = false;
  mutable std::vector<std::pair<int64_t, SpmmChoice>> choice_memo_;
  mutable bool stats_pinned_ = false;
  mutable GraphStats pinned_stats_;  ///< decision stats when pinned
};

/// Holder for the plan an EdgeList memoizes. Copy/move produce an EMPTY cell
/// (plans describe one index array instance); Get() rebuilds if the edge
/// count or node count no longer match.
class SpmmPlanCell {
 public:
  SpmmPlanCell() = default;
  SpmmPlanCell(const SpmmPlanCell&) {}
  SpmmPlanCell(SpmmPlanCell&&) noexcept {}
  SpmmPlanCell& operator=(const SpmmPlanCell&) { return *this; }
  SpmmPlanCell& operator=(SpmmPlanCell&&) noexcept { return *this; }

  std::shared_ptr<const SpmmPlan> Get(const int64_t* src, const int64_t* dst,
                                      int64_t e, int64_t n) const;

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const SpmmPlan> plan_;
};

}  // namespace ses::kernels

#endif  // SES_KERNELS_SPMM_H_
