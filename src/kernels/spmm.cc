#include "kernels/spmm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "util/logging.h"

namespace ses::kernels {

namespace {

/// L2 budget the blocked variant targets for its gathered-x working set.
/// Fixed (not probed) so the heuristic stays a pure function of its inputs
/// across machines of the same class.
constexpr int64_t kL2BudgetBytes = 1 << 20;

/// Below this nnz the CSR build costs more than it saves; explain-path motif
/// subgraphs are a few dozen edges.
constexpr int64_t kTinyNnz = 2048;

std::atomic<int> g_autotune_mode{-1};

AutotuneMode ResolveAutotuneMode() {
  const char* mode = std::getenv("SES_KERNEL_AUTOTUNE");
  if (mode == nullptr || mode[0] == '\0' ||
      std::strcmp(mode, "heuristic") == 0)
    return AutotuneMode::kHeuristic;
  if (std::strcmp(mode, "timed") == 0) return AutotuneMode::kTimed;
  SES_LOG_WARN << "SES_KERNEL_AUTOTUNE='" << mode
               << "' is not heuristic|timed; using heuristic";
  return AutotuneMode::kHeuristic;
}

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

AutotuneMode ActiveAutotuneMode() {
  int mode = g_autotune_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    mode = static_cast<int>(ResolveAutotuneMode());
    g_autotune_mode.store(mode, std::memory_order_release);
  }
  return static_cast<AutotuneMode>(mode);
}

void ResetAutotuneModeForTest() {
  g_autotune_mode.store(-1, std::memory_order_release);
}

CsrAdj BuildCsrByDst(const int64_t* src, const int64_t* dst, int64_t e,
                     int64_t n) {
  CsrAdj csr;
  csr.rows = n;
  csr.cols = n;
  csr.row_ptr.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t i = 0; i < e; ++i) {
    SES_CHECK(dst[i] >= 0 && dst[i] < n);
    ++csr.row_ptr[static_cast<size_t>(dst[i]) + 1];
  }
  for (int64_t r = 0; r < n; ++r)
    csr.row_ptr[static_cast<size_t>(r) + 1] +=
        csr.row_ptr[static_cast<size_t>(r)];
  csr.col.resize(static_cast<size_t>(e));
  csr.perm.resize(static_cast<size_t>(e));
  std::vector<int64_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  // Walking edges in order with per-row cursors is a STABLE sort: within a
  // row, entries appear in ascending edge index, so per-row accumulation
  // replays the edge-order sequence exactly (the bitwise-parity invariant).
  for (int64_t i = 0; i < e; ++i) {
    const int64_t slot = cursor[static_cast<size_t>(dst[i])]++;
    csr.col[static_cast<size_t>(slot)] = src[i];
    csr.perm[static_cast<size_t>(slot)] = i;
  }
  return csr;
}

GraphStats ComputeGraphStats(const int64_t* dst, int64_t e, int64_t n) {
  GraphStats s;
  s.nodes = n;
  s.nnz = e;
  if (n == 0) return s;
  std::vector<int64_t> deg(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < e; ++i) ++deg[static_cast<size_t>(dst[i])];
  s.max_degree = *std::max_element(deg.begin(), deg.end());
  s.avg_degree = static_cast<double>(e) / static_cast<double>(n);
  s.density = static_cast<double>(e) /
              (static_cast<double>(n) * static_cast<double>(n));
  double var = 0.0;
  for (int64_t d : deg) {
    const double delta = static_cast<double>(d) - s.avg_degree;
    var += delta * delta;
  }
  var /= static_cast<double>(n);
  s.degree_cv = s.avg_degree > 0.0 ? std::sqrt(var) / s.avg_degree : 0.0;
  return s;
}

const char* SpmmVariantName(SpmmChoice choice) {
  static const char* kNames[kNumSpmmAlgos][kNumSimdTiers] = {
      {"edges_scalar", "edges_avx2", "edges_avx512"},
      {"csr_scalar", "csr_avx2", "csr_avx512"},
      {"csr_blocked_scalar", "csr_blocked_avx2", "csr_blocked_avx512"},
  };
  return kNames[static_cast<int>(choice.algo)][static_cast<int>(choice.tier)];
}

SpmmChoice HeuristicSpmmChoice(const GraphStats& stats, int64_t feat,
                               SimdTier tier) {
  SpmmChoice c{SpmmAlgo::kCsr, tier};
  // Tiny graphs (explain-path motifs): the CSR build is pure overhead and
  // the whole working set is cache-resident anyway.
  if (stats.nnz < kTinyNnz) {
    c.algo = SpmmAlgo::kEdgeOrder;
    return c;
  }
  // Skewed in-degree AND a gathered working set past L2: hot rows thrash the
  // cache under plain CSR order, so sweep source blocks instead. The reorder
  // costs bitwise parity, so the bar is deliberately high.
  const double x_bytes =
      4.0 * static_cast<double>(stats.nodes) * static_cast<double>(feat);
  if (stats.degree_cv > 1.5 && stats.avg_degree >= 4.0 &&
      x_bytes > static_cast<double>(kL2BudgetBytes))
    c.algo = SpmmAlgo::kCsrBlocked;
  return c;
}

int64_t BlockColsFor(int64_t feat) {
  // Half the L2 budget for the gathered x rows, the rest for out/CSR stream.
  const int64_t rows_in_budget = (kL2BudgetBytes / 2) / (4 * std::max<int64_t>(feat, 1));
  return std::max<int64_t>(256, rows_in_budget);
}

SpmmPlan::SpmmPlan(const int64_t* src, const int64_t* dst, int64_t e,
                   int64_t n)
    : src_(src), dst_(dst), edges_(e), stats_(ComputeGraphStats(dst, e, n)) {}

const CsrAdj& SpmmPlan::EnsureCsr() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!csr_built_) {
    csr_ = BuildCsrByDst(src_, dst_, edges_, stats_.nodes);
    csr_built_ = true;
  }
  return csr_;
}

const CsrAdj& SpmmPlan::EnsureSortedCsr() const {
  EnsureCsr();
  std::lock_guard<std::mutex> lock(mu_);
  if (!sorted_built_) {
    csr_.sorted_col = csr_.col;
    csr_.sorted_perm = csr_.perm;
    std::vector<std::pair<int64_t, int64_t>> row(0);
    for (int64_t r = 0; r < csr_.rows; ++r) {
      const int64_t lo = csr_.row_ptr[static_cast<size_t>(r)];
      const int64_t hi = csr_.row_ptr[static_cast<size_t>(r) + 1];
      row.clear();
      for (int64_t i = lo; i < hi; ++i)
        row.emplace_back(csr_.col[static_cast<size_t>(i)],
                         csr_.perm[static_cast<size_t>(i)]);
      std::sort(row.begin(), row.end());
      for (int64_t i = lo; i < hi; ++i) {
        csr_.sorted_col[static_cast<size_t>(i)] =
            row[static_cast<size_t>(i - lo)].first;
        csr_.sorted_perm[static_cast<size_t>(i)] =
            row[static_cast<size_t>(i - lo)].second;
      }
    }
    sorted_built_ = true;
  }
  return csr_;
}

SpmmChoice SpmmPlan::TimedChoice(int64_t feat, const float* w,
                                 const float* x) const {
  const SimdTier tier = ActiveTier();
  const SpmmChoice candidates[2] = {{SpmmAlgo::kCsr, tier},
                                    {SpmmAlgo::kCsrBlocked, tier}};
  std::vector<float> scratch(
      static_cast<size_t>(stats_.nodes) * static_cast<size_t>(feat));
  SpmmChoice best = candidates[0];
  double best_ns = 0.0;
  for (const SpmmChoice& cand : candidates) {
    std::fill(scratch.begin(), scratch.end(), 0.0f);
    const double t0 = NowNs();
    Run(cand, w, x, feat, scratch.data(), nullptr, false);
    const double elapsed = NowNs() - t0;
    if (cand.algo == candidates[0].algo || elapsed < best_ns) {
      best = cand;
      best_ns = elapsed;
    }
  }
  return best;
}

void SpmmPlan::PinChoiceStats(const GraphStats& stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_pinned_ && pinned_stats_.nodes == stats.nodes &&
      pinned_stats_.nnz == stats.nnz &&
      pinned_stats_.max_degree == stats.max_degree &&
      pinned_stats_.avg_degree == stats.avg_degree &&
      pinned_stats_.degree_cv == stats.degree_cv)
    return;  // idempotent re-pin (session artifact rebuild): keep the memo
  stats_pinned_ = true;
  pinned_stats_ = stats;
  choice_memo_.clear();
}

SpmmChoice SpmmPlan::Choose(int64_t feat, const float* w,
                            const float* x) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [f, c] : choice_memo_)
      if (f == feat) return c;
    if (stats_pinned_) {
      // Pinned plans decide from the caller-supplied stats, heuristically —
      // see PinChoiceStats. Memoize under the same lock; no timed path.
      const SpmmChoice choice =
          HeuristicSpmmChoice(pinned_stats_, feat, ActiveTier());
      choice_memo_.emplace_back(feat, choice);
      return choice;
    }
  }
  SpmmChoice choice;
  if (ActiveAutotuneMode() == AutotuneMode::kTimed && w != nullptr &&
      x != nullptr && stats_.nnz >= kTinyNnz) {
    choice = TimedChoice(feat, w, x);
  } else {
    choice = HeuristicSpmmChoice(stats_, feat, ActiveTier());
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [f, c] : choice_memo_)  // lost the race: first call wins
    if (f == feat) return c;
  choice_memo_.emplace_back(feat, choice);
  return choice;
}

void SpmmPlan::Run(SpmmChoice choice, const float* w, const float* x,
                   int64_t f, float* out, const float* bias,
                   bool relu) const {
  const Dispatch& d = DispatchFor(choice.tier);
  switch (choice.algo) {
    case SpmmAlgo::kEdgeOrder: {
      d.spmm_edges(src_, dst_, w, edges_, x, f, out);
      if (bias != nullptr || relu)
        for (int64_t r = 0; r < stats_.nodes; ++r)
          d.bias_act_row(out + r * f, bias, f, relu);
      break;
    }
    case SpmmAlgo::kCsr: {
      const CsrAdj& csr = EnsureCsr();
      d.spmm_csr(csr.rows, csr.row_ptr.data(), csr.col.data(),
                 csr.perm.data(), w, x, f, out, bias, relu);
      break;
    }
    case SpmmAlgo::kCsrBlocked: {
      const CsrAdj& csr = EnsureSortedCsr();
      d.spmm_csr_blocked(csr.rows, csr.cols, csr.row_ptr.data(),
                         csr.sorted_col.data(), csr.sorted_perm.data(), w, x,
                         f, out, bias, relu, BlockColsFor(f));
      break;
    }
  }
}

std::shared_ptr<const SpmmPlan> SpmmPlanCell::Get(const int64_t* src,
                                                  const int64_t* dst,
                                                  int64_t e, int64_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_ == nullptr || plan_->stats().nnz != e ||
      plan_->stats().nodes != n)
    plan_ = std::make_shared<const SpmmPlan>(src, dst, e, n);
  return plan_;
}

}  // namespace ses::kernels
