#ifndef SES_KERNELS_KERNEL_IMPL_H_
#define SES_KERNELS_KERNEL_IMPL_H_

/// Internal: shared loop bodies for the per-tier translation units.
///
/// Each tier TU (kernels_scalar.cc, kernels_avx2.cc, kernels_avx512.cc)
/// defines an `Ops` struct of static inline row primitives — Axpy, Add,
/// BiasAct, BinAdd/BinSub/BinMul, Relu — built from its intrinsics, then
/// instantiates these templates. The loop structure (iteration order,
/// zero-skips, OpenMP cutover, epilogue placement) is therefore written once
/// and provably identical across tiers; only the per-row arithmetic differs.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "kernels/dispatch.h"

namespace ses::kernels::detail {

/// One table per tier, each defined by its own translation unit.
extern const Dispatch kDispatchScalar;
extern const Dispatch kDispatchAvx2;
extern const Dispatch kDispatchAvx512;

/// Element-wise loops run in fixed chunks so OpenMP can split them while the
/// tier primitive keeps long unit-stride runs.
inline constexpr int64_t kElementwiseChunk = 1 << 15;

template <class Ops>
void VecAddImpl(const float* a, const float* b, float* out, int64_t n) {
  const bool par = ShouldParallelize(static_cast<double>(n));
  const int64_t nb = (n + kElementwiseChunk - 1) / kElementwiseChunk;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t i = 0; i < nb; ++i) {
    const int64_t lo = i * kElementwiseChunk;
    const int64_t len = std::min(kElementwiseChunk, n - lo);
    Ops::BinAdd(a + lo, b + lo, out + lo, len);
  }
}

template <class Ops>
void VecSubImpl(const float* a, const float* b, float* out, int64_t n) {
  const bool par = ShouldParallelize(static_cast<double>(n));
  const int64_t nb = (n + kElementwiseChunk - 1) / kElementwiseChunk;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t i = 0; i < nb; ++i) {
    const int64_t lo = i * kElementwiseChunk;
    const int64_t len = std::min(kElementwiseChunk, n - lo);
    Ops::BinSub(a + lo, b + lo, out + lo, len);
  }
}

template <class Ops>
void VecMulImpl(const float* a, const float* b, float* out, int64_t n) {
  const bool par = ShouldParallelize(static_cast<double>(n));
  const int64_t nb = (n + kElementwiseChunk - 1) / kElementwiseChunk;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t i = 0; i < nb; ++i) {
    const int64_t lo = i * kElementwiseChunk;
    const int64_t len = std::min(kElementwiseChunk, n - lo);
    Ops::BinMul(a + lo, b + lo, out + lo, len);
  }
}

template <class Ops>
void VecReluImpl(const float* a, float* out, int64_t n) {
  const bool par = ShouldParallelize(static_cast<double>(n));
  const int64_t nb = (n + kElementwiseChunk - 1) / kElementwiseChunk;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t i = 0; i < nb; ++i) {
    const int64_t lo = i * kElementwiseChunk;
    const int64_t len = std::min(kElementwiseChunk, n - lo);
    Ops::Relu(a + lo, out + lo, len);
  }
}

template <class Ops>
void MatMulImpl(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  const bool par = ShouldParallelize(2.0 * static_cast<double>(m) * k * n);
#pragma omp parallel for schedule(static) if (par)
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // exploits sparse inputs (bag-of-words).
      Ops::Axpy(crow, b + kk * n, n, av);
    }
  }
}

inline void GatherRowsImpl(const float* a, int64_t cols, const int64_t* index,
                           int64_t n, float* out) {
  for (int64_t i = 0; i < n; ++i)
    std::copy(a + index[i] * cols, a + (index[i] + 1) * cols, out + i * cols);
}

template <class Ops>
void SpmmEdgesImpl(const int64_t* esrc, const int64_t* edst, const float* w,
                   int64_t e_count, const float* x, int64_t f, float* out) {
  for (int64_t e = 0; e < e_count; ++e) {
    const float we = w[e];
    if (we == 0.0f) continue;
    Ops::Axpy(out + edst[e] * f, x + esrc[e] * f, f, we);
  }
}

template <class Ops>
void SpmmCsrImpl(int64_t rows, const int64_t* row_ptr, const int64_t* col,
                 const int64_t* perm, const float* w, const float* x,
                 int64_t f, float* out, const float* bias, bool relu) {
  const double nnz = static_cast<double>(row_ptr[rows]);
  const bool par = ShouldParallelize(2.0 * nnz * static_cast<double>(f));
  const bool epilogue = bias != nullptr || relu;
#pragma omp parallel for schedule(dynamic, 64) if (par)
  for (int64_t r = 0; r < rows; ++r) {
    float* dst = out + r * f;
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const float v = w[perm != nullptr ? perm[e] : e];
      if (v == 0.0f) continue;
      Ops::Axpy(dst, x + col[e] * f, f, v);
    }
    if (epilogue) Ops::BiasAct(dst, bias, f, relu);
  }
}

template <class Ops>
void SpmmCsrBlockedImpl(int64_t rows, int64_t cols, const int64_t* row_ptr,
                        const int64_t* col, const int64_t* perm,
                        const float* w, const float* x, int64_t f, float* out,
                        const float* bias, bool relu, int64_t block_cols) {
  const double nnz = static_cast<double>(row_ptr[rows]);
  const bool par = ShouldParallelize(2.0 * nnz * static_cast<double>(f));
  const bool epilogue = bias != nullptr || relu;
  constexpr int64_t kRowChunk = 512;
  const int64_t nchunks = (rows + kRowChunk - 1) / kRowChunk;
#pragma omp parallel for schedule(dynamic, 1) if (par)
  for (int64_t ch = 0; ch < nchunks; ++ch) {
    const int64_t r_lo = ch * kRowChunk;
    const int64_t r_hi = std::min(rows, r_lo + kRowChunk);
    // Per-row cursors sweep source blocks: all rows in the chunk consume
    // their entries for source block [b0, b1) before any row moves on, so
    // the gathered x rows stay cache-resident across the whole chunk.
    std::vector<int64_t> cur(static_cast<size_t>(r_hi - r_lo));
    for (int64_t r = r_lo; r < r_hi; ++r)
      cur[static_cast<size_t>(r - r_lo)] = row_ptr[r];
    for (int64_t b0 = 0; b0 < cols; b0 += block_cols) {
      const int64_t b1 = b0 + block_cols;
      for (int64_t r = r_lo; r < r_hi; ++r) {
        int64_t e = cur[static_cast<size_t>(r - r_lo)];
        const int64_t end = row_ptr[r + 1];
        float* dst = out + r * f;
        while (e < end && col[e] < b1) {
          const float v = w[perm != nullptr ? perm[e] : e];
          if (v != 0.0f) Ops::Axpy(dst, x + col[e] * f, f, v);
          ++e;
        }
        cur[static_cast<size_t>(r - r_lo)] = e;
      }
    }
    if (epilogue)
      for (int64_t r = r_lo; r < r_hi; ++r)
        Ops::BiasAct(out + r * f, bias, f, relu);
  }
}

}  // namespace ses::kernels::detail

#endif  // SES_KERNELS_KERNEL_IMPL_H_
