#ifndef SES_KERNELS_DISPATCH_H_
#define SES_KERNELS_DISPATCH_H_

#include <cstdint>

namespace ses::kernels {

/// ---------------------------------------------------------------------------
/// Runtime SIMD dispatch.
///
/// Every hot kernel (SpMM, dense MatMul microkernel, row gather/scatter-add,
/// element-wise chains) exists in up to three implementations — a scalar
/// reference plus AVX2 and AVX-512 translation units compiled with their own
/// -m flags — reachable through one `Dispatch` table per tier. The tier is
/// picked once per process from CPUID (best supported wins) and can be forced
/// with SES_KERNEL_VARIANT=scalar|avx2|avx512 for debugging and CI parity
/// runs; forcing an unsupported tier logs a warning and falls back to the
/// best supported one rather than faulting.
///
/// Numerics policy: the scalar table reproduces the historical loops
/// bit-for-bit (no FMA contraction — the TU is compiled with the default
/// target flags). SIMD tiers use FMA and vector max for ReLU; they are
/// tolerance-gated against scalar, never bitwise. Within one tier, every
/// call site (taped training, taped eval, InferenceGuard serving) reaches
/// the same function pointers, so cross-path outputs stay bitwise identical.

enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};
inline constexpr int kNumSimdTiers = 3;

/// Static-storage tier name ("scalar" / "avx2" / "avx512").
const char* TierName(SimdTier tier);

/// True when `tier` is both compiled in and supported by the running CPU.
bool TierSupported(SimdTier tier);

/// Highest tier the running CPU supports.
SimdTier BestSupportedTier();

/// Process-wide active tier: SES_KERNEL_VARIANT override when valid and
/// supported, BestSupportedTier() otherwise. Resolved once, then a cached
/// load.
SimdTier ActiveTier();

/// Drops the cached ActiveTier decision so the next call re-reads the
/// environment (test support).
void ResetActiveTierForTest();

/// ---------------------------------------------------------------------------
/// OpenMP cutover.
///
/// Minimum scalar work (flops for matmuls/SpMM, elements for element-wise
/// loops) before a kernel forks an OpenMP team. Below this the fork/join
/// overhead dominates — per-node motif subgraphs are a few dozen rows. Every
/// parallel kernel, dense AND sparse, guards its `parallel for` with
/// ShouldParallelize on this one constant; SpMM historically threaded over
/// rows unconditionally, which lost on tiny explain-path subgraphs.
inline constexpr int64_t kOmpWorkThreshold = 1 << 16;

inline bool ShouldParallelize(double work) {
  return work > static_cast<double>(kOmpWorkThreshold);
}

/// ---------------------------------------------------------------------------
/// Per-tier kernel entry points.
///
/// All pointers take raw row-major buffers (row stride == the column count)
/// so the table stays free of tensor-layer types. Output buffers follow the
/// accumulate convention of the historical kernels: callers pass
/// zero-initialized memory unless noted.
struct Dispatch {
  SimdTier tier;
  const char* tier_name;
  /// False when this translation unit was built without its SIMD flags
  /// (compiler too old); the table then aliases scalar code and the tier
  /// reports unsupported.
  bool compiled;

  /// KernelScope variant labels (static storage) for tier-variant kernels.
  const char* matmul_variant;   ///< "dense_scalar" / "dense_avx2" / ...
  const char* unary_variant;    ///< dispatched element-wise unary chains
  const char* binary_variant;   ///< dispatched element-wise binary chains
  const char* scatter_variant;  ///< scatter-add rows

  /// dst[0..n) += a * src[0..n)
  void (*axpy_row)(float* dst, const float* src, int64_t n, float a);
  /// dst[0..n) += src[0..n)
  void (*add_row)(float* dst, const float* src, int64_t n);
  void (*vec_add)(const float* a, const float* b, float* out, int64_t n);
  void (*vec_sub)(const float* a, const float* b, float* out, int64_t n);
  void (*vec_mul)(const float* a, const float* b, float* out, int64_t n);
  /// out[i] = max(a[i], 0) — NaN and -0 map to +0, matching the scalar
  /// `x > 0 ? x : 0` reference exactly.
  void (*vec_relu)(const float* a, float* out, int64_t n);
  /// In-place fused epilogue on one row: row += bias (when non-null), then
  /// optional ReLU.
  void (*bias_act_row)(float* row, const float* bias, int64_t n, bool relu);
  /// C(m x n) += A(m x k) * B(k x n); i-k-j order with a zero-skip on A so
  /// sparse inputs (bag-of-words) keep their fast path. OpenMP over rows
  /// behind ShouldParallelize(2mkn).
  void (*matmul)(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n);
  /// out[i, :] = a[index[i], :]; pure data movement (row memcpy is already
  /// optimal on every tier — single variant, routed here for uniformity).
  void (*gather_rows)(const float* a, int64_t cols, const int64_t* index,
                      int64_t n, float* out);
  /// Edge-order SpMM reference: out[edst[e], :] += w[e] * x[esrc[e], :] in
  /// edge order. Serial (scatter writes race); zero weights skipped so NaN
  /// rows behind a zeroed mask never propagate.
  void (*spmm_edges)(const int64_t* esrc, const int64_t* edst, const float* w,
                     int64_t e, const float* x, int64_t f, float* out);
  /// CSR-by-destination SpMM with optional fused epilogue (bias may be null,
  /// relu optional). Entry e's weight is w[perm[e]] when `perm` is non-null
  /// (adjacency CSR permuted from an edge list) and w[e] otherwise (value
  /// CSR, e.g. feature matrices). With entries kept in edge order (stable
  /// sort) the per-row accumulation sequence equals spmm_edges exactly, so
  /// same-tier results are bitwise identical. OpenMP over rows behind
  /// ShouldParallelize(2·nnz·f).
  void (*spmm_csr)(int64_t rows, const int64_t* row_ptr, const int64_t* col,
                   const int64_t* perm, const float* w, const float* x,
                   int64_t f, float* out, const float* bias, bool relu);
  /// Source-blocked CSR SpMM for skewed-degree graphs: per-row cursors sweep
  /// column blocks sized to keep the gathered x working set L2-resident.
  /// Requires `col` ascending within each row, which reorders additions —
  /// tolerance-gated against spmm_csr even at scalar tier.
  void (*spmm_csr_blocked)(int64_t rows, int64_t cols, const int64_t* row_ptr,
                           const int64_t* col, const int64_t* perm,
                           const float* w, const float* x, int64_t f,
                           float* out, const float* bias, bool relu,
                           int64_t block_cols);
};

/// Table for one specific tier (bench sweeps, parity tests). Asking for an
/// uncompiled tier returns a table whose pointers alias scalar code; check
/// TierSupported() first when the distinction matters.
const Dispatch& DispatchFor(SimdTier tier);

/// Table for ActiveTier() — the single entry point the tensor/autograd hot
/// paths call through.
const Dispatch& GetDispatch();

}  // namespace ses::kernels

#endif  // SES_KERNELS_DISPATCH_H_
