/// AVX-512 tier. This TU (alone) is compiled with -mavx512f -mfma; runtime
/// CPUID dispatch keeps it off CPUs without AVX-512F. 16-lane FMA bodies
/// with masked tails — no scalar remainder loop, so ragged feature widths
/// (f = 17, 333, ...) stay on the vector unit end to end. Tolerance-gated
/// against scalar like AVX2.

#include "kernels/kernel_impl.h"

#if defined(__AVX512F__) && defined(__FMA__)
#include <immintrin.h>
#define SES_KERNELS_AVX512_COMPILED 1
#endif

namespace ses::kernels::detail {
namespace {

#ifdef SES_KERNELS_AVX512_COMPILED

inline __mmask16 TailMask(int64_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

struct OpsAvx512 {
  static inline void Axpy(float* dst, const float* src, int64_t n, float a) {
    const __m512 va = _mm512_set1_ps(a);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m512 d = _mm512_fmadd_ps(va, _mm512_loadu_ps(src + i),
                                       _mm512_loadu_ps(dst + i));
      _mm512_storeu_ps(dst + i, d);
    }
    if (i < n) {
      const __mmask16 m = TailMask(n - i);
      const __m512 d = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, src + i),
                                       _mm512_maskz_loadu_ps(m, dst + i));
      _mm512_mask_storeu_ps(dst + i, m, d);
    }
  }
  static inline void Add(float* dst, const float* src, int64_t n) {
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
      _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i),
                                              _mm512_loadu_ps(src + i)));
    if (i < n) {
      const __mmask16 m = TailMask(n - i);
      _mm512_mask_storeu_ps(
          dst + i, m,
          _mm512_add_ps(_mm512_maskz_loadu_ps(m, dst + i),
                        _mm512_maskz_loadu_ps(m, src + i)));
    }
  }
  static inline void BinAdd(const float* a, const float* b, float* out,
                            int64_t n) {
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
      _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_loadu_ps(a + i),
                                              _mm512_loadu_ps(b + i)));
    if (i < n) {
      const __mmask16 m = TailMask(n - i);
      _mm512_mask_storeu_ps(out + i, m,
                            _mm512_add_ps(_mm512_maskz_loadu_ps(m, a + i),
                                          _mm512_maskz_loadu_ps(m, b + i)));
    }
  }
  static inline void BinSub(const float* a, const float* b, float* out,
                            int64_t n) {
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
      _mm512_storeu_ps(out + i, _mm512_sub_ps(_mm512_loadu_ps(a + i),
                                              _mm512_loadu_ps(b + i)));
    if (i < n) {
      const __mmask16 m = TailMask(n - i);
      _mm512_mask_storeu_ps(out + i, m,
                            _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + i),
                                          _mm512_maskz_loadu_ps(m, b + i)));
    }
  }
  static inline void BinMul(const float* a, const float* b, float* out,
                            int64_t n) {
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
      _mm512_storeu_ps(out + i, _mm512_mul_ps(_mm512_loadu_ps(a + i),
                                              _mm512_loadu_ps(b + i)));
    if (i < n) {
      const __mmask16 m = TailMask(n - i);
      _mm512_mask_storeu_ps(out + i, m,
                            _mm512_mul_ps(_mm512_maskz_loadu_ps(m, a + i),
                                          _mm512_maskz_loadu_ps(m, b + i)));
    }
  }
  static inline void Relu(const float* a, float* out, int64_t n) {
    // max(x, +0) with x first: NaN and -0 lanes come out +0, matching the
    // scalar `x > 0 ? x : 0` reference.
    const __m512 zero = _mm512_setzero_ps();
    int64_t i = 0;
    for (; i + 16 <= n; i += 16)
      _mm512_storeu_ps(out + i, _mm512_max_ps(_mm512_loadu_ps(a + i), zero));
    if (i < n) {
      const __mmask16 m = TailMask(n - i);
      _mm512_mask_storeu_ps(
          out + i, m, _mm512_max_ps(_mm512_maskz_loadu_ps(m, a + i), zero));
    }
  }
  static inline void BiasAct(float* row, const float* bias, int64_t n,
                             bool relu) {
    const __m512 zero = _mm512_setzero_ps();
    int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
      __m512 v = _mm512_loadu_ps(row + i);
      if (bias != nullptr) v = _mm512_add_ps(v, _mm512_loadu_ps(bias + i));
      if (relu) v = _mm512_max_ps(v, zero);
      _mm512_storeu_ps(row + i, v);
    }
    if (i < n) {
      const __mmask16 m = TailMask(n - i);
      __m512 v = _mm512_maskz_loadu_ps(m, row + i);
      if (bias != nullptr)
        v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(m, bias + i));
      if (relu) v = _mm512_max_ps(v, zero);
      _mm512_mask_storeu_ps(row + i, m, v);
    }
  }
};

using Ops = OpsAvx512;
constexpr bool kCompiled = true;

#else  // !SES_KERNELS_AVX512_COMPILED

struct OpsFallback {
  static inline void Axpy(float* dst, const float* src, int64_t n, float a) {
    for (int64_t i = 0; i < n; ++i) dst[i] += a * src[i];
  }
  static inline void Add(float* dst, const float* src, int64_t n) {
    for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
  }
  static inline void BinAdd(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
  }
  static inline void BinSub(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
  }
  static inline void BinMul(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
  }
  static inline void Relu(const float* a, float* out, int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
  }
  static inline void BiasAct(float* row, const float* bias, int64_t n,
                             bool relu) {
    if (bias != nullptr)
      for (int64_t i = 0; i < n; ++i) row[i] += bias[i];
    if (relu)
      for (int64_t i = 0; i < n; ++i) row[i] = row[i] > 0.0f ? row[i] : 0.0f;
  }
};

using Ops = OpsFallback;
constexpr bool kCompiled = false;

#endif  // SES_KERNELS_AVX512_COMPILED

void AxpyRow(float* dst, const float* src, int64_t n, float a) {
  Ops::Axpy(dst, src, n, a);
}
void AddRow(float* dst, const float* src, int64_t n) { Ops::Add(dst, src, n); }
void BiasActRow(float* row, const float* bias, int64_t n, bool relu) {
  Ops::BiasAct(row, bias, n, relu);
}
void VecAdd(const float* a, const float* b, float* out, int64_t n) {
  VecAddImpl<Ops>(a, b, out, n);
}
void VecSub(const float* a, const float* b, float* out, int64_t n) {
  VecSubImpl<Ops>(a, b, out, n);
}
void VecMul(const float* a, const float* b, float* out, int64_t n) {
  VecMulImpl<Ops>(a, b, out, n);
}
void VecRelu(const float* a, float* out, int64_t n) {
  VecReluImpl<Ops>(a, out, n);
}
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  MatMulImpl<Ops>(a, b, c, m, k, n);
}
void GatherRows(const float* a, int64_t cols, const int64_t* index, int64_t n,
                float* out) {
  GatherRowsImpl(a, cols, index, n, out);
}
void SpmmEdges(const int64_t* esrc, const int64_t* edst, const float* w,
               int64_t e, const float* x, int64_t f, float* out) {
  SpmmEdgesImpl<Ops>(esrc, edst, w, e, x, f, out);
}
void SpmmCsr(int64_t rows, const int64_t* row_ptr, const int64_t* col,
             const int64_t* perm, const float* w, const float* x, int64_t f,
             float* out, const float* bias, bool relu) {
  SpmmCsrImpl<Ops>(rows, row_ptr, col, perm, w, x, f, out, bias, relu);
}
void SpmmCsrBlocked(int64_t rows, int64_t cols, const int64_t* row_ptr,
                    const int64_t* col, const int64_t* perm, const float* w,
                    const float* x, int64_t f, float* out, const float* bias,
                    bool relu, int64_t block_cols) {
  SpmmCsrBlockedImpl<Ops>(rows, cols, row_ptr, col, perm, w, x, f, out, bias,
                          relu, block_cols);
}

}  // namespace

const Dispatch kDispatchAvx512 = {
    SimdTier::kAvx512,
    "avx512",
    kCompiled,
    "dense_avx512",
    "unary_avx512",
    "binary_avx512",
    "rows_avx512",
    &AxpyRow,
    &AddRow,
    &VecAdd,
    &VecSub,
    &VecMul,
    &VecRelu,
    &BiasActRow,
    &MatMul,
    &GatherRows,
    &SpmmEdges,
    &SpmmCsr,
    &SpmmCsrBlocked,
};

}  // namespace ses::kernels::detail
