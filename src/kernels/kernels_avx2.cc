/// AVX2 + FMA tier. This TU (alone) is compiled with -mavx2 -mfma; runtime
/// CPUID dispatch guarantees its code only executes on CPUs that support
/// both. FMA changes rounding versus the scalar mul+add reference, so this
/// tier is tolerance-gated, never bitwise, against scalar.

#include "kernels/kernel_impl.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define SES_KERNELS_AVX2_COMPILED 1
#endif

namespace ses::kernels::detail {
namespace {

#ifdef SES_KERNELS_AVX2_COMPILED

struct OpsAvx2 {
  static inline void Axpy(float* dst, const float* src, int64_t n, float a) {
    const __m256 va = _mm256_set1_ps(a);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 d = _mm256_fmadd_ps(va, _mm256_loadu_ps(src + i),
                                       _mm256_loadu_ps(dst + i));
      _mm256_storeu_ps(dst + i, d);
    }
    for (; i < n; ++i) dst[i] += a * src[i];
  }
  static inline void Add(float* dst, const float* src, int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
      _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                              _mm256_loadu_ps(src + i)));
    for (; i < n; ++i) dst[i] += src[i];
  }
  static inline void BinAdd(const float* a, const float* b, float* out,
                            int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
      _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < n; ++i) out[i] = a[i] + b[i];
  }
  static inline void BinSub(const float* a, const float* b, float* out,
                            int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
      _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < n; ++i) out[i] = a[i] - b[i];
  }
  static inline void BinMul(const float* a, const float* b, float* out,
                            int64_t n) {
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
      _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < n; ++i) out[i] = a[i] * b[i];
  }
  static inline void Relu(const float* a, float* out, int64_t n) {
    // max(x, +0) with x in the FIRST operand: NaN and -0 lanes both come out
    // +0, exactly like the scalar `x > 0 ? x : 0` reference.
    const __m256 zero = _mm256_setzero_ps();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
      _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
    for (; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
  }
  static inline void BiasAct(float* row, const float* bias, int64_t n,
                             bool relu) {
    const __m256 zero = _mm256_setzero_ps();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      __m256 v = _mm256_loadu_ps(row + i);
      if (bias != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(bias + i));
      if (relu) v = _mm256_max_ps(v, zero);
      _mm256_storeu_ps(row + i, v);
    }
    for (; i < n; ++i) {
      float v = row[i];
      if (bias != nullptr) v += bias[i];
      if (relu) v = v > 0.0f ? v : 0.0f;
      row[i] = v;
    }
  }
};

using Ops = OpsAvx2;
constexpr bool kCompiled = true;

#else  // !SES_KERNELS_AVX2_COMPILED

/// Compiler lacked AVX2/FMA flags: alias scalar arithmetic so the table
/// stays well-formed; TierSupported(kAvx2) reports false via `compiled`.
struct OpsFallback {
  static inline void Axpy(float* dst, const float* src, int64_t n, float a) {
    for (int64_t i = 0; i < n; ++i) dst[i] += a * src[i];
  }
  static inline void Add(float* dst, const float* src, int64_t n) {
    for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
  }
  static inline void BinAdd(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
  }
  static inline void BinSub(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
  }
  static inline void BinMul(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
  }
  static inline void Relu(const float* a, float* out, int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
  }
  static inline void BiasAct(float* row, const float* bias, int64_t n,
                             bool relu) {
    if (bias != nullptr)
      for (int64_t i = 0; i < n; ++i) row[i] += bias[i];
    if (relu)
      for (int64_t i = 0; i < n; ++i) row[i] = row[i] > 0.0f ? row[i] : 0.0f;
  }
};

using Ops = OpsFallback;
constexpr bool kCompiled = false;

#endif  // SES_KERNELS_AVX2_COMPILED

void AxpyRow(float* dst, const float* src, int64_t n, float a) {
  Ops::Axpy(dst, src, n, a);
}
void AddRow(float* dst, const float* src, int64_t n) { Ops::Add(dst, src, n); }
void BiasActRow(float* row, const float* bias, int64_t n, bool relu) {
  Ops::BiasAct(row, bias, n, relu);
}
void VecAdd(const float* a, const float* b, float* out, int64_t n) {
  VecAddImpl<Ops>(a, b, out, n);
}
void VecSub(const float* a, const float* b, float* out, int64_t n) {
  VecSubImpl<Ops>(a, b, out, n);
}
void VecMul(const float* a, const float* b, float* out, int64_t n) {
  VecMulImpl<Ops>(a, b, out, n);
}
void VecRelu(const float* a, float* out, int64_t n) {
  VecReluImpl<Ops>(a, out, n);
}
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  MatMulImpl<Ops>(a, b, c, m, k, n);
}
void GatherRows(const float* a, int64_t cols, const int64_t* index, int64_t n,
                float* out) {
  GatherRowsImpl(a, cols, index, n, out);
}
void SpmmEdges(const int64_t* esrc, const int64_t* edst, const float* w,
               int64_t e, const float* x, int64_t f, float* out) {
  SpmmEdgesImpl<Ops>(esrc, edst, w, e, x, f, out);
}
void SpmmCsr(int64_t rows, const int64_t* row_ptr, const int64_t* col,
             const int64_t* perm, const float* w, const float* x, int64_t f,
             float* out, const float* bias, bool relu) {
  SpmmCsrImpl<Ops>(rows, row_ptr, col, perm, w, x, f, out, bias, relu);
}
void SpmmCsrBlocked(int64_t rows, int64_t cols, const int64_t* row_ptr,
                    const int64_t* col, const int64_t* perm, const float* w,
                    const float* x, int64_t f, float* out, const float* bias,
                    bool relu, int64_t block_cols) {
  SpmmCsrBlockedImpl<Ops>(rows, cols, row_ptr, col, perm, w, x, f, out, bias,
                          relu, block_cols);
}

}  // namespace

const Dispatch kDispatchAvx2 = {
    SimdTier::kAvx2,
    "avx2",
    kCompiled,
    "dense_avx2",
    "unary_avx2",
    "binary_avx2",
    "rows_avx2",
    &AxpyRow,
    &AddRow,
    &VecAdd,
    &VecSub,
    &VecMul,
    &VecRelu,
    &BiasActRow,
    &MatMul,
    &GatherRows,
    &SpmmEdges,
    &SpmmCsr,
    &SpmmCsrBlocked,
};

}  // namespace ses::kernels::detail
