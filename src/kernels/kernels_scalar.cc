/// Scalar reference tier. This TU is compiled with the project's default
/// target flags (no -m extensions, no FMA contraction), so its loops are
/// bit-for-bit the kernels the tensor/autograd layers historically inlined —
/// the baseline every SIMD tier is parity-tested against.

#include "kernels/kernel_impl.h"

namespace ses::kernels::detail {
namespace {

struct OpsScalar {
  static inline void Axpy(float* dst, const float* src, int64_t n, float a) {
    for (int64_t i = 0; i < n; ++i) dst[i] += a * src[i];
  }
  static inline void Add(float* dst, const float* src, int64_t n) {
    for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
  }
  static inline void BinAdd(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
  }
  static inline void BinSub(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
  }
  static inline void BinMul(const float* a, const float* b, float* out,
                            int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
  }
  static inline void Relu(const float* a, float* out, int64_t n) {
    for (int64_t i = 0; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
  }
  static inline void BiasAct(float* row, const float* bias, int64_t n,
                             bool relu) {
    if (bias != nullptr)
      for (int64_t i = 0; i < n; ++i) row[i] += bias[i];
    if (relu)
      for (int64_t i = 0; i < n; ++i) row[i] = row[i] > 0.0f ? row[i] : 0.0f;
  }
};

void AxpyRow(float* dst, const float* src, int64_t n, float a) {
  OpsScalar::Axpy(dst, src, n, a);
}
void AddRow(float* dst, const float* src, int64_t n) {
  OpsScalar::Add(dst, src, n);
}
void BiasActRow(float* row, const float* bias, int64_t n, bool relu) {
  OpsScalar::BiasAct(row, bias, n, relu);
}
void VecAdd(const float* a, const float* b, float* out, int64_t n) {
  VecAddImpl<OpsScalar>(a, b, out, n);
}
void VecSub(const float* a, const float* b, float* out, int64_t n) {
  VecSubImpl<OpsScalar>(a, b, out, n);
}
void VecMul(const float* a, const float* b, float* out, int64_t n) {
  VecMulImpl<OpsScalar>(a, b, out, n);
}
void VecRelu(const float* a, float* out, int64_t n) {
  VecReluImpl<OpsScalar>(a, out, n);
}
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  MatMulImpl<OpsScalar>(a, b, c, m, k, n);
}
void GatherRows(const float* a, int64_t cols, const int64_t* index, int64_t n,
                float* out) {
  GatherRowsImpl(a, cols, index, n, out);
}
void SpmmEdges(const int64_t* esrc, const int64_t* edst, const float* w,
               int64_t e, const float* x, int64_t f, float* out) {
  SpmmEdgesImpl<OpsScalar>(esrc, edst, w, e, x, f, out);
}
void SpmmCsr(int64_t rows, const int64_t* row_ptr, const int64_t* col,
             const int64_t* perm, const float* w, const float* x, int64_t f,
             float* out, const float* bias, bool relu) {
  SpmmCsrImpl<OpsScalar>(rows, row_ptr, col, perm, w, x, f, out, bias, relu);
}
void SpmmCsrBlocked(int64_t rows, int64_t cols, const int64_t* row_ptr,
                    const int64_t* col, const int64_t* perm, const float* w,
                    const float* x, int64_t f, float* out, const float* bias,
                    bool relu, int64_t block_cols) {
  SpmmCsrBlockedImpl<OpsScalar>(rows, cols, row_ptr, col, perm, w, x, f, out,
                                bias, relu, block_cols);
}

}  // namespace

const Dispatch kDispatchScalar = {
    SimdTier::kScalar,
    "scalar",
    /*compiled=*/true,
    "dense_scalar",
    "unary_scalar",
    "binary_scalar",
    "rows_scalar",
    &AxpyRow,
    &AddRow,
    &VecAdd,
    &VecSub,
    &VecMul,
    &VecRelu,
    &BiasActRow,
    &MatMul,
    &GatherRows,
    &SpmmEdges,
    &SpmmCsr,
    &SpmmCsrBlocked,
};

}  // namespace ses::kernels::detail
