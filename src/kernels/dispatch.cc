#include "kernels/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "kernels/kernel_impl.h"
#include "util/logging.h"

namespace ses::kernels {

namespace {

const Dispatch* kTables[kNumSimdTiers] = {
    &detail::kDispatchScalar,
    &detail::kDispatchAvx2,
    &detail::kDispatchAvx512,
};

/// -1 while unresolved; otherwise the SimdTier value. Resolution is
/// idempotent, so a racing first call at worst resolves twice to the same
/// answer.
std::atomic<int> g_active_tier{-1};

SimdTier ResolveActiveTier() {
  const SimdTier best = BestSupportedTier();
  const char* force = std::getenv("SES_KERNEL_VARIANT");
  if (force == nullptr || force[0] == '\0') return best;
  SimdTier asked = best;
  bool known = true;
  if (std::strcmp(force, "scalar") == 0) {
    asked = SimdTier::kScalar;
  } else if (std::strcmp(force, "avx2") == 0) {
    asked = SimdTier::kAvx2;
  } else if (std::strcmp(force, "avx512") == 0) {
    asked = SimdTier::kAvx512;
  } else {
    known = false;
  }
  if (!known) {
    SES_LOG_WARN << "SES_KERNEL_VARIANT='" << force
                 << "' is not scalar|avx2|avx512; using " << TierName(best);
    return best;
  }
  if (!TierSupported(asked)) {
    SES_LOG_WARN << "SES_KERNEL_VARIANT=" << force
                 << " not supported on this CPU; falling back to "
                 << TierName(best);
    return best;
  }
  return asked;
}

}  // namespace

const char* TierName(SimdTier tier) {
  return kTables[static_cast<int>(tier)]->tier_name;
}

bool TierSupported(SimdTier tier) {
  if (!kTables[static_cast<int>(tier)]->compiled) return false;
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdTier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("fma");
  }
  return false;
}

SimdTier BestSupportedTier() {
  if (TierSupported(SimdTier::kAvx512)) return SimdTier::kAvx512;
  if (TierSupported(SimdTier::kAvx2)) return SimdTier::kAvx2;
  return SimdTier::kScalar;
}

SimdTier ActiveTier() {
  int tier = g_active_tier.load(std::memory_order_acquire);
  if (tier < 0) {
    tier = static_cast<int>(ResolveActiveTier());
    g_active_tier.store(tier, std::memory_order_release);
  }
  return static_cast<SimdTier>(tier);
}

void ResetActiveTierForTest() {
  g_active_tier.store(-1, std::memory_order_release);
}

const Dispatch& DispatchFor(SimdTier tier) {
  return *kTables[static_cast<int>(tier)];
}

const Dispatch& GetDispatch() { return DispatchFor(ActiveTier()); }

}  // namespace ses::kernels
