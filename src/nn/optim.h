#ifndef SES_NN_OPTIM_H_
#define SES_NN_OPTIM_H_

#include <vector>

#include "autograd/variable.h"

namespace ses::nn {

/// Optimizer interface: consumes accumulated gradients, updates parameter
/// values in place, and zeroes the gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// One update from the currently accumulated gradients; zeroes them after.
  virtual void Step() = 0;

  void ZeroGrad();

 protected:
  std::vector<autograd::Variable> params_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// Plain SGD (used by the per-node explainer optimizations where Adam state
/// would dominate memory).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr);
  void Step() override;

 private:
  float lr_;
};

}  // namespace ses::nn

#endif  // SES_NN_OPTIM_H_
