#ifndef SES_NN_OPTIM_H_
#define SES_NN_OPTIM_H_

#include <vector>

#include "autograd/variable.h"

namespace ses::nn {

/// Optimizer interface: consumes accumulated gradients, updates parameter
/// values in place, and zeroes the gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// One update from the currently accumulated gradients; zeroes them after.
  virtual void Step() = 0;

  void ZeroGrad();

  /// Global L2 norm over every currently accumulated gradient (parameters
  /// whose gradient was never allocated contribute 0).
  double GradNorm() const;

  /// When > 0, Step rescales the gradients so their global norm does not
  /// exceed this bound (standard global-norm clipping).
  void set_max_grad_norm(float max_norm) { max_grad_norm_ = max_norm; }
  float max_grad_norm() const { return max_grad_norm_; }

 protected:
  /// Applies max_grad_norm clipping to the accumulated gradients; returns
  /// the pre-clip global norm. No-op (but still returns the norm) when
  /// clipping is disabled or the norm is non-finite — a NaN norm cannot be
  /// "clipped" into health, the HealthMonitor must skip the step instead.
  double ClipGradients();

  std::vector<autograd::Variable> params_;
  float max_grad_norm_ = 0.0f;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// --- checkpoint support ---------------------------------------------------
  /// Moment tensors are aligned with the constructor's parameter order; the
  /// step counter drives bias correction. Restoring all three reproduces
  /// the optimizer's trajectory bitwise.
  int64_t step_count() const { return t_; }
  const std::vector<tensor::Tensor>& moment1() const { return m_; }
  const std::vector<tensor::Tensor>& moment2() const { return v_; }
  /// Shape-checked restore of state captured from an identically
  /// constructed optimizer.
  void RestoreState(int64_t step_count, std::vector<tensor::Tensor> m,
                    std::vector<tensor::Tensor> v);

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// Plain SGD (used by the per-node explainer optimizations where Adam state
/// would dominate memory).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr);
  void Step() override;

 private:
  float lr_;
};

}  // namespace ses::nn

#endif  // SES_NN_OPTIM_H_
