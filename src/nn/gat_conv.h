#ifndef SES_NN_GAT_CONV_H_
#define SES_NN_GAT_CONV_H_

#include <vector>

#include "autograd/sparse_ops.h"
#include "nn/feature_input.h"
#include "nn/module.h"
#include "util/rng.h"

namespace ses::nn {

/// Graph attention layer (Velickovic et al.), multi-head with concatenation:
///   e_uv = LeakyReLU(a_src . W h_u + a_dst . W h_v)
///   α = softmax over incoming edges of v; out_v = Σ_u α_uv (W h_u)
///
/// An optional per-edge multiplier (`edge_mask`) scales the attention
/// coefficients after normalization — this is how SES applies M̂_s ⊙ A on a
/// GAT backbone. The per-edge attention values of the last Forward call are
/// cached for the ATT explanation baseline.
class GatConv : public Module {
 public:
  GatConv(int64_t in_features, int64_t out_per_head, int64_t heads,
          util::Rng* rng, float leaky_slope = 0.2f);

  /// `edges` must include self-loops. Output is N x (heads * out_per_head).
  /// When `renormalize` is set, masked attention is re-normalized per
  /// destination (convex combination preserved); otherwise the mask scales
  /// the aggregation directly.
  autograd::Variable Forward(const FeatureInput& x,
                             const autograd::EdgeListPtr& edges,
                             const autograd::Variable& edge_mask = {},
                             bool renormalize = true) const;

  /// Mean attention over heads for each edge of the last Forward (E x 1).
  const tensor::Tensor& last_attention() const { return last_attention_; }

  int64_t heads() const { return static_cast<int64_t>(w_.size()); }

 private:
  std::vector<autograd::Variable> w_;      ///< per-head in x out
  std::vector<autograd::Variable> a_src_;  ///< per-head out x 1
  std::vector<autograd::Variable> a_dst_;  ///< per-head out x 1
  autograd::Variable bias_;                ///< 1 x heads*out
  float leaky_slope_;
  mutable tensor::Tensor last_attention_;
};

}  // namespace ses::nn

#endif  // SES_NN_GAT_CONV_H_
