#include "nn/optim.h"

#include <cmath>

#include "util/logging.h"

namespace ses::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double Optimizer::GradNorm() const {
  double acc = 0.0;
  for (const auto& p : params_) {
    if (!p.defined() || !p.grad().SameShape(p.value())) continue;
    const tensor::Tensor& g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i)
      acc += static_cast<double>(g[i]) * g[i];
  }
  return std::sqrt(acc);
}

double Optimizer::ClipGradients() {
  const double norm = GradNorm();
  if (max_grad_norm_ <= 0.0f || !std::isfinite(norm) ||
      norm <= static_cast<double>(max_grad_norm_))
    return norm;
  const float scale = max_grad_norm_ / static_cast<float>(norm);
  for (auto& p : params_) {
    if (!p.defined() || !p.grad().SameShape(p.value())) continue;
    p.mutable_grad().ScaleInPlace(scale);
  }
  return norm;
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::RestoreState(int64_t step_count, std::vector<tensor::Tensor> m,
                        std::vector<tensor::Tensor> v) {
  SES_CHECK(m.size() == params_.size() && v.size() == params_.size());
  for (size_t i = 0; i < params_.size(); ++i)
    SES_CHECK(m[i].SameShape(params_[i].value()) &&
              v[i].SameShape(params_[i].value()));
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::Step() {
  ClipGradients();
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.grad().SameShape(p.value())) continue;  // never touched
    tensor::Tensor& value = p.mutable_value();
    const tensor::Tensor& grad = p.grad();
    tensor::Tensor& m = m_[i];
    tensor::Tensor& v = v_[i];
    const int64_t n = value.size();
    for (int64_t j = 0; j < n; ++j) {
      float g = grad[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void Sgd::Step() {
  ClipGradients();
  for (auto& p : params_) {
    if (!p.grad().SameShape(p.value())) continue;
    p.mutable_value().AddScaled(p.grad(), -lr_);
  }
  ZeroGrad();
}

}  // namespace ses::nn
