#include "nn/optim.h"

#include <cmath>

namespace ses::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.grad().SameShape(p.value())) continue;  // never touched
    tensor::Tensor& value = p.mutable_value();
    const tensor::Tensor& grad = p.grad();
    tensor::Tensor& m = m_[i];
    tensor::Tensor& v = v_[i];
    const int64_t n = value.size();
    for (int64_t j = 0; j < n; ++j) {
      float g = grad[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void Sgd::Step() {
  for (auto& p : params_) {
    if (!p.grad().SameShape(p.value())) continue;
    p.mutable_value().AddScaled(p.grad(), -lr_);
  }
  ZeroGrad();
}

}  // namespace ses::nn
