#include "nn/gat_conv.h"

#include "autograd/ops.h"

#include "obs/perfcount.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ses::nn {

namespace ag = ses::autograd;
namespace t = ses::tensor;

GatConv::GatConv(int64_t in_features, int64_t out_per_head, int64_t heads,
                 util::Rng* rng, float leaky_slope)
    : leaky_slope_(leaky_slope) {
  SES_CHECK(heads >= 1);
  for (int64_t h = 0; h < heads; ++h) {
    const std::string head = std::to_string(h);
    w_.push_back(RegisterParameter(
        t::Tensor::Xavier(in_features, out_per_head, rng), "w" + head));
    a_src_.push_back(RegisterParameter(
        t::Tensor::Xavier(out_per_head, 1, rng), "a_src" + head));
    a_dst_.push_back(RegisterParameter(
        t::Tensor::Xavier(out_per_head, 1, rng), "a_dst" + head));
  }
  bias_ = RegisterParameter(t::Tensor::Zeros(1, heads * out_per_head), "bias");
}

ag::Variable GatConv::Forward(const FeatureInput& x,
                              const ag::EdgeListPtr& edges,
                              const ag::Variable& edge_mask,
                              bool renormalize) const {
  SES_TRACE_SPAN("nn/GatConv");
  const int64_t e_count = edges->size();
  // Composite scope over all heads: projections (2·N·in·out each), two
  // attention products (2·N·out), edge scoring/softmax (~10·E) and the
  // per-head SpMM (2·E·out). Nested kernel scopes keep exclusive counters.
  const double heads = static_cast<double>(w_.size());
  const double n = static_cast<double>(x.rows());
  const double in = static_cast<double>(w_.empty() ? 0 : w_[0].rows());
  const double out_f = static_cast<double>(w_.empty() ? 0 : w_[0].cols());
  const double e = static_cast<double>(e_count);
  obs::KernelScope kscope(
      "gat_conv", "forward",
      heads * (2.0 * n * in * out_f + 4.0 * n * out_f + 10.0 * e +
               2.0 * e * out_f),
      heads * (4.0 * (n * in + in * out_f + 2.0 * n * out_f) + 48.0 * e +
               12.0 * e * out_f));
  last_attention_ = t::Tensor(e_count, 1);
  ag::Variable out;
  for (size_t h = 0; h < w_.size(); ++h) {
    ag::Variable wh = x.Project(w_[h]);           // N x out
    ag::Variable s_src = ag::MatMul(wh, a_src_[h]);  // N x 1
    ag::Variable s_dst = ag::MatMul(wh, a_dst_[h]);  // N x 1
    ag::Variable scores = ag::Add(ag::GatherRows(s_src, edges->src),
                                  ag::GatherRows(s_dst, edges->dst));
    scores = ag::LeakyRelu(scores, leaky_slope_);
    ag::Variable alpha = ag::EdgeSoftmax(edges, scores);
    if (edge_mask.defined()) {
      alpha = ag::Mul(alpha, edge_mask);
      if (renormalize) {
        // Renormalize per destination so coefficients stay a convex
        // combination — a sparse mask reweights messages instead of
        // shrinking the aggregation toward zero.
        ag::Variable ones = ag::Variable::Constant(
            t::Tensor::Ones(edges->num_nodes, 1));
        ag::Variable sums = ag::SpMM(edges, alpha, ones);
        alpha = ag::Mul(
            alpha, ag::GatherRows(ag::Pow(ag::AddScalar(sums, 1e-9f), -1.0f),
                                  edges->dst));
      }
    }
    last_attention_.AddInPlace(alpha.value());
    ag::Variable head_out = ag::SpMM(edges, alpha, wh);
    out = (h == 0) ? head_out : ag::ConcatCols(out, head_out);
  }
  last_attention_.ScaleInPlace(1.0f / static_cast<float>(w_.size()));
  out = ag::AddRowVector(out, bias_);
  return out;
}

}  // namespace ses::nn
