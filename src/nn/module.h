#ifndef SES_NN_MODULE_H_
#define SES_NN_MODULE_H_

#include <string>
#include <vector>

#include "autograd/variable.h"

namespace ses::nn {

/// Base class for parameterized components: owns a flat registry of
/// trainable parameters so optimizers and serialization can treat every
/// model uniformly. Parameters of registered sub-modules are included.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters (this module + registered children).
  std::vector<autograd::Variable> Parameters() const;

  /// Names aligned with Parameters(): a parameter registered as "weight" in
  /// a child registered as "conv1" reports "conv1.weight". Unnamed
  /// parameters default to "p<index>", unnamed children to "m<index>", so
  /// every parameter always has a distinct dotted path.
  std::vector<std::string> ParameterNames() const;

  /// Zeroes the gradient of every parameter.
  void ZeroGrad();

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

  /// Deep-copies parameter VALUES from another module with an identical
  /// architecture (same registration order and shapes).
  void CopyParametersFrom(const Module& other);

 public:
  /// Serializes all parameter values to a binary file (shape-checked on
  /// load). Format: count, then per parameter rows/cols + float32 data.
  void SaveParameters(const std::string& path) const;
  /// Restores values saved by SaveParameters into an identically shaped
  /// module.
  void LoadParameters(const std::string& path);

 protected:
  /// Registers a trainable parameter; returns it for storage in the layer.
  /// `name` (optional) becomes its segment in ParameterNames().
  autograd::Variable RegisterParameter(tensor::Tensor value,
                                       std::string name = "");

  /// Registers an externally constructed parameter Variable (shares the
  /// node; updates through either handle are visible to both).
  void AdoptParameter(const autograd::Variable& param, std::string name = "");

  /// Registers a child whose parameters are folded into Parameters();
  /// `prefix` (optional) prefixes the child's parameter names.
  void RegisterModule(Module* child, std::string prefix = "");

 private:
  std::vector<autograd::Variable> params_;
  std::vector<std::string> param_names_;  ///< aligned with params_
  std::vector<Module*> children_;
  std::vector<std::string> child_prefixes_;  ///< aligned with children_
};

}  // namespace ses::nn

#endif  // SES_NN_MODULE_H_
