#include "nn/linear.h"

#include "obs/trace.h"
#include "util/logging.h"

namespace ses::nn {

namespace ag = ses::autograd;
namespace t = ses::tensor;

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
               bool bias) {
  weight_ = RegisterParameter(
      t::Tensor::Xavier(in_features, out_features, rng), "weight");
  if (bias)
    bias_ = RegisterParameter(t::Tensor::Zeros(1, out_features), "bias");
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  SES_TRACE_SPAN("nn/Linear");
  ag::Variable y = ag::MatMul(x, weight_);
  if (bias_.defined()) y = ag::AddRowVector(y, bias_);
  return y;
}

Mlp::Mlp(const std::vector<int64_t>& dims, util::Rng* rng,
         OutputActivation output_activation)
    : output_activation_(output_activation) {
  SES_CHECK(dims.size() >= 2);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  for (size_t i = 0; i < layers_.size(); ++i)
    RegisterModule(&layers_[i], "fc" + std::to_string(i));
}

ag::Variable Mlp::Forward(const ag::Variable& x) const {
  SES_TRACE_SPAN("nn/Mlp");
  ag::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ag::Relu(h);
  }
  switch (output_activation_) {
    case OutputActivation::kNone: break;
    case OutputActivation::kSigmoid: h = ag::Sigmoid(h); break;
    case OutputActivation::kRelu: h = ag::Relu(h); break;
  }
  return h;
}

}  // namespace ses::nn
