#ifndef SES_NN_FEATURE_INPUT_H_
#define SES_NN_FEATURE_INPUT_H_

#include <memory>

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "tensor/sparse.h"

namespace ses::nn {

/// Node-feature input to a graph convolution: either a dense Variable or a
/// sparse CSR matrix with an optional differentiable per-nonzero mask (the
/// masked features M_f ⊙ X of SES, kept sparse end-to-end).
class FeatureInput {
 public:
  FeatureInput() = default;

  static FeatureInput Dense(autograd::Variable x) {
    FeatureInput f;
    f.dense_ = std::move(x);
    return f;
  }

  static FeatureInput Sparse(std::shared_ptr<const tensor::SparseMatrix> x,
                             autograd::Variable nnz_mask = {}) {
    FeatureInput f;
    f.sparse_ = std::move(x);
    f.nnz_mask_ = std::move(nnz_mask);
    return f;
  }

  bool is_sparse() const { return sparse_ != nullptr; }
  int64_t rows() const { return is_sparse() ? sparse_->rows : dense_.rows(); }
  int64_t cols() const { return is_sparse() ? sparse_->cols : dense_.cols(); }
  const autograd::Variable& dense() const { return dense_; }
  const std::shared_ptr<const tensor::SparseMatrix>& sparse() const {
    return sparse_;
  }
  const autograd::Variable& nnz_mask() const { return nnz_mask_; }

  /// x * W, via the sparse fused kernel when sparse.
  autograd::Variable Project(const autograd::Variable& w) const {
    if (is_sparse()) return autograd::SparseMaskedLinear(sparse_, nnz_mask_, w);
    return autograd::MatMul(dense_, w);
  }

 private:
  autograd::Variable dense_;
  std::shared_ptr<const tensor::SparseMatrix> sparse_;
  autograd::Variable nnz_mask_;
};

}  // namespace ses::nn

#endif  // SES_NN_FEATURE_INPUT_H_
