#include "nn/module.h"

#include "robust/serialize.h"
#include "util/logging.h"

namespace ses::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> all = params_;
  for (const Module* child : children_) {
    auto sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.value().size();
  return total;
}

void Module::CopyParametersFrom(const Module& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  SES_CHECK(dst.size() == src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    SES_CHECK(dst[i].value().SameShape(src[i].value()));
    dst[i].mutable_value() = src[i].value();
  }
}

std::vector<std::string> Module::ParameterNames() const {
  std::vector<std::string> names;
  names.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i)
    names.push_back(param_names_[i].empty() ? "p" + std::to_string(i)
                                            : param_names_[i]);
  for (size_t c = 0; c < children_.size(); ++c) {
    const std::string prefix = child_prefixes_[c].empty()
                                   ? "m" + std::to_string(c)
                                   : child_prefixes_[c];
    for (const std::string& sub : children_[c]->ParameterNames())
      names.push_back(prefix + "." + sub);
  }
  return names;
}

autograd::Variable Module::RegisterParameter(tensor::Tensor value,
                                             std::string name) {
  auto v = autograd::Variable::Parameter(std::move(value));
  params_.push_back(v);
  param_names_.push_back(std::move(name));
  return v;
}

void Module::AdoptParameter(const autograd::Variable& param,
                            std::string name) {
  SES_CHECK(param.requires_grad());
  params_.push_back(param);
  param_names_.push_back(std::move(name));
}

void Module::SaveParameters(const std::string& path) const {
  robust::Serializer s;
  const auto params = Parameters();
  std::vector<tensor::Tensor> values;
  values.reserve(params.size());
  for (const auto& p : params) values.push_back(p.value());
  s.WriteTensorVec(values);
  // Atomic write with magic/version header + CRC32: a crash mid-save never
  // leaves a torn file, and bit rot is rejected on load instead of silently
  // feeding garbage weights into inference.
  robust::WriteFileAtomic(path, s.buffer());
}

void Module::LoadParameters(const std::string& path) {
  const std::string payload = robust::ReadValidatedFile(path);
  robust::Deserializer d(payload);
  const std::vector<tensor::Tensor> values = d.ReadTensorVec();
  auto params = Parameters();
  SES_CHECK(values.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    SES_CHECK(values[i].SameShape(params[i].value()));
    params[i].mutable_value() = values[i];
  }
}

void Module::RegisterModule(Module* child, std::string prefix) {
  children_.push_back(child);
  child_prefixes_.push_back(std::move(prefix));
}

}  // namespace ses::nn
