#include "nn/module.h"

#include <fstream>

#include "util/logging.h"

namespace ses::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> all = params_;
  for (const Module* child : children_) {
    auto sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.value().size();
  return total;
}

void Module::CopyParametersFrom(const Module& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  SES_CHECK(dst.size() == src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    SES_CHECK(dst[i].value().SameShape(src[i].value()));
    dst[i].mutable_value() = src[i].value();
  }
}

autograd::Variable Module::RegisterParameter(tensor::Tensor value) {
  auto v = autograd::Variable::Parameter(std::move(value));
  params_.push_back(v);
  return v;
}

void Module::AdoptParameter(const autograd::Variable& param) {
  SES_CHECK(param.requires_grad());
  params_.push_back(param);
}

void Module::SaveParameters(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  SES_CHECK(out.good());
  const auto params = Parameters();
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const int64_t rows = p.value().rows(), cols = p.value().cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(sizeof(float) * p.value().size()));
  }
}

void Module::LoadParameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SES_CHECK(in.good());
  auto params = Parameters();
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  SES_CHECK(count == params.size());
  for (auto& p : params) {
    int64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    SES_CHECK(rows == p.value().rows() && cols == p.value().cols());
    in.read(reinterpret_cast<char*>(p.mutable_value().data()),
            static_cast<std::streamsize>(sizeof(float) * p.value().size()));
    SES_CHECK(in.good());
  }
}

void Module::RegisterModule(Module* child) { children_.push_back(child); }

}  // namespace ses::nn
