#include "nn/gcn_conv.h"

#include "graph/graph.h"
#include "obs/perfcount.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ses::nn {

namespace ag = ses::autograd;
namespace t = ses::tensor;

GcnConv::GcnConv(int64_t in_features, int64_t out_features, util::Rng* rng,
                 bool bias) {
  weight_ = RegisterParameter(
      t::Tensor::Xavier(in_features, out_features, rng), "weight");
  if (bias)
    bias_ = RegisterParameter(t::Tensor::Zeros(1, out_features), "bias");
}

ag::Variable GcnConv::Forward(const FeatureInput& x,
                              const ag::EdgeListPtr& edges,
                              const ag::Variable& edge_weight,
                              bool fuse_relu) const {
  SES_TRACE_SPAN("nn/GcnConv");
  // Composite scope: declares the whole layer's chain work (projection +
  // aggregation); the nested matmul/spmm scopes keep their own exclusive
  // counter deltas.
  const double n = static_cast<double>(x.rows());
  const double in = static_cast<double>(weight_.rows());
  const double out_f = static_cast<double>(weight_.cols());
  const double e = static_cast<double>(edges->size());
  obs::KernelScope kscope("gcn_conv", "forward",
                          2.0 * n * in * out_f + 2.0 * e * out_f,
                          4.0 * (n * in + in * out_f + 2.0 * n * out_f) +
                              12.0 * e * out_f);
  ag::Variable h = x.Project(weight_);
  // Bias (and the optional ReLU) ride the aggregation's epilogue: one pass
  // over the output rows instead of SpMM -> AddRowVector -> Relu.
  if (bias_.defined() || fuse_relu)
    return ag::SpMMBiasAct(edges, edge_weight, h, bias_, fuse_relu);
  return ag::SpMM(edges, edge_weight, h);
}

ag::Variable MakeGcnWeights(const ag::EdgeListPtr& edges) {
  auto weights = graph::Graph::GcnNormWeights(*edges);
  t::Tensor w(static_cast<int64_t>(weights.size()), 1);
  for (size_t i = 0; i < weights.size(); ++i)
    w[static_cast<int64_t>(i)] = weights[i];
  return ag::Variable::Constant(std::move(w));
}

}  // namespace ses::nn
