#ifndef SES_NN_LINEAR_H_
#define SES_NN_LINEAR_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace ses::nn {

/// Dense affine layer y = xW + b with Xavier-initialized W.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
         bool bias = true);

  autograd::Variable Forward(const autograd::Variable& x) const;

  const autograd::Variable& weight() const { return weight_; }
  const autograd::Variable& bias() const { return bias_; }
  bool has_bias() const { return bias_.defined(); }

 private:
  autograd::Variable weight_;  ///< in x out
  autograd::Variable bias_;    ///< 1 x out (undefined when bias = false)
};

/// Multi-layer perceptron with ReLU between layers and a configurable output
/// activation. `dims` = {in, hidden..., out}.
class Mlp : public Module {
 public:
  enum class OutputActivation { kNone, kSigmoid, kRelu };

  Mlp(const std::vector<int64_t>& dims, util::Rng* rng,
      OutputActivation output_activation = OutputActivation::kNone);

  autograd::Variable Forward(const autograd::Variable& x) const;

  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
  OutputActivation output_activation_;
};

}  // namespace ses::nn

#endif  // SES_NN_LINEAR_H_
