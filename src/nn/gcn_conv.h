#ifndef SES_NN_GCN_CONV_H_
#define SES_NN_GCN_CONV_H_

#include "autograd/sparse_ops.h"
#include "nn/feature_input.h"
#include "nn/module.h"
#include "util/rng.h"

namespace ses::nn {

/// Graph convolution layer (Kipf & Welling):
///   out = Â (x W) + b,  Â given per call as (edges, edge_weight).
///
/// The caller supplies the message-passing support explicitly so the same
/// layer instance can run over A, A^(k), or a masked adjacency M̂_s ⊙ A —
/// exactly the parameter sharing the SES paper requires between its two
/// training phases (the "shared graph encoder").
class GcnConv : public Module {
 public:
  GcnConv(int64_t in_features, int64_t out_features, util::Rng* rng,
          bool bias = true);

  /// `edge_weight` is an E x 1 Variable over `edges` (normalization and/or
  /// mask already folded in by the caller; see MakeGcnWeights).
  ///
  /// `fuse_relu` folds the layer's ReLU into the aggregation epilogue
  /// (ag::SpMMBiasAct) so bias add + activation happen while each output row
  /// is cache-hot. The result equals ReLU(Forward(...)) — bitwise at scalar
  /// tier — so callers enabling it must drop their own activation.
  autograd::Variable Forward(const FeatureInput& x,
                             const autograd::EdgeListPtr& edges,
                             const autograd::Variable& edge_weight,
                             bool fuse_relu = false) const;

 private:
  autograd::Variable weight_;
  autograd::Variable bias_;
};

/// Constant symmetric-normalization weights for `edges` (degree over the
/// edge list itself, so include self-loops in `edges` first).
autograd::Variable MakeGcnWeights(const autograd::EdgeListPtr& edges);

}  // namespace ses::nn

#endif  // SES_NN_GCN_CONV_H_
