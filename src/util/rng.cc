#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ses::util {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::Uniform(float lo, float hi) {
  return lo + static_cast<float>(Uniform()) * (hi - lo);
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  if (k > n) throw std::invalid_argument("SampleWithoutReplacement: k > n");
  // For small k relative to n use Floyd's algorithm; otherwise shuffle.
  if (k * 4 < n) {
    std::vector<int64_t> result;
    result.reserve(static_cast<size_t>(k));
    // Floyd's algorithm with a linear membership probe (k is small here).
    for (int64_t j = n - k; j < n; ++j) {
      int64_t t = static_cast<int64_t>(UniformInt(static_cast<uint64_t>(j + 1)));
      bool seen = false;
      for (int64_t v : result) {
        if (v == t) {
          seen = true;
          break;
        }
      }
      result.push_back(seen ? j : t);
    }
    Shuffle(&result);
    return result;
  }
  std::vector<int64_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  Shuffle(&all);
  all.resize(static_cast<size_t>(k));
  return all;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("Categorical: non-positive weight sum");
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size() - 1);
}

Rng Rng::Fork() { return Rng(NextU64()); }

RngState Rng::State() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace ses::util
