#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/logging.h"

namespace ses::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) SES_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& row : rows_) account(row);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size())
        out << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::string cell = row[i];
      bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        std::string escaped = "\"";
        for (char c : cell) {
          if (c == '"') escaped += "\"\"";
          else escaped += c;
        }
        escaped += "\"";
        cell = escaped;
      }
      out << cell;
      if (i + 1 < row.size()) out << ",";
    }
    out << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

void Table::WriteCsv(const std::string& path) const {
  WriteFile(path, ToCsv());
}

std::string Table::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string Table::MeanStd(double mean, double std, int digits) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", digits, mean, digits, std);
  return buf;
}

void EnsureDirectories(const std::string& path) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
}

void WriteFile(const std::string& path, const std::string& content) {
  EnsureDirectories(path);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << content;
}

}  // namespace ses::util
