#ifndef SES_UTIL_TABLE_H_
#define SES_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace ses::util {

/// Plain-text table printer used by the benchmark harnesses to render the
/// paper's tables (aligned columns, optional title), plus CSV export so the
/// artifacts can be post-processed.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; must match the header arity if a header is set.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders as CSV (no alignment, header first).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Writes ToCsv() to `path`, creating parent directories if needed.
  void WriteCsv(const std::string& path) const;

  /// Formats a float with `digits` decimals.
  static std::string Num(double value, int digits = 2);

  /// Formats "mean±std" as the paper's accuracy cells do.
  static std::string MeanStd(double mean, double std, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Creates all missing directories on `path` (like `mkdir -p`).
void EnsureDirectories(const std::string& path);

/// Writes `content` to `path`, creating parent directories if needed.
void WriteFile(const std::string& path, const std::string& content);

}  // namespace ses::util

#endif  // SES_UTIL_TABLE_H_
