#ifndef SES_UTIL_CRC32_H_
#define SES_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ses::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum that
/// guards checkpoint payloads against truncation and bit rot. Standard
/// check value: Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// Incremental form: feed chunks with the previous return value as `seed`
/// (start from 0).
uint32_t Crc32Update(uint32_t seed, const void* data, size_t size);

}  // namespace ses::util

#endif  // SES_UTIL_CRC32_H_
