#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <stdexcept>

namespace ses::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// "2026-08-06T12:34:56.789Z" (UTC, millisecond resolution). `buf` must hold
/// at least 32 bytes.
void FormatIsoTimestamp(char* buf, size_t buf_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  const size_t len = std::strftime(buf, buf_size, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf + len, buf_size - len, ".%03dZ",
                static_cast<int>(millis));
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

uint32_t ThreadId() {
  static std::atomic<uint32_t> next_id{0};
  thread_local const uint32_t id = next_id.fetch_add(1);
  return id;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  char ts[32];
  FormatIsoTimestamp(ts, sizeof(ts));
  const uint32_t tid = ThreadId();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s [%s] [T%u] %s\n", ts, LevelName(level), tid,
               message.c_str());
}

namespace internal {

void FailCheck(const char* expr, const char* file, int line) {
  std::string msg = std::string("SES_CHECK failed: ") + expr + " at " + file +
                    ":" + std::to_string(line);
  LogMessage(LogLevel::kError, msg);
  throw std::logic_error(msg);
}

}  // namespace internal
}  // namespace ses::util
