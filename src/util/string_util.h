#ifndef SES_UTIL_STRING_UTIL_H_
#define SES_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace ses::util {

/// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Parses "--flag=value"-style command-line arguments; also recognizes bare
/// "--flag" as "true". Unrecognized positional arguments are ignored.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// Returns the flag value or `fallback` if absent.
  std::string GetString(const std::string& name, const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
};

}  // namespace ses::util

#endif  // SES_UTIL_STRING_UTIL_H_
