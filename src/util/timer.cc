#include "util/timer.h"

#include <cmath>
#include <cstdio>

namespace ses::util {

void Timer::Reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::ElapsedSeconds() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Timer::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    int mins = static_cast<int>(seconds / 60.0);
    double rem = seconds - 60.0 * mins;
    std::snprintf(buf, sizeof(buf), "%d min %.0fs", mins, rem);
  }
  return buf;
}

}  // namespace ses::util
