#ifndef SES_UTIL_RNG_H_
#define SES_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ses::util {

/// Complete serializable state of an Rng stream: the four xoshiro256**
/// words plus the Box-Muller cache. Restoring it resumes the stream exactly
/// where it was captured (checkpoint/restore relies on this for bitwise
/// reproducible resumed training).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  bool operator==(const RngState& other) const {
    return s[0] == other.s[0] && s[1] == other.s[1] && s[2] == other.s[2] &&
           s[3] == other.s[3] &&
           has_cached_normal == other.has_cached_normal &&
           cached_normal == other.cached_normal;
  }
};

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic components in the library take an explicit `Rng` (or a
/// seed) so that every experiment is reproducible bit-for-bit. The generator
/// passes BigCrush and is substantially faster than std::mt19937_64.
class Rng {
 public:
  /// Seeds the generator with splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with given mean / stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  int64_t Categorical(const std::vector<double>& weights);

  /// Forks an independent stream (useful for parallel workers).
  Rng Fork();

  /// Captures / restores the full generator state (see RngState).
  RngState State() const;
  void SetState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ses::util

#endif  // SES_UTIL_RNG_H_
