#ifndef SES_UTIL_TIMER_H_
#define SES_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace ses::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { Reset(); }

  /// Restarts the stopwatch.
  void Reset();

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const;

  /// Elapsed milliseconds.
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Formats a duration as the paper does ("4.3s", "1 min 13s", "9 min 50s").
std::string FormatDuration(double seconds);

}  // namespace ses::util

#endif  // SES_UTIL_TIMER_H_
