#include "util/string_util.h"

#include <cstdlib>
#include <sstream>

namespace ses::util {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> result;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, delim)) result.push_back(piece);
  if (!s.empty() && s.back() == delim) result.push_back("");
  return result;
}

std::string Join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags_.emplace_back(arg, "true");
    } else {
      flags_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  for (const auto& [k, v] : flags_)
    if (k == name) return v;
  return fallback;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  for (const auto& [k, v] : flags_)
    if (k == name) return std::strtoll(v.c_str(), nullptr, 10);
  return fallback;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  for (const auto& [k, v] : flags_)
    if (k == name) return std::strtod(v.c_str(), nullptr);
  return fallback;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  for (const auto& [k, v] : flags_)
    if (k == name) return v == "true" || v == "1" || v == "yes";
  return fallback;
}

}  // namespace ses::util
