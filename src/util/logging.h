#ifndef SES_UTIL_LOGGING_H_
#define SES_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace ses::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted log line to stderr (thread-safe). Lines carry an
/// ISO-8601 UTC timestamp and the calling thread's short id:
///   2026-08-06T12:34:56.789Z [INFO] [T0] message
void LogMessage(LogLevel level, const std::string& message);

/// Small sequential id of the calling thread (0 for the first thread that
/// asks, 1 for the next, ...). Stable for the thread's lifetime; used by log
/// lines and trace events, which need something shorter than pthread ids.
uint32_t ThreadId();

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// True on the 1st, (n+1)th, (2n+1)th ... call for a given site counter.
inline bool LogEveryN(std::atomic<uint64_t>* counter, uint64_t n) {
  return counter->fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace internal
}  // namespace ses::util

#define SES_LOG_DEBUG ::ses::util::internal::LogStream(::ses::util::LogLevel::kDebug)
#define SES_LOG_INFO ::ses::util::internal::LogStream(::ses::util::LogLevel::kInfo)
#define SES_LOG_WARN ::ses::util::internal::LogStream(::ses::util::LogLevel::kWarning)
#define SES_LOG_ERROR ::ses::util::internal::LogStream(::ses::util::LogLevel::kError)

/// Rate-limited logging for hot loops: emits on the 1st, (n+1)th, (2n+1)th...
/// execution of this statement. `level` is one of DEBUG, INFO, WARN, ERROR.
/// Usage: SES_LOG_EVERY_N(INFO, 100) << "processed " << i << " edges";
#define SES_LOG_EVERY_N(level, n)                                           \
  for (bool ses_log_now_ = [] {                                             \
         static ::std::atomic<uint64_t> ses_log_counter_{0};                \
         return ::ses::util::internal::LogEveryN(&ses_log_counter_, (n));   \
       }();                                                                 \
       ses_log_now_; ses_log_now_ = false)                                  \
  SES_LOG_##level

/// Always-on invariant check (kept in release builds; these guard API misuse,
/// not hot loops).
#define SES_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ses::util::internal::FailCheck(#cond, __FILE__, __LINE__);          \
    }                                                                       \
  } while (0)

namespace ses::util::internal {
[[noreturn]] void FailCheck(const char* expr, const char* file, int line);
}  // namespace ses::util::internal

#endif  // SES_UTIL_LOGGING_H_
