#ifndef SES_UTIL_LOGGING_H_
#define SES_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ses::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted log line to stderr (thread-safe).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ses::util

#define SES_LOG_DEBUG ::ses::util::internal::LogStream(::ses::util::LogLevel::kDebug)
#define SES_LOG_INFO ::ses::util::internal::LogStream(::ses::util::LogLevel::kInfo)
#define SES_LOG_WARN ::ses::util::internal::LogStream(::ses::util::LogLevel::kWarning)
#define SES_LOG_ERROR ::ses::util::internal::LogStream(::ses::util::LogLevel::kError)

/// Always-on invariant check (kept in release builds; these guard API misuse,
/// not hot loops).
#define SES_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ses::util::internal::FailCheck(#cond, __FILE__, __LINE__);          \
    }                                                                       \
  } while (0)

namespace ses::util::internal {
[[noreturn]] void FailCheck(const char* expr, const char* file, int line);
}  // namespace ses::util::internal

#endif  // SES_UTIL_LOGGING_H_
