#ifndef SES_MODELS_PROTGNN_H_
#define SES_MODELS_PROTGNN_H_

#include <memory>

#include "models/encoders.h"
#include "models/node_classifier.h"

namespace ses::models {

/// ProtGNN (Zhang et al., AAAI'22): a GNN backbone followed by a prototype
/// layer. Each class owns `protos_per_class` learnable prototypes in
/// embedding space; a node's similarity to prototype p is
///   sim(z, p) = log((||z-p||^2 + 1) / (||z-p||^2 + eps)),
/// and classification is a (fixed, class-linked) linear readout of the
/// similarities. Training minimizes cross-entropy plus a cluster cost
/// (pull each node to its nearest own-class prototype) and a separation
/// cost (push it from the nearest other-class prototype) — the case-based
/// reasoning the paper describes. Explanations are the nearest prototypes;
/// the node prototypes at cluster boundaries are exactly the failure mode
/// the SES paper cites for ProtGNN's weaker node-classification accuracy.
class ProtGnnModel : public NodeClassifier {
 public:
  explicit ProtGnnModel(std::string backbone = "GCN",
                        int64_t protos_per_class = 3)
      : backbone_(std::move(backbone)), protos_per_class_(protos_per_class) {}

  std::string name() const override { return "ProtGNN"; }
  void Fit(const data::Dataset& ds, const TrainConfig& config) override;
  tensor::Tensor Logits(const data::Dataset& ds) override;
  tensor::Tensor Embeddings(const data::Dataset& ds) override;

  /// Prototype vectors (P x hidden), row-major by class.
  tensor::Tensor Prototypes() const { return prototypes_.value(); }

 private:
  struct Outputs {
    autograd::Variable hidden;
    autograd::Variable logits;
  };
  Outputs Forward(const data::Dataset& ds, bool training, util::Rng* rng,
                  autograd::Variable* similarities);

  std::string backbone_;
  int64_t protos_per_class_;
  std::unique_ptr<Encoder> encoder_;
  autograd::Variable prototypes_;  ///< (C * protos_per_class) x hidden
  tensor::Tensor readout_;         ///< fixed P x C class-linked weights
  autograd::EdgeListPtr edges_;
  TrainConfig config_;
};

}  // namespace ses::models

#endif  // SES_MODELS_PROTGNN_H_
