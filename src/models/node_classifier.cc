#include "models/node_classifier.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::models {

double Accuracy(const tensor::Tensor& logits, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& idx) {
  if (idx.empty()) return 0.0;
  auto pred = tensor::ArgmaxRows(logits);
  int64_t correct = 0;
  for (int64_t i : idx)
    if (pred[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(idx.size());
}

nn::FeatureInput MakeInput(const data::Dataset& ds) {
  SES_CHECK(ds.features != nullptr);
  return nn::FeatureInput::Sparse(ds.features);
}

}  // namespace ses::models
