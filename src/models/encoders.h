#ifndef SES_MODELS_ENCODERS_H_
#define SES_MODELS_ENCODERS_H_

#include <memory>
#include <string>

#include "autograd/sparse_ops.h"
#include "nn/feature_input.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace ses::models {

/// Two-layer graph encoder (Eq. 2 of the paper): Z = Conv2(σ(Conv1(A, X)), A).
///
/// The same encoder instance runs under different message-passing supports —
/// the plain adjacency, the k-hop adjacency, or a mask-weighted adjacency —
/// which is what "the parameters of the graph encoder are shared in two
/// phases" means operationally. `edge_mask`, when defined, multiplies the
/// per-edge aggregation coefficient (normalized weight for GCN, attention
/// for GAT), giving the mask generator a gradient path (Eq. 8).
class Encoder : public nn::Module {
 public:
  struct Output {
    autograd::Variable hidden;  ///< H = activation(Conv1(...)), N x hidden
    autograd::Variable logits;  ///< Z, N x classes
  };

  virtual ~Encoder() = default;
  virtual std::string backbone() const = 0;
  virtual int64_t hidden_dim() const = 0;

  /// `renormalize_mask` selects how a defined edge_mask enters the
  /// aggregation: true (inference / enhanced predictive learning) treats the
  /// masked adjacency as a weighted graph and renormalizes so the
  /// aggregation scale is mask-invariant; false (explainable training's
  /// masked pass) couples the absolute mask magnitude to the activations,
  /// which is the gradient signal that makes the co-trained mask selective.
  ///
  /// `cached_aggregation`, when non-null and defined, supplies the per-edge
  /// aggregation weights a previous PrecomputeAggregation call derived from
  /// the same (edges, edge_mask, renormalize_mask) triple, skipping their
  /// recomputation. Only legal when `training` is false: a cached Variable is
  /// typically tape-free, so reusing it in a training forward would silently
  /// detach the mask gradient path.
  virtual Output Forward(const nn::FeatureInput& x,
                         const autograd::EdgeListPtr& edges,
                         const autograd::Variable& edge_mask, float dropout,
                         bool training, util::Rng* rng,
                         bool renormalize_mask = true,
                         const autograd::Variable* cached_aggregation =
                             nullptr) const = 0;

  /// Derives the per-edge aggregation weights Forward would compute from
  /// (edges, edge_mask, renormalize_mask) — GCN symmetric normalization,
  /// GIN/SAGE sum/mean weights. These depend only on the graph structure and
  /// the mask, never on node features, so serving paths compute them once per
  /// graph version and pass them back via `cached_aggregation`. Returns an
  /// undefined Variable when the weights are input-dependent (GAT attention)
  /// and caching is impossible.
  virtual autograd::Variable PrecomputeAggregation(
      const autograd::EdgeListPtr& edges, const autograd::Variable& edge_mask,
      bool renormalize_mask = true) const {
    (void)edges;
    (void)edge_mask;
    (void)renormalize_mask;
    return {};
  }

  /// Mean attention per edge of the last forward (GAT only; empty for GCN).
  virtual tensor::Tensor LastAttention() const { return {}; }
};

/// GCN backbone.
class GcnEncoder : public Encoder {
 public:
  GcnEncoder(int64_t in, int64_t hidden, int64_t out, util::Rng* rng);
  std::string backbone() const override { return "GCN"; }
  int64_t hidden_dim() const override { return hidden_; }
  Output Forward(const nn::FeatureInput& x, const autograd::EdgeListPtr& edges,
                 const autograd::Variable& edge_mask, float dropout,
                 bool training, util::Rng* rng, bool renormalize_mask = true,
                 const autograd::Variable* cached_aggregation =
                     nullptr) const override;
  autograd::Variable PrecomputeAggregation(
      const autograd::EdgeListPtr& edges, const autograd::Variable& edge_mask,
      bool renormalize_mask = true) const override;

 private:
  int64_t hidden_;
  nn::GcnConv conv1_;
  nn::GcnConv conv2_;
};

/// GAT backbone (multi-head first layer, single-head output layer).
class GatEncoder : public Encoder {
 public:
  GatEncoder(int64_t in, int64_t hidden, int64_t out, int64_t heads,
             util::Rng* rng);
  std::string backbone() const override { return "GAT"; }
  int64_t hidden_dim() const override { return hidden_; }
  Output Forward(const nn::FeatureInput& x, const autograd::EdgeListPtr& edges,
                 const autograd::Variable& edge_mask, float dropout,
                 bool training, util::Rng* rng, bool renormalize_mask = true,
                 const autograd::Variable* cached_aggregation =
                     nullptr) const override;
  tensor::Tensor LastAttention() const override {
    return conv1_.last_attention();
  }

 private:
  int64_t hidden_;
  nn::GatConv conv1_;
  nn::GatConv conv2_;
};

/// GIN backbone (Xu et al.): h' = MLP((1 + eps) h_v + sum_u h_u). The paper
/// names GIN among the interchangeable backbones; exposing it here lets SES
/// run over a sum-aggregation encoder unchanged.
class GinEncoder : public Encoder {
 public:
  GinEncoder(int64_t in, int64_t hidden, int64_t out, util::Rng* rng);
  std::string backbone() const override { return "GIN"; }
  int64_t hidden_dim() const override { return hidden_; }
  Output Forward(const nn::FeatureInput& x, const autograd::EdgeListPtr& edges,
                 const autograd::Variable& edge_mask, float dropout,
                 bool training, util::Rng* rng, bool renormalize_mask = true,
                 const autograd::Variable* cached_aggregation =
                     nullptr) const override;
  autograd::Variable PrecomputeAggregation(
      const autograd::EdgeListPtr& edges, const autograd::Variable& edge_mask,
      bool renormalize_mask = true) const override;

 private:
  int64_t hidden_;
  autograd::Variable w1_;   ///< in x hidden (pre-aggregation projection)
  nn::Mlp mlp1_;            ///< hidden -> hidden
  nn::Mlp mlp2_;            ///< hidden -> out
  autograd::Variable eps1_; ///< 1 x 1 learnable self-weight
  autograd::Variable eps2_;
};

/// GraphSAGE backbone (Hamilton et al.), mean aggregator:
/// h' = W_self h_v + W_nbr mean_u h_u.
class SageEncoder : public Encoder {
 public:
  SageEncoder(int64_t in, int64_t hidden, int64_t out, util::Rng* rng);
  std::string backbone() const override { return "SAGE"; }
  int64_t hidden_dim() const override { return hidden_; }
  Output Forward(const nn::FeatureInput& x, const autograd::EdgeListPtr& edges,
                 const autograd::Variable& edge_mask, float dropout,
                 bool training, util::Rng* rng, bool renormalize_mask = true,
                 const autograd::Variable* cached_aggregation =
                     nullptr) const override;
  autograd::Variable PrecomputeAggregation(
      const autograd::EdgeListPtr& edges, const autograd::Variable& edge_mask,
      bool renormalize_mask = true) const override;

 private:
  int64_t hidden_;
  autograd::Variable w_self1_, w_nbr1_;  ///< in x hidden
  autograd::Variable w_self2_, w_nbr2_;  ///< hidden x out
  autograd::Variable b1_, b2_;
};

/// Factory: backbone is "GCN", "GAT", "GIN" or "SAGE".
std::unique_ptr<Encoder> MakeEncoder(const std::string& backbone, int64_t in,
                                     int64_t hidden, int64_t out,
                                     util::Rng* rng);

}  // namespace ses::models

#endif  // SES_MODELS_ENCODERS_H_
