#include "models/encoders.h"

#include "autograd/ops.h"
#include "obs/perfcount.h"
#include "util/logging.h"

namespace ses::models {

namespace ag = ses::autograd;
namespace t = ses::tensor;

namespace {

/// Symmetric normalization over the MASK-WEIGHTED graph:
///   w_e = m_e / sqrt(deg_m(src) * deg_m(dst)),  deg_m(v) = sum of incoming
/// mask weights. A masked adjacency is a weighted graph; normalizing by the
/// weighted degree keeps the aggregation's scale stable however sparse the
/// mask gets (a plain norm*mask product shrinks activations by mask^2 per
/// two layers and collapses inference on sparse masks). Differentiable in
/// the mask.
ag::Variable WeightedGcnNorm(const ag::EdgeListPtr& edges,
                             const ag::Variable& mask) {
  // Composite normalize+aggregate chain: degree SpMM (2E), rsqrt (2N
  // nominal), two gathers and two per-edge products (2E). Nested kernel
  // scopes keep exclusive counter deltas.
  const double e = static_cast<double>(edges->size());
  const double n = static_cast<double>(edges->num_nodes);
  obs::KernelScope kscope("aggregate_norm", "weighted_gcn", 4.0 * e + 2.0 * n,
                          40.0 * e + 16.0 * n);
  ag::Variable ones = ag::Variable::Constant(
      t::Tensor::Ones(edges->num_nodes, 1));
  ag::Variable deg = ag::SpMM(edges, mask, ones);  // N x 1 weighted degree
  ag::Variable inv_sqrt = ag::Pow(ag::AddScalar(deg, 1e-9f), -0.5f);
  return ag::Mul(mask, ag::Mul(ag::GatherRows(inv_sqrt, edges->src),
                               ag::GatherRows(inv_sqrt, edges->dst)));
}

/// Renormalizes masked attention so coefficients still sum to 1 per
/// destination.
ag::Variable RenormalizeAttention(const ag::EdgeListPtr& edges,
                                  const ag::Variable& masked_alpha) {
  const double e = static_cast<double>(edges->size());
  const double n = static_cast<double>(edges->num_nodes);
  obs::KernelScope kscope("aggregate_norm", "attention_renorm",
                          3.0 * e + 2.0 * n, 32.0 * e + 16.0 * n);
  ag::Variable ones = ag::Variable::Constant(
      t::Tensor::Ones(edges->num_nodes, 1));
  ag::Variable sums = ag::SpMM(edges, masked_alpha, ones);
  ag::Variable inv = ag::Pow(ag::AddScalar(sums, 1e-9f), -1.0f);
  return ag::Mul(masked_alpha, ag::GatherRows(inv, edges->dst));
}

}  // namespace

GcnEncoder::GcnEncoder(int64_t in, int64_t hidden, int64_t out, util::Rng* rng)
    : hidden_(hidden), conv1_(in, hidden, rng), conv2_(hidden, out, rng) {
  RegisterModule(&conv1_, "conv1");
  RegisterModule(&conv2_, "conv2");
}

ag::Variable GcnEncoder::PrecomputeAggregation(const ag::EdgeListPtr& edges,
                                               const ag::Variable& edge_mask,
                                               bool renormalize_mask) const {
  if (!edge_mask.defined()) return nn::MakeGcnWeights(edges);
  if (renormalize_mask) return WeightedGcnNorm(edges, edge_mask);
  return ag::Mul(nn::MakeGcnWeights(edges), edge_mask);
}

Encoder::Output GcnEncoder::Forward(const nn::FeatureInput& x,
                                    const ag::EdgeListPtr& edges,
                                    const ag::Variable& edge_mask,
                                    float dropout, bool training,
                                    util::Rng* rng, bool renormalize_mask,
                                    const ag::Variable* cached_aggregation)
    const {
  const bool use_cached =
      cached_aggregation != nullptr && cached_aggregation->defined();
  SES_CHECK(!use_cached || !training);
  ag::Variable weights =
      use_cached ? *cached_aggregation
                 : PrecomputeAggregation(edges, edge_mask, renormalize_mask);
  // Layer-1 ReLU is fused into the aggregation epilogue (bias + activation
  // applied per CSR row while it is hot) — equals ag::Relu(conv1.Forward()).
  ag::Variable h = conv1_.Forward(x, edges, weights, /*fuse_relu=*/true);
  Output out;
  out.hidden = h;
  h = ag::Dropout(h, dropout, training, rng);
  out.logits = conv2_.Forward(nn::FeatureInput::Dense(h), edges, weights);
  return out;
}

GatEncoder::GatEncoder(int64_t in, int64_t hidden, int64_t out, int64_t heads,
                       util::Rng* rng)
    : hidden_(hidden),
      conv1_(in, hidden / heads, heads, rng),
      conv2_(hidden, out, /*heads=*/1, rng) {
  SES_CHECK(hidden % heads == 0);
  RegisterModule(&conv1_, "conv1");
  RegisterModule(&conv2_, "conv2");
}

Encoder::Output GatEncoder::Forward(const nn::FeatureInput& x,
                                    const ag::EdgeListPtr& edges,
                                    const ag::Variable& edge_mask,
                                    float dropout, bool training,
                                    util::Rng* rng, bool renormalize_mask,
                                    const ag::Variable* cached_aggregation)
    const {
  // Attention coefficients depend on node features; there is nothing to
  // cache, so `cached_aggregation` is ignored (PrecomputeAggregation
  // returns undefined for GAT).
  (void)cached_aggregation;
  ag::Variable h =
      ag::Elu(conv1_.Forward(x, edges, edge_mask, renormalize_mask));
  Output out;
  out.hidden = h;
  h = ag::Dropout(h, dropout, training, rng);
  out.logits = conv2_.Forward(nn::FeatureInput::Dense(h), edges, edge_mask,
                              renormalize_mask);
  return out;
}

namespace {

/// Per-edge aggregation weight for the sum/mean aggregators: the mask when
/// defined (optionally renormalized into a mean), else constant.
ag::Variable AggregationWeights(const ag::EdgeListPtr& edges,
                                const ag::Variable& edge_mask, bool mean,
                                bool renormalize) {
  const bool normalizes = mean || (edge_mask.defined() && renormalize);
  const double e = static_cast<double>(edges->size());
  const double n = static_cast<double>(edges->num_nodes);
  obs::KernelScope kscope("aggregate_norm",
                          normalizes ? "degree_mean" : "passthrough",
                          normalizes ? 3.0 * e + 2.0 * n : 0.0,
                          normalizes ? 32.0 * e + 16.0 * n : 4.0 * e);
  ag::Variable w = edge_mask.defined()
                       ? edge_mask
                       : ag::Variable::Constant(
                             t::Tensor::Ones(edges->size(), 1));
  if (mean || (edge_mask.defined() && renormalize)) {
    ag::Variable ones = ag::Variable::Constant(
        t::Tensor::Ones(edges->num_nodes, 1));
    ag::Variable deg = ag::SpMM(edges, w, ones);
    w = ag::Mul(w, ag::GatherRows(ag::Pow(ag::AddScalar(deg, 1e-9f), -1.0f),
                                  edges->dst));
  }
  return w;
}

}  // namespace

GinEncoder::GinEncoder(int64_t in, int64_t hidden, int64_t out, util::Rng* rng)
    : hidden_(hidden),
      mlp1_({hidden, hidden, hidden}, rng),
      mlp2_({hidden, hidden, out}, rng) {
  w1_ = ag::Variable::Parameter(t::Tensor::Xavier(in, hidden, rng));
  eps1_ = ag::Variable::Parameter(t::Tensor::Zeros(1, 1));
  eps2_ = ag::Variable::Parameter(t::Tensor::Zeros(1, 1));
  RegisterModule(&mlp1_, "mlp1");
  RegisterModule(&mlp2_, "mlp2");
  // w1_/eps were created outside RegisterParameter; adopt them.
  AdoptParameter(w1_, "w1");
  AdoptParameter(eps1_, "eps1");
  AdoptParameter(eps2_, "eps2");
}

ag::Variable GinEncoder::PrecomputeAggregation(const ag::EdgeListPtr& edges,
                                               const ag::Variable& edge_mask,
                                               bool renormalize_mask) const {
  return AggregationWeights(edges, edge_mask, /*mean=*/false,
                            renormalize_mask);
}

Encoder::Output GinEncoder::Forward(const nn::FeatureInput& x,
                                    const ag::EdgeListPtr& edges,
                                    const ag::Variable& edge_mask,
                                    float dropout, bool training,
                                    util::Rng* rng, bool renormalize_mask,
                                    const ag::Variable* cached_aggregation)
    const {
  const bool use_cached =
      cached_aggregation != nullptr && cached_aggregation->defined();
  SES_CHECK(!use_cached || !training);
  ag::Variable w = use_cached ? *cached_aggregation
                              : AggregationWeights(edges, edge_mask,
                                                   /*mean=*/false,
                                                   renormalize_mask);
  ag::Variable h0 = x.Project(w1_);
  ag::Variable agg1 = ag::SpMM(edges, w, h0);
  ag::Variable h1 = mlp1_.Forward(
      ag::Add(agg1, ag::ScaleBy(h0, ag::AddScalar(eps1_, 1.0f))));
  h1 = ag::Relu(h1);
  Output out;
  out.hidden = h1;
  h1 = ag::Dropout(h1, dropout, training, rng);
  ag::Variable agg2 = ag::SpMM(edges, w, h1);
  out.logits = mlp2_.Forward(
      ag::Add(agg2, ag::ScaleBy(h1, ag::AddScalar(eps2_, 1.0f))));
  return out;
}

SageEncoder::SageEncoder(int64_t in, int64_t hidden, int64_t out,
                         util::Rng* rng)
    : hidden_(hidden) {
  w_self1_ = ag::Variable::Parameter(t::Tensor::Xavier(in, hidden, rng));
  w_nbr1_ = ag::Variable::Parameter(t::Tensor::Xavier(in, hidden, rng));
  w_self2_ = ag::Variable::Parameter(t::Tensor::Xavier(hidden, out, rng));
  w_nbr2_ = ag::Variable::Parameter(t::Tensor::Xavier(hidden, out, rng));
  b1_ = ag::Variable::Parameter(t::Tensor::Zeros(1, hidden));
  b2_ = ag::Variable::Parameter(t::Tensor::Zeros(1, out));
  AdoptParameter(w_self1_, "w_self1");
  AdoptParameter(w_nbr1_, "w_nbr1");
  AdoptParameter(w_self2_, "w_self2");
  AdoptParameter(w_nbr2_, "w_nbr2");
  AdoptParameter(b1_, "b1");
  AdoptParameter(b2_, "b2");
}

ag::Variable SageEncoder::PrecomputeAggregation(const ag::EdgeListPtr& edges,
                                                const ag::Variable& edge_mask,
                                                bool renormalize_mask) const {
  return AggregationWeights(edges, edge_mask, /*mean=*/true,
                            renormalize_mask);
}

Encoder::Output SageEncoder::Forward(const nn::FeatureInput& x,
                                     const ag::EdgeListPtr& edges,
                                     const ag::Variable& edge_mask,
                                     float dropout, bool training,
                                     util::Rng* rng, bool renormalize_mask,
                                     const ag::Variable* cached_aggregation)
    const {
  const bool use_cached =
      cached_aggregation != nullptr && cached_aggregation->defined();
  SES_CHECK(!use_cached || !training);
  ag::Variable w = use_cached ? *cached_aggregation
                              : AggregationWeights(edges, edge_mask,
                                                   /*mean=*/true,
                                                   renormalize_mask);
  ag::Variable self1 = x.Project(w_self1_);
  ag::Variable nbr1 = ag::SpMM(edges, w, x.Project(w_nbr1_));
  ag::Variable h = ag::Relu(
      ag::AddRowVector(ag::Add(self1, nbr1), b1_));
  Output out;
  out.hidden = h;
  h = ag::Dropout(h, dropout, training, rng);
  ag::Variable self2 = ag::MatMul(h, w_self2_);
  ag::Variable nbr2 = ag::SpMM(edges, w, ag::MatMul(h, w_nbr2_));
  out.logits = ag::AddRowVector(ag::Add(self2, nbr2), b2_);
  return out;
}

std::unique_ptr<Encoder> MakeEncoder(const std::string& backbone, int64_t in,
                                     int64_t hidden, int64_t out,
                                     util::Rng* rng) {
  if (backbone == "GCN")
    return std::make_unique<GcnEncoder>(in, hidden, out, rng);
  if (backbone == "GIN")
    return std::make_unique<GinEncoder>(in, hidden, out, rng);
  if (backbone == "SAGE")
    return std::make_unique<SageEncoder>(in, hidden, out, rng);
  if (backbone == "GAT") {
    int64_t heads = 4;
    while (hidden % heads != 0) heads /= 2;
    return std::make_unique<GatEncoder>(in, hidden, out, heads, rng);
  }
  SES_CHECK(false && "unknown backbone");
  return nullptr;
}

}  // namespace ses::models
