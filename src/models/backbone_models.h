#ifndef SES_MODELS_BACKBONE_MODELS_H_
#define SES_MODELS_BACKBONE_MODELS_H_

#include <memory>

#include "models/encoders.h"
#include "models/node_classifier.h"

namespace ses::models {

/// Plain two-layer GNN classifier over a configurable backbone ("GCN" or
/// "GAT") — the paper's first two baselines. Trains with cross-entropy +
/// Adam, keeping the best-validation parameters.
class BackboneModel : public NodeClassifier {
 public:
  explicit BackboneModel(std::string backbone) : backbone_(std::move(backbone)) {}

  std::string name() const override { return backbone_; }
  void Fit(const data::Dataset& ds, const TrainConfig& config) override;
  tensor::Tensor Logits(const data::Dataset& ds) override;
  tensor::Tensor Embeddings(const data::Dataset& ds) override;

  const Encoder* encoder() const { return encoder_.get(); }

 private:
  Encoder::Output EvalForward(const data::Dataset& ds);

  std::string backbone_;
  std::unique_ptr<Encoder> encoder_;
  autograd::EdgeListPtr edges_;
  TrainConfig config_;
};

/// Snapshots / restores parameter values of a module (used by every training
/// loop that applies the best-validation-epoch protocol).
class ParameterSnapshot {
 public:
  void Capture(const nn::Module& module);
  void Restore(nn::Module* module) const;
  bool empty() const { return values_.empty(); }

  /// Checkpoint support: raw access to the captured values (registered
  /// parameter order), so snapshots can be round-tripped through a
  /// robust::TrainingCheckpoint.
  const std::vector<tensor::Tensor>& values() const { return values_; }
  void set_values(std::vector<tensor::Tensor> values) {
    values_ = std::move(values);
  }

 private:
  std::vector<tensor::Tensor> values_;
};

}  // namespace ses::models

#endif  // SES_MODELS_BACKBONE_MODELS_H_
