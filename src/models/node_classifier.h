#ifndef SES_MODELS_NODE_CLASSIFIER_H_
#define SES_MODELS_NODE_CLASSIFIER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/feature_input.h"
#include "tensor/tensor.h"

namespace ses::models {

/// Hyperparameters shared by every trainable model. Defaults follow §5.3 of
/// the paper (Adam, lr 0.003, hidden 128).
struct TrainConfig {
  int64_t epochs = 200;
  float lr = 0.003f;
  int64_t hidden = 128;
  float dropout = 0.5f;
  float weight_decay = 5e-4f;
  uint64_t seed = 0;
  bool verbose = false;
  /// Keep the parameters of the best validation epoch (standard protocol).
  bool track_best_val = true;

  /// --- fault tolerance (src/robust) ----------------------------------------
  /// Directory for rotated training checkpoints; empty disables
  /// checkpointing. A killed run restarted with the same directory resumes
  /// from the newest valid checkpoint and reproduces the uninterrupted run
  /// bitwise.
  std::string checkpoint_dir;
  /// Epochs between checkpoint writes (phase boundaries always checkpoint).
  int64_t checkpoint_every = 20;
  /// Rotation depth: keep the newest K checkpoint files.
  int64_t checkpoint_keep = 3;
  /// Resume from checkpoint_dir when it holds a valid checkpoint.
  bool auto_resume = true;
  /// Global-norm gradient clipping bound; 0 disables clipping.
  float max_grad_norm = 0.0f;
  /// Consecutive NaN/Inf steps tolerated before rolling back to the last
  /// good checkpoint (with the learning rate scaled by rollback_lr_decay).
  int64_t max_bad_steps = 3;
  float rollback_lr_decay = 0.5f;
};

/// Uniform interface over every prediction baseline and SES, so the Table 3
/// harness can sweep models x datasets x seeds generically.
class NodeClassifier {
 public:
  virtual ~NodeClassifier() = default;
  virtual std::string name() const = 0;

  /// Trains on ds.train_idx (model-specific).
  virtual void Fit(const data::Dataset& ds, const TrainConfig& config) = 0;

  /// Class scores for every node, evaluation mode. N x C.
  virtual tensor::Tensor Logits(const data::Dataset& ds) = 0;

  /// Hidden representations for visualization / clustering metrics. N x H.
  virtual tensor::Tensor Embeddings(const data::Dataset& ds) = 0;
};

/// Fraction of nodes in `idx` whose argmax logit equals the label.
double Accuracy(const tensor::Tensor& logits, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& idx);

/// Wraps the dataset's CSR features for the conv layers.
nn::FeatureInput MakeInput(const data::Dataset& ds);

}  // namespace ses::models

#endif  // SES_MODELS_NODE_CLASSIFIER_H_
