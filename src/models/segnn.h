#ifndef SES_MODELS_SEGNN_H_
#define SES_MODELS_SEGNN_H_

#include <memory>

#include "models/encoders.h"
#include "models/node_classifier.h"

namespace ses::models {

/// SEGNN (Dai & Wang, CIKM'21): self-explainable node classification by
/// K-nearest labeled nodes under an interpretable similarity that combines
/// node (embedding) similarity with local-structure similarity. A small GCN
/// encoder supplies embeddings (trained contrastively + supervised); each
/// unlabeled node is classified by the similarity-weighted vote of its K
/// most similar labeled nodes, and those nodes with their matched local
/// structures are the explanation.
///
/// The similarity search is O(|unlabeled| x |labeled|) with an O(deg) local
/// structure term per pair — the quadratic cost (and memory) the paper's
/// Table 6/complexity analysis attributes to SEGNN falls out of this design.
class SegnnModel : public NodeClassifier {
 public:
  explicit SegnnModel(int64_t k_neighbors = 10) : k_neighbors_(k_neighbors) {}

  std::string name() const override { return "SEGNN"; }
  void Fit(const data::Dataset& ds, const TrainConfig& config) override;
  tensor::Tensor Logits(const data::Dataset& ds) override;
  tensor::Tensor Embeddings(const data::Dataset& ds) override;

  /// Edge importance for the explanation benchmark: similarity of the two
  /// endpoint embeddings (SEGNN explains through its similarity module).
  std::vector<float> EdgeScores(const data::Dataset& ds);

 private:
  int64_t k_neighbors_;
  std::unique_ptr<Encoder> encoder_;
  autograd::EdgeListPtr edges_;
  TrainConfig config_;
  tensor::Tensor cached_logits_;  ///< built lazily by the kNN vote
  bool logits_valid_ = false;
  const data::Dataset* fitted_ds_ = nullptr;
};

}  // namespace ses::models

#endif  // SES_MODELS_SEGNN_H_
