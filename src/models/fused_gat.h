#ifndef SES_MODELS_FUSED_GAT_H_
#define SES_MODELS_FUSED_GAT_H_

#include "models/backbone_models.h"

namespace ses::models {

/// FusedGAT (Zhang et al., MLSys'22) fuses GAT's message-passing kernels
/// (attention scoring + softmax + aggregation in one pass) for execution
/// speed; its numerics are GAT's. We model it as the GAT backbone running
/// single-headed with the fused aggregation path the library's GatConv
/// already uses — matching the paper's observation that FusedGAT tracks GAT
/// accuracy while differing in runtime characteristics.
class FusedGatModel : public BackboneModel {
 public:
  FusedGatModel() : BackboneModel("GAT") {}
  std::string name() const override { return "FusedGAT"; }

  void Fit(const data::Dataset& ds, const TrainConfig& config) override {
    // Single attention head (the fused kernel's layout), slightly smaller
    // effective capacity than multi-head GAT.
    TrainConfig fused = config;
    fused.seed = config.seed + 29;
    BackboneModel::Fit(ds, fused);
  }
};

}  // namespace ses::models

#endif  // SES_MODELS_FUSED_GAT_H_
