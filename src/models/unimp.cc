#include "models/unimp.h"

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "models/backbone_models.h"
#include "nn/optim.h"
#include "util/logging.h"

namespace ses::models {

namespace ag = ses::autograd;
namespace t = ses::tensor;

Encoder::Output UniMpModel::Forward(const data::Dataset& ds,
                                    const std::vector<int64_t>& visible_labels,
                                    bool training, util::Rng* rng) {
  // h0 = X W_x + onehot(visible labels) W_l
  ag::Variable h0 = ag::SparseMaskedLinear(ds.features, {}, input_w_);
  t::Tensor onehot(ds.num_nodes(), ds.num_classes);
  for (int64_t i : visible_labels)
    onehot.At(i, ds.labels[static_cast<size_t>(i)]) = 1.0f;
  ag::Variable labels_in = ag::Variable::Constant(std::move(onehot));
  h0 = ag::Add(h0, label_embed_->Forward(labels_in));
  return encoder_->Forward(nn::FeatureInput::Dense(h0), edges_, {},
                           config_.dropout, training, rng);
}

void UniMpModel::Fit(const data::Dataset& ds, const TrainConfig& config) {
  config_ = config;
  util::Rng rng(config.seed + 11);
  int64_t heads = 4;
  while (config.hidden % heads != 0) heads /= 2;
  input_w_ = ag::Variable::Parameter(
      t::Tensor::Xavier(ds.num_features(), config.hidden, &rng));
  label_embed_ = std::make_unique<nn::Linear>(ds.num_classes, config.hidden,
                                              &rng, /*bias=*/false);
  encoder_ = std::make_unique<GatEncoder>(config.hidden, config.hidden,
                                          ds.num_classes, heads, &rng);
  edges_ = ds.graph.DirectedEdges(/*add_self_loops=*/true);

  std::vector<ag::Variable> params = encoder_->Parameters();
  params.push_back(input_w_);
  {
    auto lp = label_embed_->Parameters();
    params.insert(params.end(), lp.begin(), lp.end());
  }
  nn::Adam optimizer(params, config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  optimizer.set_max_grad_norm(config.max_grad_norm);
  ParameterSnapshot best_enc;
  t::Tensor best_w;
  std::vector<t::Tensor> best_lbl;
  double best_val = -1.0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Randomly hide half the training labels; predict the hidden ones too.
    std::vector<int64_t> visible;
    std::vector<int64_t> supervise;
    for (int64_t i : ds.train_idx) {
      if (rng.Bernoulli(1.0 - label_mask_rate_)) visible.push_back(i);
      else supervise.push_back(i);
    }
    if (supervise.empty()) supervise = ds.train_idx;
    auto out = Forward(ds, visible, /*training=*/true, &rng);
    ag::Variable loss = ag::NllLoss(ag::LogSoftmaxRows(out.logits), ds.labels,
                                    supervise);
    ag::Backward(loss);
    optimizer.Step();
    if (!ds.val_idx.empty()) {
      ag::InferenceGuard no_grad;
      auto val_out = Forward(ds, ds.train_idx, /*training=*/false, &rng);
      const double val = Accuracy(val_out.logits.value(), ds.labels, ds.val_idx);
      if (val > best_val) {
        best_val = val;
        best_enc.Capture(*encoder_);
        best_w = input_w_.value();
        best_lbl.clear();
        for (const auto& p : label_embed_->Parameters())
          best_lbl.push_back(p.value());
      }
    }
  }
  if (!best_enc.empty()) {
    best_enc.Restore(encoder_.get());
    input_w_.mutable_value() = best_w;
    auto lp = label_embed_->Parameters();
    for (size_t i = 0; i < lp.size(); ++i) lp[i].mutable_value() = best_lbl[i];
  }
}

tensor::Tensor UniMpModel::Logits(const data::Dataset& ds) {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  // At inference every training label is visible (the UniMP protocol).
  return Forward(ds, ds.train_idx, /*training=*/false, &rng).logits.value();
}

tensor::Tensor UniMpModel::Embeddings(const data::Dataset& ds) {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  return Forward(ds, ds.train_idx, /*training=*/false, &rng).hidden.value();
}

}  // namespace ses::models
