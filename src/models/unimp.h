#ifndef SES_MODELS_UNIMP_H_
#define SES_MODELS_UNIMP_H_

#include <memory>

#include "models/encoders.h"
#include "models/node_classifier.h"
#include "nn/linear.h"

namespace ses::models {

/// UniMP (Shi et al., IJCAI'21): unified message passing that propagates
/// both features and (partially masked) training labels. The node input is
/// X W_x + L W_l where L holds one-hot labels of a random 1-p_mask subset of
/// the training nodes each epoch (masked label prediction); message passing
/// is attention-based (graph-transformer style, realized with the GAT
/// layers).
class UniMpModel : public NodeClassifier {
 public:
  UniMpModel() = default;

  std::string name() const override { return "UniMP"; }
  void Fit(const data::Dataset& ds, const TrainConfig& config) override;
  tensor::Tensor Logits(const data::Dataset& ds) override;
  tensor::Tensor Embeddings(const data::Dataset& ds) override;

 private:
  /// Forward with a given set of label-visible nodes.
  Encoder::Output Forward(const data::Dataset& ds,
                          const std::vector<int64_t>& visible_labels,
                          bool training, util::Rng* rng);

  std::unique_ptr<nn::Linear> label_embed_;  ///< C -> hidden
  autograd::Variable input_w_;               ///< F -> hidden
  std::unique_ptr<GatEncoder> encoder_;      ///< over hidden inputs
  autograd::EdgeListPtr edges_;
  TrainConfig config_;
  float label_mask_rate_ = 0.5f;
};

}  // namespace ses::models

#endif  // SES_MODELS_UNIMP_H_
