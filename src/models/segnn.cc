#include "models/segnn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "autograd/ops.h"
#include "models/backbone_models.h"
#include "nn/optim.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::models {

namespace ag = ses::autograd;
namespace t = ses::tensor;

void SegnnModel::Fit(const data::Dataset& ds, const TrainConfig& config) {
  config_ = config;
  fitted_ds_ = &ds;
  logits_valid_ = false;
  util::Rng rng(config.seed + 17);
  encoder_ = MakeEncoder("GCN", ds.num_features(), config.hidden,
                         ds.num_classes, &rng);
  edges_ = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  nn::Adam optimizer(encoder_->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  optimizer.set_max_grad_norm(config.max_grad_norm);
  nn::FeatureInput input = MakeInput(ds);
  // Supervised embedding training (SEGNN additionally supervises similarity
  // with sampled same/different-label pairs).
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    auto out = encoder_->Forward(input, edges_, {}, config.dropout,
                                 /*training=*/true, &rng);
    ag::Variable loss = ag::NllLoss(ag::LogSoftmaxRows(out.logits), ds.labels,
                                    ds.train_idx);
    // Pairwise similarity supervision: same-label training pairs pulled
    // together, different-label pushed apart (triplet form).
    const int64_t batch = std::min<int64_t>(
        256, static_cast<int64_t>(ds.train_idx.size()));
    std::vector<int64_t> anchors, positives, negatives;
    for (int64_t b = 0; b < batch; ++b) {
      const int64_t a = ds.train_idx[static_cast<size_t>(
          rng.UniformInt(ds.train_idx.size()))];
      int64_t p = -1, n = -1;
      for (int tries = 0; tries < 30 && (p < 0 || n < 0); ++tries) {
        const int64_t cand = ds.train_idx[static_cast<size_t>(
            rng.UniformInt(ds.train_idx.size()))];
        if (cand == a) continue;
        if (ds.labels[static_cast<size_t>(cand)] ==
            ds.labels[static_cast<size_t>(a)]) {
          if (p < 0) p = cand;
        } else if (n < 0) {
          n = cand;
        }
      }
      if (p >= 0 && n >= 0) {
        anchors.push_back(a);
        positives.push_back(p);
        negatives.push_back(n);
      }
    }
    if (!anchors.empty()) {
      ag::Variable trip = ag::TripletLoss(
          ag::GatherRows(out.hidden, anchors),
          ag::GatherRows(out.hidden, positives),
          ag::GatherRows(out.hidden, negatives), 1.0f);
      loss = ag::Add(loss, ag::Scale(trip, 0.5f));
    }
    ag::Backward(loss);
    optimizer.Step();
  }
}

tensor::Tensor SegnnModel::Logits(const data::Dataset& ds) {
  SES_CHECK(encoder_ != nullptr);
  if (logits_valid_ && fitted_ds_ == &ds) return cached_logits_;
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  auto out = encoder_->Forward(MakeInput(ds), edges_, {}, 0.0f,
                               /*training=*/false, &rng);
  const t::Tensor emb = t::NormalizeRows(out.hidden.value());
  // K-nearest labeled nodes by embedding-cosine + structure similarity.
  const auto& labeled = ds.train_idx;
  t::Tensor labeled_emb = t::GatherRows(emb, labeled);
  // sims[i, j] = <emb_i, labeled_emb_j>
  t::Tensor sims = t::MatMulTransposedB(emb, labeled_emb);
  t::Tensor logits(ds.num_nodes(), ds.num_classes);
  std::vector<int64_t> order(labeled.size());
#pragma omp parallel for schedule(dynamic, 32) firstprivate(order)
  for (int64_t i = 0; i < ds.num_nodes(); ++i) {
    const float* row = sims.RowPtr(i);
    // Combined similarity: cosine + Jaccard of neighborhoods (the
    // interpretable local-structure term).
    std::vector<float> combined(labeled.size());
    for (size_t j = 0; j < labeled.size(); ++j) {
      combined[j] = row[j] + 0.5f * ds.graph.NeighborhoodJaccard(
                                        i, labeled[j]);
    }
    std::iota(order.begin(), order.end(), 0);
    const int64_t k = std::min<int64_t>(k_neighbors_,
                                        static_cast<int64_t>(labeled.size()));
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&combined](int64_t a, int64_t b) {
                        return combined[static_cast<size_t>(a)] >
                               combined[static_cast<size_t>(b)];
                      });
    for (int64_t j = 0; j < k; ++j) {
      const int64_t l = labeled[static_cast<size_t>(order[static_cast<size_t>(j)])];
      logits.At(i, ds.labels[static_cast<size_t>(l)]) +=
          std::max(0.0f, combined[static_cast<size_t>(order[static_cast<size_t>(j)])]);
    }
  }
  cached_logits_ = logits;
  logits_valid_ = true;
  return logits;
}

tensor::Tensor SegnnModel::Embeddings(const data::Dataset& ds) {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  return encoder_
      ->Forward(MakeInput(ds), edges_, {}, 0.0f, /*training=*/false, &rng)
      .hidden.value();
}

std::vector<float> SegnnModel::EdgeScores(const data::Dataset& ds) {
  const t::Tensor emb = t::NormalizeRows(Embeddings(ds));
  const auto& edges = ds.graph.edges();
  std::vector<float> scores(edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    auto [u, v] = edges[e];
    const float* a = emb.RowPtr(u);
    const float* b = emb.RowPtr(v);
    double dot = 0.0;
    for (int64_t c = 0; c < emb.cols(); ++c) dot += a[c] * b[c];
    scores[e] = static_cast<float>(dot) +
                0.5f * ds.graph.NeighborhoodJaccard(u, v);
  }
  return scores;
}

}  // namespace ses::models
