#ifndef SES_MODELS_ASDGN_H_
#define SES_MODELS_ASDGN_H_

#include <memory>

#include "models/node_classifier.h"
#include "nn/linear.h"
#include "nn/gcn_conv.h"

namespace ses::models {

/// Anti-Symmetric DGN (Gravina et al., ICLR'23): a deep graph network whose
/// update is the forward-Euler discretization of a stable, non-dissipative
/// ODE. Each of the L shared-weight steps computes
///   h <- h + eps * tanh( h (W - W^T - gamma I) + Agg(A, h) V + b )
/// where the antisymmetric weight keeps the Jacobian's eigenvalues on the
/// imaginary axis (long-range information is preserved, not smoothed away).
class AsdgnModel : public NodeClassifier {
 public:
  AsdgnModel(int64_t num_steps = 4, float epsilon = 0.1f, float gamma = 0.1f)
      : num_steps_(num_steps), epsilon_(epsilon), gamma_(gamma) {}

  std::string name() const override { return "ASDGN"; }
  void Fit(const data::Dataset& ds, const TrainConfig& config) override;
  tensor::Tensor Logits(const data::Dataset& ds) override;
  tensor::Tensor Embeddings(const data::Dataset& ds) override;

 private:
  struct Outputs {
    autograd::Variable hidden;
    autograd::Variable logits;
  };
  Outputs Forward(const data::Dataset& ds, bool training, util::Rng* rng);

  int64_t num_steps_;
  float epsilon_;
  float gamma_;
  autograd::Variable input_w_;  ///< F x hidden
  autograd::Variable w_;        ///< hidden x hidden (antisymmetrized on the fly)
  autograd::Variable v_;        ///< hidden x hidden aggregation weight
  autograd::Variable b_;        ///< 1 x hidden
  std::unique_ptr<nn::Linear> head_;
  autograd::EdgeListPtr edges_;
  TrainConfig config_;
  std::vector<autograd::Variable> params_;
};

}  // namespace ses::models

#endif  // SES_MODELS_ASDGN_H_
