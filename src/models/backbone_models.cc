#include "models/backbone_models.h"

#include "autograd/ops.h"
#include "nn/optim.h"
#include "obs/model_health.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ses::models {

namespace ag = ses::autograd;

void ParameterSnapshot::Capture(const nn::Module& module) {
  values_.clear();
  for (const auto& p : module.Parameters()) values_.push_back(p.value());
}

void ParameterSnapshot::Restore(nn::Module* module) const {
  auto params = module->Parameters();
  SES_CHECK(params.size() == values_.size());
  for (size_t i = 0; i < params.size(); ++i)
    params[i].mutable_value() = values_[i];
}

void BackboneModel::Fit(const data::Dataset& ds, const TrainConfig& config) {
  config_ = config;
  util::Rng rng(config.seed + 1);
  encoder_ = MakeEncoder(backbone_, ds.num_features(), config.hidden,
                         ds.num_classes, &rng);
  edges_ = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  nn::Adam optimizer(encoder_->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  optimizer.set_max_grad_norm(config.max_grad_norm);
  nn::FeatureInput input = MakeInput(ds);

  ParameterSnapshot best;
  double best_val = -1.0;
  auto& health_monitor = ses::obs::ModelHealthMonitor::Get();
  const std::vector<std::string> param_names = encoder_->ParameterNames();
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    util::Timer epoch_timer;
    health_monitor.BeginEpoch(backbone_);
    auto out = encoder_->Forward(input, edges_, {}, config.dropout,
                                 /*training=*/true, &rng);
    if (health_monitor.enabled()) {
      const auto& hidden = out.hidden.value();
      health_monitor.ObserveActivations(hidden.data(), hidden.rows(),
                                        hidden.cols());
      const tensor::Tensor att = encoder_->LastAttention();
      if (att.size() > 0 && att.size() == edges_->size())
        health_monitor.ObserveAttention(att.data(), edges_->dst.data(),
                                        edges_->size());
    }
    ag::Variable loss = ag::NllLoss(ag::LogSoftmaxRows(out.logits), ds.labels,
                                    ds.train_idx);
    ag::Backward(loss);
    const double grad_norm = optimizer.GradNorm();
    if (health_monitor.enabled())
      ses::obs::ObserveParamsPreStep(param_names, encoder_->Parameters());
    optimizer.Step();
    if (health_monitor.enabled())
      ses::obs::ObserveParamsPostStep(param_names, encoder_->Parameters());
    if (config.track_best_val && !ds.val_idx.empty()) {
      const double val =
          Accuracy(out.logits.value(), ds.labels, ds.val_idx);
      if (val > best_val) {
        best_val = val;
        best.Capture(*encoder_);
      }
    }
    ses::obs::ModelHealthMonitor::EpochHealth epoch_health;
    if (health_monitor.enabled()) epoch_health = health_monitor.EndEpoch();
    if (ses::obs::Telemetry::Get().active()) {
      ses::obs::EpochRecord record;
      record.model = backbone_;
      record.phase = "fit";
      record.epoch = epoch;
      record.loss = loss.value()[0];
      record.grad_norm = grad_norm;
      record.epoch_seconds = epoch_timer.ElapsedSeconds();
      record.val_metric = best_val;
      for (const auto& p : epoch_health.params) {
        if (p.grad_norm >= 0.0)
          record.layer_grad_norms.emplace_back(p.name, p.grad_norm);
        if (p.update_ratio >= 0.0)
          record.update_ratios.emplace_back(p.name, p.update_ratio);
      }
      record.dead_fraction = epoch_health.dead_fraction;
      record.attn_entropy = epoch_health.attn_entropy;
      ses::obs::Telemetry::Get().Emit(record);
    }
    if (config.verbose && epoch % 20 == 0)
      SES_LOG_INFO << backbone_ << " epoch " << epoch << " loss "
                   << loss.value()[0];
  }
  if (!best.empty()) best.Restore(encoder_.get());
}

Encoder::Output BackboneModel::EvalForward(const data::Dataset& ds) {
  SES_CHECK(encoder_ != nullptr);
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  return encoder_->Forward(MakeInput(ds), edges_, {}, 0.0f,
                           /*training=*/false, &rng);
}

tensor::Tensor BackboneModel::Logits(const data::Dataset& ds) {
  return EvalForward(ds).logits.value();
}

tensor::Tensor BackboneModel::Embeddings(const data::Dataset& ds) {
  return EvalForward(ds).hidden.value();
}

}  // namespace ses::models
