#include "models/protgnn.h"

#include <algorithm>
#include <limits>

#include "autograd/ops.h"
#include "models/backbone_models.h"
#include "nn/optim.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::models {

namespace ag = ses::autograd;
namespace t = ses::tensor;

ProtGnnModel::Outputs ProtGnnModel::Forward(const data::Dataset& ds,
                                            bool training, util::Rng* rng,
                                            ag::Variable* similarities) {
  auto enc = encoder_->Forward(MakeInput(ds), edges_, {}, config_.dropout,
                               training, rng);
  const int64_t num_protos = prototypes_.rows();
  // Squared distance of every node embedding to every prototype, then the
  // ProtGNN similarity log((d2 + 1) / (d2 + eps)).
  ag::Variable sims;
  for (int64_t p = 0; p < num_protos; ++p) {
    ag::Variable proto_row = ag::SliceRows(prototypes_, p, p + 1);
    ag::Variable diff = ag::SubRowVector(enc.hidden, proto_row);
    ag::Variable d2 = ag::SumRows(ag::Mul(diff, diff));  // N x 1
    ag::Variable sim = ag::Sub(ag::Log(ag::AddScalar(d2, 1.0f)),
                               ag::Log(ag::AddScalar(d2, 1e-4f)));
    sims = p == 0 ? sim : ag::ConcatCols(sims, sim);
  }
  if (similarities) *similarities = sims;
  Outputs out;
  out.hidden = enc.hidden;
  out.logits = ag::MatMul(sims, ag::Variable::Constant(readout_));
  return out;
}

void ProtGnnModel::Fit(const data::Dataset& ds, const TrainConfig& config) {
  config_ = config;
  util::Rng rng(config.seed + 19);
  encoder_ = MakeEncoder(backbone_, ds.num_features(), config.hidden,
                         ds.num_classes, &rng);
  edges_ = ds.graph.DirectedEdges(/*add_self_loops=*/true);
  const int64_t num_protos = ds.num_classes * protos_per_class_;
  prototypes_ = ag::Variable::Parameter(
      t::Tensor::Randn(num_protos, config.hidden, &rng));
  // Fixed class-linked readout: own-class prototypes contribute +1,
  // other-class prototypes -0.5 (the ProtGNN layout).
  readout_ = t::Tensor(num_protos, ds.num_classes);
  for (int64_t p = 0; p < num_protos; ++p)
    for (int64_t c = 0; c < ds.num_classes; ++c)
      readout_.At(p, c) = (p / protos_per_class_ == c) ? 1.0f : -0.5f;

  std::vector<ag::Variable> params = encoder_->Parameters();
  params.push_back(prototypes_);
  nn::Adam optimizer(params, config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  optimizer.set_max_grad_norm(config.max_grad_norm);
  std::vector<t::Tensor> best;
  double best_val = -1.0;
  const float lambda_cluster = 0.1f;
  const float lambda_separation = 0.05f;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    ag::Variable sims;
    auto out = Forward(ds, /*training=*/true, &rng, &sims);
    ag::Variable loss = ag::NllLoss(ag::LogSoftmaxRows(out.logits), ds.labels,
                                    ds.train_idx);
    // Cluster / separation costs over training nodes. The nearest prototype
    // is selected from current values (min has a selection gradient), using
    // sims as a proxy for closeness (monotone decreasing in d2).
    {
      const t::Tensor& s = sims.value();
      t::Tensor cluster_mask(s.rows(), s.cols());
      t::Tensor separation_mask(s.rows(), s.cols());
      for (int64_t i : ds.train_idx) {
        const int64_t label = ds.labels[static_cast<size_t>(i)];
        int64_t best_own = -1, best_other = -1;
        for (int64_t p = 0; p < s.cols(); ++p) {
          const bool own = (p / protos_per_class_) == label;
          if (own) {
            if (best_own < 0 || s.At(i, p) > s.At(i, best_own)) best_own = p;
          } else {
            if (best_other < 0 || s.At(i, p) > s.At(i, best_other))
              best_other = p;
          }
        }
        cluster_mask.At(i, best_own) = 1.0f;
        separation_mask.At(i, best_other) = 1.0f;
      }
      const float inv = 1.0f / static_cast<float>(ds.train_idx.size());
      // Maximize similarity to nearest own-class prototype, minimize it to
      // the nearest other-class one.
      ag::Variable cluster = ag::Scale(
          ag::SumAll(ag::Mul(sims, ag::Variable::Constant(cluster_mask))),
          -lambda_cluster * inv);
      ag::Variable separation = ag::Scale(
          ag::SumAll(ag::Mul(sims, ag::Variable::Constant(separation_mask))),
          lambda_separation * inv);
      loss = ag::Add(loss, ag::Add(cluster, separation));
    }
    ag::Backward(loss);
    optimizer.Step();
    if (!ds.val_idx.empty()) {
      const double val = Accuracy(out.logits.value(), ds.labels, ds.val_idx);
      if (val > best_val) {
        best_val = val;
        best.clear();
        for (const auto& p : params) best.push_back(p.value());
      }
    }
  }
  if (!best.empty()) {
    auto params_now = encoder_->Parameters();
    params_now.push_back(prototypes_);
    for (size_t i = 0; i < params_now.size(); ++i)
      params_now[i].mutable_value() = best[i];
  }
}

tensor::Tensor ProtGnnModel::Logits(const data::Dataset& ds) {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  return Forward(ds, /*training=*/false, &rng, nullptr).logits.value();
}

tensor::Tensor ProtGnnModel::Embeddings(const data::Dataset& ds) {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  return Forward(ds, /*training=*/false, &rng, nullptr).hidden.value();
}

}  // namespace ses::models
