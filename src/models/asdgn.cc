#include "models/asdgn.h"

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "tensor/ops.h"
#include "models/backbone_models.h"
#include "nn/optim.h"
#include "util/logging.h"

namespace ses::models {

namespace ag = ses::autograd;
namespace t = ses::tensor;

AsdgnModel::Outputs AsdgnModel::Forward(const data::Dataset& ds, bool training,
                                        util::Rng* rng) {
  ag::Variable h = ag::Tanh(ag::SparseMaskedLinear(ds.features, {}, input_w_));
  ag::Variable norm = nn::MakeGcnWeights(edges_);
  // Antisymmetric weight W - W^T - gamma I, rebuilt each forward so the
  // constraint holds exactly throughout training.
  ag::Variable w_anti = ag::Sub(w_, ag::Transpose(w_));
  w_anti = ag::Sub(w_anti, ag::Variable::Constant(t::Scale(
                               t::Tensor::Eye(w_.rows()), gamma_)));
  for (int64_t step = 0; step < num_steps_; ++step) {
    ag::Variable local = ag::MatMul(h, w_anti);
    ag::Variable agg = ag::MatMul(ag::SpMM(edges_, norm, h), v_);
    ag::Variable delta = ag::Tanh(
        ag::AddRowVector(ag::Add(local, agg), b_));
    h = ag::Add(h, ag::Scale(delta, epsilon_));
  }
  Outputs out;
  out.hidden = h;
  h = ag::Dropout(h, config_.dropout, training, rng);
  out.logits = head_->Forward(h);
  return out;
}

void AsdgnModel::Fit(const data::Dataset& ds, const TrainConfig& config) {
  config_ = config;
  util::Rng rng(config.seed + 13);
  input_w_ = ag::Variable::Parameter(
      t::Tensor::Xavier(ds.num_features(), config.hidden, &rng));
  w_ = ag::Variable::Parameter(
      t::Tensor::Xavier(config.hidden, config.hidden, &rng));
  v_ = ag::Variable::Parameter(
      t::Tensor::Xavier(config.hidden, config.hidden, &rng));
  b_ = ag::Variable::Parameter(t::Tensor::Zeros(1, config.hidden));
  head_ = std::make_unique<nn::Linear>(config.hidden, ds.num_classes, &rng);
  edges_ = ds.graph.DirectedEdges(/*add_self_loops=*/true);

  params_ = {input_w_, w_, v_, b_};
  {
    auto hp = head_->Parameters();
    params_.insert(params_.end(), hp.begin(), hp.end());
  }
  nn::Adam optimizer(params_, config.lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  optimizer.set_max_grad_norm(config.max_grad_norm);
  std::vector<t::Tensor> best;
  double best_val = -1.0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    auto out = Forward(ds, /*training=*/true, &rng);
    ag::Variable loss = ag::NllLoss(ag::LogSoftmaxRows(out.logits), ds.labels,
                                    ds.train_idx);
    ag::Backward(loss);
    optimizer.Step();
    if (!ds.val_idx.empty()) {
      const double val = Accuracy(out.logits.value(), ds.labels, ds.val_idx);
      if (val > best_val) {
        best_val = val;
        best.clear();
        for (const auto& p : params_) best.push_back(p.value());
      }
    }
  }
  if (!best.empty())
    for (size_t i = 0; i < params_.size(); ++i)
      params_[i].mutable_value() = best[i];
}

tensor::Tensor AsdgnModel::Logits(const data::Dataset& ds) {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  return Forward(ds, /*training=*/false, &rng).logits.value();
}

tensor::Tensor AsdgnModel::Embeddings(const data::Dataset& ds) {
  ag::InferenceGuard no_grad;
  util::Rng rng(0);
  return Forward(ds, /*training=*/false, &rng).hidden.value();
}

}  // namespace ses::models
