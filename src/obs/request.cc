#include "obs/request.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "util/logging.h"

namespace ses::obs {

thread_local uint64_t internal::t_current_trace_id = 0;

namespace {
/// Ids start at 1 so 0 can mean "no active request" everywhere.
std::atomic<uint64_t> g_next_trace_id{1};
}  // namespace

uint64_t RequestsStarted() {
  return g_next_trace_id.load(std::memory_order_relaxed) - 1;
}

uint64_t AllocateTraceId() {
  // Ids are reserved from the global counter in per-thread blocks so a
  // high-rate producer (the batch scheduler's submit path) pays one atomic
  // per kBlock allocations. Ids stay unique but are no longer globally
  // ordered by allocation time, and RequestsStarted becomes an upper bound
  // (it counts reserved ids).
  constexpr uint64_t kBlock = 64;
  thread_local uint64_t cache_next = 0;
  thread_local uint64_t cache_end = 0;
  if (cache_next == cache_end) {
    cache_next = g_next_trace_id.fetch_add(kBlock, std::memory_order_relaxed);
    cache_end = cache_next + kBlock;
  }
  return cache_next++;
}

AccessLog& AccessLog::Get() {
  static AccessLog* log = new AccessLog();
  return *log;
}

bool AccessLog::Open(const std::string& path) {
  auto out = std::make_shared<std::ofstream>(path);
  if (!*out) {
    SES_LOG_ERROR << "cannot open access log " << path;
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(out);
  lines_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
  return true;
}

void AccessLog::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.store(false, std::memory_order_relaxed);
  if (sink_) sink_->flush();
  sink_.reset();
}

void AccessLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) sink_->flush();
}

void AccessLog::RecordSlow(const AccessEntry& entry) {
  const std::string line = EntryToJson(entry);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!sink_) return;
  *sink_ << line << '\n';
  lines_.fetch_add(1, std::memory_order_relaxed);
}

std::string AccessLog::EntryToJson(const AccessEntry& entry) {
  std::ostringstream out;
  out << "{\"trace_id\":" << entry.trace_id << ",\"op\":\"" << entry.op
      << "\",\"latency_us\":" << entry.latency_us
      << ",\"cache_hit\":" << (entry.cache_hit ? "true" : "false")
      << ",\"error\":" << (entry.error ? "true" : "false");
  // Reason is always present so downstream jq joins never hit a missing key;
  // an unset reason defaults by outcome.
  const char* reason = entry.reason != nullptr && entry.reason[0] != '\0'
                           ? entry.reason
                           : (entry.error ? "error" : "ok");
  out << ",\"reason\":\"" << reason << "\"";
  if (entry.has_stages) {
    // Stage offsets from submit in microseconds, in critical-path order.
    out << ",\"stages_us\":{\"admit\":" << entry.admit_us
        << ",\"seal\":" << entry.seal_us
        << ",\"forward_start\":" << entry.forward_start_us
        << ",\"forward_end\":" << entry.forward_end_us
        << ",\"resolve\":" << entry.resolve_us << "}";
  }
  out << ",\"digest\":\"";
  // Digest as fixed-width hex: JSON numbers lose precision past 2^53.
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(entry.digest));
  out << hex << "\"}";
  return out.str();
}

uint64_t RequestScope::Acquire(uint64_t* prev, bool* owner) {
  *prev = internal::t_current_trace_id;
  if (*prev != 0) {
    *owner = false;
    return *prev;
  }
  *owner = true;
  const uint64_t id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  internal::t_current_trace_id = id;
  return id;
}

RequestScope::RequestScope(const char* op)
    : op_(op), trace_id_(Acquire(&prev_id_, &owner_)), span_(op) {
  if (owner_ &&
      (SloTracker::Get().enabled() || AccessLog::Get().active())) {
    measured_ = true;
    start_ = std::chrono::steady_clock::now();
  }
}

RequestScope::~RequestScope() {
  if (!owner_) return;
  internal::t_current_trace_id = prev_id_;
  if (!measured_) return;
  const auto end = std::chrono::steady_clock::now();
  const double latency_us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count() /
      1e3;
  SloTracker::Get().Record(op_, latency_us, error_);
  {
    // Direct-path requests get flight records too, with the inner stages
    // collapsed: submit = admit = seal = forward-start and forward-end =
    // resolve (the whole request is one forward). Scheduler-completed
    // requests are recorded by the scheduler with real stage timestamps.
    // The resolve timestamp reuses the latency clock reading converted to
    // the trace epoch — no second clock read on this hot path.
    FlightRecord rec;
    rec.trace_id = trace_id_;
    rec.op = op_;
    rec.reason = error_ ? "error" : "ok";
    rec.error = error_;
    rec.resolve_us = static_cast<double>(internal::TraceNsFromSteady(end)) / 1e3;
    rec.submit_us = rec.resolve_us - latency_us;
    rec.admit_us = rec.submit_us;
    rec.seal_us = rec.submit_us;
    rec.forward_start_us = rec.submit_us;
    rec.forward_end_us = rec.resolve_us;
    rec.e2e_us = latency_us;
    FlightRecorder::Get().Record(rec);
  }
  if (AccessLog::Get().active()) {
    AccessEntry entry;
    entry.trace_id = trace_id_;
    entry.op = op_;
    entry.latency_us = latency_us;
    entry.cache_hit = cache_hit_;
    entry.error = error_;
    entry.digest = digest_;
    AccessLog::Get().Record(entry);
  }
}

}  // namespace ses::obs
