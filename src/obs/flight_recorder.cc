#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ses::obs {

namespace {

/// Heap ordering: a min-heap on e2e_us keeps the K-th slowest (= the heap
/// minimum) at the front for O(1) floor updates.
bool SlowerThan(const FlightRecord& a, const FlightRecord& b) {
  return a.e2e_us > b.e2e_us;
}

void AppendRecordJson(std::ostringstream* out, const FlightRecord& r) {
  *out << "{\"trace_id\":" << r.trace_id << ",\"op\":\"" << r.op
       << "\",\"reason\":\"" << r.reason << "\",\"error\":"
       << (r.error ? "true" : "false") << ",\"e2e_us\":" << r.e2e_us
       << ",\"stages_us\":{\"submit\":" << r.submit_us
       << ",\"admit\":" << r.admit_us << ",\"seal\":" << r.seal_us
       << ",\"forward_start\":" << r.forward_start_us
       << ",\"forward_end\":" << r.forward_end_us
       << ",\"resolve\":" << r.resolve_us << "}}";
}

}  // namespace

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Configure(int64_t top_k, double window_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  top_k_ = std::max<int64_t>(1, std::min<int64_t>(top_k, 4096));
  if (window_us > 0) window_us_ = window_us;
  // Shrinks take effect lazily; the floor resets so the next Record re-fills.
  floor_.store(-1.0, std::memory_order_relaxed);
}

void FlightRecorder::RollWindowIfDue(double now_us) {
  const double start = window_start_us_.load(std::memory_order_relaxed);
  if (now_us - start < window_us_ && start != 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const double start2 = window_start_us_.load(std::memory_order_relaxed);
  if (now_us - start2 < window_us_ && start2 != 0.0) return;  // lost the race
  if (start2 != 0.0) previous_ = std::move(current_);
  current_.clear();
  floor_.store(-1.0, std::memory_order_relaxed);
  window_start_us_.store(now_us, std::memory_order_relaxed);
}

void FlightRecorder::Record(const FlightRecord& record) {
  RollWindowIfDue(record.resolve_us);
  // Fast path: a full heap whose minimum beats this record means the record
  // can't place. The floor may be stale (another thread mid-insert); that
  // only lets a loser take the lock and get rejected below.
  const double floor = floor_.load(std::memory_order_relaxed);
  if (floor >= 0.0 && record.e2e_us <= floor) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int64_t>(current_.size()) < top_k_) {
    current_.push_back(record);
    std::push_heap(current_.begin(), current_.end(), SlowerThan);
    if (static_cast<int64_t>(current_.size()) == top_k_)
      floor_.store(current_.front().e2e_us, std::memory_order_relaxed);
    return;
  }
  if (record.e2e_us <= current_.front().e2e_us) return;
  std::pop_heap(current_.begin(), current_.end(), SlowerThan);
  current_.back() = record;
  std::push_heap(current_.begin(), current_.end(), SlowerThan);
  floor_.store(current_.front().e2e_us, std::memory_order_relaxed);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    merged.reserve(current_.size() + previous_.size());
    merged.insert(merged.end(), current_.begin(), current_.end());
    merged.insert(merged.end(), previous_.begin(), previous_.end());
  }
  std::sort(merged.begin(), merged.end(), SlowerThan);
  return merged;
}

std::string FlightRecorder::SnapshotJson() const {
  int64_t top_k;
  double window_us;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    top_k = top_k_;
    window_us = window_us_;
  }
  const std::vector<FlightRecord> records = Snapshot();
  std::ostringstream out;
  out << "{\"top_k\":" << top_k << ",\"window_us\":" << window_us
      << ",\"dumps\":" << dumps() << ",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out << ',';
    AppendRecordJson(&out, records[i]);
  }
  out << "]}";
  return out.str();
}

void FlightRecorder::ArmAutoDump(const std::string& path,
                                 double burn_threshold) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dump_path_ = path;
  }
  burn_threshold_.store(burn_threshold, std::memory_order_relaxed);
  ready_.store(true, std::memory_order_relaxed);
  armed_.store(!path.empty() && burn_threshold > 0.0,
               std::memory_order_release);
}

void FlightRecorder::ObserveBurn(double burn) {
  if (!armed_.load(std::memory_order_acquire)) return;
  const double threshold = burn_threshold_.load(std::memory_order_relaxed);
  if (ready_.load(std::memory_order_relaxed)) {
    if (burn < threshold) return;
    // One dump per excursion: flip ready_ first so racing batches don't dump
    // twice (exchange is the arbiter).
    if (!ready_.exchange(false, std::memory_order_acq_rel)) return;
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      path = dump_path_;
    }
    if (DumpTo(path)) {
      dumps_.fetch_add(1, std::memory_order_relaxed);
      SES_LOG_INFO << "flight recorder: SLO burn " << burn << " >= "
                   << threshold << ", dumped slowest requests to " << path;
    }
    MetricsRegistry::Get().GetCounter("ses.flight.dumps").Add(1);
    return;
  }
  // Tripped: re-arm only after the burn recedes below half the threshold.
  if (burn < 0.5 * threshold) ready_.store(true, std::memory_order_relaxed);
}

bool FlightRecorder::DumpTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    SES_LOG_ERROR << "flight recorder: cannot open dump file " << path;
    return false;
  }
  out << SnapshotJson() << '\n';
  return out.good();
}

void FlightRecorder::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.clear();
  previous_.clear();
  top_k_ = 32;
  window_us_ = 10e6;
  floor_.store(-1.0, std::memory_order_relaxed);
  window_start_us_.store(0.0, std::memory_order_relaxed);
  dump_path_.clear();
  burn_threshold_.store(0.0, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_relaxed);
  ready_.store(true, std::memory_order_relaxed);
  dumps_.store(0, std::memory_order_relaxed);
}

}  // namespace ses::obs
