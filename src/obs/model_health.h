#ifndef SES_OBS_MODEL_HEALTH_H_
#define SES_OBS_MODEL_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ses::obs {

/// Training-health monitor: per-parameter gradient norms and weight-update
/// ratios, dead-ReLU fractions of hidden activations, and attention entropy,
/// collected once per epoch and exported as `ses.health.*` gauges (labeled
/// {model, param}) plus the per-epoch telemetry record.
///
/// The obs layer deliberately knows nothing about tensors or autograd, so
/// every observation takes raw float pointers; the template helpers below
/// adapt anything shaped like a Variable (`.value()` / `.grad()` returning a
/// `.data()`/`.size()` object). Disabled by default — each Observe* is a
/// relaxed atomic load until SetEnabled(true).
///
/// Intended call pattern, once per monitored epoch:
///   BeginEpoch(model)
///   ObserveParamPreStep(...) per parameter   (before optimizer.Step)
///   ObserveParamPostStep(...) per parameter  (after optimizer.Step)
///   ObserveActivations(...), ObserveAttention(...) as the forward pass
///   EndEpoch()  -> summary + gauge export
class ModelHealthMonitor {
 public:
  struct ParamHealth {
    std::string name;
    double grad_norm = -1.0;     ///< L2 norm of the gradient; -1 if no grad
    double update_ratio = -1.0;  ///< ||W_after - W_before|| / ||W_before||
  };

  struct EpochHealth {
    std::vector<ParamHealth> params;  ///< in ObserveParamPreStep order
    double dead_fraction = -1.0;  ///< fraction of dead hidden units; -1 unset
    double attn_entropy = -1.0;   ///< mean normalized attention entropy
  };

  static ModelHealthMonitor& Get();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts a collection window; `model` labels the exported gauges.
  void BeginEpoch(const std::string& model);

  /// Records one parameter before the optimizer step: its gradient L2 norm
  /// and a snapshot of the value norm (pass grad_n == 0 for a parameter with
  /// no gradient this step).
  void ObserveParamPreStep(const std::string& name, const float* value,
                           int64_t n, const float* grad, int64_t grad_n);

  /// Records the same parameter after the step; pairs with the pre-step
  /// snapshot by name to compute the weight-update ratio.
  void ObserveParamPostStep(const std::string& name, const float* value,
                            int64_t n);

  /// Records a post-ReLU activation matrix (rows x cols, row-major): a
  /// hidden unit (column) is dead when it is exactly zero for every row.
  /// Multiple calls per epoch average their dead fractions.
  void ObserveActivations(const float* data, int64_t rows, int64_t cols);

  /// Records per-edge attention coefficients: for each destination node the
  /// entropy of its incoming distribution, normalized by log(in-degree) so 1
  /// means uniform attention and 0 means one-hot. Destinations with fewer
  /// than two incoming edges are skipped. Multiple calls average.
  void ObserveAttention(const float* att, const int64_t* dst, int64_t n_edges);

  /// Finalizes the window: exports `ses.health.*` gauges and returns the
  /// summary. Safe to call without observations (returns empty/-1 fields).
  EpochHealth EndEpoch();

  /// Drops all pending state and disables the monitor (test support).
  void ResetForTest();

 private:
  ModelHealthMonitor() = default;

  struct PendingParam {
    std::string name;
    double grad_norm = -1.0;
    double pre_norm = 0.0;
    double update_ratio = -1.0;
  };

  std::atomic<bool> enabled_{false};
  std::mutex mutex_;  ///< collection is single-trainer; lock is cheap
  std::string model_;
  std::vector<PendingParam> params_;
  std::vector<float> pre_values_;    ///< concatenated pre-step snapshots
  std::vector<int64_t> pre_offsets_; ///< params_[i] snapshot at offset [i]
  double dead_sum_ = 0.0;
  int64_t dead_calls_ = 0;
  double attn_sum_ = 0.0;
  int64_t attn_calls_ = 0;
};

/// Observes every parameter of a Module-like object before the optimizer
/// step. `params` is a range of Variable-like values, `names` the aligned
/// parameter names.
template <typename ParamVec, typename NameVec>
inline void ObserveParamsPreStep(const NameVec& names, const ParamVec& params) {
  auto& monitor = ModelHealthMonitor::Get();
  if (!monitor.enabled()) return;
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& value = params[i].value();
    const auto& grad = params[i].grad();
    monitor.ObserveParamPreStep(names[i], value.data(), value.size(),
                                grad.data(), grad.size());
  }
}

/// Post-step counterpart of ObserveParamsPreStep.
template <typename ParamVec, typename NameVec>
inline void ObserveParamsPostStep(const NameVec& names,
                                  const ParamVec& params) {
  auto& monitor = ModelHealthMonitor::Get();
  if (!monitor.enabled()) return;
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& value = params[i].value();
    monitor.ObserveParamPostStep(names[i], value.data(), value.size());
  }
}

}  // namespace ses::obs

#endif  // SES_OBS_MODEL_HEALTH_H_
