#include "obs/anomaly.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "obs/health.h"
#include "obs/metrics.h"

namespace ses::obs {

double EwmaDetector::sigma() const {
  return std::sqrt(std::max(var_, opts_.min_sigma * opts_.min_sigma));
}

bool EwmaDetector::Observe(double x) {
  // Judge against the prior baseline so a spike cannot dilute the very
  // statistics that should flag it, then let the baseline absorb the sample.
  if (samples_ >= opts_.warmup) {
    z_ = (x - mean_) / sigma();
  } else {
    z_ = 0.0;
  }
  const double d = x - mean_;
  if (samples_ == 0) {
    mean_ = x;  // seed: the first sample is the baseline, not a deviation
  } else {
    mean_ += opts_.alpha * d;
    var_ = (1.0 - opts_.alpha) * (var_ + opts_.alpha * d * d);
  }
  ++samples_;

  if (!active_) {
    streak_ = std::abs(z_) >= opts_.z_enter ? streak_ + 1 : 0;
    if (streak_ >= opts_.enter_consecutive) {
      active_ = true;
      ++trips_;
      streak_ = 0;
    }
  } else {
    streak_ = std::abs(z_) <= opts_.z_exit ? streak_ + 1 : 0;
    if (streak_ >= opts_.exit_consecutive) {
      active_ = false;
      streak_ = 0;
    }
  }
  return active_;
}

/// One watched series: detector state under its own mutex (samples for
/// different series never contend), plus cached metric handles.
struct AnomalyWatch::Series {
  std::mutex mutex;
  EwmaDetector detector;
  double last = 0.0;
  Probe probe;  ///< null for push-based series
  Gauge* z_gauge = nullptr;
  Gauge* active_gauge = nullptr;
  Counter* trips_counter = nullptr;
};

AnomalyWatch& AnomalyWatch::Get() {
  static AnomalyWatch* watch = new AnomalyWatch();
  return *watch;
}

AnomalyWatch::Series* AnomalyWatch::GetOrCreate(const std::string& series,
                                                const AnomalyOptions& opts) {
  {
    std::shared_lock lock(mutex_);
    auto it = series_.find(series);
    if (it != series_.end()) return it->second.get();
  }
  Series* created;
  bool register_health = false;
  {
    std::unique_lock lock(mutex_);
    auto& slot = series_[series];
    if (slot == nullptr) {
      slot = std::make_unique<Series>();
      slot->detector = EwmaDetector(opts);
      auto& reg = MetricsRegistry::Get();
      const MetricsRegistry::LabelSet labels{{"series", series}};
      slot->z_gauge = &reg.GetGauge("ses.anomaly.z", labels);
      slot->active_gauge = &reg.GetGauge("ses.anomaly.active", labels);
      slot->trips_counter = &reg.GetCounter("ses.anomaly.trips", labels);
      if (!health_registered_) {
        health_registered_ = true;
        register_health = true;
      }
    }
    created = slot.get();
  }
  // Register outside mutex_: a /healthz scrape holds the health-registry
  // lock while HealthJson takes mutex_ shared, so taking the registry lock
  // under mutex_ would invert that order.
  if (register_health) {
    RegisterHealthProvider("anomaly_watch",
                           [] { return AnomalyWatch::Get().HealthJson(); });
  }
  return created;
}

void AnomalyWatch::Declare(const std::string& series, AnomalyOptions opts) {
  GetOrCreate(series, opts);
}

void AnomalyWatch::Sample(const std::string& series, double value) {
  Series* slot = GetOrCreate(series, AnomalyOptions{});
  std::lock_guard<std::mutex> lock(slot->mutex);
  const int64_t trips_before = slot->detector.trips();
  const bool active = slot->detector.Observe(value);
  slot->last = value;
  slot->z_gauge->Set(slot->detector.z());
  slot->active_gauge->Set(active ? 1.0 : 0.0);
  if (slot->detector.trips() > trips_before)
    slot->trips_counter->Add(slot->detector.trips() - trips_before);
}

void AnomalyWatch::WatchProbe(const std::string& series, Probe probe,
                              AnomalyOptions opts) {
  Series* slot = GetOrCreate(series, opts);
  std::lock_guard<std::mutex> lock(slot->mutex);
  slot->probe = std::move(probe);
}

void AnomalyWatch::PollProbes() {
  // Collect names first: Sample() takes the shared map lock itself, and the
  // probes may be arbitrarily slow user code — don't hold the map lock.
  std::vector<std::string> probed;
  {
    std::shared_lock lock(mutex_);
    for (const auto& [name, slot] : series_) {
      std::lock_guard<std::mutex> slot_lock(slot->mutex);
      if (slot->probe) probed.push_back(name);
    }
  }
  for (const std::string& name : probed) {
    Probe probe;
    {
      std::shared_lock lock(mutex_);
      auto it = series_.find(name);
      if (it == series_.end()) continue;
      std::lock_guard<std::mutex> slot_lock(it->second->mutex);
      probe = it->second->probe;
    }
    double value = 0.0;
    if (probe && probe(&value)) Sample(name, value);
  }
}

std::vector<AnomalyWatch::SeriesState> AnomalyWatch::Snapshot() const {
  std::vector<SeriesState> out;
  std::shared_lock lock(mutex_);
  out.reserve(series_.size());
  for (const auto& [name, slot] : series_) {
    std::lock_guard<std::mutex> slot_lock(slot->mutex);
    SeriesState state;
    state.series = name;
    state.last = slot->last;
    state.z = slot->detector.z();
    state.mean = slot->detector.mean();
    state.sigma = slot->detector.sigma();
    state.active = slot->detector.active();
    state.trips = slot->detector.trips();
    state.samples = slot->detector.samples();
    out.push_back(std::move(state));
  }
  return out;
}

std::string AnomalyWatch::HealthJson() const {
  const std::vector<SeriesState> states = Snapshot();
  int64_t active = 0;
  for (const SeriesState& s : states) active += s.active ? 1 : 0;
  std::ostringstream out;
  out << "{\"active_anomalies\":" << active << ",\"series\":{";
  bool first = true;
  for (const SeriesState& s : states) {
    if (!first) out << ',';
    first = false;
    out << '"' << s.series << "\":{\"active\":"
        << (s.active ? "true" : "false") << ",\"trips\":" << s.trips
        << ",\"samples\":" << s.samples;
    if (s.active) {
      // Structured reason: enough to triage without scraping /metrics.
      out << ",\"reason\":\"z=" << s.z << " last=" << s.last
          << " vs mean=" << s.mean << " sigma=" << s.sigma << '"';
    }
    out << '}';
  }
  out << "}}";
  return out.str();
}

void AnomalyWatch::ResetForTest() {
  // Unregister before taking mutex_ (same ordering rule as GetOrCreate): a
  // mid-flight /healthz scrape holds the registry lock while HealthJson
  // takes mutex_ shared. Unregister is a barrier, so after it returns no
  // provider invocation can touch the series we are about to drop.
  bool unregister = false;
  {
    std::shared_lock lock(mutex_);
    unregister = health_registered_;
  }
  if (unregister) UnregisterHealthProvider("anomaly_watch");
  std::unique_lock lock(mutex_);
  health_registered_ = false;
  series_.clear();
}

}  // namespace ses::obs
