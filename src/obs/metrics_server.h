#ifndef SES_OBS_METRICS_SERVER_H_
#define SES_OBS_METRICS_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

namespace ses::obs {

/// Minimal embedded HTTP/1.0 server exposing the process's observability
/// surface for live scraping — no external dependencies, one blocking accept
/// thread, one request per connection (`Connection: close`). Endpoints:
///
///   GET /metrics        Prometheus text exposition of the MetricsRegistry
///   GET /healthz        JSON: status, uptime, requests started, SLO burn
///                       rates, health components (copy-then-serialize: the
///                       component snapshot is fully materialized before any
///                       byte is rendered, so unregistering mid-scrape is
///                       safe)
///   GET /spans          JSON: per-label span aggregates (AggregateSpanStats)
///   GET /debug/slowest  JSON: the flight recorder's top-K slowest requests
///                       with their six critical-path stage timestamps
///
/// anything else answers 404. Intended for a scrape every few seconds, not
/// for high request rates; each response snapshots the registry under its
/// shared lock, so scrapes never block metric updates.
class MetricsServer {
 public:
  MetricsServer() = default;
  ~MetricsServer() { Stop(); }
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port) and starts the serve
  /// thread. Returns false and logs on bind/listen failure.
  bool Start(uint16_t port);

  /// Unblocks the accept loop and joins the serve thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// Actual bound port (resolves port 0); 0 when not running.
  uint16_t port() const { return port_; }

  /// Requests served since Start (test support).
  int64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Builds the response body for `path` ("/metrics", "/healthz", "/spans",
  /// "/debug/slowest"). Returns false for unknown paths. Exposed so tests can
  /// validate payloads without a socket round-trip.
  static bool RenderEndpoint(const std::string& path, std::string* body,
                             std::string* content_type);

 private:
  void Serve();
  void HandleConnection(int client_fd);

  std::atomic<bool> running_{false};
  std::atomic<int64_t> served_{0};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace ses::obs

#endif  // SES_OBS_METRICS_SERVER_H_
