#include "obs/flamegraph.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "util/logging.h"

namespace ses::obs {

namespace {

/// Frame name for one span: the label, plus `:variant` for kernel spans.
std::string FrameName(const TraceEvent& ev) {
  std::string name = ev.label;
  if (ev.IsKernel() && ev.variant != nullptr && ev.variant[0] != '\0') {
    name += ':';
    name += ev.variant;
  }
  return name;
}

struct OpenFrame {
  uint64_t end_ns;
  std::string stack;  ///< full folded path up to and including this frame
};

}  // namespace

void WriteFoldedStacks(std::ostream& out) {
  std::vector<TraceEvent> events = SnapshotEvents();

  // Bucket by thread: containment only holds within one thread's stream.
  std::unordered_map<uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& ev : events) by_tid[ev.tid].push_back(&ev);

  // folded stack -> total self ns, ordered for deterministic output.
  std::map<std::string, uint64_t> self_ns;

  for (auto& [tid, stream] : by_tid) {
    // Parents start no later than their children and outlast them; on equal
    // start the longer span is the ancestor. `depth` breaks exact ties
    // (zero-length spans at the same timestamp).
    std::sort(stream.begin(), stream.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
                if (a->dur_ns != b->dur_ns) return a->dur_ns > b->dur_ns;
                return a->depth < b->depth;
              });
    std::vector<OpenFrame> stack;
    for (const TraceEvent* ev : stream) {
      const uint64_t start = ev->start_ns;
      const uint64_t end = ev->start_ns + ev->dur_ns;
      // Close every open frame that ended before this span starts.
      while (!stack.empty() && stack.back().end_ns <= start) {
        stack.pop_back();
      }
      std::string path =
          stack.empty() ? FrameName(*ev)
                        : stack.back().stack + ";" + FrameName(*ev);
      // Credit this span's duration as self time, then let children deduct.
      self_ns[path] += ev->dur_ns;
      if (!stack.empty()) {
        // Deduct from the parent's self time (it was credited in full).
        uint64_t& parent_self = self_ns[stack.back().stack];
        parent_self -= std::min(parent_self, ev->dur_ns);
      }
      stack.push_back(OpenFrame{end, std::move(path)});
    }
  }

  for (const auto& [path, ns] : self_ns) {
    if (ns == 0) continue;  // fully covered by children
    out << path << ' ' << ns << '\n';
  }
}

bool WriteFoldedStacks(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    SES_LOG_ERROR << "cannot open flamegraph output file " << path;
    return false;
  }
  WriteFoldedStacks(out);
  return true;
}

}  // namespace ses::obs
