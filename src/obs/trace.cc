#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <unordered_map>

#include "obs/request.h"
#include "util/logging.h"

namespace ses::obs {

std::atomic<bool> internal::g_tracing_enabled{false};

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  // The first caller pins the trace epoch, so Chrome-trace timestamps start
  // near zero.
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Pins the epoch during this translation unit's dynamic initialization:
// epoch-relative conversions subtract the epoch in unsigned arithmetic, so a
// steady_clock stamp taken before the pin (e.g. a batch sealed before the
// first span fired) would otherwise wrap to ~2^64 ns.
const struct TraceEpochPinner {
  TraceEpochPinner() { TraceEpoch(); }
} g_trace_epoch_pinner;

uint64_t NowNs() {
  // Steady-clock nanoseconds relative to the trace epoch.
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

constexpr size_t kChunkCap = 4096;

/// Append-only chunk list. The owning thread writes events then publishes
/// them with a release store of `size_`; readers acquire `size_` and walk the
/// chunk chain, so concurrent snapshots see a consistent prefix without any
/// lock on the recording path.
struct Chunk {
  TraceEvent events[kChunkCap];
  std::atomic<Chunk*> next{nullptr};
};

class ThreadBuffer {
 public:
  ThreadBuffer() : head_(new Chunk()), tail_(head_) {}

  void Record(const TraceEvent& ev) {
    if (pos_ == kChunkCap) {
      Chunk* c = new Chunk();
      tail_->next.store(c, std::memory_order_release);
      tail_ = c;
      pos_ = 0;
    }
    tail_->events[pos_++] = ev;
    size_.fetch_add(1, std::memory_order_release);
  }

  void AppendTo(std::vector<TraceEvent>* out) const {
    size_t remaining = size_.load(std::memory_order_acquire);
    for (const Chunk* c = head_; c != nullptr && remaining > 0;
         c = c->next.load(std::memory_order_acquire)) {
      const size_t take = std::min(remaining, kChunkCap);
      out->insert(out->end(), c->events, c->events + take);
      remaining -= take;
    }
  }

  /// Drops every published event. Only safe when the owning thread is not
  /// recording (see ResetTracing contract).
  void Reset() {
    Chunk* c = head_->next.load(std::memory_order_acquire);
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
    }
    head_->next.store(nullptr, std::memory_order_release);
    tail_ = head_;
    pos_ = 0;
    size_.store(0, std::memory_order_release);
  }

  int depth = 0;

 private:
  Chunk* head_;
  Chunk* tail_;
  size_t pos_ = 0;  ///< events used in `tail_`
  std::atomic<size_t> size_{0};
};

std::mutex g_registry_mutex;
std::vector<ThreadBuffer*>& Registry() {
  static std::vector<ThreadBuffer*>* r = new std::vector<ThreadBuffer*>();
  return *r;
}

/// Buffers are registered once and intentionally never freed: snapshots may
/// outlive the threads that produced the events, and the registry keeps them
/// reachable (so leak checkers stay quiet).
ThreadBuffer* LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    Registry().push_back(b);
    return b;
  }();
  return buffer;
}

}  // namespace

void EnableTracing(bool on) {
  internal::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

void ResetTracing() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (ThreadBuffer* b : Registry()) b->Reset();
}

void ScopedSpan::Begin(const char* label) {
  label_ = label;
  // Captured at open, not close: a RequestScope member span must keep its id
  // even if the request's thread-local slot is restored first during
  // destruction.
  trace_id_ = CurrentTraceId();
  ++LocalBuffer()->depth;
  start_ns_ = NowNs();  // last: excludes buffer setup from the measurement
}

void ScopedSpan::End() {
  const uint64_t end_ns = NowNs();
  ThreadBuffer* buffer = LocalBuffer();
  --buffer->depth;
  TraceEvent ev;
  ev.label = label_;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  ev.trace_id = trace_id_;
  ev.tid = util::ThreadId();
  ev.depth = static_cast<uint16_t>(buffer->depth);
  buffer->Record(ev);
}

std::vector<TraceEvent> SnapshotEvents() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  std::vector<TraceEvent> out;
  for (const ThreadBuffer* b : Registry()) b->AppendTo(&out);
  return out;
}

std::vector<LabelStats> AggregateSpanStats() {
  std::unordered_map<std::string, LabelStats> by_label;
  for (const TraceEvent& ev : SnapshotEvents()) {
    LabelStats& s = by_label[ev.label];
    if (s.count == 0) {
      s.label = ev.label;
      s.min_ns = ev.dur_ns;
      s.max_ns = ev.dur_ns;
    }
    ++s.count;
    s.total_ns += ev.dur_ns;
    s.min_ns = std::min(s.min_ns, ev.dur_ns);
    s.max_ns = std::max(s.max_ns, ev.dur_ns);
  }
  std::vector<LabelStats> out;
  out.reserve(by_label.size());
  for (auto& [label, stats] : by_label) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(),
            [](const LabelStats& a, const LabelStats& b) {
              return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                              : a.label < b.label;
            });
  return out;
}

int CurrentSpanDepth() { return LocalBuffer()->depth; }

void RecordManualSpan(const char* label, uint64_t start_ns, uint64_t dur_ns,
                      uint64_t trace_id) {
  if (!TracingEnabled()) return;
  ThreadBuffer* buffer = LocalBuffer();
  TraceEvent ev;
  ev.label = label;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.trace_id = trace_id;
  ev.tid = util::ThreadId();
  // Nest one level under whatever is open: manual spans describe work that
  // logically happened inside the recording scope (e.g. the scheduler's
  // completion span emitting the request's stage breakdown).
  ev.depth = static_cast<uint16_t>(buffer->depth);
  buffer->Record(ev);
}

namespace internal {

uint64_t PushSpanFrame() {
  ++LocalBuffer()->depth;
  return CurrentTraceId();
}

void PopSpanFrameAndRecord(uint64_t trace_id, TraceEvent* ev) {
  ThreadBuffer* buffer = LocalBuffer();
  --buffer->depth;
  ev->trace_id = trace_id;
  ev->tid = util::ThreadId();
  ev->depth = static_cast<uint16_t>(buffer->depth);
  buffer->Record(*ev);
}

uint64_t TraceNowNs() { return NowNs(); }

uint64_t TraceNsFromSteady(std::chrono::steady_clock::time_point tp) {
  // Signed intermediate + clamp: a stamp from before the epoch pin (only
  // possible from another TU's static initializer) maps to 0, not 2^64.
  const int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - TraceEpoch())
          .count();
  return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

}  // namespace internal

}  // namespace ses::obs
