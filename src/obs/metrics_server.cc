#include "obs/metrics_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ses::obs {

namespace {

/// Process epoch for /healthz uptime (static-init time of the obs library).
const std::chrono::steady_clock::time_point g_process_epoch =
    std::chrono::steady_clock::now();

std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Writes all of `data`, retrying on partial writes and EINTR. A multi-MB
/// /metrics body (thousands of labeled series) does not fit one send() on a
/// default socket buffer, and a signal (profiling timers, crash-handler
/// tests) can interrupt a blocked send mid-body — neither may truncate a
/// scrape. MSG_NOSIGNAL keeps a disconnecting scraper from killing the
/// process with SIGPIPE.
bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // peer closed or hard error: give up
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool MetricsServer::RenderEndpoint(const std::string& path, std::string* body,
                                   std::string* content_type) {
  if (path == "/metrics") {
    std::ostringstream out;
    MetricsRegistry::Get().WritePrometheus(out);
    *body = out.str();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (path == "/healthz") {
    const double uptime =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - g_process_epoch)
            .count();
    // Copy-then-serialize: every component's JSON is deep-copied out of the
    // health registry (providers run under the registry lock) BEFORE any of
    // it is written to the response. A component that unregisters while this
    // scrape serializes therefore cannot invalidate anything we still hold —
    // the snapshot owns its strings. Same for the SLO snapshot.
    const auto slo_snapshot = SloTracker::Get().SnapshotAll();
    const auto components = CollectHealthComponents();
    std::ostringstream out;
    out << "{\"status\":\"ok\",\"uptime_seconds\":" << uptime
        << ",\"requests_started\":" << RequestsStarted() << ",\"slo\":[";
    bool first = true;
    for (const auto& [op, snap] : slo_snapshot) {
      if (!first) out << ",";
      first = false;
      out << "{\"op\":\"" << JsonEscapeString(op)
          << "\",\"requests\":" << snap.requests
          << ",\"breaches\":" << snap.breaches
          << ",\"errors\":" << snap.errors
          << ",\"burn_rate\":" << snap.burn_rate << "}";
    }
    out << "],\"components\":{";
    first = true;
    for (const auto& [name, json] : components) {
      if (!first) out << ",";
      first = false;
      // Component JSON comes pre-rendered from the provider; only the name
      // needs escaping.
      out << "\"" << JsonEscapeString(name) << "\":" << json;
    }
    out << "}}\n";
    *body = out.str();
    *content_type = "application/json";
    return true;
  }
  if (path == "/debug/slowest") {
    *body = FlightRecorder::Get().SnapshotJson();
    *body += '\n';
    *content_type = "application/json";
    return true;
  }
  if (path == "/spans") {
    std::ostringstream out;
    out << "[";
    bool first = true;
    for (const LabelStats& s : AggregateSpanStats()) {
      if (!first) out << ",";
      first = false;
      out << "{\"label\":\"" << JsonEscapeString(s.label)
          << "\",\"count\":" << s.count << ",\"total_ms\":" << s.TotalMillis()
          << ",\"mean_ns\":" << s.MeanNs() << ",\"min_ns\":" << s.min_ns
          << ",\"max_ns\":" << s.max_ns << "}";
    }
    out << "]\n";
    *body = out.str();
    *content_type = "application/json";
    return true;
  }
  return false;
}

bool MetricsServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_relaxed)) {
    SES_LOG_ERROR << "metrics server already running on port " << port_;
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    SES_LOG_ERROR << "metrics server: socket() failed: "
                  << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    SES_LOG_ERROR << "metrics server: cannot bind port " << port << ": "
                  << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  start_time_ = std::chrono::steady_clock::now();
  served_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void MetricsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  // Unblocks accept(): shutdown makes the blocked call return with an error.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsServer::Serve() {
  while (running_.load(std::memory_order_relaxed)) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      continue;  // transient accept failure (e.g. ECONNABORTED)
    }
    HandleConnection(client_fd);
    ::close(client_fd);
  }
}

void MetricsServer::HandleConnection(int client_fd) {
  // Only the request line matters; read one chunk and parse "GET <path> ...".
  char buf[2048];
  ssize_t n;
  do {
    n = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return;
  buf[n] = '\0';
  std::string method, path;
  {
    std::istringstream line(buf);
    line >> method >> path;
  }
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string body, content_type, status = "200 OK";
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
    content_type = "text/plain";
  } else if (!RenderEndpoint(path, &body, &content_type)) {
    status = "404 Not Found";
    body = "not found; try /metrics, /healthz, /spans or /debug/slowest\n";
    content_type = "text/plain";
  }

  std::ostringstream response;
  response << "HTTP/1.0 " << status << "\r\nContent-Type: " << content_type
           << "\r\nContent-Length: " << body.size()
           << "\r\nConnection: close\r\n\r\n"
           << body;
  const std::string out = response.str();
  SendAll(client_fd, out.data(), out.size());
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ses::obs
