#ifndef SES_OBS_ROOFLINE_H_
#define SES_OBS_ROOFLINE_H_

namespace ses::obs {

/// ---------------------------------------------------------------------------
/// Roofline model (Williams et al., CACM'09): a kernel with arithmetic
/// intensity I (FLOPs/byte) can at best reach
///
///   attainable GFLOP/s = min(peak_gflops, I * peak_bw_gbs)
///
/// The two machine ceilings are measured once per process by short
/// microbenchmarks (CalibrateRoofline); every annotated kernel is then placed
/// on the roofline and reports its efficiency as
/// `ses.kernel.roofline_efficiency`.

struct RooflineModel {
  double peak_gflops = 0;  ///< dense FMA ceiling (measured, single thread)
  double peak_bw_gbs = 0;  ///< streaming DRAM bandwidth ceiling (measured)
  bool calibrated = false;

  /// Intensity at which the machine turns compute-bound.
  double RidgeIntensity() const {
    return peak_bw_gbs <= 0 ? 0.0 : peak_gflops / peak_bw_gbs;
  }
};

struct RooflinePoint {
  double achieved_gflops = 0;
  double intensity = 0;           ///< FLOPs per byte
  double attainable_gflops = 0;   ///< roofline ceiling at this intensity
  double efficiency = 0;          ///< achieved / attainable, in [0, ~1]
  const char* bound = "unknown";  ///< "memory" or "compute"
};

/// Runs the two calibration microbenchmarks (~`seconds_budget` wall time
/// each), stores the model process-wide, and publishes
/// `ses.roofline.peak_gflops` / `ses.roofline.peak_bw_gbs` gauges. Safe to
/// call again (re-measures and overwrites). The FLOP bench is a dependent-
/// free FMA chain over an L1-resident buffer; the bandwidth bench is a
/// schoolbook triad over buffers far larger than any LLC.
RooflineModel CalibrateRoofline(double seconds_budget = 0.15);

/// The last calibrated model ({0, 0, false} before any calibration).
RooflineModel CurrentRoofline();

/// Injects a model without measuring (test support).
void SetRooflineForTest(const RooflineModel& model);

/// Places `flops` of work over `bytes` of traffic done in `seconds` on the
/// roofline. Degenerate inputs (zero time/bytes, uncalibrated model) yield
/// zero efficiency and bound "unknown".
RooflinePoint PlaceOnRoofline(double flops, double bytes, double seconds,
                              const RooflineModel& model);

}  // namespace ses::obs

#endif  // SES_OBS_ROOFLINE_H_
