#include "obs/chrome_trace.h"

#include <cstdio>
#include <fstream>

#include "obs/trace.h"
#include "util/logging.h"

namespace ses::obs {

namespace {

/// Escapes the few characters JSON forbids in strings. Labels are code
/// literals, so this rarely fires, but the exporter must never emit a file
/// chrome://tracing refuses to parse.
void WriteJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void WriteChromeTrace(std::ostream& out) {
  const std::vector<TraceEvent> events = SnapshotEvents();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    WriteJsonString(out, ev.label);
    // Chrome expects microseconds; keep nanosecond resolution as fractions.
    out << ",\"cat\":\"ses\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
        << ",\"ts\":" << static_cast<double>(ev.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3;
    // Spans recorded inside a RequestScope carry the request's trace-id, so
    // an access-log line can be joined to its spans in the trace viewer.
    // Kernel spans additionally carry their declared work and (when perf was
    // live) this span's inclusive hardware-counter deltas.
    const bool has_args = ev.trace_id != 0 || ev.IsKernel();
    if (has_args) {
      out << ",\"args\":{";
      bool first_arg = true;
      const auto arg = [&out, &first_arg](const char* key, auto value) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << key << "\":" << value;
      };
      if (ev.trace_id != 0) arg("trace_id", ev.trace_id);
      if (ev.IsKernel()) {
        if (ev.variant != nullptr && ev.variant[0] != '\0') {
          if (!first_arg) out << ",";
          first_arg = false;
          out << "\"variant\":";
          WriteJsonString(out, ev.variant);
        }
        arg("flops", ev.flops);
        arg("bytes", ev.bytes);
        if (ev.dur_ns > 0)
          arg("gflops", ev.flops / static_cast<double>(ev.dur_ns));
        if (ev.counters_valid) {
          arg("cycles", ev.cycles);
          arg("instructions", ev.instructions);
          arg("cache_refs", ev.cache_refs);
          arg("cache_misses", ev.cache_misses);
          arg("branch_misses", ev.branch_misses);
        }
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    SES_LOG_ERROR << "cannot open trace output file " << path;
    return false;
  }
  WriteChromeTrace(out);
  return true;
}

}  // namespace ses::obs
