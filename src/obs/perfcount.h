#ifndef SES_OBS_PERFCOUNT_H_
#define SES_OBS_PERFCOUNT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ses::obs {

/// ---------------------------------------------------------------------------
/// Hardware performance counters (perf_event_open)
///
/// One counter group per thread — cycles (leader), instructions, cache
/// references, cache misses, branch misses — opened lazily on first read and
/// pinned to the calling thread, so a delta between two reads attributes work
/// to exactly that thread. When the kernel refuses the group (no vPMU in the
/// VM, perf_event_paranoid, a container seccomp profile, or SES_PERF_DISABLE=1
/// in the environment) the whole layer degrades to clock-only ONCE, process
/// wide: `ses.perf.available` is set to 0, a single log line records why, and
/// every later read returns an invalid PerfCounts without retrying the
/// syscall — per-kernel warnings would drown the log at kernel call rates.

/// Counter values (or deltas between two reads). `valid` is false on the
/// clock-only fallback path; derived rates then report 0.
struct PerfCounts {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_refs = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  bool valid = false;

  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / cycles;
  }
  double LlcMissRate() const {
    return cache_refs == 0 ? 0.0
                           : static_cast<double>(cache_misses) / cache_refs;
  }

  PerfCounts& operator+=(const PerfCounts& o);
  /// Saturating subtraction (multiplex scaling can make a nested delta
  /// nominally exceed its parent's; attribution must never go negative).
  PerfCounts& operator-=(const PerfCounts& o);
};

/// True when the calling thread's counter group is usable. The first call
/// (per process) performs the probe; later calls are a relaxed load.
bool PerfCountersAvailable();

/// Reads the calling thread's counters. Returns valid=false on the fallback
/// path. Counts are scaled for kernel multiplexing (time_enabled /
/// time_running) so five hardware events stay usable on four-counter PMUs.
PerfCounts ReadPerfCounts();

/// Human-readable reason the fallback engaged ("" while available).
std::string PerfUnavailableReason();

/// Drops the process-wide probe latch so the next read re-probes (test
/// support — lets a test flip SES_PERF_DISABLE and observe the fallback).
/// Thread groups already opened by other threads keep their fds.
void PerfResetForTest();

/// ---------------------------------------------------------------------------
/// KernelScope — the kernel observatory's measurement primitive.
///
/// An RAII scope that combines (a) a trace span, (b) a hardware-counter delta
/// read on the OPENING thread only, and (c) a caller-declared work estimate
/// (floating-point operations and bytes moved). On close it folds one sample
/// into the per-(kernel, variant) aggregate registry, which publishes the
/// `ses.kernel.*{kernel=...,variant=...}` metric series:
///
///   ses.kernel.calls            total scope closes
///   ses.kernel.time_ms          total inclusive wall time
///   ses.kernel.gflops           declared GFLOP / inclusive second
///   ses.kernel.intensity        declared FLOPs / declared byte (arithmetic
///                               intensity, the roofline x-axis)
///   ses.kernel.ipc              instructions / cycle (exclusive; perf only)
///   ses.kernel.llc_miss_rate    cache misses / references (exclusive; perf)
///   ses.kernel.roofline_efficiency  achieved / attainable GFLOP/s, after
///                               CalibrateRoofline() has run (roofline.h)
///
/// Work-accounting contract:
///  - flops/bytes are caller-declared ESTIMATES of the kernel's algorithmic
///    work (2mnk for a dense matmul, 2·nnz·f for SpMM, ...), not
///    measurements. GFLOP/s and intensity derive entirely from them.
///  - Declared work and wall time are INCLUSIVE of nested scopes; a
///    composite scope (e.g. an encoder aggregation path) therefore declares
///    the work of its whole chain and gets a chain-level GFLOP/s.
///  - Hardware-counter deltas are EXCLUSIVE: a parent's recorded delta has
///    every same-thread child's delta subtracted, so summing counter deltas
///    across all scopes never double-counts (satellite: nesting test).
///  - Counters are read on the opening thread only. Inside an OpenMP region
///    the other team members' cycles are invisible to the scope; IPC and
///    miss rates describe the opening thread, while GFLOP/s (wall-clock
///    based) describes the whole team.
///
/// A disabled KernelScope (the default) is one relaxed load and a branch —
/// the serving fast path stays unmeasurably close to free.

namespace internal {
extern std::atomic<bool> g_kernel_profiling_enabled;
}  // namespace internal

/// Turns kernel profiling on/off at runtime. Default: off. ObsSession turns
/// it on alongside tracing whenever any observability artifact is requested.
void EnableKernelProfiling(bool on);
inline bool KernelProfilingEnabled() {
  return internal::g_kernel_profiling_enabled.load(std::memory_order_relaxed);
}

/// Aggregated statistics for one (kernel, variant) pair.
struct KernelStats {
  std::string kernel;
  std::string variant;
  uint64_t calls = 0;
  double inclusive_ns = 0;  ///< wall time, nested scopes included
  double exclusive_ns = 0;  ///< wall time minus same-thread nested scopes
  double flops = 0;         ///< total declared FLOPs
  double bytes = 0;         ///< total declared bytes moved
  PerfCounts counters;      ///< exclusive counter deltas (valid => perf live)

  /// Declared GFLOP/s over inclusive time (FLOPs per nanosecond).
  double Gflops() const {
    return inclusive_ns <= 0 ? 0.0 : flops / inclusive_ns;
  }
  /// Declared GB/s of the kernel over inclusive time.
  double GBps() const { return inclusive_ns <= 0 ? 0.0 : bytes / inclusive_ns; }
  /// Arithmetic intensity: FLOPs per byte.
  double Intensity() const { return bytes <= 0 ? 0.0 : flops / bytes; }
};

/// Snapshot of every (kernel, variant) aggregate, sorted by descending
/// inclusive time. Safe to call while scopes keep recording.
std::vector<KernelStats> SnapshotKernelStats();

/// Drops all aggregates (bench repetitions / tests). Concurrent scopes may
/// record into the fresh table; metric series keep their last values until
/// the next record overwrites them.
void ResetKernelStats();

class KernelScope {
 public:
  /// `kernel` and `variant` must be string literals (static storage);
  /// they become metric labels and trace span names without copying.
  KernelScope(const char* kernel, const char* variant, double flops,
              double bytes) {
    if (KernelProfilingEnabled()) Begin(kernel, variant, flops, bytes);
  }
  ~KernelScope() {
    if (kernel_ != nullptr) End();
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  void Begin(const char* kernel, const char* variant, double flops,
             double bytes);
  void End();

  const char* kernel_ = nullptr;  ///< null => profiling was off at entry
  const char* variant_ = nullptr;
  double flops_ = 0;
  double bytes_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;  ///< request id captured at Begin
  PerfCounts start_counts_;
  bool traced_ = false;      ///< tracing was live at Begin (span recorded)
  KernelScope* parent_ = nullptr;  ///< enclosing scope on this thread
  uint64_t child_ns_ = 0;          ///< inclusive ns of direct children
  PerfCounts child_counts_;        ///< inclusive counter deltas of children
};

}  // namespace ses::obs

#endif  // SES_OBS_PERFCOUNT_H_
