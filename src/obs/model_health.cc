#include "obs/model_health.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"

namespace ses::obs {

namespace {

double L2Norm(const float* data, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i)
    sum += static_cast<double>(data[i]) * static_cast<double>(data[i]);
  return std::sqrt(sum);
}

}  // namespace

ModelHealthMonitor& ModelHealthMonitor::Get() {
  static ModelHealthMonitor* monitor = new ModelHealthMonitor();
  return *monitor;
}

void ModelHealthMonitor::BeginEpoch(const std::string& model) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = model;
  params_.clear();
  pre_values_.clear();
  pre_offsets_.clear();
  dead_sum_ = 0.0;
  dead_calls_ = 0;
  attn_sum_ = 0.0;
  attn_calls_ = 0;
}

void ModelHealthMonitor::ObserveParamPreStep(const std::string& name,
                                             const float* value, int64_t n,
                                             const float* grad,
                                             int64_t grad_n) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PendingParam pending;
  pending.name = name;
  if (grad_n > 0) pending.grad_norm = L2Norm(grad, grad_n);
  pending.pre_norm = L2Norm(value, n);
  pre_offsets_.push_back(static_cast<int64_t>(pre_values_.size()));
  pre_values_.insert(pre_values_.end(), value, value + n);
  params_.push_back(std::move(pending));
}

void ModelHealthMonitor::ObserveParamPostStep(const std::string& name,
                                              const float* value, int64_t n) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Match the most recent un-finalized pre-step snapshot with this name
  // (names may repeat across modules; pre/post calls come in matching order).
  for (size_t i = params_.size(); i-- > 0;) {
    PendingParam& p = params_[i];
    if (p.name != name || p.update_ratio >= 0.0) continue;
    const float* pre = pre_values_.data() + pre_offsets_[i];
    const int64_t count = std::min(
        n, (i + 1 < pre_offsets_.size()
                ? pre_offsets_[i + 1]
                : static_cast<int64_t>(pre_values_.size())) -
               pre_offsets_[i]);
    double delta_sq = 0.0;
    for (int64_t j = 0; j < count; ++j) {
      const double d =
          static_cast<double>(value[j]) - static_cast<double>(pre[j]);
      delta_sq += d * d;
    }
    p.update_ratio = p.pre_norm > 0.0 ? std::sqrt(delta_sq) / p.pre_norm : 0.0;
    return;
  }
}

void ModelHealthMonitor::ObserveActivations(const float* data, int64_t rows,
                                            int64_t cols) {
  if (!enabled() || rows <= 0 || cols <= 0) return;
  std::vector<uint8_t> alive(static_cast<size_t>(cols), 0);
  int64_t remaining = cols;
  for (int64_t r = 0; r < rows && remaining > 0; ++r) {
    const float* row = data + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      if (row[c] != 0.0f && !alive[static_cast<size_t>(c)]) {
        alive[static_cast<size_t>(c)] = 1;
        --remaining;
      }
    }
  }
  const double fraction =
      static_cast<double>(remaining) / static_cast<double>(cols);
  std::lock_guard<std::mutex> lock(mutex_);
  dead_sum_ += fraction;
  ++dead_calls_;
}

void ModelHealthMonitor::ObserveAttention(const float* att, const int64_t* dst,
                                          int64_t n_edges) {
  if (!enabled() || n_edges <= 0) return;
  // Group incoming attention per destination; entropy of the normalized
  // distribution over in-edges, scaled by log(deg) into [0, 1].
  std::unordered_map<int64_t, std::vector<double>> incoming;
  for (int64_t e = 0; e < n_edges; ++e)
    incoming[dst[e]].push_back(std::max(0.0, static_cast<double>(att[e])));
  double entropy_sum = 0.0;
  int64_t counted = 0;
  for (const auto& [node, weights] : incoming) {
    if (weights.size() < 2) continue;
    double total = 0.0;
    for (const double w : weights) total += w;
    if (total <= 0.0) continue;
    double entropy = 0.0;
    for (const double w : weights) {
      const double p = w / total;
      if (p > 0.0) entropy -= p * std::log(p);
    }
    entropy_sum += entropy / std::log(static_cast<double>(weights.size()));
    ++counted;
  }
  if (counted == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  attn_sum_ += entropy_sum / static_cast<double>(counted);
  ++attn_calls_;
}

ModelHealthMonitor::EpochHealth ModelHealthMonitor::EndEpoch() {
  EpochHealth health;
  if (!enabled()) return health;
  std::lock_guard<std::mutex> lock(mutex_);
  health.params.reserve(params_.size());
  auto& registry = MetricsRegistry::Get();
  for (const PendingParam& p : params_) {
    ParamHealth out;
    out.name = p.name;
    out.grad_norm = p.grad_norm;
    out.update_ratio = p.update_ratio;
    health.params.push_back(out);
    const MetricsRegistry::LabelSet labels = {{"model", model_},
                                              {"param", p.name}};
    if (p.grad_norm >= 0.0)
      registry.GetGauge("ses.health.grad_norm", labels).Set(p.grad_norm);
    if (p.update_ratio >= 0.0)
      registry.GetGauge("ses.health.update_ratio", labels)
          .Set(p.update_ratio);
  }
  const MetricsRegistry::LabelSet model_labels = {{"model", model_}};
  if (dead_calls_ > 0) {
    health.dead_fraction = dead_sum_ / static_cast<double>(dead_calls_);
    registry.GetGauge("ses.health.dead_fraction", model_labels)
        .Set(health.dead_fraction);
  }
  if (attn_calls_ > 0) {
    health.attn_entropy = attn_sum_ / static_cast<double>(attn_calls_);
    registry.GetGauge("ses.health.attn_entropy", model_labels)
        .Set(health.attn_entropy);
  }
  params_.clear();
  pre_values_.clear();
  pre_offsets_.clear();
  dead_sum_ = 0.0;
  dead_calls_ = 0;
  attn_sum_ = 0.0;
  attn_calls_ = 0;
  return health;
}

void ModelHealthMonitor::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  model_.clear();
  params_.clear();
  pre_values_.clear();
  pre_offsets_.clear();
  dead_sum_ = 0.0;
  dead_calls_ = 0;
  attn_sum_ = 0.0;
  attn_calls_ = 0;
}

}  // namespace ses::obs
