#ifndef SES_OBS_METRICS_H_
#define SES_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace ses::obs {

/// Monotonic counter. Increments are a single atomic add.
class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `edges` are ascending inclusive upper bounds;
/// bucket i counts observations v with v <= edges[i] (first matching bucket),
/// and one implicit overflow bucket counts everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void Observe(double v);

  const std::vector<double>& edges() const { return edges_; }
  /// i in [0, edges().size()]; the last index is the overflow bucket.
  int64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<int64_t>> counts_;  ///< edges_.size() + 1 slots
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide registry of named metrics. Lookup/creation takes a mutex
/// (cold path — callers should cache the returned reference); updates on the
/// returned objects are lock-free. Returned references stay valid for the
/// lifetime of the process.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `edges` only matters on first creation; later calls return the existing
  /// histogram regardless of the edges argument.
  Histogram& GetHistogram(const std::string& name, std::vector<double> edges);

  /// One `kind,name,field,value` row per scalar (histograms expand to one row
  /// per bucket), names sorted for deterministic output.
  void WriteCsv(std::ostream& out) const;
  /// One JSON object per metric, names sorted.
  void WriteJsonl(std::ostream& out) const;
  /// Path convenience wrappers; ".jsonl"/".json" suffix selects JSONL,
  /// anything else CSV. Returns false (and logs) on open failure.
  bool WriteSnapshot(const std::string& path) const;

  /// Drops every registered metric (test support; invalidates references).
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ses::obs

#endif  // SES_OBS_METRICS_H_
