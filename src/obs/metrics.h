#ifndef SES_OBS_METRICS_H_
#define SES_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ses::obs {

/// Monotonic counter. Increments are a single atomic add.
class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucketed histogram with configurable boundaries. `edges` are ascending
/// inclusive upper bounds; bucket i counts observations v with v <= edges[i]
/// (first matching bucket), and one implicit overflow bucket counts
/// everything above the last edge.
///
/// Each bucket additionally keeps one *exemplar* — the trace id and value of
/// the most recent observation that landed there while a trace id was in
/// scope (see obs::CurrentTraceId) or was passed explicitly. The reservoir is
/// last-write-wins and lossy under contention: a writer that finds another
/// writer mid-update simply drops its exemplar rather than spinning, so the
/// hot Observe path never blocks. Exemplars are exported by the Prometheus
/// writer in OpenMetrics syntax, which is how a scraped p99 bucket links back
/// to a concrete request in the access log and Chrome trace.
class Histogram {
 public:
  /// One bucket's exemplar: the last traced observation that landed there.
  struct Exemplar {
    uint64_t trace_id = 0;
    double value = 0.0;
  };

  explicit Histogram(std::vector<double> edges);

  void Observe(double v);
  /// Observe with an explicit trace id (0 = untraced) — for callers that
  /// complete requests on a thread other than the one that owns the trace id
  /// (e.g. the batch scheduler's worker loop).
  void Observe(double v, uint64_t trace_id);
  /// Batched Observe: accumulates the n values into local bucket tallies and
  /// flushes each touched bucket (plus count/sum) with one atomic op, so a
  /// micro-batch of B observations costs O(distinct buckets) contended ops
  /// instead of O(B).
  void ObserveMany(const double* values, int64_t n);
  /// Batched Observe carrying per-value trace ids; each touched bucket keeps
  /// the last traced value of the batch as its exemplar. `trace_ids` may be
  /// null (equivalent to the untraced overload).
  void ObserveMany(const double* values, const uint64_t* trace_ids, int64_t n);

  /// Reads bucket i's exemplar. Returns false when the bucket has never seen
  /// a traced observation, or when a writer raced the read past the bounded
  /// retry budget (exemplars are advisory; dropping a read is fine).
  bool ReadExemplar(size_t i, Exemplar* out) const;

  const std::vector<double>& edges() const { return edges_; }
  /// i in [0, edges().size()]; the last index is the overflow bucket.
  int64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

  /// Bucket-interpolated quantile estimate for q in [0, 1]: finds the bucket
  /// holding the q-th observation and interpolates linearly inside it
  /// (buckets are assumed to start at 0, or at the previous edge). An
  /// observation landing in the overflow bucket reports the last edge — the
  /// estimate saturates rather than extrapolating to infinity. Returns 0
  /// with no observations.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
  double P999() const { return Quantile(0.999); }

  /// `count` geometric boundaries start, start*factor, start*factor^2, ...
  /// (the standard shape for latency histograms).
  static std::vector<double> ExponentialEdges(double start, double factor,
                                              int count);
  /// Default latency buckets in microseconds: 30 geometric edges covering
  /// 0.1 us .. ~54 s.
  static const std::vector<double>& DefaultLatencyEdgesUs();

 private:
  /// Seqlock-protected exemplar slot. seq is even when the slot is stable and
  /// odd while a writer is mid-update; writers bump even→odd, store the
  /// payload, then publish odd→even with release ordering. A writer that
  /// loses the CAS walks away (last-write-wins, lossy). seq == 0 means the
  /// slot has never been written.
  struct ExemplarSlot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
  };

  size_t BucketIndex(double v) const;
  void RecordExemplar(size_t bucket, double v, uint64_t trace_id);

  std::vector<double> edges_;
  std::vector<std::atomic<int64_t>> counts_;  ///< edges_.size() + 1 slots
  std::vector<ExemplarSlot> exemplars_;       ///< one slot per bucket
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide registry of named metrics. Registration takes the registry
/// lock exclusively (cold path — callers should cache the returned
/// reference); exports take it shared, so a live `/metrics` scrape never
/// races a concurrent GetCounter on a new name. Updates on the returned
/// objects are lock-free, and returned references stay valid for the
/// lifetime of the process.
///
/// Metrics can carry Prometheus-style labels: GetCounter("ses.slo.requests",
/// {{"op", "predict"}}) registers a distinct time series per label set. The
/// labels are folded into the registry key in a canonical encoded form (see
/// LabeledName); the Prometheus exporter splits them back out.
class MetricsRegistry {
 public:
  /// One label set: (key, value) pairs. Order is irrelevant — keys are
  /// sorted before encoding.
  using LabelSet = std::vector<std::pair<std::string, std::string>>;

  static MetricsRegistry& Get();

  Counter& GetCounter(const std::string& name);
  Counter& GetCounter(const std::string& name, const LabelSet& labels);
  Gauge& GetGauge(const std::string& name);
  Gauge& GetGauge(const std::string& name, const LabelSet& labels);
  /// `edges` only matters on first creation; later calls return the existing
  /// histogram regardless of the edges argument.
  Histogram& GetHistogram(const std::string& name, std::vector<double> edges);
  Histogram& GetHistogram(const std::string& name, const LabelSet& labels,
                          std::vector<double> edges);

  /// Canonical registry key for a labeled metric: `name{k1="v1",k2="v2"}`
  /// with keys sorted and values escaped (\\, \", \n). An empty label set
  /// returns `name` unchanged. This is exactly the Prometheus sample syntax
  /// minus name sanitization, so keys round-trip through the exporter.
  static std::string LabeledName(const std::string& name,
                                 const LabelSet& labels);

  /// One `kind,name,field,value` row per scalar (histograms expand to one row
  /// per bucket), names sorted for deterministic output.
  void WriteCsv(std::ostream& out) const;
  /// One JSON object per metric, names sorted.
  void WriteJsonl(std::ostream& out) const;
  /// Prometheus text exposition format 0.0.4 (implemented in prometheus.cc):
  /// `# TYPE` headers per family, sanitized names, escaped label values,
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count` per histogram.
  void WritePrometheus(std::ostream& out) const;
  /// Path convenience wrappers; ".jsonl"/".json" suffix selects JSONL,
  /// ".prom" Prometheus exposition, anything else CSV. Returns false (and
  /// logs) on open failure.
  bool WriteSnapshot(const std::string& path) const;

  /// Drops every registered metric (test support; invalidates references).
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ses::obs

#endif  // SES_OBS_METRICS_H_
