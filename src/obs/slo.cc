#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ses::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SloTracker& SloTracker::Get() {
  static SloTracker* tracker = new SloTracker();
  return *tracker;
}

SloTracker::OpState::OpState(const std::string& op, Budget b)
    : budget(b), ring(static_cast<size_t>(b.window)) {
  auto& registry = MetricsRegistry::Get();
  const MetricsRegistry::LabelSet labels = {{"op", op}};
  requests_metric = &registry.GetCounter("ses.slo.requests", labels);
  breaches_metric = &registry.GetCounter("ses.slo.breaches", labels);
  errors_metric = &registry.GetCounter("ses.slo.errors", labels);
  burn_rate_metric = &registry.GetGauge("ses.slo.burn_rate", labels);
  registry.GetGauge("ses.slo.latency_budget_us", labels)
      .Set(b.latency_budget_us);
  registry.GetGauge("ses.slo.target", labels).Set(b.target);
}

double SloTracker::OpState::BurnRate() const {
  const int64_t seen = std::min(ring_filled.load(std::memory_order_relaxed),
                                static_cast<int64_t>(ring.size()));
  if (seen == 0) return 0.0;
  // A window with no samples for longer than the idle threshold is stale:
  // report 0 rather than replaying the last spike's rate into dashboards and
  // admission controllers.
  if (budget.idle_reset_us > 0.0) {
    const int64_t last = last_record_ns.load(std::memory_order_relaxed);
    if (last != 0 && static_cast<double>(SteadyNowNs() - last) >
                         budget.idle_reset_us * 1e3)
      return 0.0;
  }
  const double burned_fraction =
      static_cast<double>(ring_burned.load(std::memory_order_relaxed)) /
      static_cast<double>(seen);
  const double error_budget = std::max(1e-9, 1.0 - budget.target);
  return burned_fraction / error_budget;
}

void SloTracker::OpState::MaybeIdleReset(int64_t now_ns) {
  if (budget.idle_reset_us <= 0.0) {
    last_record_ns.store(now_ns, std::memory_order_relaxed);
    return;
  }
  const int64_t previous =
      last_record_ns.exchange(now_ns, std::memory_order_relaxed);
  if (previous == 0 ||
      static_cast<double>(now_ns - previous) <= budget.idle_reset_us * 1e3)
    return;
  // Only the thread that observed the stale timestamp gets here (exchange
  // hands the old value to exactly one caller), so the reset runs once per
  // gap. Slots must be zeroed, not just the count: a leftover 1 would make a
  // later exchange drive ring_burned negative.
  for (auto& slot : ring) slot.store(0, std::memory_order_relaxed);
  ring_burned.store(0, std::memory_order_relaxed);
  ring_pos.store(0, std::memory_order_relaxed);
  ring_filled.store(0, std::memory_order_relaxed);
}

void SloTracker::SetBudget(const std::string& op, double latency_budget_us,
                           double target, int64_t window,
                           double idle_reset_us) {
  SES_CHECK(latency_budget_us > 0.0 && target > 0.0 && target < 1.0 &&
            window > 0);
  Budget budget{latency_budget_us, target, window, idle_reset_us};
  std::unique_lock lock(mutex_);
  ops_[op] = std::make_unique<OpState>(op, budget);
  enabled_.store(true, std::memory_order_relaxed);
}

void SloTracker::RecordSlow(const std::string& op, double latency_us,
                            bool error) {
  OpState* state = nullptr;
  {
    std::shared_lock lock(mutex_);
    const auto it = ops_.find(op);
    if (it == ops_.end()) return;
    state = it->second.get();
  }
  // The map only grows and OpStates are never replaced mid-run (SetBudget on
  // an existing op installs a fresh state, which racing Records may miss for
  // one observation — acceptable for monitoring).
  state->MaybeIdleReset(SteadyNowNs());
  state->requests.fetch_add(1, std::memory_order_relaxed);
  state->requests_metric->Add(1);
  const bool breached = latency_us > state->budget.latency_budget_us;
  if (breached) {
    state->breaches.fetch_add(1, std::memory_order_relaxed);
    state->breaches_metric->Add(1);
  }
  if (error) {
    state->errors.fetch_add(1, std::memory_order_relaxed);
    state->errors_metric->Add(1);
  }
  const uint8_t burned = breached || error ? 1 : 0;
  const size_t slot = static_cast<size_t>(
      state->ring_pos.fetch_add(1, std::memory_order_relaxed) %
      static_cast<int64_t>(state->ring.size()));
  const uint8_t previous =
      state->ring[slot].exchange(burned, std::memory_order_relaxed);
  if (previous != burned)
    state->ring_burned.fetch_add(burned ? 1 : -1, std::memory_order_relaxed);
  if (state->ring_filled.load(std::memory_order_relaxed) <
      static_cast<int64_t>(state->ring.size()))
    state->ring_filled.fetch_add(1, std::memory_order_relaxed);
  state->burn_rate_metric->Set(state->BurnRate());
}

void SloTracker::RecordManySlow(const std::string& op,
                                const double* latency_us, int64_t n) {
  OpState* state = nullptr;
  {
    std::shared_lock lock(mutex_);
    const auto it = ops_.find(op);
    if (it == ops_.end()) return;
    state = it->second.get();
  }
  state->MaybeIdleReset(SteadyNowNs());
  const double budget = state->budget.latency_budget_us;
  const int64_t ring_size = static_cast<int64_t>(state->ring.size());
  const int64_t start = state->ring_pos.fetch_add(n, std::memory_order_relaxed);
  int64_t breaches = 0;
  int64_t burned_delta = 0;
  for (int64_t i = 0; i < n; ++i) {
    const uint8_t burned = latency_us[i] > budget ? 1 : 0;
    breaches += burned;
    const size_t slot = static_cast<size_t>((start + i) % ring_size);
    const uint8_t previous =
        state->ring[slot].exchange(burned, std::memory_order_relaxed);
    if (previous != burned) burned_delta += burned ? 1 : -1;
  }
  state->requests.fetch_add(n, std::memory_order_relaxed);
  state->requests_metric->Add(n);
  if (breaches != 0) {
    state->breaches.fetch_add(breaches, std::memory_order_relaxed);
    state->breaches_metric->Add(breaches);
  }
  if (burned_delta != 0)
    state->ring_burned.fetch_add(burned_delta, std::memory_order_relaxed);
  if (state->ring_filled.load(std::memory_order_relaxed) < ring_size)
    state->ring_filled.fetch_add(std::min(n, ring_size),
                                 std::memory_order_relaxed);
  state->burn_rate_metric->Set(state->BurnRate());
}

SloTracker::OpSnapshot SloTracker::Snapshot(const std::string& op) const {
  std::shared_lock lock(mutex_);
  OpSnapshot snap;
  const auto it = ops_.find(op);
  if (it == ops_.end()) return snap;
  const OpState& s = *it->second;
  snap.budget = s.budget;
  snap.requests = s.requests.load(std::memory_order_relaxed);
  snap.breaches = s.breaches.load(std::memory_order_relaxed);
  snap.errors = s.errors.load(std::memory_order_relaxed);
  snap.burn_rate = s.BurnRate();
  return snap;
}

std::vector<std::pair<std::string, SloTracker::OpSnapshot>>
SloTracker::SnapshotAll() const {
  std::vector<std::pair<std::string, OpSnapshot>> out;
  {
    std::shared_lock lock(mutex_);
    out.reserve(ops_.size());
    for (const auto& [op, state] : ops_) out.emplace_back(op, OpSnapshot{});
  }
  for (auto& [op, snap] : out) snap = Snapshot(op);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void SloTracker::ResetForTest() {
  std::unique_lock lock(mutex_);
  ops_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

}  // namespace ses::obs
