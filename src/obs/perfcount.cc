#include "obs/perfcount.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/roofline.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ses::obs {

PerfCounts& PerfCounts::operator+=(const PerfCounts& o) {
  cycles += o.cycles;
  instructions += o.instructions;
  cache_refs += o.cache_refs;
  cache_misses += o.cache_misses;
  branch_misses += o.branch_misses;
  valid = valid && o.valid;
  return *this;
}

PerfCounts& PerfCounts::operator-=(const PerfCounts& o) {
  const auto sat = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  cycles = sat(cycles, o.cycles);
  instructions = sat(instructions, o.instructions);
  cache_refs = sat(cache_refs, o.cache_refs);
  cache_misses = sat(cache_misses, o.cache_misses);
  branch_misses = sat(branch_misses, o.branch_misses);
  valid = valid && o.valid;
  return *this;
}

namespace {

/// Event order inside the group; Read() relies on it.
constexpr uint64_t kEventConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES};
constexpr int kEventCount = 5;

/// Process-wide availability latch: 0 unknown, 1 available, -1 fallback.
/// The probe runs once; every thread after that pays one relaxed load.
std::atomic<int> g_perf_state{0};
std::mutex g_perf_reason_mutex;
std::string g_perf_reason;  // guarded by g_perf_reason_mutex

void SetPerfUnavailable(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(g_perf_reason_mutex);
    g_perf_reason = reason;
  }
  g_perf_state.store(-1, std::memory_order_release);
  MetricsRegistry::Get().GetGauge("ses.perf.available").Set(0.0);
  // One line for the whole process — the fallback is a supported mode, not
  // a per-kernel error condition.
  SES_LOG_INFO << "hardware perf counters unavailable (" << reason
               << "); kernel observatory continues clock-only";
}

long PerfEventOpen(perf_event_attr* attr, int group_fd) {
  return syscall(SYS_perf_event_open, attr, 0, -1, group_fd, 0);
}

/// Per-thread counter group. The leader fd owns the group; all events are
/// read with one read() in PERF_FORMAT_GROUP layout.
class ThreadPerfGroup {
 public:
  ~ThreadPerfGroup() {
    for (int i = kEventCount - 1; i >= 0; --i)
      if (fds_[i] >= 0) ::close(fds_[i]);
  }

  bool Open() {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    for (int i = 0; i < kEventCount; ++i) {
      attr.config = kEventConfigs[i];
      // The leader starts enabled; siblings inherit the leader's state.
      attr.disabled = (i == 0) ? 1 : 0;
      const long fd = PerfEventOpen(&attr, i == 0 ? -1 : fds_[0]);
      if (fd < 0) {
        errno_ = errno;
        failed_config_ = static_cast<int>(kEventConfigs[i]);
        return false;
      }
      fds_[i] = static_cast<int>(fd);
    }
    if (::ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      errno_ = errno;
      return false;
    }
    return true;
  }

  PerfCounts Read() const {
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
    uint64_t buf[3 + kEventCount];
    const ssize_t want = sizeof(buf);
    const ssize_t n = ::read(fds_[0], buf, sizeof(buf));
    PerfCounts out;
    if (n != want || buf[0] != kEventCount) return out;
    // Scale for multiplexing: with more events than PMU slots the kernel
    // time-slices the group; time_running < time_enabled and the raw counts
    // cover only the running window.
    const double enabled = static_cast<double>(buf[1]);
    const double running = static_cast<double>(buf[2]);
    const double scale = (running > 0 && enabled > running)
                             ? enabled / running
                             : 1.0;
    const auto scaled = [scale](uint64_t v) {
      return static_cast<uint64_t>(static_cast<double>(v) * scale);
    };
    out.cycles = scaled(buf[3]);
    out.instructions = scaled(buf[4]);
    out.cache_refs = scaled(buf[5]);
    out.cache_misses = scaled(buf[6]);
    out.branch_misses = scaled(buf[7]);
    out.valid = true;
    return out;
  }

  int last_errno() const { return errno_; }
  int failed_config() const { return failed_config_; }

 private:
  int fds_[kEventCount] = {-1, -1, -1, -1, -1};
  int errno_ = 0;
  int failed_config_ = -1;
};

/// The calling thread's group, opened on first use. Returns nullptr on the
/// fallback path. The unique_ptr closes the fds when the thread exits.
ThreadPerfGroup* LocalPerfGroup() {
  thread_local std::unique_ptr<ThreadPerfGroup> group = [] {
    std::unique_ptr<ThreadPerfGroup> g;
    if (g_perf_state.load(std::memory_order_acquire) == -1) return g;
    const char* disable = std::getenv("SES_PERF_DISABLE");
    if (disable != nullptr && disable[0] != '\0' && disable[0] != '0') {
      SetPerfUnavailable("SES_PERF_DISABLE is set");
      return g;
    }
    g = std::make_unique<ThreadPerfGroup>();
    if (!g->Open()) {
      const int err = g->last_errno();
      SetPerfUnavailable("perf_event_open config=" +
                         std::to_string(g->failed_config()) + " failed: " +
                         std::strerror(err));
      g.reset();
      return g;
    }
    if (g_perf_state.load(std::memory_order_relaxed) != 1) {
      g_perf_state.store(1, std::memory_order_release);
      MetricsRegistry::Get().GetGauge("ses.perf.available").Set(1.0);
    }
    return g;
  }();
  // After PerfResetForTest the latch may have been flipped to -1 by another
  // probe; the existing group keeps working, which is fine (the latch only
  // gates new probes and the availability report).
  return group.get();
}

}  // namespace

bool PerfCountersAvailable() {
  const int state = g_perf_state.load(std::memory_order_acquire);
  if (state != 0) return state == 1;
  return LocalPerfGroup() != nullptr;
}

PerfCounts ReadPerfCounts() {
  if (g_perf_state.load(std::memory_order_acquire) == -1) return {};
  ThreadPerfGroup* group = LocalPerfGroup();
  if (group == nullptr) return {};
  return group->Read();
}

std::string PerfUnavailableReason() {
  if (g_perf_state.load(std::memory_order_acquire) != -1) return "";
  std::lock_guard<std::mutex> lock(g_perf_reason_mutex);
  return g_perf_reason;
}

void PerfResetForTest() {
  g_perf_state.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(g_perf_reason_mutex);
  g_perf_reason.clear();
}

// ---------------------------------------------------------------------------
// KernelScope + per-kernel aggregate registry.

std::atomic<bool> internal::g_kernel_profiling_enabled{false};

void EnableKernelProfiling(bool on) {
  internal::g_kernel_profiling_enabled.store(on, std::memory_order_relaxed);
}

namespace {

/// One aggregate row. Plain fields under a per-entry mutex: kernel calls are
/// microsecond-scale, so a short uncontended lock per close is cheap, and it
/// keeps flops accumulation exact (no atomic<double> CAS loops).
struct KernelEntry {
  std::mutex mutex;
  KernelStats stats;
  // Metric series resolved once on first record (registry lookups are the
  // cold path), then updated with relaxed stores on every close.
  Counter* calls_metric = nullptr;
  Gauge* time_ms = nullptr;
  Gauge* gflops = nullptr;
  Gauge* intensity = nullptr;
  Gauge* ipc = nullptr;
  Gauge* llc_miss_rate = nullptr;
  Gauge* roofline_efficiency = nullptr;
};

std::shared_mutex g_kernel_table_mutex;
std::unordered_map<std::string, std::unique_ptr<KernelEntry>>& KernelTable() {
  static auto* table =
      new std::unordered_map<std::string, std::unique_ptr<KernelEntry>>();
  return *table;
}

KernelEntry* EntryFor(const char* kernel, const char* variant) {
  std::string key;
  key.reserve(std::strlen(kernel) + std::strlen(variant) + 1);
  key += kernel;
  key += '|';
  key += variant;
  {
    std::shared_lock lock(g_kernel_table_mutex);
    auto it = KernelTable().find(key);
    if (it != KernelTable().end()) return it->second.get();
  }
  std::unique_lock lock(g_kernel_table_mutex);
  auto& slot = KernelTable()[key];
  if (slot == nullptr) {
    slot = std::make_unique<KernelEntry>();
    slot->stats.kernel = kernel;
    slot->stats.variant = variant;
    const MetricsRegistry::LabelSet labels{{"kernel", kernel},
                                           {"variant", variant}};
    auto& reg = MetricsRegistry::Get();
    slot->calls_metric = &reg.GetCounter("ses.kernel.calls", labels);
    slot->time_ms = &reg.GetGauge("ses.kernel.time_ms", labels);
    slot->gflops = &reg.GetGauge("ses.kernel.gflops", labels);
    slot->intensity = &reg.GetGauge("ses.kernel.intensity", labels);
    slot->ipc = &reg.GetGauge("ses.kernel.ipc", labels);
    slot->llc_miss_rate = &reg.GetGauge("ses.kernel.llc_miss_rate", labels);
    slot->roofline_efficiency =
        &reg.GetGauge("ses.kernel.roofline_efficiency", labels);
  }
  return slot.get();
}

/// The innermost open KernelScope on this thread (exclusive attribution).
thread_local KernelScope* t_current_scope = nullptr;

}  // namespace

std::vector<KernelStats> SnapshotKernelStats() {
  std::vector<KernelStats> out;
  std::shared_lock lock(g_kernel_table_mutex);
  out.reserve(KernelTable().size());
  for (auto& [key, entry] : KernelTable()) {
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    out.push_back(entry->stats);
  }
  lock.unlock();
  std::sort(out.begin(), out.end(),
            [](const KernelStats& a, const KernelStats& b) {
              return a.inclusive_ns != b.inclusive_ns
                         ? a.inclusive_ns > b.inclusive_ns
                         : (a.kernel != b.kernel ? a.kernel < b.kernel
                                                 : a.variant < b.variant);
            });
  return out;
}

void ResetKernelStats() {
  std::unique_lock lock(g_kernel_table_mutex);
  for (auto& [key, entry] : KernelTable()) {
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    const std::string kernel = entry->stats.kernel;
    const std::string variant = entry->stats.variant;
    entry->stats = KernelStats{};
    entry->stats.kernel = kernel;
    entry->stats.variant = variant;
  }
}

void KernelScope::Begin(const char* kernel, const char* variant, double flops,
                        double bytes) {
  kernel_ = kernel;
  variant_ = variant == nullptr ? "" : variant;
  flops_ = flops < 0 ? 0 : flops;
  bytes_ = bytes < 0 ? 0 : bytes;
  parent_ = t_current_scope;
  t_current_scope = this;
  traced_ = TracingEnabled();
  if (traced_) trace_id_ = internal::PushSpanFrame();
  start_counts_ = ReadPerfCounts();
  start_ns_ = internal::TraceNowNs();  // last: excludes setup from the span
}

void KernelScope::End() {
  const uint64_t end_ns = internal::TraceNowNs();
  PerfCounts end_counts = ReadPerfCounts();
  const uint64_t inclusive_ns = end_ns - start_ns_;

  // Inclusive counter delta for this scope (whole span, opening thread).
  PerfCounts inclusive = end_counts;
  inclusive -= start_counts_;  // valid = both reads valid

  // Exclusive delta: subtract what same-thread children already claimed.
  // child_counts_.valid is irrelevant here (zero children leave it false).
  PerfCounts exclusive = inclusive;
  exclusive -= child_counts_;
  exclusive.valid = inclusive.valid;
  const uint64_t exclusive_ns =
      inclusive_ns > child_ns_ ? inclusive_ns - child_ns_ : 0;

  // Fold into the aggregate table and refresh the metric series.
  KernelEntry* entry = EntryFor(kernel_, variant_);
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    KernelStats& s = entry->stats;
    ++s.calls;
    s.inclusive_ns += static_cast<double>(inclusive_ns);
    s.exclusive_ns += static_cast<double>(exclusive_ns);
    s.flops += flops_;
    s.bytes += bytes_;
    if (exclusive.valid) {
      // Aggregate counters cover the calls where perf was live; `valid`
      // means "at least one hardware sample contributed".
      s.counters.cycles += exclusive.cycles;
      s.counters.instructions += exclusive.instructions;
      s.counters.cache_refs += exclusive.cache_refs;
      s.counters.cache_misses += exclusive.cache_misses;
      s.counters.branch_misses += exclusive.branch_misses;
      s.counters.valid = true;
    }
    entry->calls_metric->Add(1);
    entry->time_ms->Set(s.inclusive_ns / 1e6);
    entry->gflops->Set(s.Gflops());
    entry->intensity->Set(s.Intensity());
    if (s.counters.valid) {
      entry->ipc->Set(s.counters.Ipc());
      entry->llc_miss_rate->Set(s.counters.LlcMissRate());
    }
    const RooflineModel roof = CurrentRoofline();
    if (roof.calibrated) {
      const RooflinePoint p = PlaceOnRoofline(s.flops, s.bytes,
                                              s.inclusive_ns / 1e9, roof);
      entry->roofline_efficiency->Set(p.efficiency);
    }
  }

  // Credit this scope's inclusive span to the parent as "child work".
  if (parent_ != nullptr) {
    parent_->child_ns_ += inclusive_ns;
    if (inclusive.valid) {
      parent_->child_counts_.cycles += inclusive.cycles;
      parent_->child_counts_.instructions += inclusive.instructions;
      parent_->child_counts_.cache_refs += inclusive.cache_refs;
      parent_->child_counts_.cache_misses += inclusive.cache_misses;
      parent_->child_counts_.branch_misses += inclusive.branch_misses;
    }
  }
  t_current_scope = parent_;

  if (traced_) {
    TraceEvent ev;
    ev.label = kernel_;
    ev.variant = variant_;
    ev.start_ns = start_ns_;
    ev.dur_ns = inclusive_ns;
    ev.flops = flops_;
    ev.bytes = bytes_;
    ev.cycles = inclusive.cycles;
    ev.instructions = inclusive.instructions;
    ev.cache_refs = inclusive.cache_refs;
    ev.cache_misses = inclusive.cache_misses;
    ev.branch_misses = inclusive.branch_misses;
    ev.counters_valid = inclusive.valid;
    internal::PopSpanFrameAndRecord(trace_id_, &ev);
  }
}

}  // namespace ses::obs
