#ifndef SES_OBS_SLO_H_
#define SES_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ses::obs {

class Counter;
class Gauge;

/// Service-level-objective tracker: per-op latency budgets, breach/error
/// counters, and a rolling burn rate, all mirrored into the `ses.slo.*`
/// metric family (labeled by op) so a live `/metrics` scrape sees them.
///
/// Semantics: an op's SLO is "a fraction `target` of requests completes
/// within `latency_budget_us` and without error". Every request outside the
/// budget (or failed) consumes error budget (1 - target). The burn rate is
/// measured over a rolling window of the last `window` requests:
///
///   burn_rate = (window breaches + errors) / window_size / (1 - target)
///
/// 1.0 means the op is consuming its error budget exactly as fast as the
/// target allows; above 1.0 the SLO is being burned down. Counters are
/// cumulative; the burn-rate gauge is the live rolling value.
class SloTracker {
 public:
  struct Budget {
    double latency_budget_us = 0.0;  ///< per-request latency budget
    double target = 0.999;           ///< success-fraction objective
    int64_t window = 512;            ///< rolling-window size (requests)
    /// Wall-clock idle gap after which the rolling window is stale and is
    /// reset before the next sample (and BurnRate reads as 0 until then).
    /// Without this, the last pre-idle window keeps reporting its old burn
    /// rate forever — an admission controller would shed traffic at 9am
    /// because of last night's spike. <= 0 disables the reset.
    double idle_reset_us = 30e6;
  };

  struct OpSnapshot {
    Budget budget;
    int64_t requests = 0;  ///< cumulative
    int64_t breaches = 0;  ///< cumulative latency-budget breaches
    int64_t errors = 0;    ///< cumulative failed requests
    double burn_rate = 0.0;
  };

  static SloTracker& Get();

  /// Declares (or replaces) the budget for `op`. Until the first SetBudget
  /// call the tracker is disabled and Record costs one relaxed load.
  void SetBudget(const std::string& op, double latency_budget_us,
                 double target = 0.999, int64_t window = 512,
                 double idle_reset_us = 30e6);

  /// Records one completed request. Ops without a declared budget are
  /// ignored.
  void Record(const std::string& op, double latency_us, bool error = false) {
    if (enabled_.load(std::memory_order_relaxed)) RecordSlow(op, latency_us, error);
  }

  /// Records n completed requests of the same op in one pass: one budget
  /// lookup, one add per cumulative counter, and one burn-rate publish for
  /// the whole batch (the per-request work shrinks to the rolling-ring
  /// update). This is the batch-serving analogue of Record — a micro-batch
  /// of B requests costs O(1) + B ring slots instead of B full Records.
  void RecordMany(const std::string& op, const double* latency_us, int64_t n) {
    if (n > 0 && enabled_.load(std::memory_order_relaxed))
      RecordManySlow(op, latency_us, n);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Live view of one op; requests == 0 when the op has no budget.
  OpSnapshot Snapshot(const std::string& op) const;
  std::vector<std::pair<std::string, OpSnapshot>> SnapshotAll() const;

  /// Drops every budget and counter (test support).
  void ResetForTest();

 private:
  /// Per-op state. Counters/gauges are registry references (cached once);
  /// the rolling window is a ring of outcome flags with a running breach
  /// count, so Record stays O(1).
  struct OpState {
    Budget budget;
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> breaches{0};
    std::atomic<int64_t> errors{0};
    std::vector<std::atomic<uint8_t>> ring;  ///< 1 = burned error budget
    std::atomic<int64_t> ring_pos{0};
    std::atomic<int64_t> ring_burned{0};
    /// Samples currently in the ring (saturates at ring.size()); the burn
    /// rate denominator. Reset together with the ring after an idle gap so
    /// the rate rebuilds from fresh samples instead of diluting stale ones.
    std::atomic<int64_t> ring_filled{0};
    std::atomic<int64_t> last_record_ns{0};  ///< steady-clock ns of last sample
    Counter* requests_metric = nullptr;
    Counter* breaches_metric = nullptr;
    Counter* errors_metric = nullptr;
    Gauge* burn_rate_metric = nullptr;

    explicit OpState(const std::string& op, Budget b);
    double BurnRate() const;
    /// Resets the rolling window if more than idle_reset_us elapsed since the
    /// last sample; called at the top of every Record path. Racing recorders
    /// may interleave with the reset — at worst a handful of fresh samples
    /// are dropped from the window, which is fine for monitoring.
    void MaybeIdleReset(int64_t now_ns);
  };

  SloTracker() = default;
  void RecordSlow(const std::string& op, double latency_us, bool error);
  void RecordManySlow(const std::string& op, const double* latency_us,
                      int64_t n);

  std::atomic<bool> enabled_{false};
  mutable std::shared_mutex mutex_;  ///< guards ops_ map shape
  std::unordered_map<std::string, std::unique_ptr<OpState>> ops_;
};

}  // namespace ses::obs

#endif  // SES_OBS_SLO_H_
