#include "obs/health.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace ses::obs {

namespace {

struct HealthRegistry {
  std::mutex mutex;
  std::map<std::string, HealthProvider> providers;
};

HealthRegistry& Registry() {
  static HealthRegistry* registry = new HealthRegistry();
  return *registry;
}

}  // namespace

void RegisterHealthProvider(const std::string& name, HealthProvider provider) {
  HealthRegistry& registry = Registry();
  std::lock_guard lock(registry.mutex);
  registry.providers[name] = std::move(provider);
}

void UnregisterHealthProvider(const std::string& name) {
  HealthRegistry& registry = Registry();
  std::lock_guard lock(registry.mutex);
  registry.providers.erase(name);
}

std::vector<std::pair<std::string, std::string>> CollectHealthComponents() {
  // Copy-then-serialize contract: the snapshot is built ENTIRELY under the
  // registry lock — each name and each provider result is deep-copied into
  // `out` before the lock drops — and callers serialize from the copies.
  // Two consequences:
  //   1. UnregisterHealthProvider is a barrier — once it returns, the
  //      provider can no longer be running, so its owner is free to destroy
  //      itself; and
  //   2. a component unregistering while a /healthz scrape is still
  //      rendering cannot race the scrape, because nothing in the returned
  //      snapshot aliases registry (or provider-owned) memory.
  // The cost is a rule for providers: they must not (un)register providers
  // and must not block on anything that itself waits on a /healthz scrape.
  HealthRegistry& registry = Registry();
  std::vector<std::pair<std::string, std::string>> out;
  {
    std::lock_guard lock(registry.mutex);
    out.reserve(registry.providers.size());
    for (const auto& [name, provider] : registry.providers)
      out.emplace_back(name, provider());  // both strings copied here
  }
  return out;
}

}  // namespace ses::obs
