#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <mutex>

#include "obs/request.h"
#include "util/logging.h"

namespace ses::obs {

namespace {

/// CAS-loop add for the histogram running sum (no atomic<double>::fetch_add
/// before C++20 on all toolchains; the loop is equivalent).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Registry keys may carry canonical label suffixes (`name{k="v"}`) whose
/// quotes and backslashes must be escaped inside JSON strings.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)),
      counts_(edges_.size() + 1),
      exemplars_(edges_.size() + 1) {
  SES_CHECK(std::is_sorted(edges_.begin(), edges_.end()));
}

size_t Histogram::BucketIndex(double v) const {
  return static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
}

void Histogram::RecordExemplar(size_t bucket, double v, uint64_t trace_id) {
  ExemplarSlot& slot = exemplars_[bucket];
  uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  // Odd seq = another writer mid-update. Drop this exemplar instead of
  // spinning: the reservoir is last-write-wins and lossy by design.
  if (seq & 1u) return;
  if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed))
    return;
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.value.store(v, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

bool Histogram::ReadExemplar(size_t i, Exemplar* out) const {
  const ExemplarSlot& slot = exemplars_[i];
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint32_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0) return false;  // never written
    if (before & 1u) continue;      // writer mid-update; retry
    const uint64_t trace_id = slot.trace_id.load(std::memory_order_relaxed);
    const double value = slot.value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    if (trace_id == 0) return false;
    out->trace_id = trace_id;
    out->value = value;
    return true;
  }
  return false;  // persistently contended; exemplars are advisory
}

void Histogram::Observe(double v) { Observe(v, CurrentTraceId()); }

void Histogram::Observe(double v, uint64_t trace_id) {
  const size_t bucket = BucketIndex(v);
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  if (trace_id != 0) RecordExemplar(bucket, v, trace_id);
}

void Histogram::ObserveMany(const double* values, int64_t n) {
  ObserveMany(values, /*trace_ids=*/nullptr, n);
}

void Histogram::ObserveMany(const double* values, const uint64_t* trace_ids,
                            int64_t n) {
  if (n <= 0) return;
  constexpr size_t kMaxStackBuckets = 64;
  const size_t buckets = counts_.size();
  if (buckets > kMaxStackBuckets) {  // unusual edge count: plain loop
    for (int64_t i = 0; i < n; ++i)
      Observe(values[i], trace_ids == nullptr ? 0 : trace_ids[i]);
    return;
  }
  int64_t local[kMaxStackBuckets] = {};
  // Last traced (value, id) seen per bucket this batch; flushed once at the
  // end so a batch of B observations costs at most O(distinct buckets)
  // exemplar publishes, matching the count flush.
  double last_value[kMaxStackBuckets];
  uint64_t last_id[kMaxStackBuckets] = {};
  double sum = 0.0;
  // Batched observations cluster (e.g. queue waits of one micro-batch), so
  // re-testing the previous value's bucket usually beats re-running the
  // binary search's data-dependent branches.
  const size_t num_edges = edges_.size();
  size_t last = 0;
  bool have_last = false;
  for (int64_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (!(have_last && (last == 0 || edges_[last - 1] < v) &&
          (last == num_edges || v <= edges_[last]))) {
      last = static_cast<size_t>(
          std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
      have_last = true;
    }
    ++local[last];
    sum += v;
    if (trace_ids != nullptr && trace_ids[i] != 0) {
      last_value[last] = v;
      last_id[last] = trace_ids[i];
    }
  }
  for (size_t b = 0; b < buckets; ++b) {
    if (local[b] != 0)
      counts_[b].fetch_add(local[b], std::memory_order_relaxed);
    if (last_id[b] != 0) RecordExemplar(b, last_value[b], last_id[b]);
  }
  count_.fetch_add(n, std::memory_order_relaxed);
  AtomicAdd(&sum_, sum);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const int64_t total = Count();
  if (total == 0) return 0.0;
  // The rank of the target observation (1-based), then a walk to the bucket
  // holding it. Bucket counts are re-read once each; a concurrent Observe can
  // make the walk see slightly more than `total`, which only shifts the
  // estimate within a bucket.
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const double in_bucket = static_cast<double>(BucketCount(i));
    if (cumulative + in_bucket >= rank && in_bucket > 0) {
      const double lower = i == 0 ? std::min(0.0, edges_[0]) : edges_[i - 1];
      const double fraction = (rank - cumulative) / in_bucket;
      return lower + fraction * (edges_[i] - lower);
    }
    cumulative += in_bucket;
  }
  // Overflow bucket: no finite upper bound, saturate at the last edge.
  return edges_.empty() ? 0.0 : edges_.back();
}

std::vector<double> Histogram::ExponentialEdges(double start, double factor,
                                                int count) {
  SES_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

const std::vector<double>& Histogram::DefaultLatencyEdgesUs() {
  static const std::vector<double>* edges =
      new std::vector<double>(ExponentialEdges(0.1, 2.0, 30));
  return *edges;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::LabeledName(const std::string& name,
                                         const LabelSet& labels) {
  if (labels.empty()) return name;
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    for (const char c : sorted[i].second) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::unique_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  return GetCounter(LabeledName(name, labels));
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  return GetGauge(LabeledName(name, labels));
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> edges) {
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(edges));
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         std::vector<double> edges) {
  return GetHistogram(LabeledName(name, labels), std::move(edges));
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  out << "kind,name,field,value\n";
  for (const auto& name : SortedKeys(counters_))
    out << "counter," << name << ",value," << counters_.at(name)->Value()
        << "\n";
  for (const auto& name : SortedKeys(gauges_))
    out << "gauge," << name << ",value," << gauges_.at(name)->Value() << "\n";
  for (const auto& name : SortedKeys(histograms_)) {
    const Histogram& h = *histograms_.at(name);
    out << "histogram," << name << ",count," << h.Count() << "\n";
    out << "histogram," << name << ",sum," << h.Sum() << "\n";
    for (size_t i = 0; i < h.edges().size(); ++i)
      out << "histogram," << name << ",le_" << h.edges()[i] << ","
          << h.BucketCount(i) << "\n";
    out << "histogram," << name << ",le_inf,"
        << h.BucketCount(h.edges().size()) << "\n";
  }
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  for (const auto& name : SortedKeys(counters_))
    out << "{\"kind\":\"counter\",\"name\":\"" << JsonEscape(name)
        << "\",\"value\":" << counters_.at(name)->Value() << "}\n";
  for (const auto& name : SortedKeys(gauges_))
    out << "{\"kind\":\"gauge\",\"name\":\"" << JsonEscape(name)
        << "\",\"value\":" << gauges_.at(name)->Value() << "}\n";
  for (const auto& name : SortedKeys(histograms_)) {
    const Histogram& h = *histograms_.at(name);
    out << "{\"kind\":\"histogram\",\"name\":\"" << JsonEscape(name)
        << "\",\"count\":" << h.Count() << ",\"sum\":" << h.Sum()
        << ",\"edges\":[";
    for (size_t i = 0; i < h.edges().size(); ++i)
      out << (i ? "," : "") << h.edges()[i];
    out << "],\"buckets\":[";
    for (size_t i = 0; i <= h.edges().size(); ++i)
      out << (i ? "," : "") << h.BucketCount(i);
    out << "]}\n";
  }
}

bool MetricsRegistry::WriteSnapshot(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    SES_LOG_ERROR << "cannot open metrics output file " << path;
    return false;
  }
  const auto has_suffix = [&path](const std::string& suffix) {
    return path.size() >= suffix.size() &&
           path.rfind(suffix) == path.size() - suffix.size();
  };
  if (has_suffix(".jsonl") || has_suffix(".json"))
    WriteJsonl(out);
  else if (has_suffix(".prom"))
    WritePrometheus(out);
  else
    WriteCsv(out);
  return true;
}

void MetricsRegistry::ResetForTest() {
  std::unique_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace ses::obs
