#include "obs/metrics.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"

namespace ses::obs {

namespace {

/// CAS-loop add for the histogram running sum (no atomic<double>::fetch_add
/// before C++20 on all toolchains; the loop is equivalent).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1) {
  SES_CHECK(std::is_sorted(edges_.begin(), edges_.end()));
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  counts_[static_cast<size_t>(it - edges_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(edges));
  return *slot;
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "kind,name,field,value\n";
  for (const auto& name : SortedKeys(counters_))
    out << "counter," << name << ",value," << counters_.at(name)->Value()
        << "\n";
  for (const auto& name : SortedKeys(gauges_))
    out << "gauge," << name << ",value," << gauges_.at(name)->Value() << "\n";
  for (const auto& name : SortedKeys(histograms_)) {
    const Histogram& h = *histograms_.at(name);
    out << "histogram," << name << ",count," << h.Count() << "\n";
    out << "histogram," << name << ",sum," << h.Sum() << "\n";
    for (size_t i = 0; i < h.edges().size(); ++i)
      out << "histogram," << name << ",le_" << h.edges()[i] << ","
          << h.BucketCount(i) << "\n";
    out << "histogram," << name << ",le_inf,"
        << h.BucketCount(h.edges().size()) << "\n";
  }
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& name : SortedKeys(counters_))
    out << "{\"kind\":\"counter\",\"name\":\"" << name
        << "\",\"value\":" << counters_.at(name)->Value() << "}\n";
  for (const auto& name : SortedKeys(gauges_))
    out << "{\"kind\":\"gauge\",\"name\":\"" << name
        << "\",\"value\":" << gauges_.at(name)->Value() << "}\n";
  for (const auto& name : SortedKeys(histograms_)) {
    const Histogram& h = *histograms_.at(name);
    out << "{\"kind\":\"histogram\",\"name\":\"" << name
        << "\",\"count\":" << h.Count() << ",\"sum\":" << h.Sum()
        << ",\"edges\":[";
    for (size_t i = 0; i < h.edges().size(); ++i)
      out << (i ? "," : "") << h.edges()[i];
    out << "],\"buckets\":[";
    for (size_t i = 0; i <= h.edges().size(); ++i)
      out << (i ? "," : "") << h.BucketCount(i);
    out << "]}\n";
  }
}

bool MetricsRegistry::WriteSnapshot(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    SES_LOG_ERROR << "cannot open metrics output file " << path;
    return false;
  }
  const bool jsonl = path.size() >= 5 && (path.rfind(".jsonl") ==
                                              path.size() - 6 ||
                                          path.rfind(".json") == path.size() - 5);
  if (jsonl)
    WriteJsonl(out);
  else
    WriteCsv(out);
  return true;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace ses::obs
