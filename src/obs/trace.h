#ifndef SES_OBS_TRACE_H_
#define SES_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ses::obs {

namespace internal {
/// Global tracing switch. Read inline on every span construction so the
/// disabled path is a single relaxed load + branch (no allocation, no call).
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// One completed span. `label` must be a pointer with static storage duration
/// (string literals); spans never copy the text.
struct TraceEvent {
  const char* label = nullptr;
  uint64_t start_ns = 0;  ///< relative to the process trace epoch
  uint64_t dur_ns = 0;
  /// Request trace-id active on the thread when the span opened (see
  /// obs/request.h); 0 outside any request.
  uint64_t trace_id = 0;
  uint32_t tid = 0;   ///< small sequential thread id (util::ThreadId)
  uint16_t depth = 0; ///< nesting depth at the time the span was open

  /// Kernel spans (recorded by obs::KernelScope) additionally carry the
  /// caller-declared work estimate and this span's inclusive hardware-counter
  /// deltas; the Chrome-trace exporter emits them as span args. flops stays
  /// negative on plain spans.
  const char* variant = nullptr;
  double flops = -1.0;
  double bytes = 0.0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_refs = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  bool counters_valid = false;  ///< false on the clock-only perf fallback

  bool IsKernel() const { return flops >= 0.0; }
};

/// Aggregated statistics for one span label (merged by string content across
/// threads and translation units).
struct LabelStats {
  std::string label;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;

  double MeanNs() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / count;
  }
  double TotalMillis() const { return static_cast<double>(total_ns) / 1e6; }
};

/// Turns span recording on/off at runtime. Default: off.
void EnableTracing(bool on);
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Discards every recorded event. Only call at a quiescent point (no spans
/// open on any thread); intended for tests and between bench repetitions.
void ResetTracing();

/// RAII span. Construction is a no-op (not even a clock read) while tracing
/// is disabled; when enabled, completion appends one TraceEvent to a
/// thread-local lock-free buffer.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* label) {
    if (internal::g_tracing_enabled.load(std::memory_order_relaxed))
      Begin(label);
  }
  ~ScopedSpan() {
    if (label_ != nullptr) End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* label);  // out of line: only runs when enabled
  void End();

  const char* label_ = nullptr;  ///< null => tracing was off at entry
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;  ///< request id captured at Begin
};

/// Merged copy of every completed span across all threads, in no particular
/// global order (per-thread order is preserved). Safe to call while other
/// threads keep recording: it reads each buffer up to its published size.
std::vector<TraceEvent> SnapshotEvents();

/// Per-label aggregates computed from the current snapshot, sorted by
/// descending total time.
std::vector<LabelStats> AggregateSpanStats();

/// Current nesting depth of the calling thread (test support).
int CurrentSpanDepth();

/// Records an already-measured span — start/duration computed by the caller
/// on the trace-epoch timebase (internal::TraceNowNs) — onto the calling
/// thread's buffer. Used for retroactive attribution: the batch scheduler
/// stamps critical-path stage timestamps as a request flows through and
/// emits them as spans only at resolve time, when the request's full story
/// is known. No-op while tracing is disabled. `label` must have static
/// storage duration.
void RecordManualSpan(const char* label, uint64_t start_ns, uint64_t dur_ns,
                      uint64_t trace_id);

namespace internal {
/// KernelScope support (perfcount.cc): a raw span frame on the calling
/// thread's buffer. Push bumps the nesting depth and returns the request
/// trace-id captured at open; Pop fills tid/depth/trace_id into `ev` and
/// records it. Must be strictly paired per thread.
uint64_t PushSpanFrame();
void PopSpanFrameAndRecord(uint64_t trace_id, TraceEvent* ev);
/// Nanoseconds since the process trace epoch (the timebase of every
/// TraceEvent.start_ns).
uint64_t TraceNowNs();
/// Converts an already-taken steady_clock reading to the trace-epoch
/// timebase without a second clock read — for hot paths (RequestScope's
/// destructor) that have just measured their own latency.
uint64_t TraceNsFromSteady(std::chrono::steady_clock::time_point tp);
}  // namespace internal

}  // namespace ses::obs

#define SES_OBS_CONCAT_INNER(a, b) a##b
#define SES_OBS_CONCAT(a, b) SES_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
/// `label` must be a string literal (or otherwise outlive the program).
#define SES_TRACE_SPAN(label) \
  ::ses::obs::ScopedSpan SES_OBS_CONCAT(ses_span_, __LINE__)(label)

#endif  // SES_OBS_TRACE_H_
