#ifndef SES_OBS_OBS_H_
#define SES_OBS_OBS_H_

/// ses_obs — the observability layer.
///
/// One include gives the whole surface:
///  - SES_TRACE_SPAN(label): RAII hierarchical spans (trace.h), near-zero
///    overhead while tracing is disabled (the default);
///  - WriteChromeTrace(path): chrome://tracing export (chrome_trace.h);
///  - MetricsRegistry: named counters / gauges / histograms, optionally
///    labeled, with CSV / JSONL / Prometheus snapshots (metrics.h);
///  - MetricsServer: embedded HTTP endpoint serving /metrics (Prometheus
///    exposition), /healthz and /spans for live scraping (metrics_server.h);
///  - RequestScope / AccessLog: request-scoped trace-ids propagated into
///    spans, one JSONL access-log line per request (request.h);
///  - SloTracker: per-op latency budgets, breach counters and rolling
///    burn rates exported as ses.slo.* (slo.h);
///  - ModelHealthMonitor: per-epoch gradient norms, update ratios, dead-unit
///    fractions and attention entropy as ses.health.* (model_health.h);
///  - Telemetry: per-epoch training records to JSONL or a callback
///    (telemetry.h);
///  - FlushObservability / InstallCrashHandlers: artifacts survive crashes
///    and fault-injection kills (crash_flush.h);
///  - KernelScope / perf counters: per-kernel GFLOP/s, IPC and cache
///    behaviour as ses.kernel.*, hardware counters with clock-only fallback
///    (perfcount.h);
///  - CalibrateRoofline / PlaceOnRoofline: measured machine ceilings and
///    per-kernel roofline efficiency (roofline.h);
///  - WriteFoldedStacks: flamegraph export of the span buffers
///    (flamegraph.h);
///  - FlightRecorder: top-K slowest fully-attributed requests per rolling
///    window, served at /debug/slowest and auto-dumped on SLO burn
///    (flight_recorder.h);
///  - AnomalyWatch: EWMA z-score detectors with hysteresis over operational
///    series, ses.anomaly.* gauges and a /healthz component (anomaly.h).

#include "obs/anomaly.h"
#include "obs/chrome_trace.h"
#include "obs/crash_flush.h"
#include "obs/flamegraph.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/model_health.h"
#include "obs/perfcount.h"
#include "obs/request.h"
#include "obs/roofline.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

#endif  // SES_OBS_OBS_H_
