#ifndef SES_OBS_OBS_H_
#define SES_OBS_OBS_H_

/// ses_obs — the observability layer.
///
/// One include gives the whole surface:
///  - SES_TRACE_SPAN(label): RAII hierarchical spans (trace.h), near-zero
///    overhead while tracing is disabled (the default);
///  - WriteChromeTrace(path): chrome://tracing export (chrome_trace.h);
///  - MetricsRegistry: named counters / gauges / histograms with CSV and
///    JSONL snapshots (metrics.h);
///  - Telemetry: per-epoch training records to JSONL or a callback
///    (telemetry.h).

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

#endif  // SES_OBS_OBS_H_
