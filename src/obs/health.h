#ifndef SES_OBS_HEALTH_H_
#define SES_OBS_HEALTH_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace ses::obs {

/// Callback returning one health component's state as a JSON object string
/// (e.g. `{"degraded":false,"queue_depth":3}`). Called from the metrics
/// server's serving thread on every /healthz scrape, so it must be cheap and
/// thread-safe.
using HealthProvider = std::function<std::string()>;

/// Registers `provider` under `name` in the process-wide health registry;
/// its JSON appears in /healthz under `"components":{"<name>":...}`.
/// Re-registering a name replaces the previous provider.
void RegisterHealthProvider(const std::string& name, HealthProvider provider);

/// Removes a provider. Acts as a barrier: once this returns, the provider is
/// guaranteed not to be mid-invocation, so components MUST unregister before
/// their owner dies and may then destroy captured state safely.
void UnregisterHealthProvider(const std::string& name);

/// Snapshot of every registered component: (name, JSON) pairs sorted by
/// name. Each provider is invoked at call time.
std::vector<std::pair<std::string, std::string>> CollectHealthComponents();

}  // namespace ses::obs

#endif  // SES_OBS_HEALTH_H_
