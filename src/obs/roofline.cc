#include "obs/roofline.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ses::obs {

namespace {

std::mutex g_roofline_mutex;
RooflineModel g_roofline;  // guarded by g_roofline_mutex

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Keeps the compiler from proving a benchmark loop dead.
inline void DoNotOptimize(void* p) { asm volatile("" : : "g"(p) : "memory"); }

/// Peak FLOP/s: y[i] = y[i] * a + b over an L1-resident buffer. Eight
/// independent streams per iteration give the superscalar core enough ILP
/// that the measured rate tracks the FMA ceiling (autovectorized by -O3);
/// 2 FLOPs per element per pass.
double MeasurePeakGflops(double seconds_budget) {
  constexpr int64_t kN = 4096;  // 16 KiB of floats — resident in any L1
  std::vector<float> y(kN, 1.0f);
  const float a = 1.0000001f, b = 1e-9f;
  float* py = y.data();
  const auto pass = [&] {
    for (int64_t i = 0; i < kN; ++i) py[i] = py[i] * a + b;
    DoNotOptimize(py);
  };
  // Warm up, then scale the repetition count to the budget.
  for (int r = 0; r < 64; ++r) pass();
  int64_t reps = 1024;
  double elapsed = 0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    const double t0 = NowSeconds();
    for (int64_t r = 0; r < reps; ++r) pass();
    elapsed = NowSeconds() - t0;
    if (elapsed >= seconds_budget) break;
    reps *= 2;
  }
  if (elapsed <= 0) return 0;
  const double flops = 2.0 * static_cast<double>(kN) * static_cast<double>(reps);
  return flops / elapsed / 1e9;
}

/// Peak DRAM bandwidth: triad a[i] = b[i] + s*c[i] over three buffers whose
/// working set dwarfs any LLC, counting 12 bytes of traffic per element
/// (read b, read c, write a; write-allocate traffic is intentionally not
/// billed — this is the optimistic streaming ceiling).
double MeasurePeakBandwidthGbs(double seconds_budget) {
  constexpr int64_t kN = 16 * 1024 * 1024;  // 3 buffers x 64 MiB
  std::vector<float> a(kN), b(kN, 1.5f), c(kN, 2.5f);
  const float s = 3.0f;
  float *pa = a.data(), *pb = b.data(), *pc = c.data();
  const auto pass = [&] {
    for (int64_t i = 0; i < kN; ++i) pa[i] = pb[i] + s * pc[i];
    DoNotOptimize(pa);
  };
  pass();  // touch every page before timing
  int64_t reps = 0;
  const double t0 = NowSeconds();
  double elapsed = 0;
  do {
    pass();
    ++reps;
    elapsed = NowSeconds() - t0;
  } while (elapsed < seconds_budget);
  if (elapsed <= 0) return 0;
  const double bytes = 12.0 * static_cast<double>(kN) * static_cast<double>(reps);
  return bytes / elapsed / 1e9;
}

}  // namespace

RooflineModel CalibrateRoofline(double seconds_budget) {
  if (seconds_budget <= 0) seconds_budget = 0.15;
  RooflineModel model;
  model.peak_gflops = MeasurePeakGflops(seconds_budget);
  model.peak_bw_gbs = MeasurePeakBandwidthGbs(seconds_budget);
  model.calibrated = model.peak_gflops > 0 && model.peak_bw_gbs > 0;
  {
    std::lock_guard<std::mutex> lock(g_roofline_mutex);
    g_roofline = model;
  }
  auto& reg = MetricsRegistry::Get();
  reg.GetGauge("ses.roofline.peak_gflops").Set(model.peak_gflops);
  reg.GetGauge("ses.roofline.peak_bw_gbs").Set(model.peak_bw_gbs);
  SES_LOG_INFO << "roofline calibrated: peak " << model.peak_gflops
               << " GFLOP/s, " << model.peak_bw_gbs << " GB/s (ridge at "
               << model.RidgeIntensity() << " FLOPs/byte)";
  return model;
}

RooflineModel CurrentRoofline() {
  std::lock_guard<std::mutex> lock(g_roofline_mutex);
  return g_roofline;
}

void SetRooflineForTest(const RooflineModel& model) {
  std::lock_guard<std::mutex> lock(g_roofline_mutex);
  g_roofline = model;
}

RooflinePoint PlaceOnRoofline(double flops, double bytes, double seconds,
                              const RooflineModel& model) {
  RooflinePoint p;
  if (seconds <= 0 || flops < 0) return p;
  p.achieved_gflops = flops / seconds / 1e9;
  if (bytes <= 0 || !model.calibrated) return p;
  p.intensity = flops / bytes;
  const double memory_ceiling = p.intensity * model.peak_bw_gbs;
  p.attainable_gflops = std::min(model.peak_gflops, memory_ceiling);
  p.bound = memory_ceiling < model.peak_gflops ? "memory" : "compute";
  if (p.attainable_gflops > 0)
    p.efficiency = p.achieved_gflops / p.attainable_gflops;
  return p;
}

}  // namespace ses::obs
