#include "obs/crash_flush.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <string>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"

namespace ses::obs {

namespace {

std::mutex g_artifacts_mutex;
std::string g_trace_path;    // NOLINT: intentionally leaked process state
std::string g_metrics_path;  // NOLINT
std::atomic<bool> g_flushed{false};
std::atomic<bool> g_handlers_installed{false};

void FatalSignalHandler(int signum) {
  FlushObservability();
  // Restore the default disposition and re-raise, so the process still dies
  // with the original signal (core dumps, wait-status, CI assertions intact).
  std::signal(signum, SIG_DFL);
  std::raise(signum);
}

}  // namespace

void SetCrashArtifacts(const std::string& trace_path,
                       const std::string& metrics_path) {
  std::lock_guard<std::mutex> lock(g_artifacts_mutex);
  g_trace_path = trace_path;
  g_metrics_path = metrics_path;
  // New artifacts re-arm the flush: a run can register, finish, clear, and a
  // later run in the same process still gets its own crash coverage.
  g_flushed.store(false, std::memory_order_relaxed);
}

void FlushObservability() {
  if (g_flushed.exchange(true, std::memory_order_relaxed)) return;
  std::string trace_path, metrics_path;
  {
    std::lock_guard<std::mutex> lock(g_artifacts_mutex);
    trace_path = g_trace_path;
    metrics_path = g_metrics_path;
  }
  if (!trace_path.empty() && TracingEnabled()) WriteChromeTrace(trace_path);
  if (!metrics_path.empty()) MetricsRegistry::Get().WriteSnapshot(metrics_path);
  AccessLog::Get().Flush();
}

void InstallCrashHandlers() {
  if (g_handlers_installed.exchange(true, std::memory_order_relaxed)) return;
  std::atexit(FlushObservability);
  for (const int signum :
       {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, SIGTERM})
    std::signal(signum, FatalSignalHandler);
}

void ResetFlushForTest() { g_flushed.store(false, std::memory_order_relaxed); }

}  // namespace ses::obs
