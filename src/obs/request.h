#ifndef SES_OBS_REQUEST_H_
#define SES_OBS_REQUEST_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/trace.h"

namespace ses::obs {

namespace internal {
extern thread_local uint64_t t_current_trace_id;
}  // namespace internal

/// Trace-id of the request active on the calling thread; 0 outside any
/// request. Span recording reads this at open time, so every span that runs
/// inside a RequestScope carries the request's id into the Chrome trace.
inline uint64_t CurrentTraceId() { return internal::t_current_trace_id; }

/// One completed request, as the access log records it. `reason` is always
/// serialized: an empty reason becomes "ok" on success and "error" on error,
/// so downstream joins (jq, the CI forensics stage) never hit a missing key.
struct AccessEntry {
  uint64_t trace_id = 0;
  const char* op = "";       ///< static-storage op name ("infer.predict", ...)
  double latency_us = 0.0;
  bool cache_hit = false;
  bool error = false;
  const char* reason = "";   ///< static-storage error/shed reason ("" = none)
  uint64_t digest = 0;       ///< FNV-1a digest of the result (0 = unset)

  /// Critical-path stage offsets from submit, microseconds, monotonically
  /// non-decreasing (see DESIGN.md §15). Only scheduler-completed requests
  /// carry them; `has_stages` gates serialization.
  bool has_stages = false;
  double admit_us = 0.0;
  double seal_us = 0.0;
  double forward_start_us = 0.0;
  double forward_end_us = 0.0;
  double resolve_us = 0.0;
};

/// Process-wide JSONL access log: one line per completed request. Disabled
/// by default — Record is a relaxed atomic load until Open installs a sink.
class AccessLog {
 public:
  static AccessLog& Get();

  /// Opens (truncates) `path` as the log sink. Returns false and logs on
  /// failure.
  bool Open(const std::string& path);
  /// Flushes and removes the sink.
  void Close();
  /// Flushes buffered lines to disk (crash-path support; cheap when closed).
  void Flush();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  void Record(const AccessEntry& entry) {
    if (active()) RecordSlow(entry);
  }

  /// Lines written since Open (test support).
  int64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

  /// Serializes one entry as a single-line JSON object (exposed for tests).
  static std::string EntryToJson(const AccessEntry& entry);

 private:
  AccessLog() = default;
  void RecordSlow(const AccessEntry& entry);

  std::atomic<bool> active_{false};
  std::atomic<int64_t> lines_{0};
  std::mutex mutex_;  ///< guards sink_
  std::shared_ptr<std::ostream> sink_;
};

/// 64-bit FNV-1a, the digest the access log uses to fingerprint results.
inline uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}
inline uint64_t Fnv1aBegin() { return 0xcbf29ce484222325ull; }

/// RAII request context. The outermost scope on a thread allocates a fresh
/// monotonic trace-id, publishes it thread-locally (so spans and nested
/// scopes inherit it), opens one span named after the op, and on destruction
/// emits one access-log entry plus one SloTracker observation. Nested scopes
/// reuse the enclosing id and stay silent — one request, one log line.
///
/// Latency is only measured (two clock reads) while something consumes it —
/// an SLO budget or an open access log; with both off a scope costs a TLS
/// id bump and a few relaxed loads, keeping the warm predict path fast.
class RequestScope {
 public:
  explicit RequestScope(const char* op);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  uint64_t trace_id() const { return trace_id_; }
  /// True for the outermost scope — the one that owns logging.
  bool owner() const { return owner_; }

  void NoteCacheHit(bool hit) { cache_hit_ = hit; }
  void NoteError() { error_ = true; }
  void SetDigest(uint64_t digest) { digest_ = digest; }

 private:
  static uint64_t Acquire(uint64_t* prev, bool* owner);

  const char* op_;
  uint64_t prev_id_ = 0;
  bool owner_ = false;
  bool measured_ = false;  ///< clock reads on: SLO budget or access log live
  uint64_t trace_id_;  ///< initialized via Acquire, before span_
  ScopedSpan span_;    ///< opens after the id is published
  std::chrono::steady_clock::time_point start_;
  bool cache_hit_ = false;
  bool error_ = false;
  uint64_t digest_ = 0;
};

/// Total requests started (test support; also the source of trace-ids).
uint64_t RequestsStarted();

/// Draws a fresh trace-id from the same monotonic source RequestScope uses,
/// WITHOUT publishing it on the calling thread. For producers that hand work
/// to another thread (the batch scheduler): allocate at enqueue, carry the id
/// with the request, and adopt it on the worker with ScopedTraceId so the
/// worker's spans join the same request.
uint64_t AllocateTraceId();

/// RAII adoption of an existing trace-id on the current thread. Spans opened
/// (and RequestScopes entered) inside the scope inherit `trace_id` exactly as
/// if the request had originated here; the previous id is restored on exit.
/// Adopting 0 is a no-op scope (useful when the producer had no id).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t trace_id)
      : prev_(internal::t_current_trace_id) {
    if (trace_id != 0) internal::t_current_trace_id = trace_id;
  }
  ~ScopedTraceId() { internal::t_current_trace_id = prev_; }
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace ses::obs

#endif  // SES_OBS_REQUEST_H_
