#ifndef SES_OBS_FLAMEGRAPH_H_
#define SES_OBS_FLAMEGRAPH_H_

#include <ostream>
#include <string>

namespace ses::obs {

/// Serializes the recorded span buffers as folded stacks — the input format
/// of flamegraph.pl / speedscope / inferno:
///
///   root;child;leaf 12345
///
/// one line per unique stack, weighted by SELF time in nanoseconds (a
/// frame's duration minus its direct children's durations), aggregated
/// across threads. Span nesting is reconstructed from start/duration
/// containment per thread, so the export works on any snapshot of the
/// existing buffers — no extra recording mode. Kernel spans recorded by
/// KernelScope appear as `kernel:variant` frames.
///
/// Render with e.g.:  flamegraph.pl --countname ns ses.folded > ses.svg
void WriteFoldedStacks(std::ostream& out);

/// File convenience wrapper; returns false (and logs) on open failure.
bool WriteFoldedStacks(const std::string& path);

}  // namespace ses::obs

#endif  // SES_OBS_FLAMEGRAPH_H_
