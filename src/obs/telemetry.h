#ifndef SES_OBS_TELEMETRY_H_
#define SES_OBS_TELEMETRY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ses::obs {

/// One training-progress record, emitted once per epoch by instrumented
/// trainers (SesModel::Fit phases 1 and 2).
struct EpochRecord {
  std::string model;     ///< e.g. "SES (GCN)"
  std::string phase;     ///< "phase1" / "phase2"
  int64_t epoch = 0;
  double loss = 0.0;
  double grad_norm = -1.0;      ///< global L2 norm of parameter grads; -1 if unset
  double epoch_seconds = 0.0;   ///< wall-time of this epoch
  double val_metric = -1.0;     ///< validation accuracy/loss; -1 if unset
  /// Robustness counters (cumulative process-wide values at emit time,
  /// mirrored from the ses.train.* / ses.ckpt.* metrics).
  int64_t nan_skips = 0;   ///< optimizer steps skipped on NaN/Inf
  int64_t rollbacks = 0;   ///< rollbacks to the last good checkpoint
  int64_t ckpt_writes = 0; ///< checkpoints written
  /// Serving/allocator counters (cumulative, mirrored from the ses.pool.* /
  /// ses.infer.* metrics).
  int64_t pool_hits = 0;         ///< workspace-pool buffer reuses
  int64_t pool_misses = 0;       ///< workspace-pool allocator fallbacks
  int64_t infer_cache_hits = 0;  ///< InferenceSession logits-memo hits
  /// Model-health fields (from ModelHealthMonitor; empty / -1 when the
  /// monitor is disabled).
  std::vector<std::pair<std::string, double>> layer_grad_norms;
  std::vector<std::pair<std::string, double>> update_ratios;
  double dead_fraction = -1.0;  ///< mean fraction of dead hidden units
  double attn_entropy = -1.0;   ///< mean normalized GAT attention entropy
};

using EpochCallback = std::function<void(const EpochRecord&)>;

/// Pluggable per-epoch telemetry sink. Disabled by default: `Emit` is a
/// single relaxed atomic load when nothing is installed, so instrumented
/// training loops cost nothing in normal runs.
class Telemetry {
 public:
  static Telemetry& Get();

  /// Installs a callback invoked on every Emit (replaces any previous sink).
  void SetCallback(EpochCallback cb);

  /// Installs a callback that appends one JSON object per record to `path`.
  /// Returns false (and logs) if the file cannot be opened.
  bool OpenJsonl(const std::string& path);

  /// Removes the installed sink (flushes/closes a JSONL file sink).
  void Close();

  bool active() const { return active_.load(std::memory_order_relaxed); }

  void Emit(const EpochRecord& record) {
    if (active()) EmitSlow(record);
  }

 private:
  Telemetry() = default;
  void EmitSlow(const EpochRecord& record);

  std::atomic<bool> active_{false};
  std::mutex mutex_;  ///< guards callback_ and serializes emissions
  EpochCallback callback_;
};

/// Serializes a record as a single-line JSON object (exposed for tests).
std::string EpochRecordToJson(const EpochRecord& record);

}  // namespace ses::obs

#endif  // SES_OBS_TELEMETRY_H_
