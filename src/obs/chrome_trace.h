#ifndef SES_OBS_CHROME_TRACE_H_
#define SES_OBS_CHROME_TRACE_H_

#include <ostream>
#include <string>

namespace ses::obs {

/// Serializes every recorded span as Chrome trace-event JSON ("X" complete
/// events, microsecond timestamps). The output loads directly in
/// chrome://tracing or https://ui.perfetto.dev.
void WriteChromeTrace(std::ostream& out);

/// File convenience wrapper; returns false (and logs) if the file cannot be
/// opened.
bool WriteChromeTrace(const std::string& path);

}  // namespace ses::obs

#endif  // SES_OBS_CHROME_TRACE_H_
