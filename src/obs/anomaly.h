#ifndef SES_OBS_ANOMALY_H_
#define SES_OBS_ANOMALY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace ses::obs {

class Counter;
class Gauge;

/// Detector tuning. The defaults favor quiet alarms: a series must sit four
/// sigma off its EWMA baseline for three consecutive samples to raise, and
/// return within two sigma for eight consecutive samples to clear.
struct AnomalyOptions {
  double alpha = 0.05;          ///< EWMA smoothing factor for mean/variance
  double z_enter = 4.0;         ///< |z| at or above which samples count toward raising
  double z_exit = 2.0;          ///< |z| at or below which samples count toward clearing
  int64_t enter_consecutive = 3;
  int64_t exit_consecutive = 8;
  int64_t warmup = 32;          ///< samples before z is judged at all
  double min_sigma = 1e-9;      ///< variance floor (constant series never alarm on noise)
};

/// EWMA mean/variance z-score detector with enter/exit hysteresis.
///
/// Per sample x: z = (x − mean) / sigma is computed against the *prior*
/// baseline, then the baseline absorbs x:
///   d     = x − mean
///   mean += alpha · d
///   var   = (1 − alpha) · (var + alpha · d²)
/// The alarm raises after `enter_consecutive` samples with |z| >= z_enter and
/// clears after `exit_consecutive` samples with |z| <= z_exit. The baseline
/// keeps adapting while active, so an alarm self-clears either when the
/// series returns to normal or when the EWMA has absorbed a durable level
/// shift — it cannot latch forever.
class EwmaDetector {
 public:
  explicit EwmaDetector(AnomalyOptions opts = {}) : opts_(opts) {}

  /// Feeds one sample; returns the post-sample active state.
  bool Observe(double x);

  double z() const { return z_; }
  double mean() const { return mean_; }
  double sigma() const;
  bool active() const { return active_; }
  int64_t trips() const { return trips_; }
  int64_t samples() const { return samples_; }

 private:
  AnomalyOptions opts_;
  double mean_ = 0.0;
  double var_ = 0.0;
  double z_ = 0.0;
  int64_t samples_ = 0;
  int64_t streak_ = 0;  ///< consecutive enter (inactive) or exit (active) hits
  bool active_ = false;
  int64_t trips_ = 0;
};

/// Process-wide named anomaly detectors over operational series. Each series
/// publishes `ses.anomaly.z{series=...}` and `ses.anomaly.active{series=...}`
/// gauges plus a `ses.anomaly.trips{series=...}` counter, and the watch as a
/// whole registers an "anomaly_watch" component in the /healthz registry with
/// a structured reason per series. Sample() is thread-safe and cheap enough
/// to call once per scheduler batch.
class AnomalyWatch {
 public:
  /// Pull-based series: fills *value and returns true, or returns false to
  /// skip this poll (e.g. no new kernel activity since the last poll).
  using Probe = std::function<bool(double*)>;

  static AnomalyWatch& Get();

  /// Creates the series with explicit options (idempotent; options only
  /// matter on first declaration).
  void Declare(const std::string& series, AnomalyOptions opts = {});

  /// Feeds one sample, lazily declaring the series with default options.
  void Sample(const std::string& series, double value);

  /// Registers a pull-based series sampled on every PollProbes() call.
  void WatchProbe(const std::string& series, Probe probe,
                  AnomalyOptions opts = {});

  /// Samples every probe-backed series (scheduler: once per executed batch).
  void PollProbes();

  struct SeriesState {
    std::string series;
    double last = 0.0;
    double z = 0.0;
    double mean = 0.0;
    double sigma = 0.0;
    bool active = false;
    int64_t trips = 0;
    int64_t samples = 0;
  };
  std::vector<SeriesState> Snapshot() const;

  /// /healthz component body: per-series status with the structured reason
  /// ("z=12.3 vs mean=4.1 sigma=0.2") for every active anomaly.
  std::string HealthJson() const;

  /// Drops all series and unregisters the health component (test support;
  /// call before MetricsRegistry::ResetForTest — series cache metric refs).
  void ResetForTest();

 private:
  AnomalyWatch() = default;

  struct Series;
  Series* GetOrCreate(const std::string& series, const AnomalyOptions& opts);

  mutable std::shared_mutex mutex_;  ///< guards the map shape
  std::map<std::string, std::unique_ptr<Series>> series_;
  bool health_registered_ = false;  ///< guarded by mutex_
};

}  // namespace ses::obs

#endif  // SES_OBS_ANOMALY_H_
