#ifndef SES_OBS_PROMETHEUS_H_
#define SES_OBS_PROMETHEUS_H_

#include <string>

namespace ses::obs {

/// Helpers behind MetricsRegistry::WritePrometheus, exposed for tests.

/// Maps an arbitrary metric or label name onto the Prometheus charset: every
/// character outside [a-zA-Z0-9_:] becomes '_' ("ses.pool.hits" ->
/// "ses_pool_hits"), and a leading digit gains a '_' prefix. Label names
/// additionally may not contain ':'; pass `label = true` for those.
std::string SanitizePrometheusName(const std::string& name, bool label = false);

/// Splits a canonical registry key (`name{k="v",...}` — see
/// MetricsRegistry::LabeledName) into the bare name and the brace-enclosed
/// label body ("" when unlabeled). The label body is returned verbatim,
/// without the braces.
void SplitLabeledName(const std::string& key, std::string* name,
                      std::string* labels);

/// Rewrites the label body of a canonical key so every label *name* is
/// sanitized; values are already escaped by LabeledName and pass through.
std::string SanitizeLabelBody(const std::string& labels);

/// Formats a double the way the exposition format expects: "NaN", "+Inf",
/// "-Inf" for non-finite values, shortest round-trip decimal otherwise.
std::string FormatPrometheusValue(double v);

}  // namespace ses::obs

#endif  // SES_OBS_PROMETHEUS_H_
