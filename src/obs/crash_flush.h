#ifndef SES_OBS_CRASH_FLUSH_H_
#define SES_OBS_CRASH_FLUSH_H_

#include <string>

namespace ses::obs {

/// Registers the artifacts FlushObservability writes: the Chrome-trace and
/// metrics-snapshot paths a run intends to produce at clean exit. Empty
/// strings clear a registration. Thread-safe.
void SetCrashArtifacts(const std::string& trace_path,
                       const std::string& metrics_path);

/// Writes every registered artifact plus any open access-log/telemetry sink.
/// Idempotent: the second and later calls are no-ops, so a normal-exit flush
/// followed by an atexit flush writes each file once. Safe to call from
/// fatal-signal context in the "best effort before dying" sense (it
/// allocates; the process was about to abort anyway).
void FlushObservability();

/// Installs an atexit hook and fatal-signal handlers (SIGSEGV, SIGABRT,
/// SIGBUS, SIGFPE, SIGILL, SIGTERM) that call FlushObservability before the
/// process dies, so a crash mid-run keeps its trace and metrics. Handlers
/// re-raise with default disposition, preserving the original exit status.
/// Idempotent.
void InstallCrashHandlers();

/// Re-arms FlushObservability after a completed flush (test support).
void ResetFlushForTest();

}  // namespace ses::obs

#endif  // SES_OBS_CRASH_FLUSH_H_
