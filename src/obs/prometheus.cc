#include "obs/prometheus.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <shared_mutex>
#include <vector>

#include "obs/metrics.h"

namespace ses::obs {

std::string SanitizePrometheusName(const std::string& name, bool label) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || (!label && c == ':');
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

void SplitLabeledName(const std::string& key, std::string* name,
                      std::string* labels) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos || key.back() != '}') {
    *name = key;
    labels->clear();
    return;
  }
  *name = key.substr(0, brace);
  *labels = key.substr(brace + 1, key.size() - brace - 2);
}

std::string SanitizeLabelBody(const std::string& labels) {
  // Grammar (produced by MetricsRegistry::LabeledName):
  //   body  := pair (',' pair)*
  //   pair  := name '=' '"' escaped-value '"'
  // Only the names need sanitizing; values keep their escapes.
  std::string out;
  out.reserve(labels.size());
  size_t pos = 0;
  while (pos < labels.size()) {
    const size_t eq = labels.find('=', pos);
    if (eq == std::string::npos) break;  // malformed; keep what we have
    out += SanitizePrometheusName(labels.substr(pos, eq - pos),
                                  /*label=*/true);
    out += "=\"";
    pos = eq + 2;  // skip ="
    while (pos < labels.size()) {
      const char c = labels[pos];
      if (c == '\\' && pos + 1 < labels.size()) {
        out += c;
        out += labels[pos + 1];
        pos += 2;
        continue;
      }
      ++pos;
      if (c == '"') break;
      out += c;
    }
    out += '"';
    if (pos < labels.size() && labels[pos] == ',') {
      out += ',';
      ++pos;
    }
  }
  return out;
}

std::string FormatPrometheusValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

namespace {

/// One exposition family: a `# TYPE` header plus its sample lines, keyed and
/// emitted in sorted order so scrapes are deterministic.
struct Family {
  std::string type;
  std::vector<std::string> lines;
};

/// `name{labels}` or `name` when the body is empty, plus " value".
std::string Sample(const std::string& name, const std::string& label_body,
                   const std::string& value) {
  std::string line = name;
  if (!label_body.empty()) {
    line += '{';
    line += label_body;
    line += '}';
  }
  line += ' ';
  line += value;
  return line;
}

/// Histogram bucket line with `le` merged into any existing labels. When the
/// bucket carries an exemplar, it is appended in OpenMetrics syntax:
///   name_bucket{le="..."} 42 # {trace_id="123"} 0.0017
/// The timestamp is deliberately omitted so the last whitespace-separated
/// token of the suffix is the exemplar value (a plain float) — parsers that
/// split on the `#` see a well-formed labelset+value, and line-shape checks
/// that read the final token still find a number.
std::string BucketSample(const std::string& name,
                         const std::string& label_body, const std::string& le,
                         int64_t cumulative,
                         const Histogram::Exemplar* exemplar) {
  std::string body = label_body;
  if (!body.empty()) body += ',';
  body += "le=\"" + le + "\"";
  std::string line = Sample(name + "_bucket", body, std::to_string(cumulative));
  if (exemplar != nullptr) {
    line += " # {trace_id=\"";
    line += std::to_string(exemplar->trace_id);  // decimal, joins access log
    line += "\"} ";
    line += FormatPrometheusValue(exemplar->value);
  }
  return line;
}

template <typename Map>
std::vector<std::string> SortedKeys(const Map& map) {
  std::vector<std::string> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  // Group samples by sanitized family name so each family gets exactly one
  // `# TYPE` header. Keys are visited in sorted order and lines are kept in
  // insertion order, which preserves ascending `le` within every histogram
  // series (lexicographic sorting would not: "10" < "2").
  std::map<std::string, Family> families;

  const auto family_for = [&families](const std::string& key,
                                      const char* type, std::string* labels) {
    std::string name;
    SplitLabeledName(key, &name, labels);
    name = SanitizePrometheusName(name);
    *labels = SanitizeLabelBody(*labels);
    Family& fam = families[name];
    if (fam.type.empty()) fam.type = type;
    return name;
  };

  for (const auto& key : SortedKeys(counters_)) {
    std::string labels;
    const std::string name = family_for(key, "counter", &labels);
    families[name].lines.push_back(
        Sample(name, labels, std::to_string(counters_.at(key)->Value())));
  }
  for (const auto& key : SortedKeys(gauges_)) {
    std::string labels;
    const std::string name = family_for(key, "gauge", &labels);
    families[name].lines.push_back(
        Sample(name, labels, FormatPrometheusValue(gauges_.at(key)->Value())));
  }
  for (const auto& key : SortedKeys(histograms_)) {
    std::string labels;
    const std::string name = family_for(key, "histogram", &labels);
    const Histogram& hist = *histograms_.at(key);
    Family& fam = families[name];
    // Exposition buckets are cumulative, ours are disjoint. Exemplars stay
    // per-disjoint-bucket (OpenMetrics semantics: the exemplar value must lie
    // within the bucket that exposes it).
    int64_t cumulative = 0;
    Histogram::Exemplar exemplar;
    for (size_t i = 0; i <= hist.edges().size(); ++i) {
      cumulative += hist.BucketCount(i);
      const bool has_exemplar = hist.ReadExemplar(i, &exemplar);
      const std::string le = i < hist.edges().size()
                                 ? FormatPrometheusValue(hist.edges()[i])
                                 : "+Inf";
      fam.lines.push_back(BucketSample(name, labels, le, cumulative,
                                       has_exemplar ? &exemplar : nullptr));
    }
    fam.lines.push_back(
        Sample(name + "_sum", labels, FormatPrometheusValue(hist.Sum())));
    fam.lines.push_back(
        Sample(name + "_count", labels, std::to_string(hist.Count())));
  }

  for (const auto& [name, fam] : families) {
    out << "# TYPE " << name << ' ' << fam.type << '\n';
    for (const std::string& line : fam.lines) out << line << '\n';
  }
}

}  // namespace ses::obs
