#ifndef SES_OBS_FLIGHT_RECORDER_H_
#define SES_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ses::obs {

/// One fully-attributed slow request: the six critical-path timestamps the
/// batch scheduler stamps (submit → admit → seal → forward-start →
/// forward-end → resolve), all in microseconds on the trace-epoch clock
/// (internal::TraceNowNs / 1000) so they line up with Chrome-trace `ts`
/// values. Direct-path requests (no scheduler) collapse the inner stages onto
/// submit; the six timestamps are always monotonically non-decreasing.
struct FlightRecord {
  uint64_t trace_id = 0;
  const char* op = "";       ///< static-storage op name
  const char* reason = "ok"; ///< static-storage completion reason
  bool error = false;
  double submit_us = 0.0;
  double admit_us = 0.0;
  double seal_us = 0.0;
  double forward_start_us = 0.0;
  double forward_end_us = 0.0;
  double resolve_us = 0.0;
  /// End-to-end latency (resolve − submit), denormalized for sorting.
  double e2e_us = 0.0;
};

/// Process-wide recorder of the top-K slowest requests per rolling window.
///
/// Every completed request is offered via Record(); the fast path is two
/// relaxed atomic loads and a compare (window check + admission floor), so
/// feeding it from the scheduler's completion loop costs nanoseconds. Records
/// that beat the floor enter a mutex-protected min-heap of size K; when the
/// window rolls, the heap is retired to a "previous" slot so `/debug/slowest`
/// always serves up to two windows of context instead of going blank at the
/// boundary.
///
/// Auto-dump: ArmAutoDump(path, threshold) arms a one-shot trigger on the SLO
/// burn rate the scheduler reports per batch (ObserveBurn). When burn crosses
/// the threshold the current snapshot is written to `path` as JSON; the
/// trigger re-arms once burn falls below threshold/2 (hysteresis — a burn
/// oscillating at the threshold produces one dump per excursion, not one per
/// batch).
class FlightRecorder {
 public:
  static FlightRecorder& Get();

  /// Reconfigures retention. top_k clamps to [1, 4096]; window_us must be
  /// positive. Existing records are kept.
  void Configure(int64_t top_k, double window_us);

  /// Offers one completed request. Thread-safe; cheap when the record is
  /// faster than the current window's K-th slowest.
  void Record(const FlightRecord& record);

  /// Merged current + previous window records, slowest first.
  std::vector<FlightRecord> Snapshot() const;

  /// JSON document served at /debug/slowest: config, dump state, and the
  /// Snapshot() records with all six stage timestamps.
  std::string SnapshotJson() const;

  /// Arms the burn-triggered auto-dump. An empty path disarms.
  void ArmAutoDump(const std::string& path, double burn_threshold);

  /// Feeds one SLO burn-rate sample (scheduler: once per executed batch).
  /// Dumps at most once per threshold excursion.
  void ObserveBurn(double burn);

  /// Writes SnapshotJson() to `path`. Returns false (and logs) on failure.
  bool DumpTo(const std::string& path) const;

  int64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  /// Drops all records and disarms the auto-dump (test support).
  void ResetForTest();

 private:
  FlightRecorder() = default;

  void RollWindowIfDue(double now_us);

  mutable std::mutex mutex_;
  std::vector<FlightRecord> current_;   ///< min-heap by e2e_us, size <= top_k_
  std::vector<FlightRecord> previous_;  ///< last completed window, retired
  int64_t top_k_ = 32;
  double window_us_ = 10e6;  ///< 10 s rolling window

  /// Admission floor: e2e_us of the current heap's minimum once full, else
  /// -1. Read without the lock on the Record fast path; stale reads only
  /// admit a record the heap then rejects under the lock.
  std::atomic<double> floor_{-1.0};
  std::atomic<double> window_start_us_{0.0};

  std::string dump_path_;  ///< guarded by mutex_
  std::atomic<double> burn_threshold_{0.0};
  std::atomic<bool> armed_{false};
  std::atomic<bool> ready_{true};  ///< false after a dump until burn recedes
  std::atomic<int64_t> dumps_{0};
};

}  // namespace ses::obs

#endif  // SES_OBS_FLIGHT_RECORDER_H_
