#include "obs/telemetry.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace ses::obs {

Telemetry& Telemetry::Get() {
  static Telemetry* telemetry = new Telemetry();
  return *telemetry;
}

void Telemetry::SetCallback(EpochCallback cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(cb);
  active_.store(static_cast<bool>(callback_), std::memory_order_relaxed);
}

bool Telemetry::OpenJsonl(const std::string& path) {
  auto out = std::make_shared<std::ofstream>(path);
  if (!*out) {
    SES_LOG_ERROR << "cannot open telemetry output file " << path;
    return false;
  }
  SetCallback([out](const EpochRecord& record) {
    *out << EpochRecordToJson(record) << "\n";
    out->flush();  // records must survive a crash mid-training
  });
  return true;
}

void Telemetry::Close() { SetCallback(nullptr); }

void Telemetry::EmitSlow(const EpochRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (callback_) callback_(record);
}

namespace {

/// NaN/Inf are not valid JSON literals — a poisoned-step record must still
/// parse, so non-finite numbers serialize as null.
void AppendNumber(std::ostringstream& out, double v) {
  if (std::isfinite(v))
    out << v;
  else
    out << "null";
}

/// Per-parameter health maps serialize as a JSON object keyed by parameter
/// name; names come from nn::Module registration and contain no JSON
/// metacharacters, but escape the two that would break parsing anyway.
void AppendNamedValues(
    std::ostringstream& out,
    const std::vector<std::pair<std::string, double>>& values) {
  out << "{";
  bool first = true;
  for (const auto& [name, v] : values) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    for (const char c : name) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\":";
    AppendNumber(out, v);
  }
  out << "}";
}

}  // namespace

std::string EpochRecordToJson(const EpochRecord& record) {
  std::ostringstream out;
  out << "{\"model\":\"" << record.model << "\",\"phase\":\"" << record.phase
      << "\",\"epoch\":" << record.epoch << ",\"loss\":";
  AppendNumber(out, record.loss);
  out << ",\"grad_norm\":";
  AppendNumber(out, record.grad_norm);
  out << ",\"epoch_seconds\":";
  AppendNumber(out, record.epoch_seconds);
  out << ",\"val_metric\":";
  AppendNumber(out, record.val_metric);
  out << ",\"nan_skips\":" << record.nan_skips
      << ",\"rollbacks\":" << record.rollbacks
      << ",\"ckpt_writes\":" << record.ckpt_writes
      << ",\"pool_hits\":" << record.pool_hits
      << ",\"pool_misses\":" << record.pool_misses
      << ",\"infer_cache_hits\":" << record.infer_cache_hits
      << ",\"layer_grad_norms\":";
  AppendNamedValues(out, record.layer_grad_norms);
  out << ",\"update_ratios\":";
  AppendNamedValues(out, record.update_ratios);
  out << ",\"dead_fraction\":";
  AppendNumber(out, record.dead_fraction < 0.0
                        ? std::numeric_limits<double>::quiet_NaN()
                        : record.dead_fraction);
  out << ",\"attn_entropy\":";
  AppendNumber(out, record.attn_entropy < 0.0
                        ? std::numeric_limits<double>::quiet_NaN()
                        : record.attn_entropy);
  out << "}";
  return out.str();
}

}  // namespace ses::obs
