#include "obs/telemetry.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace ses::obs {

Telemetry& Telemetry::Get() {
  static Telemetry* telemetry = new Telemetry();
  return *telemetry;
}

void Telemetry::SetCallback(EpochCallback cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(cb);
  active_.store(static_cast<bool>(callback_), std::memory_order_relaxed);
}

bool Telemetry::OpenJsonl(const std::string& path) {
  auto out = std::make_shared<std::ofstream>(path);
  if (!*out) {
    SES_LOG_ERROR << "cannot open telemetry output file " << path;
    return false;
  }
  SetCallback([out](const EpochRecord& record) {
    *out << EpochRecordToJson(record) << "\n";
    out->flush();  // records must survive a crash mid-training
  });
  return true;
}

void Telemetry::Close() { SetCallback(nullptr); }

void Telemetry::EmitSlow(const EpochRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (callback_) callback_(record);
}

namespace {

/// NaN/Inf are not valid JSON literals — a poisoned-step record must still
/// parse, so non-finite numbers serialize as null.
void AppendNumber(std::ostringstream& out, double v) {
  if (std::isfinite(v))
    out << v;
  else
    out << "null";
}

}  // namespace

std::string EpochRecordToJson(const EpochRecord& record) {
  std::ostringstream out;
  out << "{\"model\":\"" << record.model << "\",\"phase\":\"" << record.phase
      << "\",\"epoch\":" << record.epoch << ",\"loss\":";
  AppendNumber(out, record.loss);
  out << ",\"grad_norm\":";
  AppendNumber(out, record.grad_norm);
  out << ",\"epoch_seconds\":";
  AppendNumber(out, record.epoch_seconds);
  out << ",\"val_metric\":";
  AppendNumber(out, record.val_metric);
  out << ",\"nan_skips\":" << record.nan_skips
      << ",\"rollbacks\":" << record.rollbacks
      << ",\"ckpt_writes\":" << record.ckpt_writes
      << ",\"pool_hits\":" << record.pool_hits
      << ",\"pool_misses\":" << record.pool_misses
      << ",\"infer_cache_hits\":" << record.infer_cache_hits << "}";
  return out.str();
}

}  // namespace ses::obs
