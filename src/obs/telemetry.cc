#include "obs/telemetry.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace ses::obs {

Telemetry& Telemetry::Get() {
  static Telemetry* telemetry = new Telemetry();
  return *telemetry;
}

void Telemetry::SetCallback(EpochCallback cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(cb);
  active_.store(static_cast<bool>(callback_), std::memory_order_relaxed);
}

bool Telemetry::OpenJsonl(const std::string& path) {
  auto out = std::make_shared<std::ofstream>(path);
  if (!*out) {
    SES_LOG_ERROR << "cannot open telemetry output file " << path;
    return false;
  }
  SetCallback([out](const EpochRecord& record) {
    *out << EpochRecordToJson(record) << "\n";
    out->flush();  // records must survive a crash mid-training
  });
  return true;
}

void Telemetry::Close() { SetCallback(nullptr); }

void Telemetry::EmitSlow(const EpochRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (callback_) callback_(record);
}

std::string EpochRecordToJson(const EpochRecord& record) {
  std::ostringstream out;
  out << "{\"model\":\"" << record.model << "\",\"phase\":\"" << record.phase
      << "\",\"epoch\":" << record.epoch << ",\"loss\":" << record.loss
      << ",\"grad_norm\":" << record.grad_norm
      << ",\"epoch_seconds\":" << record.epoch_seconds
      << ",\"val_metric\":" << record.val_metric << "}";
  return out.str();
}

}  // namespace ses::obs
