#ifndef SES_METRICS_FIDELITY_H_
#define SES_METRICS_FIDELITY_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "models/node_classifier.h"

namespace ses::metrics {

/// Fidelity+ (Eq. 14, Pope et al.): accuracy drop when the top-`top_k` most
/// important nonzero features of each node (per `feature_scores_nnz`, CSR
/// order) are masked out. Positive = the explanation captured features the
/// model actually relied on. Evaluated on `eval_idx` (typically the test
/// split); returned in percent.
double FidelityPlus(models::NodeClassifier* model, const data::Dataset& ds,
                    const std::vector<float>& feature_scores_nnz,
                    int64_t top_k, const std::vector<int64_t>& eval_idx);

/// Builds a copy of `ds` whose top-`top_k` scored nonzero features per node
/// are zeroed (the 1 - m_i complement-mask input of Eq. 14).
data::Dataset MaskTopFeatures(const data::Dataset& ds,
                              const std::vector<float>& feature_scores_nnz,
                              int64_t top_k);

}  // namespace ses::metrics

#endif  // SES_METRICS_FIDELITY_H_
