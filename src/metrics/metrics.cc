#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.h"
#include "util/logging.h"

namespace ses::metrics {

double RocAuc(const std::vector<float>& scores, const std::vector<int>& labels) {
  SES_CHECK(scores.size() == labels.size());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Average ranks over ties.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  int64_t pos = 0, neg = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += rank[k];
      ++pos;
    } else {
      ++neg;
    }
  }
  if (pos == 0 || neg == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(pos) * (pos + 1) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double ExplanationAuc(const data::Dataset& ds,
                      const std::vector<float>& edge_scores) {
  const auto& edges = ds.graph.edges();
  SES_CHECK(edge_scores.size() == edges.size());
  SES_CHECK(ds.HasGroundTruthExplanations());
  std::vector<float> scores;
  std::vector<int> labels;
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [u, v] = edges[i];
    const bool touches_motif = ds.in_motif[static_cast<size_t>(u)] ||
                               ds.in_motif[static_cast<size_t>(v)];
    if (!touches_motif) continue;
    scores.push_back(edge_scores[i]);
    labels.push_back(ds.IsMotifEdge(u, v) ? 1 : 0);
  }
  return RocAuc(scores, labels);
}

double SilhouetteScore(const tensor::Tensor& embeddings,
                       const std::vector<int64_t>& labels) {
  const int64_t n = embeddings.rows();
  SES_CHECK(static_cast<int64_t>(labels.size()) == n);
  const int64_t c =
      1 + *std::max_element(labels.begin(), labels.end());
  tensor::Tensor d2 = tensor::PairwiseSquaredDistances(embeddings);
  std::vector<int64_t> cluster_size(static_cast<size_t>(c), 0);
  for (int64_t i = 0; i < n; ++i) ++cluster_size[static_cast<size_t>(labels[static_cast<size_t>(i)])];

  double total = 0.0;
  int64_t counted = 0;
#pragma omp parallel for schedule(static) reduction(+ : total, counted)
  for (int64_t i = 0; i < n; ++i) {
    const int64_t own = labels[static_cast<size_t>(i)];
    if (cluster_size[static_cast<size_t>(own)] <= 1) continue;
    std::vector<double> dist_sum(static_cast<size_t>(c), 0.0);
    const float* row = d2.RowPtr(i);
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dist_sum[static_cast<size_t>(labels[static_cast<size_t>(j)])] +=
          std::sqrt(static_cast<double>(row[j]));
    }
    const double a = dist_sum[static_cast<size_t>(own)] /
                     static_cast<double>(cluster_size[static_cast<size_t>(own)] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int64_t k = 0; k < c; ++k) {
      if (k == own || cluster_size[static_cast<size_t>(k)] == 0) continue;
      b = std::min(b, dist_sum[static_cast<size_t>(k)] /
                          static_cast<double>(cluster_size[static_cast<size_t>(k)]));
    }
    if (!std::isfinite(b)) continue;
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double CalinskiHarabaszScore(const tensor::Tensor& embeddings,
                             const std::vector<int64_t>& labels) {
  const int64_t n = embeddings.rows();
  const int64_t f = embeddings.cols();
  SES_CHECK(static_cast<int64_t>(labels.size()) == n);
  const int64_t c = 1 + *std::max_element(labels.begin(), labels.end());
  if (c <= 1 || n <= c) return 0.0;

  tensor::Tensor global_mean = tensor::SumCols(embeddings);
  global_mean.ScaleInPlace(1.0f / static_cast<float>(n));
  tensor::Tensor centroid(c, f);
  std::vector<int64_t> count(static_cast<size_t>(c), 0);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t k = labels[static_cast<size_t>(i)];
    ++count[static_cast<size_t>(k)];
    const float* src = embeddings.RowPtr(i);
    float* dst = centroid.RowPtr(k);
    for (int64_t j = 0; j < f; ++j) dst[j] += src[j];
  }
  for (int64_t k = 0; k < c; ++k) {
    if (count[static_cast<size_t>(k)] == 0) continue;
    float* dst = centroid.RowPtr(k);
    for (int64_t j = 0; j < f; ++j)
      dst[j] /= static_cast<float>(count[static_cast<size_t>(k)]);
  }
  double between = 0.0;
  for (int64_t k = 0; k < c; ++k) {
    if (count[static_cast<size_t>(k)] == 0) continue;
    double d2 = 0.0;
    const float* ck = centroid.RowPtr(k);
    for (int64_t j = 0; j < f; ++j) {
      const double d = ck[j] - global_mean[j];
      d2 += d * d;
    }
    between += static_cast<double>(count[static_cast<size_t>(k)]) * d2;
  }
  double within = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float* src = embeddings.RowPtr(i);
    const float* ck = centroid.RowPtr(labels[static_cast<size_t>(i)]);
    for (int64_t j = 0; j < f; ++j) {
      const double d = src[j] - ck[j];
      within += d * d;
    }
  }
  if (within <= 0.0) return 0.0;
  return (between / static_cast<double>(c - 1)) /
         (within / static_cast<double>(n - c));
}

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd result;
  if (values.empty()) return result;
  result.mean = std::accumulate(values.begin(), values.end(), 0.0) /
                static_cast<double>(values.size());
  if (values.size() > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - result.mean) * (v - result.mean);
    result.std = std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return result;
}

}  // namespace ses::metrics
