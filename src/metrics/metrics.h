#ifndef SES_METRICS_METRICS_H_
#define SES_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace ses::metrics {

/// Area under the ROC curve for binary labels (1 = positive). Ties in the
/// scores are handled by the rank-sum (Mann-Whitney) formulation.
double RocAuc(const std::vector<float>& scores, const std::vector<int>& labels);

/// Explanation accuracy used by Table 4: AUC of per-edge importance scores
/// (aligned with ds.graph.edges()) against the ground-truth motif edges.
/// Following GNNExplainer's protocol the evaluation is restricted to edges
/// with at least one endpoint inside a motif, so the score measures whether
/// the explainer separates motif edges from the incident noise, not from the
/// whole base graph.
double ExplanationAuc(const data::Dataset& ds,
                      const std::vector<float>& edge_scores);

/// Silhouette coefficient of the labeled clustering of `embeddings`
/// (Euclidean). Higher is better; range [-1, 1].
double SilhouetteScore(const tensor::Tensor& embeddings,
                       const std::vector<int64_t>& labels);

/// Calinski-Harabasz index (between-cluster dispersion over within-cluster
/// dispersion). Higher is better.
double CalinskiHarabaszScore(const tensor::Tensor& embeddings,
                             const std::vector<int64_t>& labels);

/// Mean and sample standard deviation of a sequence.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

}  // namespace ses::metrics

#endif  // SES_METRICS_METRICS_H_
