#include "metrics/fidelity.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ses::metrics {

data::Dataset MaskTopFeatures(const data::Dataset& ds,
                              const std::vector<float>& feature_scores_nnz,
                              int64_t top_k) {
  SES_CHECK(ds.features != nullptr);
  SES_CHECK(static_cast<int64_t>(feature_scores_nnz.size()) ==
            ds.features->nnz());
  auto masked = std::make_shared<tensor::SparseMatrix>(*ds.features);
  std::vector<int64_t> order;
  for (int64_t r = 0; r < masked->rows; ++r) {
    const int64_t lo = masked->row_ptr[static_cast<size_t>(r)];
    const int64_t hi = masked->row_ptr[static_cast<size_t>(r) + 1];
    const int64_t count = hi - lo;
    if (count == 0) continue;
    order.resize(static_cast<size_t>(count));
    std::iota(order.begin(), order.end(), lo);
    const int64_t keep_out = std::min(top_k, count);
    std::partial_sort(order.begin(), order.begin() + keep_out, order.end(),
                      [&](int64_t a, int64_t b) {
                        return feature_scores_nnz[static_cast<size_t>(a)] >
                               feature_scores_nnz[static_cast<size_t>(b)];
                      });
    for (int64_t j = 0; j < keep_out; ++j)
      masked->values[static_cast<size_t>(order[static_cast<size_t>(j)])] = 0.0f;
  }
  data::Dataset out = ds;
  out.features = std::move(masked);
  return out;
}

double FidelityPlus(models::NodeClassifier* model, const data::Dataset& ds,
                    const std::vector<float>& feature_scores_nnz,
                    int64_t top_k, const std::vector<int64_t>& eval_idx) {
  const tensor::Tensor original = model->Logits(ds);
  data::Dataset masked = MaskTopFeatures(ds, feature_scores_nnz, top_k);
  const tensor::Tensor perturbed = model->Logits(masked);
  const double acc_orig = models::Accuracy(original, ds.labels, eval_idx);
  const double acc_masked = models::Accuracy(perturbed, ds.labels, eval_idx);
  return 100.0 * (acc_orig - acc_masked);
}

}  // namespace ses::metrics
