#!/usr/bin/env bash
# CI driver: builds the Release tree and an AddressSanitizer tree, runs the
# full ctest suite on both. Any failure fails the script.
#
# Usage: scripts/ci.sh [JOBS]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_variant() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_variant "release" build -DCMAKE_BUILD_TYPE=Release
run_variant "asan" build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSES_SANITIZE=address

echo "=== all variants passed ==="
