#!/usr/bin/env bash
# CI driver: builds the Release tree and an AddressSanitizer tree, runs the
# full ctest suite on both (including the obs_v2 observability tests), then
# exercises the fault-injection matrix (NaN injection, kill-and-resume,
# checkpoint corruption, crash-with-artifacts) against the ASan quickstart
# binary, smoke-runs the multi-threaded serving benchmark under ASan while
# scraping its live /metrics endpoint and joining the access log against the
# Chrome trace, and finally gates serving performance against the committed
# baseline. Any failure fails the script.
#
# Usage: scripts/ci.sh [JOBS]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_variant() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_variant "release" build -DCMAKE_BUILD_TYPE=Release
run_variant "asan" build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSES_SANITIZE=address

# ---------------------------------------------------------------------------
# Fault-injection matrix (under ASan: resume paths must also be memory-clean).
# A tiny quickstart run keeps each scenario to a few seconds.
QUICKSTART="./build-asan/examples/quickstart"
QS_ARGS=(--scale=0.12 --epochs=12 --checkpoint-every=4)
FAULT_DIR="$(mktemp -d)"
trap 'rm -rf "${FAULT_DIR}"' EXIT

echo "=== [faults] NaN-loss injection: training must skip the step and finish ==="
SES_FAULT_SPEC="nan_loss:phase=phase1,step=3" \
  "${QUICKSTART}" "${QS_ARGS[@]}" --metrics-out="${FAULT_DIR}/nan-metrics.jsonl" \
  | tee "${FAULT_DIR}/nan.log"
grep -q "nan_skips=0" "${FAULT_DIR}/nan.log" && {
  echo "FAIL: NaN injection did not register a skipped step"; exit 1; }
grep -q '"ses.train.nan_skips"' "${FAULT_DIR}/nan-metrics.jsonl" || {
  echo "FAIL: nan_skips counter missing from metrics snapshot"; exit 1; }

echo "=== [faults] crash at phase-1 epoch 8, then resume from checkpoint ==="
set +e
SES_FAULT_SPEC="crash:phase=phase1,epoch=8" \
  "${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-crash"
status=$?
set -e
[[ "${status}" -eq 42 ]] || {
  echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
"${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-crash" \
  | tee "${FAULT_DIR}/resume.log"
grep -q "resume_ok=0" "${FAULT_DIR}/resume.log" && {
  echo "FAIL: resume after crash did not load a checkpoint"; exit 1; }

echo "=== [faults] corrupt newest checkpoint, resume must fall back ==="
set +e
SES_FAULT_SPEC="corrupt_ckpt:phase=phase1,epoch=8,mode=flip;crash:phase=phase1,epoch=10" \
  "${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-corrupt"
status=$?
set -e
[[ "${status}" -eq 42 ]] || {
  echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
"${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-corrupt" \
  | tee "${FAULT_DIR}/fallback.log"
grep -q "resume_corrupt=0" "${FAULT_DIR}/fallback.log" && {
  echo "FAIL: corrupted checkpoint was not rejected on resume"; exit 1; }
grep -q "resume_ok=0" "${FAULT_DIR}/fallback.log" && {
  echo "FAIL: resume did not fall back to the previous rotation"; exit 1; }

echo "=== [faults] crash must still flush the observability artifacts ==="
set +e
SES_FAULT_SPEC="crash:phase=phase1,epoch=8" \
  "${QUICKSTART}" "${QS_ARGS[@]}" --trace-out="${FAULT_DIR}/crash-trace.json" \
  --metrics-out="${FAULT_DIR}/crash-metrics.jsonl"
status=$?
set -e
[[ "${status}" -eq 42 ]] || {
  echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
python3 - "${FAULT_DIR}/crash-trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
assert trace["traceEvents"], "crash-flushed trace has no spans"
PY
[[ -s "${FAULT_DIR}/crash-metrics.jsonl" ]] || {
  echo "FAIL: crash did not flush the metrics snapshot"; exit 1; }
echo "crashed run left a parseable trace and a metrics snapshot"

# ---------------------------------------------------------------------------
# Serving smoke (under ASan: the tape-free fast path, workspace pool, the
# multi-threaded query loop AND the embedded metrics server must be memory-
# and race-clean). The benchmark runs in the background with the full
# observability surface on; the live /metrics endpoint is scraped mid-run.
# Deliberately NOT --smoke: the run must last long enough (~15 s of training
# under ASan; every metric family registers before training starts) for the
# scraper to catch it alive.
echo "=== [serving] bench_serving with live /metrics (2 threads, ASan) ==="
mkdir -p ci_artifacts
./build-asan/bench/bench_serving --scale=0.35 --epochs=150 --hidden=32 \
  --seeds=1 --threads=2 --queries=2000 \
  --metrics-port=0 --access-log="${FAULT_DIR}/access.jsonl" \
  --trace-out="${FAULT_DIR}/serving-trace.json" \
  --out=ci_artifacts/BENCH_serving.json >"${FAULT_DIR}/serving.log" 2>&1 &
SERVING_PID=$!
for _ in $(seq 1 200); do
  grep -q "metrics server on" "${FAULT_DIR}/serving.log" && break
  kill -0 "${SERVING_PID}" 2>/dev/null || break
  sleep 0.05
done
PORT="$(sed -n 's#.*localhost:\([0-9]*\)/metrics.*#\1#p' \
  "${FAULT_DIR}/serving.log" | head -1)"
[[ -n "${PORT}" ]] || {
  cat "${FAULT_DIR}/serving.log"
  echo "FAIL: bench_serving never announced its metrics port"; exit 1; }
python3 - "${PORT}" "${SERVING_PID}" <<'PY'
import os, sys, time, urllib.request

port, pid = sys.argv[1], int(sys.argv[2])
need = ["ses_pool_", "ses_infer_", "ses_slo_"]
body = ""
deadline = time.monotonic() + 120
while time.monotonic() < deadline:
    try:
        with urllib.request.urlopen(f"http://localhost:{port}/metrics",
                                    timeout=5) as resp:
            assert "version=0.0.4" in resp.headers["Content-Type"]
            body = resp.read().decode()
    except OSError:
        body = ""
    if all(n in body for n in need):
        break
    try:
        os.kill(pid, 0)  # benchmark still running?
    except ProcessLookupError:
        sys.exit(f"bench_serving (pid {pid}) exited before a complete scrape")
    time.sleep(0.05)
missing = [n for n in need if n not in body]
assert not missing, f"mid-run scrape missing families {missing}"
# Shape check: every non-comment line must be "name[{labels}] value", and the
# histogram series must close with a +Inf bucket.
for line in body.splitlines():
    if not line or line.startswith("#"):
        continue
    name_part = line.split("{")[0].split(" ")[0]
    assert name_part and name_part.replace("_", "a").replace(":", "a").isalnum(), line
    float(line.rsplit(" ", 1)[1])  # value parses as a number
assert 'le="+Inf"' in body, "histogram exposition lacks a +Inf bucket"
with urllib.request.urlopen(f"http://localhost:{port}/healthz",
                            timeout=5) as resp:
    import json
    health = json.load(resp)
assert health["status"] == "ok", health
print(f"mid-run scrape ok: {len(body.splitlines())} exposition lines, "
      f"all of {need} present")
PY
wait "${SERVING_PID}" || {
  cat "${FAULT_DIR}/serving.log"
  echo "FAIL: bench_serving exited non-zero"; exit 1; }
grep -q '"logits_max_abs_diff": 0' ci_artifacts/BENCH_serving.json || {
  echo "FAIL: fast-path logits diverged from the tape path"; exit 1; }
echo "serving artifact archived at ci_artifacts/BENCH_serving.json"

echo "=== [serving] every access-log trace-id resolves to trace spans ==="
python3 - "${FAULT_DIR}/access.jsonl" "${FAULT_DIR}/serving-trace.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    entries = [json.loads(line) for line in f if line.strip()]
assert entries, "access log is empty"
with open(sys.argv[2]) as f:
    trace = json.load(f)
span_ids = {ev["args"]["trace_id"] for ev in trace["traceEvents"]
            if "args" in ev and "trace_id" in ev["args"]}
orphans = [e["trace_id"] for e in entries if e["trace_id"] not in span_ids]
assert not orphans, f"{len(orphans)} access-log requests have no spans, " \
                    f"e.g. trace_id {orphans[0]}"
ops = {e["op"] for e in entries}
assert {"infer.predict", "infer.explain"} <= ops, ops
print(f"{len(entries)} access-log lines joined against "
      f"{len(span_ids)} request trace-ids")
PY

# ---------------------------------------------------------------------------
# Serving-performance gate: a fresh Release run must stay within the allowed
# regression envelope of the committed baseline (see scripts/bench_check.sh).
echo "=== [bench gate] Release bench_serving vs committed BENCH_serving.json ==="
./build/bench/bench_serving --out=ci_artifacts/BENCH_serving_release.json \
  | tee "${FAULT_DIR}/serving-release.log"
scripts/bench_check.sh ci_artifacts/BENCH_serving_release.json

echo "=== all variants passed ==="
