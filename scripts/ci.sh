#!/usr/bin/env bash
# Staged CI driver. Each stage is individually invocable so the GitHub
# workflow (.github/workflows/ci.yml) can fan them out as separate jobs and a
# developer can reproduce exactly one job locally:
#
#   scripts/ci.sh release   # Release build + FULL ctest suite (tier1 + slow)
#   scripts/ci.sh asan      # ASan build + tier1 ctest + serving smoke with a
#                           # live /metrics scrape and access-log/trace join
#   scripts/ci.sh tsan      # TSan build (OpenMP off) + tier1 ctest + batch-
#                           # scheduler smoke under contention
#   scripts/ci.sh faults    # fault-injection matrix (NaN skip, crash/resume,
#                           # checkpoint corruption, artifact flush) on ASan
#   scripts/ci.sh overload  # overload-resilience matrix: ASan overload sweep
#                           # (admission, deadlines, degraded mode) with the
#                           # no-hung-futures gate, serving fault injection
#                           # via $SES_FAULT_SPEC, and the shed/deadline/
#                           # fault paths race-checked under TSan
#   scripts/ci.sh bench     # Release bench_serving gated against the
#                           # committed BENCH_serving.json baseline
#   scripts/ci.sh kernels   # Release bench_kernels gated against the
#                           # committed BENCH_kernels.json baseline, JSON
#                           # schema validation, and a SES_PERF_DISABLE=1
#                           # run proving the clock-only fallback
#   scripts/ci.sh kernels-dispatch
#                           # SIMD dispatch gate: kernel parity suite with
#                           # SES_KERNEL_VARIANT pinned per CPU-supported
#                           # tier (skips logged), autotuner determinism
#                           # double-run, and the parity suite under UBSan
#   scripts/ci.sh scale     # million-node data-plane gate (DESIGN.md §16):
#                           # generator determinism double-run at 100k, the
#                           # Release 10k/100k/1M sweep with the bitwise
#                           # shard-parity + partition-quality gate
#                           # (bench_check.sh on BENCH_scale.json), and a
#                           # 10k smoke under ASan
#   scripts/ci.sh forensics # request-forensics gate (DESIGN.md §15): Release
#                           # bench_serving with a deliberately tiny queue-
#                           # wait SLO so the flight recorder's burn-triggered
#                           # auto-dump is guaranteed to trip; the live
#                           # endpoints are scraped mid-run (OpenMetrics
#                           # exemplars on the e2e histogram, /debug/slowest
#                           # stage monotonicity, anomaly_watch in /healthz)
#                           # and the dump + exemplar trace-ids are joined
#                           # offline against the access log and Chrome trace
#
# No arguments runs every stage in the order above. A numeric first argument
# is accepted as a job count for backward compatibility; JOBS=<n> works too.
# Stage logs and artifacts land in ci_artifacts/ (uploaded by CI on failure).
# Test tiers: ctest labels split the suite into `tier1` (fast unit tests, run
# on every variant) and `slow` (integration/fault/bench smokes, release only).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

# ccache transparently accelerates the CI matrix when present (the workflow
# installs and caches it); local runs without ccache are unaffected.
CMAKE_EXTRA=()
if command -v ccache >/dev/null 2>&1; then
  CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

mkdir -p ci_artifacts
SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT

# report_ccache STAGE — compiler-cache health, printed at the end of every
# stage. Fail-soft by design: a missing ccache, an unparseable stats format,
# or a cold cache must never fail CI — a low hit rate is a warning that the
# actions/cache key went stale, not an error.
report_ccache() {
  command -v ccache >/dev/null 2>&1 || return 0
  echo "=== [$1] ccache stats ==="
  ccache -s 2>/dev/null | tee "ci_artifacts/ccache-$1.log" || true
  local rate
  # ccache 4.x: "Hits: 123 / 456 (26.97 %)"; 3.x: "cache hit rate  26.97 %".
  rate="$(ccache -s 2>/dev/null \
    | sed -n -e 's/.*Hits:.*(\([0-9.]*\) *%).*/\1/p' \
             -e 's/.*cache hit rate[^0-9]*\([0-9.]*\) *%.*/\1/p' \
    | head -1)"
  if [[ -z "${rate}" ]]; then
    echo "note: [$1] could not parse a ccache hit rate (fail-soft)."
  elif python3 -c "import sys; sys.exit(0 if float('${rate}') < 50.0 else 1)" \
      2>/dev/null; then
    echo "WARNING: [$1] ccache hit rate ${rate}% is below 50% — cache cold" \
         "or key churn; builds are paying full compile cost (fail-soft)."
  else
    echo "[$1] ccache hit rate ${rate}%"
  fi
}

# build_variant NAME BUILD_DIR [cmake args...] — configure + build once.
build_variant() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . "${CMAKE_EXTRA[@]}" "$@"
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
}

ensure_release() {
  [[ -f build/CMakeCache.txt ]] || build_variant "release" build \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}"
}

ensure_asan() {
  [[ -f build-asan/CMakeCache.txt ]] || build_variant "asan" build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSES_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
}

ensure_tsan() {
  [[ -f build-tsan/CMakeCache.txt ]] || build_variant "tsan" build-tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSES_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
}

ensure_ubsan() {
  [[ -f build-ubsan/CMakeCache.txt ]] || \
    cmake -B build-ubsan -S . "${CMAKE_EXTRA[@]}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSES_SANITIZE=undefined
  # Only the kernel parity suite runs under UBSan; skip the full build.
  cmake --build build-ubsan -j "${JOBS}" --target kernels_test
}

# ---------------------------------------------------------------------------
stage_release() {
  build_variant "release" build -DCMAKE_BUILD_TYPE=Release
  echo "=== [release] full ctest suite (tier1 + slow) ==="
  ctest --test-dir build --output-on-failure -j "${JOBS}"
}

# ---------------------------------------------------------------------------
stage_asan() {
  build_variant "asan" build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSES_SANITIZE=address
  echo "=== [asan] tier1 ctest ==="
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L tier1

  # Serving smoke (under ASan: the tape-free fast path, workspace pool, the
  # multi-threaded query loop, the batch scheduler AND the embedded metrics
  # server must be memory-clean). The benchmark runs in the background with
  # the full observability surface on; the live /metrics endpoint is scraped
  # mid-run. Deliberately NOT --smoke: the run must last long enough (~15 s
  # of training under ASan; every metric family registers before training
  # starts) for the scraper to catch it alive.
  echo "=== [asan] bench_serving with live /metrics (2 threads) ==="
  ./build-asan/bench/bench_serving --scale=0.35 --epochs=150 --hidden=32 \
    --seeds=1 --threads=2 --queries=2000 \
    --sched-clients=2 --closed-queries=50 --open-queries=500 \
    --metrics-port=0 --access-log="${SCRATCH}/access.jsonl" \
    --trace-out="${SCRATCH}/serving-trace.json" \
    --out=ci_artifacts/BENCH_serving_asan.json \
    >"ci_artifacts/serving-asan.log" 2>&1 &
  local serving_pid=$!
  for _ in $(seq 1 200); do
    grep -q "metrics server on" "ci_artifacts/serving-asan.log" && break
    kill -0 "${serving_pid}" 2>/dev/null || break
    sleep 0.05
  done
  local port
  port="$(sed -n 's#.*localhost:\([0-9]*\)/metrics.*#\1#p' \
    "ci_artifacts/serving-asan.log" | head -1)"
  [[ -n "${port}" ]] || {
    cat "ci_artifacts/serving-asan.log"
    echo "FAIL: bench_serving never announced its metrics port"; exit 1; }
  python3 - "${port}" "${serving_pid}" <<'PY'
import os, sys, time, urllib.request

port, pid = sys.argv[1], int(sys.argv[2])
need = ["ses_pool_", "ses_infer_", "ses_slo_", "ses_sched_", "ses_kernel_"]
body = ""
deadline = time.monotonic() + 120
while time.monotonic() < deadline:
    try:
        with urllib.request.urlopen(f"http://localhost:{port}/metrics",
                                    timeout=5) as resp:
            assert "version=0.0.4" in resp.headers["Content-Type"]
            body = resp.read().decode()
    except OSError:
        body = ""
    if all(n in body for n in need):
        break
    try:
        os.kill(pid, 0)  # benchmark still running?
    except ProcessLookupError:
        sys.exit(f"bench_serving (pid {pid}) exited before a complete scrape")
    time.sleep(0.05)
missing = [n for n in need if n not in body]
assert not missing, f"mid-run scrape missing families {missing}"
# Shape check: every non-comment line must be "name[{labels}] value", and the
# histogram series must close with a +Inf bucket.
for line in body.splitlines():
    if not line or line.startswith("#"):
        continue
    name_part = line.split("{")[0].split(" ")[0]
    assert name_part and name_part.replace("_", "a").replace(":", "a").isalnum(), line
    float(line.rsplit(" ", 1)[1])  # value parses as a number
assert 'le="+Inf"' in body, "histogram exposition lacks a +Inf bucket"
with urllib.request.urlopen(f"http://localhost:{port}/healthz",
                            timeout=5) as resp:
    import json
    health = json.load(resp)
assert health["status"] == "ok", health
print(f"mid-run scrape ok: {len(body.splitlines())} exposition lines, "
      f"all of {need} present")
PY
  wait "${serving_pid}" || {
    cat "ci_artifacts/serving-asan.log"
    echo "FAIL: bench_serving exited non-zero"; exit 1; }
  grep -q '"logits_max_abs_diff": 0' ci_artifacts/BENCH_serving_asan.json || {
    echo "FAIL: fast-path logits diverged from the tape path"; exit 1; }

  echo "=== [asan] every access-log trace-id resolves to trace spans ==="
  python3 - "${SCRATCH}/access.jsonl" "${SCRATCH}/serving-trace.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    entries = [json.loads(line) for line in f if line.strip()]
assert entries, "access log is empty"
with open(sys.argv[2]) as f:
    trace = json.load(f)
span_ids = {ev["args"]["trace_id"] for ev in trace["traceEvents"]
            if "args" in ev and "trace_id" in ev["args"]}
orphans = [e["trace_id"] for e in entries if e["trace_id"] not in span_ids]
assert not orphans, f"{len(orphans)} access-log requests have no spans, " \
                    f"e.g. trace_id {orphans[0]}"
ops = {e["op"] for e in entries}
assert {"infer.predict", "infer.explain"} <= ops, ops
assert {"sched.predict"} <= ops, \
    f"scheduled requests missing from the access log: {ops}"
print(f"{len(entries)} access-log lines joined against "
      f"{len(span_ids)} request trace-ids")
PY
}

# ---------------------------------------------------------------------------
stage_tsan() {
  build_variant "tsan" build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSES_SANITIZE=thread
  echo "=== [tsan] tier1 ctest ==="
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L tier1

  # Scheduler smoke under TSan: concurrent producers, micro-batch formation,
  # worker-pool execution, lock-free future completion, and the batched
  # metrics/SLO recording all race-checked in one run. --smoke keeps the
  # model tiny; the scheduler phase still pushes thousands of requests
  # through every flush path.
  echo "=== [tsan] bench_serving --smoke (scheduler under contention) ==="
  ./build-tsan/bench/bench_serving --smoke --sched-clients=4 \
    --out=ci_artifacts/BENCH_serving_tsan.json \
    | tee "ci_artifacts/serving-tsan.log"
  grep -q "speedup_vs_direct" ci_artifacts/BENCH_serving_tsan.json || {
    echo "FAIL: TSan smoke produced no scheduler block"; exit 1; }
}

# ---------------------------------------------------------------------------
stage_faults() {
  ensure_asan
  # Fault-injection matrix (under ASan: resume paths must also be
  # memory-clean). A tiny quickstart run keeps each scenario to seconds.
  local quickstart="./build-asan/examples/quickstart"
  local qs_args=(--scale=0.12 --epochs=12 --checkpoint-every=4)
  local fault_dir="${SCRATCH}/faults"
  mkdir -p "${fault_dir}"

  echo "=== [faults] NaN-loss injection: training must skip the step and finish ==="
  SES_FAULT_SPEC="nan_loss:phase=phase1,step=3" \
    "${quickstart}" "${qs_args[@]}" --metrics-out="${fault_dir}/nan-metrics.jsonl" \
    | tee "${fault_dir}/nan.log"
  grep -q "nan_skips=0" "${fault_dir}/nan.log" && {
    echo "FAIL: NaN injection did not register a skipped step"; exit 1; }
  grep -q '"ses.train.nan_skips"' "${fault_dir}/nan-metrics.jsonl" || {
    echo "FAIL: nan_skips counter missing from metrics snapshot"; exit 1; }

  echo "=== [faults] crash at phase-1 epoch 8, then resume from checkpoint ==="
  set +e
  SES_FAULT_SPEC="crash:phase=phase1,epoch=8" \
    "${quickstart}" "${qs_args[@]}" --checkpoint-dir="${fault_dir}/ckpt-crash"
  local status=$?
  set -e
  [[ "${status}" -eq 42 ]] || {
    echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
  "${quickstart}" "${qs_args[@]}" --checkpoint-dir="${fault_dir}/ckpt-crash" \
    | tee "${fault_dir}/resume.log"
  grep -q "resume_ok=0" "${fault_dir}/resume.log" && {
    echo "FAIL: resume after crash did not load a checkpoint"; exit 1; }

  echo "=== [faults] corrupt newest checkpoint, resume must fall back ==="
  set +e
  SES_FAULT_SPEC="corrupt_ckpt:phase=phase1,epoch=8,mode=flip;crash:phase=phase1,epoch=10" \
    "${quickstart}" "${qs_args[@]}" --checkpoint-dir="${fault_dir}/ckpt-corrupt"
  status=$?
  set -e
  [[ "${status}" -eq 42 ]] || {
    echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
  "${quickstart}" "${qs_args[@]}" --checkpoint-dir="${fault_dir}/ckpt-corrupt" \
    | tee "${fault_dir}/fallback.log"
  grep -q "resume_corrupt=0" "${fault_dir}/fallback.log" && {
    echo "FAIL: corrupted checkpoint was not rejected on resume"; exit 1; }
  grep -q "resume_ok=0" "${fault_dir}/fallback.log" && {
    echo "FAIL: resume did not fall back to the previous rotation"; exit 1; }

  echo "=== [faults] crash must still flush the observability artifacts ==="
  set +e
  SES_FAULT_SPEC="crash:phase=phase1,epoch=8" \
    "${quickstart}" "${qs_args[@]}" --trace-out="${fault_dir}/crash-trace.json" \
    --metrics-out="${fault_dir}/crash-metrics.jsonl"
  status=$?
  set -e
  [[ "${status}" -eq 42 ]] || {
    echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
  python3 - "${fault_dir}/crash-trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
assert trace["traceEvents"], "crash-flushed trace has no spans"
PY
  [[ -s "${fault_dir}/crash-metrics.jsonl" ]] || {
    echo "FAIL: crash did not flush the metrics snapshot"; exit 1; }
  echo "crashed run left a parseable trace and a metrics snapshot"
}

# ---------------------------------------------------------------------------
stage_overload() {
  ensure_asan
  # Short overload sweep under ASan: admission control, deadline expiry, the
  # degraded-mode transitions, and the retry/backoff client loop must all be
  # memory-clean. Only the structural invariants are gated (unresolved
  # futures, typed resolution counts) — retention measured on a sanitizer
  # build is noise, so the floor is disabled.
  echo "=== [overload] ASan overload sweep (smoke, structural gates) ==="
  ./build-asan/bench/bench_overload --smoke \
    --out=ci_artifacts/BENCH_overload_asan.json \
    | tee "ci_artifacts/overload-asan.log"
  SES_BENCH_MIN_OVERLOAD_RETENTION=0 \
    scripts/bench_check.sh ci_artifacts/BENCH_overload_asan.json

  # Env-driven serving faults: with no explicit plan the scheduler arms
  # $SES_FAULT_SPEC, so a stall + slow forward injected from the outside must
  # ride through a full serving benchmark without tripping any check.
  echo "=== [overload] env-injected worker stall + slow forward under ASan ==="
  SES_FAULT_SPEC="worker_stall:step=2,ms=30;slow_forward:step=5,ms=10" \
    ./build-asan/bench/bench_serving --smoke \
    --out=ci_artifacts/BENCH_serving_stall.json \
    | tee "ci_artifacts/overload-stall.log"

  # The deterministic serving fault matrix (poisoned request, thrown batch,
  # worker stall with clean drain, deadline semantics, degraded mode,
  # post-stop rejection) lives in serve_test; run it under both sanitizers —
  # ASan proves the failure paths leak nothing, TSan proves the shed /
  # deadline / degraded paths are race-free under contention.
  echo "=== [overload] serving fault matrix under ASan ==="
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -R '^ServeTest\.'
  ensure_tsan
  echo "=== [overload] shed/deadline/fault paths under TSan ==="
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -R '^ServeTest\.'
  echo "=== [overload] TSan overload sweep (smoke) ==="
  ./build-tsan/bench/bench_overload --smoke --point-seconds=0.25 \
    --out=ci_artifacts/BENCH_overload_tsan.json \
    | tee "ci_artifacts/overload-tsan.log"
  SES_BENCH_MIN_OVERLOAD_RETENTION=0 \
    scripts/bench_check.sh ci_artifacts/BENCH_overload_tsan.json
}

# ---------------------------------------------------------------------------
stage_bench() {
  ensure_release
  # Serving-performance gate: a fresh Release run must stay within the
  # allowed regression envelope of the committed baseline (see
  # scripts/bench_check.sh). The pre-bench load average is captured so the
  # gate can tell "this machine was already busy" apart from a regression.
  echo "=== [bench] Release bench_serving vs committed BENCH_serving.json ==="
  SES_BENCH_PRELOAD="$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)"
  export SES_BENCH_PRELOAD
  ./build/bench/bench_serving --out=ci_artifacts/BENCH_serving_release.json \
    | tee "ci_artifacts/serving-release.log"
  scripts/bench_check.sh ci_artifacts/BENCH_serving_release.json

  # Overload-resilience gate: a fresh Release sweep must keep >= 70% of its
  # 1x goodput at 10x offered load and resolve every future typed (see
  # scripts/bench_check.sh; the committed reference is BENCH_overload.json).
  echo "=== [bench] Release bench_overload (goodput retention gate) ==="
  ./build/bench/bench_overload --out=ci_artifacts/BENCH_overload_release.json \
    | tee "ci_artifacts/overload-release.log"
  scripts/bench_check.sh ci_artifacts/BENCH_overload_release.json
}

# ---------------------------------------------------------------------------
stage_kernels() {
  ensure_release
  # Kernel observatory gate: a fresh Release bench_kernels run must hold its
  # per-kernel GFLOP/s within the regression envelope of the committed
  # BENCH_kernels.json (see scripts/bench_check.sh — both JSONs carry the
  # "kernels" block, which engages the per-kernel gate).
  echo "=== [kernels] Release bench_kernels vs committed BENCH_kernels.json ==="
  SES_BENCH_PRELOAD="$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)"
  export SES_BENCH_PRELOAD
  ./build/bench/bench_kernels --out=ci_artifacts/BENCH_kernels_release.json \
    | tee "ci_artifacts/kernels-release.log"
  scripts/bench_check.sh ci_artifacts/BENCH_kernels_release.json

  echo "=== [kernels] JSON schema validation ==="
  python3 - ci_artifacts/BENCH_kernels_release.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema_version"] == 2, doc.get("schema_version")
assert doc["active_tier"] in ("scalar", "avx2", "avx512"), doc["active_tier"]
assert isinstance(doc["spmm_simd_speedup"], (int, float)) \
    and doc["spmm_simd_speedup"] >= 0, doc["spmm_simd_speedup"]
assert isinstance(doc["perf_available"], bool)
roof = doc["roofline"]
for key in ("peak_gflops", "peak_bw_gbs", "ridge_intensity"):
    assert roof[key] > 0, f"roofline.{key} = {roof[key]}"
kernels = doc["kernels"]
assert len(kernels) >= 5, f"expected >=5 kernels, got {len(kernels)}"
tiered = [n for n in kernels
          if n.endswith(("_scalar", "_avx2", "_avx512"))]
assert tiered, "schema 2 requires tier-suffixed variant labels"
spmm_variants = [n for n in kernels if n.startswith("spmm|")]
assert len(spmm_variants) >= 3, \
    f"expected a per-variant spmm sweep, got {spmm_variants}"
for name, k in kernels.items():
    assert k["calls"] > 0, name
    assert k["time_ms"] > 0, name
    for key in ("gflops", "gbps", "intensity", "ipc", "llc_miss_rate",
                "roofline_efficiency"):
        assert isinstance(k[key], (int, float)) and k[key] >= 0, \
            f"{name}.{key} = {k[key]}"
    if doc["perf_available"]:
        assert k["counters_valid"] and k["ipc"] > 0, \
            f"{name}: perf available but counters invalid"
print(f"schema ok: {len(kernels)} kernels ({len(spmm_variants)} spmm "
      f"variants), active_tier={doc['active_tier']}, "
      f"spmm_simd_speedup={doc['spmm_simd_speedup']:.2f}, "
      f"perf_available={doc['perf_available']}")
PY

  # The clock-only fallback is a supported mode, not an error: with perf
  # disabled the benchmark must still finish, report perf_available=false,
  # and compute wall-clock GFLOP/s for every kernel.
  echo "=== [kernels] SES_PERF_DISABLE=1 fallback run (smoke) ==="
  SES_PERF_DISABLE=1 ./build/bench/bench_kernels --smoke \
    --out=ci_artifacts/BENCH_kernels_fallback.json \
    | tee "ci_artifacts/kernels-fallback.log"
  python3 - ci_artifacts/BENCH_kernels_fallback.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["perf_available"] is False, "SES_PERF_DISABLE=1 was ignored"
for name, k in doc["kernels"].items():
    assert not k["counters_valid"], f"{name} has counters without perf"
    assert k["ipc"] == 0 and k["llc_miss_rate"] == 0, name
flop_kernels = [k for k in doc["kernels"].values() if k["intensity"] > 0]
assert flop_kernels and all(k["gflops"] > 0 for k in flop_kernels), \
    "clock-only GFLOP/s missing"
print(f"fallback ok: {len(doc['kernels'])} kernels clock-only, "
      f"reason: {doc['perf_unavailable_reason']!r}")
PY
}

# ---------------------------------------------------------------------------
stage_kernels_dispatch() {
  ensure_release
  # SIMD dispatch gate: the full kernel parity suite (SIMD-vs-scalar parity
  # sweeps, NaN masking, fused epilogue, fused-op gradients) re-runs with
  # SES_KERNEL_VARIANT pinned to each tier the host CPU supports. Tiers the
  # host lacks are LOGGED as skipped, never silently dropped — a CI box
  # without AVX-512 must say so in the log.
  local parity_filter='DispatchTest.*:KernelParityTest.*:SpmmParityTest.*'
  parity_filter+=':SpmmNanTest.*:SpmmBiasActTest.*'
  local variant
  for variant in scalar avx2 avx512; do
    local supported=1
    case "${variant}" in
      avx2)
        grep -qw avx2 /proc/cpuinfo && grep -qw fma /proc/cpuinfo \
          || supported=0 ;;
      avx512)
        grep -qw avx512f /proc/cpuinfo && grep -qw fma /proc/cpuinfo \
          || supported=0 ;;
    esac
    if [[ "${supported}" -eq 0 ]]; then
      echo "=== [kernels-dispatch] SES_KERNEL_VARIANT=${variant} SKIPPED:" \
           "host CPU lacks ${variant} (parity for this tier not verified" \
           "on this box) ==="
      continue
    fi
    echo "=== [kernels-dispatch] parity suite with SES_KERNEL_VARIANT=${variant} ==="
    SES_KERNEL_VARIANT="${variant}" ./build/tests/kernels_test \
      --gtest_filter="${parity_filter}" \
      | tee "ci_artifacts/kernels-dispatch-${variant}.log"
  done

  # Autotuner determinism: the variant decision must be a pure function of
  # the graph statistics — two back-to-back runs of the autotune suite (and
  # the in-test two-plans-same-choice assertions) must agree.
  echo "=== [kernels-dispatch] autotuner determinism (two runs) ==="
  ./build/tests/kernels_test --gtest_filter='AutotuneTest.*:BackboneParityTest.*' \
    | tee "ci_artifacts/kernels-dispatch-autotune-1.log"
  ./build/tests/kernels_test --gtest_filter='AutotuneTest.*' \
    | tee "ci_artifacts/kernels-dispatch-autotune-2.log"

  # The parity sweeps double as sanitizer fodder: masked AVX-512 tails and
  # the blocked-CSR cursor walk are exactly where an out-of-bounds lane read
  # or a signed overflow would hide. ASan covers them via the tier1 suite in
  # stage_asan; UBSan gets a dedicated build here (kernels_test only).
  ensure_ubsan
  echo "=== [kernels-dispatch] parity suite under UBSan ==="
  ./build-ubsan/tests/kernels_test \
    | tee "ci_artifacts/kernels-dispatch-ubsan.log"
}

# ---------------------------------------------------------------------------
stage_scale() {
  ensure_release
  # Generator determinism: two independent 100k generations must agree on
  # the full-dataset digest (topology, labels, features, ground truth,
  # splits). This is the cheap canary for any nondeterminism creeping into
  # the per-node RNG stream forking.
  echo "=== [scale] generator determinism double-run at 100k ==="
  ./build/bench/bench_scale --digest --nodes=100000 \
    | tee "ci_artifacts/scale-digest.log"

  # Release sweep with the full gate: 10k / 100k / 1M nodes, each point
  # partitioned, sharded, and proved bitwise-identical to the whole-graph
  # session. bench_check.sh enforces parity + partition quality structurally
  # and compares latencies against the committed BENCH_scale.json.
  echo "=== [scale] Release 10k/100k/1M sweep vs committed BENCH_scale.json ==="
  SES_BENCH_PRELOAD="$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)"
  export SES_BENCH_PRELOAD
  ./build/bench/bench_scale --out=ci_artifacts/BENCH_scale_release.json \
    | tee "ci_artifacts/scale-release.log"
  scripts/bench_check.sh ci_artifacts/BENCH_scale_release.json

  # 10k smoke under ASan: the generator's two-pass streaming build, the
  # partitioner's scratch reuse, the halo BFS, and the per-shard mask
  # slicing must all be memory-clean. Structural gates only.
  ensure_asan
  echo "=== [scale] ASan 10k smoke (structural gates) ==="
  ./build-asan/bench/bench_scale --smoke \
    --out=ci_artifacts/BENCH_scale_asan.json \
    | tee "ci_artifacts/scale-asan.log"
  scripts/bench_check.sh ci_artifacts/BENCH_scale_asan.json
}

# ---------------------------------------------------------------------------
stage_forensics() {
  ensure_release
  # Request forensics end to end (DESIGN.md §15). One Release bench_serving
  # run with the whole forensics surface armed: exemplars and stage
  # attribution are always on; --sched-queue-budget-us=1 makes every
  # scheduled request breach its queue-wait budget, so the burn rate crosses
  # --flight-burn on the very first batch and the flight recorder's
  # auto-dump is guaranteed to trip. Generously sized closed-loop phase
  # (~1 s) so the mid-run scrape reliably catches the scheduler alive.
  echo "=== [forensics] bench_serving with flight recorder armed (live scrape) ==="
  rm -f ci_artifacts/flight-dump.json
  ./build/bench/bench_serving --scale=0.25 --epochs=40 --hidden=32 \
    --seeds=1 --threads=2 --queries=2000 \
    --sched-clients=4 --closed-queries=4000 --open-queries=4000 \
    --sched-queue-budget-us=1 --flight-burn=0.05 \
    --flight-dump=ci_artifacts/flight-dump.json \
    --metrics-port=0 --access-log="${SCRATCH}/forensics-access.jsonl" \
    --trace-out="${SCRATCH}/forensics-trace.json" \
    --out=ci_artifacts/BENCH_serving_forensics.json \
    >"ci_artifacts/serving-forensics.log" 2>&1 &
  local serving_pid=$!
  for _ in $(seq 1 200); do
    grep -q "metrics server on" "ci_artifacts/serving-forensics.log" && break
    kill -0 "${serving_pid}" 2>/dev/null || break
    sleep 0.05
  done
  local port
  port="$(sed -n 's#.*localhost:\([0-9]*\)/metrics.*#\1#p' \
    "ci_artifacts/serving-forensics.log" | head -1)"
  [[ -n "${port}" ]] || {
    cat "ci_artifacts/serving-forensics.log"
    echo "FAIL: bench_serving never announced its metrics port"; exit 1; }

  # Live phase: poll /metrics until the scheduler's e2e histogram exposes an
  # OpenMetrics exemplar, then hit /debug/slowest and /healthz while the
  # process is still serving. The scraped exemplar trace-ids are written to
  # the scratch dir for the offline join below.
  python3 - "${port}" "${serving_pid}" "${SCRATCH}" <<'PY'
import json, os, sys, time, urllib.request

port, pid, scratch = sys.argv[1], int(sys.argv[2]), sys.argv[3]
base = f"http://localhost:{port}"

exemplar_ids = []
deadline = time.monotonic() + 300
while time.monotonic() < deadline:
    try:
        with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
            body = resp.read().decode()
    except OSError:
        body = ""
    exemplar_ids = []
    for line in body.splitlines():
        if not line.startswith("ses_sched_e2e_us_bucket"):
            continue
        head, sep, tail = line.partition(' # {trace_id="')
        if not sep:
            continue
        exemplar_ids.append(int(tail.split('"', 1)[0]))
        float(tail.rsplit(" ", 1)[1])   # exemplar value parses as a number
        float(head.rsplit(" ", 1)[1])   # so does the cumulative bucket count
    if exemplar_ids:
        break
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        sys.exit("FAIL: bench_serving exited before /metrics exposed an "
                 "exemplar on ses_sched_e2e_us")
    time.sleep(0.02)
assert exemplar_ids, "no OpenMetrics exemplar on ses_sched_e2e_us in 300 s"

with urllib.request.urlopen(f"{base}/debug/slowest", timeout=5) as resp:
    assert resp.headers["Content-Type"].startswith("application/json")
    slowest = json.load(resp)
records = slowest["records"]
assert records, "/debug/slowest served no records mid-run"
ORDER = ["submit", "admit", "seal", "forward_start", "forward_end", "resolve"]
for rec in records:
    stamps = [rec["stages_us"][k] for k in ORDER]
    assert stamps == sorted(stamps), \
        f"stage timestamps not monotonic: {rec}"
    assert rec["trace_id"] > 0 and rec["e2e_us"] >= 0, rec
e2es = [r["e2e_us"] for r in records]
assert e2es == sorted(e2es, reverse=True), "/debug/slowest not slowest-first"

with urllib.request.urlopen(f"{base}/healthz", timeout=5) as resp:
    health = json.load(resp)
assert "anomaly_watch" in health.get("components", {}), \
    f"anomaly_watch component missing from /healthz: {sorted(health)}"

with open(os.path.join(scratch, "forensics-exemplars.json"), "w") as f:
    json.dump(exemplar_ids, f)
print(f"live forensics ok: {len(exemplar_ids)} e2e exemplars, "
      f"{len(records)} /debug/slowest records (top_k {slowest['top_k']}), "
      f"anomaly_watch registered")
PY
  wait "${serving_pid}" || {
    cat "ci_artifacts/serving-forensics.log"
    echo "FAIL: bench_serving exited non-zero"; exit 1; }

  echo "=== [forensics] dump + exemplars join the access log and Chrome trace ==="
  [[ -s ci_artifacts/flight-dump.json ]] || {
    echo "FAIL: the SLO breach never auto-dumped ci_artifacts/flight-dump.json"
    exit 1; }
  python3 - ci_artifacts/flight-dump.json \
    "${SCRATCH}/forensics-access.jsonl" "${SCRATCH}/forensics-trace.json" \
    "${SCRATCH}/forensics-exemplars.json" \
    ci_artifacts/BENCH_serving_forensics.json <<'PY'
import json, sys

dump_path, access_path, trace_path, exemplar_path, bench_path = sys.argv[1:6]

with open(dump_path) as f:
    dump = json.load(f)
records = dump["records"]
assert records, "flight-recorder dump has no records"
ORDER = ["submit", "admit", "seal", "forward_start", "forward_end", "resolve"]
for rec in records:
    stamps = [rec["stages_us"][k] for k in ORDER]
    assert stamps == sorted(stamps), f"dumped record not monotonic: {rec}"

with open(access_path) as f:
    entries = [json.loads(line) for line in f if line.strip()]
assert entries, "access log is empty"
missing_reason = [e["trace_id"] for e in entries if "reason" not in e]
assert not missing_reason, \
    f"{len(missing_reason)} access-log entries lack a reason field"
access_ids = {e["trace_id"] for e in entries}

with open(trace_path) as f:
    trace = json.load(f)
span_ids = {ev["args"]["trace_id"] for ev in trace["traceEvents"]
            if "args" in ev and "trace_id" in ev["args"]}
names = {ev.get("name", "") for ev in trace["traceEvents"]}
for stage in ("admit", "seal", "queue", "forward", "resolve"):
    assert f"sched/stage/{stage}" in names, \
        f"Chrome trace lacks the sched/stage/{stage} span"

dump_ids = {r["trace_id"] for r in records}
orphans = sorted(dump_ids - access_ids)
assert not orphans, f"{len(orphans)} dumped requests missing from the " \
                    f"access log, e.g. trace_id {orphans[0]}"
orphans = sorted(dump_ids - span_ids)
assert not orphans, f"{len(orphans)} dumped requests have no trace spans, " \
                    f"e.g. trace_id {orphans[0]}"

with open(exemplar_path) as f:
    exemplar_ids = set(json.load(f))
assert exemplar_ids <= access_ids, \
    f"exemplar trace-ids missing from the access log: " \
    f"{sorted(exemplar_ids - access_ids)}"
assert exemplar_ids <= span_ids, \
    f"exemplar trace-ids missing from the Chrome trace: " \
    f"{sorted(exemplar_ids - span_ids)}"

with open(bench_path) as f:
    bench = json.load(f)
stages = bench["scheduler"]["stages"]
for stage in ("admit", "seal", "queue", "forward", "resolve"):
    assert stages[stage]["p99_us"] >= stages[stage]["p50_us"] >= 0.0, stages
print(f"{len(records)} dumped records and {len(exemplar_ids)} exemplars "
      f"joined against {len(entries)} access-log lines and "
      f"{len(span_ids)} span trace-ids; stages block present")
PY
}

# ---------------------------------------------------------------------------
STAGES=()
for arg in "$@"; do
  case "${arg}" in
    release|asan|tsan|faults|overload|bench|kernels|kernels-dispatch|scale|forensics) STAGES+=("${arg}") ;;
    ''|*[!0-9]*)
      echo "unknown stage '${arg}' (expected release|asan|tsan|faults|overload|bench|kernels|kernels-dispatch|scale|forensics)" >&2
      exit 2 ;;
    *) JOBS="${arg}" ;;  # back-compat: scripts/ci.sh [JOBS]
  esac
done
[[ ${#STAGES[@]} -gt 0 ]] || \
  STAGES=(release asan tsan faults overload bench kernels kernels-dispatch scale forensics)

for stage in "${STAGES[@]}"; do
  "stage_${stage//-/_}"  # dashes in stage names map to underscores
  report_ccache "${stage}"
done
echo "=== stages passed: ${STAGES[*]} ==="
