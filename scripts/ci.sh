#!/usr/bin/env bash
# CI driver: builds the Release tree and an AddressSanitizer tree, runs the
# full ctest suite on both, then exercises the fault-injection matrix (NaN
# injection, kill-and-resume, checkpoint corruption) against the ASan
# quickstart binary and smoke-runs the multi-threaded serving benchmark
# under ASan. Any failure fails the script.
#
# Usage: scripts/ci.sh [JOBS]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_variant() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_variant "release" build -DCMAKE_BUILD_TYPE=Release
run_variant "asan" build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSES_SANITIZE=address

# ---------------------------------------------------------------------------
# Fault-injection matrix (under ASan: resume paths must also be memory-clean).
# A tiny quickstart run keeps each scenario to a few seconds.
QUICKSTART="./build-asan/examples/quickstart"
QS_ARGS=(--scale=0.12 --epochs=12 --checkpoint-every=4)
FAULT_DIR="$(mktemp -d)"
trap 'rm -rf "${FAULT_DIR}"' EXIT

echo "=== [faults] NaN-loss injection: training must skip the step and finish ==="
SES_FAULT_SPEC="nan_loss:phase=phase1,step=3" \
  "${QUICKSTART}" "${QS_ARGS[@]}" --metrics-out="${FAULT_DIR}/nan-metrics.jsonl" \
  | tee "${FAULT_DIR}/nan.log"
grep -q "nan_skips=0" "${FAULT_DIR}/nan.log" && {
  echo "FAIL: NaN injection did not register a skipped step"; exit 1; }
grep -q '"ses.train.nan_skips"' "${FAULT_DIR}/nan-metrics.jsonl" || {
  echo "FAIL: nan_skips counter missing from metrics snapshot"; exit 1; }

echo "=== [faults] crash at phase-1 epoch 8, then resume from checkpoint ==="
set +e
SES_FAULT_SPEC="crash:phase=phase1,epoch=8" \
  "${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-crash"
status=$?
set -e
[[ "${status}" -eq 42 ]] || {
  echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
"${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-crash" \
  | tee "${FAULT_DIR}/resume.log"
grep -q "resume_ok=0" "${FAULT_DIR}/resume.log" && {
  echo "FAIL: resume after crash did not load a checkpoint"; exit 1; }

echo "=== [faults] corrupt newest checkpoint, resume must fall back ==="
set +e
SES_FAULT_SPEC="corrupt_ckpt:phase=phase1,epoch=8,mode=flip;crash:phase=phase1,epoch=10" \
  "${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-corrupt"
status=$?
set -e
[[ "${status}" -eq 42 ]] || {
  echo "FAIL: injected crash exited with ${status}, expected 42"; exit 1; }
"${QUICKSTART}" "${QS_ARGS[@]}" --checkpoint-dir="${FAULT_DIR}/ckpt-corrupt" \
  | tee "${FAULT_DIR}/fallback.log"
grep -q "resume_corrupt=0" "${FAULT_DIR}/fallback.log" && {
  echo "FAIL: corrupted checkpoint was not rejected on resume"; exit 1; }
grep -q "resume_ok=0" "${FAULT_DIR}/fallback.log" && {
  echo "FAIL: resume did not fall back to the previous rotation"; exit 1; }

# ---------------------------------------------------------------------------
# Serving smoke (under ASan: the tape-free fast path, workspace pool, and the
# multi-threaded query loop must be memory- and race-clean).
echo "=== [serving] bench_serving --smoke (2 threads, ASan) ==="
mkdir -p ci_artifacts
./build-asan/bench/bench_serving --smoke --threads=2 \
  --out=ci_artifacts/BENCH_serving.json | tee "${FAULT_DIR}/serving.log"
grep -q '"logits_max_abs_diff": 0' ci_artifacts/BENCH_serving.json || {
  echo "FAIL: fast-path logits diverged from the tape path"; exit 1; }
echo "serving artifact archived at ci_artifacts/BENCH_serving.json"

echo "=== all variants passed ==="
