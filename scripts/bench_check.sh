#!/usr/bin/env bash
# Serving-performance regression gate.
#
# Compares a freshly produced bench_serving JSON artifact against the
# committed baseline (BENCH_serving.json at the repo root) and fails when
#   - warm-predict throughput (1000 / single_thread.warm_predict_ms, i.e.
#     QPS of the memoized fast path) drops by more than the allowed fraction,
#   - or the multi-threaded serving p99 latency rises by more than it.
#
# Usage: scripts/bench_check.sh CANDIDATE.json [BASELINE.json]
#   SES_BENCH_MAX_REGRESSION  allowed fractional regression (default 0.20)
#
# Micro-benchmarks on a shared 2-core box are noisy; 20% is wide enough to
# ignore scheduler jitter while still catching a real fast-path regression
# (those historically show up as 2-10x, not 1.2x).
set -euo pipefail

CANDIDATE="${1:?usage: scripts/bench_check.sh CANDIDATE.json [BASELINE.json]}"
BASELINE="${2:-$(dirname "$0")/../BENCH_serving.json}"
MAX_REGRESSION="${SES_BENCH_MAX_REGRESSION:-0.20}"

python3 - "$BASELINE" "$CANDIDATE" "$MAX_REGRESSION" <<'PY'
import json
import sys

baseline_path, candidate_path, allowed = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = json.load(f)
with open(candidate_path) as f:
    cand = json.load(f)


def warm_qps(doc):
    ms = doc["single_thread"]["warm_predict_ms"]
    return 1000.0 / ms if ms > 0 else float("inf")


failures = []

base_qps, cand_qps = warm_qps(base), warm_qps(cand)
qps_drop = 0.0 if base_qps <= 0 else (base_qps - cand_qps) / base_qps
print(f"warm-predict QPS: baseline {base_qps:,.0f}  candidate {cand_qps:,.0f}  "
      f"drop {qps_drop:+.1%} (allowed {allowed:.0%})")
if qps_drop > allowed:
    failures.append(f"warm-predict QPS dropped {qps_drop:.1%} (> {allowed:.0%})")

base_p99, cand_p99 = base["serving"]["p99_ms"], cand["serving"]["p99_ms"]
p99_rise = 0.0 if base_p99 <= 0 else (cand_p99 - base_p99) / base_p99
print(f"serving p99: baseline {base_p99:.6f} ms  candidate {cand_p99:.6f} ms  "
      f"rise {p99_rise:+.1%} (allowed {allowed:.0%})")
if p99_rise > allowed:
    failures.append(f"serving p99 rose {p99_rise:.1%} (> {allowed:.0%})")

if failures:
    for f in failures:
        print(f"BENCH GATE FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("bench gate passed")
PY
